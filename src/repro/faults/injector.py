"""Deterministic, seedable fault injection.

One :class:`FaultInjector` owns a ``numpy`` generator derived from the
profile seed and a caller-supplied tag (machine label, algorithm, graph
name), so every (machine, workload) pair draws an independent but fully
reproducible fault pattern: two runs with the same profile and tag
inject identical faults.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import FaultError
from ..memory.ecc import SECDED_DATA_BITS
from .profile import FaultProfile


def derive_seed(seed: int, tag: str) -> int:
    """Mix a base seed with a context tag, stably across processes.

    ``hash()`` is randomised per interpreter; CRC32 is not.
    """
    return (seed & 0xFFFFFFFF) ^ zlib.crc32(tag.encode())


@dataclass
class UpdateFaultCounts:
    """Tally of perturbations applied to one dynamic-update stream."""

    dropped: int = 0
    duplicated: int = 0
    conflicts: int = 0  # replay errors absorbed (e.g. double-delete)


@dataclass(frozen=True)
class StuckWordStats:
    """How SECDED words fare under a given stuck-cell rate.

    Attributes:
        correctable_fraction: words with exactly one stuck bit (ECC
            corrects in place).
        uncorrectable_fraction: words with two or more stuck bits
            (remapped to spare rows; capacity loss).
    """

    correctable_fraction: float
    uncorrectable_fraction: float


class FaultInjector:
    """Samples fault events for one simulated execution."""

    def __init__(self, profile: FaultProfile, tag: str = "") -> None:
        self.profile = profile
        self.tag = tag
        self.rng = np.random.default_rng(derive_seed(profile.seed, tag))
        self.update_counts = UpdateFaultCounts()

    # --- whole-bank failures -------------------------------------------------

    def sample_failed_banks(self, total_banks: int) -> int:
        """Banks dead at boot, binomially sampled.

        Raises :class:`FaultError` if every bank failed — nothing left
        to spare into.
        """
        if total_banks <= 0 or self.profile.bank_failure_rate == 0.0:
            return 0
        failed = int(self.rng.binomial(total_banks,
                                       self.profile.bank_failure_rate))
        if failed >= total_banks:
            raise FaultError(
                f"all {total_banks} edge-memory banks failed "
                f"(rate {self.profile.bank_failure_rate}); "
                "no capacity left to remap into"
            )
        return failed

    # --- stuck-at cells ------------------------------------------------------

    def stuck_word_stats(
        self, word_bits: int = SECDED_DATA_BITS
    ) -> StuckWordStats:
        """Expected per-word outcome under the effective stuck rate."""
        p = self.profile.effective_stuck_rate
        if p == 0.0:
            return StuckWordStats(0.0, 0.0)
        clean = (1.0 - p) ** word_bits
        single = word_bits * p * (1.0 - p) ** (word_bits - 1)
        return StuckWordStats(
            correctable_fraction=single,
            uncorrectable_fraction=max(0.0, 1.0 - clean - single),
        )

    def sample_stuck_cells(self, capacity_bits: float) -> int:
        """Stuck cells in an image of ``capacity_bits`` bits."""
        p = self.profile.effective_stuck_rate
        if p == 0.0 or capacity_bits <= 0:
            return 0
        return int(self.rng.poisson(capacity_bits * p))

    # --- transient upsets ----------------------------------------------------

    def sample_transient_flips(self, bits: float, rate: float) -> int:
        """Bit flips across ``bits`` accessed bits at ``rate`` per bit."""
        if rate == 0.0 or bits <= 0:
            return 0
        return int(self.rng.poisson(bits * rate))

    def uncorrectable_flip_count(
        self, bits: float, rate: float, word_bits: int = SECDED_DATA_BITS
    ) -> int:
        """Expected multi-flip words (beyond SECDED), sampled.

        The probability that one word suffers two or more flips is
        ``C(w, 2) * rate^2`` to leading order.
        """
        if rate == 0.0 or bits <= 0:
            return 0
        words = bits / word_bits
        per_word = 0.5 * word_bits * (word_bits - 1) * rate * rate
        return int(self.rng.poisson(words * per_word))

    # --- dynamic-update perturbation ----------------------------------------

    def perturb_requests(self, requests: list) -> list:
        """Drop and duplicate update requests per the profile's rates.

        Returns the perturbed stream; tallies land in
        :attr:`update_counts`.  Duplicates are delivered back-to-back
        (the common network-retry pattern).
        """
        drop = self.profile.update_drop_rate
        dup = self.profile.update_duplicate_rate
        if drop == 0.0 and dup == 0.0:
            return list(requests)
        out = []
        n = len(requests)
        if n == 0:
            return out
        dropped_mask = self.rng.random(n) < drop
        duplicated_mask = self.rng.random(n) < dup
        for req, is_dropped, is_duplicated in zip(
            requests, dropped_mask, duplicated_mask
        ):
            if is_dropped:
                self.update_counts.dropped += 1
                continue
            out.append(req)
            if is_duplicated:
                out.append(req)
                self.update_counts.duplicated += 1
        return out
