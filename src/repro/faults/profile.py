"""Fault profiles: seedable rate bundles describing device imperfection.

The paper (like GraphR) evaluates ideal devices; real ReRAM arrives with
stuck-at cells, finite write endurance and write variability, and the
DRAM/SRAM vertex path suffers transient upsets.  A
:class:`FaultProfile` collects every rate the injector understands, plus
the seed that makes injection reproducible.

The central invariant of the whole subsystem: a profile whose rates are
all zero (``is_zero``) is a pure pass-through — every machine report is
bit-identical to an uninstrumented run.  The machine model only spends
entropy and applies resilience overheads when ``is_zero`` is false.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

from ..errors import ConfigError

#: Rates interpreted as probabilities (must lie in [0, 1]).
_PROBABILITY_FIELDS = (
    "reram_stuck_cell_rate",
    "reram_write_fail_rate",
    "bank_failure_rate",
    "update_drop_rate",
    "update_duplicate_rate",
)


@dataclass(frozen=True)
class FaultProfile:
    """Fault rates for one simulated deployment.

    Attributes:
        seed: base seed of the deterministic injector; two runs with the
            same profile produce identical injected-fault counts.
        reram_stuck_cell_rate: fraction of ReRAM cells stuck at 0/1
            (manufacturing defects).
        reram_endurance_writes: write endurance of one ReRAM cell
            (0 = ideal, never wears out).
        reram_lifetime_writes: mean program cycles each cell has already
            absorbed; with a finite endurance this wears cells into the
            stuck population.
        reram_write_fail_rate: probability one program round fails its
            verify read (write variability); absorbed by bounded
            write-verify retries.
        sram_upset_rate: transient bit-flip probability per accessed
            SRAM bit (scratchpad vertex path).
        dram_upset_rate: transient bit-flip probability per accessed
            DRAM bit (off-chip vertex path, DRAM edge stream).
        bank_failure_rate: probability each edge-memory bank is dead at
            boot (whole-bank failure, absorbed by remap/sparing).
        update_drop_rate: probability one dynamic-graph update request
            is lost in flight.
        update_duplicate_rate: probability one dynamic-graph update
            request is delivered twice.
    """

    seed: int = 0
    reram_stuck_cell_rate: float = 0.0
    reram_endurance_writes: float = 0.0
    reram_lifetime_writes: float = 0.0
    reram_write_fail_rate: float = 0.0
    sram_upset_rate: float = 0.0
    dram_upset_rate: float = 0.0
    bank_failure_rate: float = 0.0
    update_drop_rate: float = 0.0
    update_duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"{name} must be a probability in [0, 1]: {value}"
                )
        for name in ("reram_endurance_writes", "reram_lifetime_writes",
                     "sram_upset_rate", "dram_upset_rate"):
            value = getattr(self, name)
            if value < 0.0 or not math.isfinite(value):
                raise ConfigError(f"{name} must be finite and >= 0: {value}")
        if self.reram_write_fail_rate >= 1.0:
            raise ConfigError(
                "a write round must have some chance of success"
            )

    @property
    def is_zero(self) -> bool:
        """True when every rate is zero: the injector is a no-op."""
        return all(
            getattr(self, f.name) == 0
            for f in fields(self)
            if f.name != "seed"
        )

    @property
    def wear_stuck_fraction(self) -> float:
        """Cells worn past endurance, as an additional stuck-cell rate.

        Per-cell endurance follows a lognormal spread around the rated
        value (the standard ReRAM wear-out model): with mean lifetime
        writes L and rated endurance E, the failed fraction is
        ``Phi(ln(L/E) / sigma)`` with sigma = 0.2 — negligible early in
        life, 50% at L = E.
        """
        if self.reram_endurance_writes <= 0 or self.reram_lifetime_writes <= 0:
            return 0.0
        sigma = 0.2
        x = math.log(
            self.reram_lifetime_writes / self.reram_endurance_writes
        ) / sigma
        return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))

    @property
    def effective_stuck_rate(self) -> float:
        """Manufacturing stuck-at cells plus endurance wear-out."""
        return min(1.0, self.reram_stuck_cell_rate + self.wear_stuck_fraction)

    def with_seed(self, seed: int) -> "FaultProfile":
        return replace(self, seed=seed)

    @classmethod
    def zero(cls, seed: int = 0) -> "FaultProfile":
        """The all-zero (pass-through) profile."""
        return cls(seed=seed)


#: Named severities addressable from the CLI (``--faults <name>``).
FAULT_PROFILES: dict[str, FaultProfile] = {
    # Ideal devices: the paper's assumption; pure pass-through.
    "none": FaultProfile(),
    # Fresh production parts: rare defects, modest write variability.
    "mild": FaultProfile(
        reram_stuck_cell_rate=1e-6,
        reram_write_fail_rate=0.02,
        sram_upset_rate=1e-15,
        dram_upset_rate=1e-13,
        bank_failure_rate=0.002,
        update_drop_rate=0.001,
        update_duplicate_rate=0.001,
    ),
    # Low-yield parts in a noisy environment.
    "harsh": FaultProfile(
        reram_stuck_cell_rate=1e-4,
        reram_write_fail_rate=0.10,
        sram_upset_rate=1e-12,
        dram_upset_rate=1e-11,
        bank_failure_rate=0.03,
        update_drop_rate=0.01,
        update_duplicate_rate=0.01,
    ),
    # End-of-life: endurance half consumed, wear-out tail dominates.
    "worn": FaultProfile(
        reram_stuck_cell_rate=1e-5,
        reram_endurance_writes=1e8,
        reram_lifetime_writes=5e7,
        reram_write_fail_rate=0.15,
        sram_upset_rate=1e-13,
        dram_upset_rate=1e-12,
        bank_failure_rate=0.05,
        update_drop_rate=0.005,
        update_duplicate_rate=0.005,
    ),
}


def make_profile(name: str, seed: int | None = None) -> FaultProfile:
    """Look up a named profile, optionally overriding its seed."""
    if name not in FAULT_PROFILES:
        known = ", ".join(FAULT_PROFILES)
        raise ConfigError(f"unknown fault profile {name!r}; known: {known}")
    profile = FAULT_PROFILES[name]
    if seed is not None:
        profile = profile.with_seed(seed)
    return profile
