"""Infrastructure-fault injection: chaos for the *host-side* machinery.

The :mod:`repro.faults` package perturbs the **simulated** memory
hierarchy (stuck ReRAM cells, DRAM upsets) and PR 1 proved the machine
model absorbs them.  This module applies the same discipline to the
infrastructure the reproduction itself runs on — the SQLite result
store (:mod:`repro.perf.store`), the single-flight locks of
:mod:`repro.perf.cache`, and the process-pool sweep workers of
:mod:`repro.arch.sweep`:

* **torn writes** — a stored payload is truncated while its checksum
  describes the full write (the classic crash-mid-write shape);
* **bit flips** — one payload bit of a committed entry is flipped in
  place, checksum untouched (bit rot / torn page);
* **stale locks** — a single-flight lock file appears whose recorded
  owner PID is already dead (a crashed peer);
* **slow I/O** — bounded random sleeps before store operations
  (saturated disk, network filesystem);
* **killed workers** — a sweep worker process exits hard
  (``os._exit``), breaking the process pool mid-sweep.

Everything is seeded and deterministic per installed injector, rates
follow :class:`ChaosProfile`, and — mirroring PR 1's central invariant
— an all-zero profile is an **exact pass-through**: no entropy is
drawn, no hook fires, results are bit-identical to running without the
injector installed.  The verify harness enforces both directions with
the ``chaos-recovery`` and ``zero-chaos`` oracles (docs/robustness.md
has the taxonomy and recovery contract).

Install via :func:`chaos_context` (or :func:`set_chaos`); hooks are
consulted through :func:`get_chaos` by the store, cache and sweep
layers and cost one ``None`` check when chaos is off.
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import subprocess
import sys
import time
from dataclasses import dataclass, fields

import numpy as np

from ..errors import ChaosError
from ..obs import metrics as obs_metrics

#: Chaos rates interpreted as probabilities.
_RATE_FIELDS = (
    "torn_write_rate",
    "bit_flip_rate",
    "stale_lock_rate",
    "slow_io_rate",
    "kill_worker_rate",
)


@dataclass(frozen=True)
class ChaosProfile:
    """Rates for one infrastructure-chaos deployment.

    Attributes:
        seed: base seed of the injector's deterministic stream.
        torn_write_rate: probability a store write persists only a
            prefix of its payload (checksum still covers the whole).
        bit_flip_rate: probability a committed entry gets one payload
            bit flipped in place after the write.
        stale_lock_rate: probability a dead-owner lock file is planted
            before a single-flight claim.
        slow_io_rate: probability a store operation sleeps first.
        slow_io_max_s: upper bound of one injected sleep (seconds).
        kill_worker_rate: probability a sweep *worker process* exits
            hard before evaluating a point.  Never fires in the
            process that installed the injector, so a serial sweep (or
            the supervisor itself) cannot be killed.
    """

    seed: int = 0
    torn_write_rate: float = 0.0
    bit_flip_rate: float = 0.0
    stale_lock_rate: float = 0.0
    slow_io_rate: float = 0.0
    slow_io_max_s: float = 0.002
    kill_worker_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ChaosError(
                    f"{name} must be a probability in [0, 1]: {value}"
                )
        if self.slow_io_max_s < 0 or not math.isfinite(self.slow_io_max_s):
            raise ChaosError(
                f"slow_io_max_s must be finite and >= 0: "
                f"{self.slow_io_max_s}"
            )

    @property
    def is_zero(self) -> bool:
        """True when every rate is zero: the injector must be a no-op."""
        return all(getattr(self, f.name) == 0
                   for f in fields(self)
                   if f.name in _RATE_FIELDS)

    @classmethod
    def zero(cls, seed: int = 0) -> "ChaosProfile":
        """The all-zero (guaranteed pass-through) profile."""
        return cls(seed=seed)


#: Named severities (mirroring faults.profile.FAULT_PROFILES).
CHAOS_PROFILES: dict[str, ChaosProfile] = {
    # No infrastructure faults: pure pass-through.
    "none": ChaosProfile(),
    # A tired disk: occasional torn writes and slow I/O.
    "flaky-disk": ChaosProfile(
        torn_write_rate=0.05,
        bit_flip_rate=0.01,
        slow_io_rate=0.10,
    ),
    # Everything at once: crashing peers, rotting media, dying workers.
    "hostile": ChaosProfile(
        torn_write_rate=0.25,
        bit_flip_rate=0.20,
        stale_lock_rate=0.25,
        slow_io_rate=0.20,
        kill_worker_rate=0.30,
    ),
}


def make_chaos_profile(name: str, seed: int | None = None) -> ChaosProfile:
    """Look up a named chaos profile, optionally overriding its seed."""
    if name not in CHAOS_PROFILES:
        known = ", ".join(CHAOS_PROFILES)
        raise ChaosError(f"unknown chaos profile {name!r}; known: {known}")
    profile = CHAOS_PROFILES[name]
    if seed is not None:
        profile = ChaosProfile(
            **{**{f.name: getattr(profile, f.name)
                  for f in fields(profile)}, "seed": seed}
        )
    return profile


class ChaosInjector:
    """Seeded decision stream + the hooks the infrastructure consults.

    One injector is one deterministic fault schedule: the same profile
    and seed produce the same injection decisions in the same call
    order.  ``counts`` tallies what actually fired, and every injection
    also bumps the ``chaos_injections`` metric.

    A zero profile draws no entropy at all — each ``_fire`` guard
    checks the rate before touching the RNG — which is what makes the
    zero-chaos pass-through *exact* rather than merely likely.
    """

    def __init__(self, profile: ChaosProfile) -> None:
        self.profile = profile
        self._rng = np.random.default_rng(
            np.random.SeedSequence([0xC4A05, profile.seed & 0xFFFFFFFF])
        )
        self._install_pid = os.getpid()
        self._dead_pid: int | None = None
        self.counts: dict[str, int] = {
            "torn_write": 0,
            "bit_flip": 0,
            "stale_lock": 0,
            "slow_io": 0,
            "kill_worker": 0,
        }

    @property
    def total_injections(self) -> int:
        return sum(self.counts.values())

    def _fire(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        return bool(self._rng.random() < rate)

    def _record(self, kind: str) -> None:
        self.counts[kind] += 1
        obs_metrics.get_metrics().counter(
            obs_metrics.CHAOS_INJECTIONS
        ).add(1)

    # --- store hooks ------------------------------------------------------

    def io_delay(self) -> None:
        """Maybe sleep before a store operation (slow I/O)."""
        if self._fire(self.profile.slow_io_rate):
            self._record("slow_io")
            if self.profile.slow_io_max_s > 0:
                time.sleep(float(
                    self._rng.random() * self.profile.slow_io_max_s
                ))

    def filter_payload(self, key: str, payload: bytes) -> bytes:
        """Maybe tear a write: persist only a prefix of ``payload``."""
        del key
        if len(payload) > 1 and self._fire(self.profile.torn_write_rate):
            self._record("torn_write")
            cut = 1 + int(self._rng.integers(0, len(payload) - 1))
            return payload[:cut]
        return payload

    def after_put(self, store, key: str) -> None:
        """Maybe flip one bit of the entry just committed."""
        if self._fire(self.profile.bit_flip_rate):
            self._record("bit_flip")
            store.corrupt_bit(key, int(self._rng.integers(0, 1 << 20)))

    # --- lock hooks -------------------------------------------------------

    def _find_dead_pid(self) -> int:
        """A PID guaranteed dead: spawn-and-reap a trivial child."""
        if self._dead_pid is None:
            proc = subprocess.Popen(
                [sys.executable, "-c", ""],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            proc.wait()
            self._dead_pid = proc.pid
        return self._dead_pid

    def maybe_stale_lock(self, lock_path) -> None:
        """Maybe plant a lock file owned by a dead process."""
        if not self._fire(self.profile.stale_lock_rate):
            return
        self._record("stale_lock")
        try:
            lock_path.parent.mkdir(parents=True, exist_ok=True)
            lock_path.write_text(json.dumps(
                {"pid": self._find_dead_pid(), "created": time.time()}
            ))
        except OSError:
            pass

    # --- worker hooks -----------------------------------------------------

    def maybe_kill_worker(self) -> None:
        """Maybe kill the *current worker process* (never the installer).

        Only fires when the current PID differs from the PID the
        injector was installed in — i.e. in a forked process-pool
        worker — so serial execution and the sweep supervisor itself
        are never terminated.
        """
        if os.getpid() == self._install_pid:
            return
        if self._fire(self.profile.kill_worker_rate):
            # The counter bump is lost with the process, deliberately:
            # a killed worker reports nothing, like a real crash.
            os._exit(137)

    def summary(self) -> str:
        parts = [f"{kind}={count}"
                 for kind, count in self.counts.items() if count]
        return ("chaos: " + ", ".join(parts)) if parts else "chaos: none"


# --- process-wide installation -----------------------------------------------

_CHAOS: ChaosInjector | None = None


def get_chaos() -> ChaosInjector | None:
    """The installed injector, or ``None`` (chaos off, zero overhead)."""
    return _CHAOS


def set_chaos(injector: ChaosInjector | None) -> None:
    """Install (or remove, with ``None``) the process-wide injector."""
    global _CHAOS
    _CHAOS = injector


@contextlib.contextmanager
def chaos_context(profile: ChaosProfile):
    """Install a fresh injector for the duration; restores the previous
    one (usually ``None``) on exit.  Yields the injector so callers can
    assert on its ``counts``."""
    previous = _CHAOS
    injector = ChaosInjector(profile)
    set_chaos(injector)
    try:
        yield injector
    finally:
        set_chaos(previous)
