"""Resilience mechanisms and their costs.

Three mechanisms absorb the injected faults, each with an explicit
energy/latency/capacity price the machine model folds into its report:

* **SECDED ECC** — a (72, 64) Hamming code on every protected memory
  path: 8 check bits ride along with each 64-bit word (12.5% more bits
  moved per access) plus a small encode/decode logic energy per word.
  Corrects every single-bit stuck cell or transient flip.
* **Write-verify with bounded retries** — each ReRAM program round is
  verified; a failed round is retried up to the configured bound.  The
  expected round count multiplies write energy and latency.
* **Bank remap/sparing** — whole-bank failures and multi-bit word
  clusters are remapped; capacity degrades gracefully (extra chips are
  provisioned only when the loss exceeds the footprint slack) and the
  remapped stream crosses bank boundaries more often, eroding the
  power-gating win.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError, FaultError
from ..memory.ecc import (
    SECDED_CHECK_BITS,
    SECDED_DATA_BITS,
    secded_factor,
    secded_logic_energy,
)
from ..units import PJ
from .profile import FaultProfile

#: Retry rounds the write-verify controller issues beyond which it
#: gives up and remaps the word (bounded retry energy).
WRITE_RETRY_BOUND = 5

#: Energy of one remap-table indirection (a small CAM/SRAM lookup).
REMAP_LOOKUP_ENERGY = 0.02 * PJ


def expected_write_rounds(fail_rate: float, max_rounds: int) -> float:
    """Expected program rounds under write-verify with a retry bound.

    Each round independently fails verify with ``fail_rate``; the
    controller retries up to ``max_rounds`` total rounds.  The expected
    number of rounds issued is ``sum_{k=0}^{R-1} p^k = (1 - p^R)/(1 - p)``.
    """
    if not 0.0 <= fail_rate < 1.0:
        raise ConfigError(f"write fail rate must be in [0, 1): {fail_rate}")
    if max_rounds < 1:
        raise ConfigError(f"need at least one write round: {max_rounds}")
    if fail_rate == 0.0:
        return 1.0
    return (1.0 - fail_rate ** max_rounds) / (1.0 - fail_rate)


def write_give_up_probability(fail_rate: float, max_rounds: int) -> float:
    """Probability a write still fails after every retry round."""
    if fail_rate == 0.0:
        return 0.0
    return fail_rate ** max_rounds


@dataclass(frozen=True)
class BankSparingPlan:
    """Outcome of remapping failed banks and bad word clusters.

    Attributes:
        total_banks: banks provisioned (including spare chips).
        failed_banks: banks dead at boot, spared out.
        spare_chips: extra chips added because the loss exceeded the
            footprint slack reserve.
        capacity_loss_fraction: share of raw capacity lost to failures
            and remapped multi-bit words.
        transition_factor: multiplier on power-gating wake transitions —
            a remapped stream crosses bank boundaries more often.
    """

    total_banks: int
    failed_banks: int = 0
    spare_chips: int = 0
    capacity_loss_fraction: float = 0.0
    transition_factor: float = 1.0

    @classmethod
    def build(
        cls,
        *,
        footprint_bits: float,
        chips: int,
        banks_per_chip: int,
        bank_capacity_bits: float,
        density_bits: float,
        failed_banks: int,
        bad_word_fraction: float = 0.0,
    ) -> tuple["BankSparingPlan", int]:
        """Plan sparing; returns the plan and the (possibly grown) chip
        count.

        Dead banks and remapped word clusters shrink usable capacity;
        when the remainder no longer holds the graph image, whole spare
        chips are provisioned to restore it (graceful degradation with
        an explicit cost, not silent failure).
        """
        if bad_word_fraction >= 0.5:
            raise FaultError(
                f"{bad_word_fraction * 100:.0f}% of words carry multi-bit "
                "stuck clusters; beyond SECDED + remap capability"
            )
        total_banks = chips * banks_per_chip
        usable = (total_banks - failed_banks) * bank_capacity_bits
        usable *= max(0.0, 1.0 - bad_word_fraction)
        spare_chips = 0
        while usable < footprint_bits:
            spare_chips += 1
            if spare_chips > 4 * chips:
                raise FaultError(
                    "bank sparing cannot restore capacity within a 4x "
                    f"chip budget ({failed_banks}/{total_banks} banks "
                    f"failed, {bad_word_fraction * 100:.1f}% words remapped)"
                )
            usable += density_bits * (1.0 - bad_word_fraction)
        total_banks += spare_chips * banks_per_chip
        raw = total_banks * bank_capacity_bits
        loss = failed_banks * bank_capacity_bits + (
            (total_banks - failed_banks) * bank_capacity_bits
            * bad_word_fraction
        )
        # Every boundary crossing that lands on a spared bank detours to
        # its remap target and back: two extra wakes per affected
        # crossing.
        fail_share = failed_banks / max(1, total_banks)
        return cls(
            total_banks=total_banks,
            failed_banks=failed_banks,
            spare_chips=spare_chips,
            capacity_loss_fraction=loss / raw if raw else 0.0,
            transition_factor=1.0 + 2.0 * fail_share,
        ), chips + spare_chips


@dataclass
class FaultReport:
    """Everything injected into (and absorbed during) one execution.

    Attached to :class:`repro.arch.machine.SimulationResult` when a
    non-zero profile is active; ``None`` otherwise (pass-through).
    """

    profile: FaultProfile
    failed_banks: int = 0
    spare_chips: int = 0
    capacity_loss_fraction: float = 0.0
    stuck_cells: int = 0
    corrected_word_fraction: float = 0.0
    remapped_word_fraction: float = 0.0
    transient_flips_corrected: int = 0
    transient_flips_uncorrectable: int = 0
    expected_write_rounds: float = 1.0
    write_give_up_probability: float = 0.0
    resilience_energy: float = 0.0  # total extra joules paid (ECC + retries...)
    updates_dropped: int = 0
    updates_duplicated: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def total_injected(self) -> int:
        """Discrete fault events injected (for determinism checks)."""
        return (
            self.failed_banks
            + self.stuck_cells
            + self.transient_flips_corrected
            + self.transient_flips_uncorrectable
            + self.updates_dropped
            + self.updates_duplicated
        )

    def add_energy(self, joules: float) -> None:
        if joules < 0:
            raise ConfigError(f"negative resilience energy: {joules}")
        self.resilience_energy += joules

    def to_dict(self) -> dict:
        return {
            "failed_banks": self.failed_banks,
            "spare_chips": self.spare_chips,
            "capacity_loss_fraction": self.capacity_loss_fraction,
            "stuck_cells": self.stuck_cells,
            "corrected_word_fraction": self.corrected_word_fraction,
            "remapped_word_fraction": self.remapped_word_fraction,
            "transient_flips_corrected": self.transient_flips_corrected,
            "transient_flips_uncorrectable":
                self.transient_flips_uncorrectable,
            "expected_write_rounds": self.expected_write_rounds,
            "write_give_up_probability": self.write_give_up_probability,
            "resilience_energy_j": self.resilience_energy,
            "updates_dropped": self.updates_dropped,
            "updates_duplicated": self.updates_duplicated,
            "total_injected": self.total_injected,
        }

    def summary(self) -> str:
        return (
            f"faults: {self.total_injected} injected "
            f"({self.failed_banks} banks, {self.stuck_cells} stuck cells, "
            f"{self.transient_flips_corrected} flips corrected), "
            f"{self.capacity_loss_fraction * 100:.2f}% capacity lost, "
            f"{self.resilience_energy * 1e3:.4f} mJ resilience energy"
        )
