"""Fault injection and resilience modelling.

The paper assumes ideal devices; this package answers "what does HyVE's
energy win look like once real ReRAM imperfections — stuck cells, finite
endurance, write variability, whole-bank failures — and transient vertex
path upsets are paid for?"  Everything is deterministic and seedable,
and an all-zero profile is a guaranteed pass-through (bit-identical
reports).
"""

from ..memory.ecc import (
    SECDED_CHECK_BITS,
    SECDED_DATA_BITS,
    SECDEDDevice,
    secded_factor,
    secded_logic_energy,
)
from .injector import (
    FaultInjector,
    StuckWordStats,
    UpdateFaultCounts,
    derive_seed,
)
from .profile import FAULT_PROFILES, FaultProfile, make_profile
from .resilience import (
    BankSparingPlan,
    FaultReport,
    WRITE_RETRY_BOUND,
    expected_write_rounds,
    write_give_up_probability,
)

__all__ = [
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultProfile",
    "FaultReport",
    "BankSparingPlan",
    "SECDED_CHECK_BITS",
    "SECDED_DATA_BITS",
    "SECDEDDevice",
    "StuckWordStats",
    "UpdateFaultCounts",
    "WRITE_RETRY_BOUND",
    "derive_seed",
    "expected_write_rounds",
    "make_profile",
    "secded_factor",
    "secded_logic_energy",
    "write_give_up_probability",
]
