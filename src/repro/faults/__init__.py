"""Fault injection and resilience modelling.

The paper assumes ideal devices; this package answers "what does HyVE's
energy win look like once real ReRAM imperfections — stuck cells, finite
endurance, write variability, whole-bank failures — and transient vertex
path upsets are paid for?"  Everything is deterministic and seedable,
and an all-zero profile is a guaranteed pass-through (bit-identical
reports).

Entry points: named profiles in :data:`FAULT_PROFILES`
(``none``/``mild``/``harsh``/``worn``), built with
:func:`make_profile` and threaded into any accelerator via
``AcceleratorMachine(config, faults=profile)`` — or from the CLI with
``repro run --faults harsh --seed 7``.  The run's
:class:`~repro.arch.machine.SimulationResult` then carries a
:class:`FaultReport` tallying what was injected, corrected and paid
for.  The subsystem is documented in docs/api.md (API surface) and
docs/architecture.md (mechanisms and costs).

:mod:`repro.faults.chaos` extends the same discipline to the
*infrastructure* the reproduction runs on (the SQLite result store,
single-flight locks, process-pool workers): seedable torn writes, bit
flips, stale locks, slow I/O and killed workers, with an all-zero
profile guaranteed to be an exact pass-through.  See docs/robustness.md.
"""

from .chaos import (
    CHAOS_PROFILES,
    ChaosInjector,
    ChaosProfile,
    chaos_context,
    get_chaos,
    make_chaos_profile,
    set_chaos,
)
from ..memory.ecc import (
    SECDED_CHECK_BITS,
    SECDED_DATA_BITS,
    SECDEDDevice,
    secded_factor,
    secded_logic_energy,
)
from .injector import (
    FaultInjector,
    StuckWordStats,
    UpdateFaultCounts,
    derive_seed,
)
from .profile import FAULT_PROFILES, FaultProfile, make_profile
from .resilience import (
    BankSparingPlan,
    FaultReport,
    WRITE_RETRY_BOUND,
    expected_write_rounds,
    write_give_up_probability,
)

__all__ = [
    "CHAOS_PROFILES",
    "ChaosInjector",
    "ChaosProfile",
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultProfile",
    "FaultReport",
    "BankSparingPlan",
    "chaos_context",
    "get_chaos",
    "make_chaos_profile",
    "set_chaos",
    "SECDED_CHECK_BITS",
    "SECDED_DATA_BITS",
    "SECDEDDevice",
    "StuckWordStats",
    "UpdateFaultCounts",
    "WRITE_RETRY_BOUND",
    "derive_seed",
    "expected_write_rounds",
    "make_profile",
    "secded_factor",
    "secded_logic_energy",
    "write_give_up_probability",
]
