"""Edge-centric graph algorithms (the paper's evaluated workloads)."""

from .base import (
    EdgeCentricAlgorithm,
    IterationResult,
    scatter_add,
    scatter_min,
)
from .pagerank import PageRank
from .bfs import BFS, UNREACHED
from .cc import ConnectedComponents
from .sssp import SSSP, UNREACHABLE
from .spmv import SpMV
from .runner import (
    AlgorithmRun,
    clear_run_cache,
    run_blocked,
    run_cached,
    run_vectorized,
)
from .vertex_centric import (VertexCentricRun, run_vertex_centric,
                             run_vertex_centric_cached)

#: The three algorithms of the main evaluation (Figs. 14-18, Table 4).
CORE_ALGORITHMS = ("BFS", "CC", "PR")

#: The five algorithms of the GraphR comparison (Fig. 21).
GRAPHR_ALGORITHMS = ("BFS", "CC", "PR", "SSSP", "SpMV")


def make_algorithm(name: str) -> EdgeCentricAlgorithm:
    """Instantiate an algorithm by its paper tag (case-insensitive)."""
    factories = {
        "pr": PageRank,
        "bfs": BFS,
        "cc": ConnectedComponents,
        "sssp": SSSP,
        "spmv": SpMV,
    }
    key = name.lower()
    if key not in factories:
        known = ", ".join(sorted(factories))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}")
    return factories[key]()


__all__ = [
    "EdgeCentricAlgorithm",
    "IterationResult",
    "scatter_add",
    "scatter_min",
    "PageRank",
    "BFS",
    "UNREACHED",
    "ConnectedComponents",
    "SSSP",
    "UNREACHABLE",
    "SpMV",
    "AlgorithmRun",
    "clear_run_cache",
    "run_blocked",
    "run_cached",
    "run_vectorized",
    "VertexCentricRun",
    "run_vertex_centric",
    "run_vertex_centric_cached",
    "CORE_ALGORITHMS",
    "GRAPHR_ALGORITHMS",
    "make_algorithm",
]
