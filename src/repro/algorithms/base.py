"""Edge-centric algorithm interface (the GAS model of Section 2.1).

Every algorithm is expressed in the edge-centric form of Algorithm 1:
iterate over edges; for each edge, update the destination vertex from
the source vertex's *previous-iteration* value (synchronous/Jacobi
semantics, which makes the result independent of block processing order
— the property HyVE's data-sharing scheme relies on: "vertex data in
the source interval will not be modified during processing").

An algorithm defines:

* how vertex state is initialised,
* the per-edge update (vectorised over an arbitrary batch of edges),
* the end-of-iteration reduction (damping, convergence test),
* metadata the cost model needs: the serialised width of one vertex
  value and whether edges carry weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from ..graph.graph import Graph


@dataclass(frozen=True)
class IterationResult:
    """Outcome of one edge-centric iteration."""

    values: np.ndarray
    converged: bool
    active_vertices: int


class EdgeCentricAlgorithm:
    """Base class for edge-centric graph algorithms."""

    #: Short name used in reports ("PR", "BFS"...).
    name: str = "base"

    #: Instance attributes holding per-run scratch state (derived from
    #: the graph during execution, e.g. PageRank's out-degree array).
    #: They are excluded from :meth:`signature` so an algorithm object
    #: hashes the same before and after it has been run.
    transient_attrs: tuple[str, ...] = ()

    #: Serialised width of one vertex value in bits.  PageRank carries a
    #: wider vertex record (rank + out-degree) than BFS/CC/SSSP, which is
    #: why data sharing helps PR most (Section 7.3.1).
    vertex_bits: int = 32

    #: Whether the edge stream carries a 32-bit weight per edge.
    needs_weights: bool = False

    #: Safety cap on iterations for convergence-driven algorithms.
    max_iterations: int = 10_000

    #: Whether a vertex-centric executor may skip the out-edges of
    #: vertices whose value did not change last iteration.  Sound for
    #: idempotent min/label propagation (an unchanged source would
    #: re-contribute the same value); unsound for accumulating
    #: algorithms (PageRank, SpMV) whose iteration rebuilds every
    #: destination from zero, so *every* edge must be re-applied even
    #: at a fixpoint.
    supports_frontier: bool = True

    # --- hooks -------------------------------------------------------------

    def transform_graph(self, graph: Graph) -> Graph:
        """Graph actually streamed by the machine.

        Most algorithms stream the graph as-is; connected components
        symmetrises it (an edge-centric system stores both directions of
        each undirected edge, as X-Stream does).
        """
        return graph

    def initial_values(self, graph: Graph) -> np.ndarray:
        """Per-vertex state before the first iteration."""
        raise NotImplementedError

    def initial_active(self, graph: Graph) -> int:
        """Vertices whose initial value can propagate along an edge.

        The scheduler loads a source interval only if it holds at least
        one vertex whose value changed (active-interval scheduling);
        point-initialised algorithms (BFS, SSSP) start with a single
        active vertex, everything else with all of them.
        """
        return graph.num_vertices

    def iteration_start(self, prev: np.ndarray, graph: Graph) -> np.ndarray:
        """State a fresh iteration accumulates into.

        Defaults to a copy of the previous values (min-style algorithms);
        accumulating algorithms (PageRank, SpMV) reset to zero.
        """
        return prev.copy()

    def process_edges(
        self,
        prev: np.ndarray,
        acc: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None,
        graph: Graph,
    ) -> None:
        """Apply a batch of edges: update ``acc[dst]`` from ``prev[src]``.

        Must be order-independent and idempotent across batch splits so
        block-ordered execution matches whole-graph execution exactly.
        """
        raise NotImplementedError

    def iteration_end(
        self, prev: np.ndarray, acc: np.ndarray, graph: Graph, iteration: int
    ) -> IterationResult:
        """Finish an iteration: apply() phase plus the convergence test."""
        raise NotImplementedError

    # --- helpers -------------------------------------------------------------

    def signature(self) -> str:
        """Stable cache key for this algorithm's parameterisation.

        Derived from the instance ``__dict__`` (minus
        :attr:`transient_attrs`), so *every* parameter that can change
        the result participates — algorithms with differently named
        parameters cannot silently collide the way a hardcoded
        attribute list allowed.  Array-valued parameters (e.g. SpMV's
        input vector) contribute a content digest.
        """
        parts = [f"{type(self).__qualname__}:{self.name}"]
        state = vars(self)
        for key in sorted(state):
            if key in self.transient_attrs:
                continue
            parts.append(f"{key}={stable_value_repr(state[key])}")
        return "|".join(parts)

    def check_iteration_budget(self, iteration: int) -> None:
        if iteration >= self.max_iterations:
            raise ConvergenceError(
                f"{self.name} did not converge within "
                f"{self.max_iterations} iterations"
            )

    @property
    def edge_bits(self) -> int:
        """Serialised width of one edge in the stream."""
        return 96 if self.needs_weights else 64

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def stable_value_repr(value: object) -> str:
    """Deterministic, content-based repr for signature/cache keys.

    Plain ``repr`` is stable for scalars and strings but useless for
    numpy arrays (it elides elements); arrays are digested instead.
    """
    if isinstance(value, np.ndarray):
        import hashlib

        h = hashlib.blake2b(digest_size=8)
        h.update(np.ascontiguousarray(value).tobytes())
        return f"ndarray[{value.dtype},{value.shape}]#{h.hexdigest()}"
    return repr(value)


def scatter_add(acc: np.ndarray, dst: np.ndarray, contrib: np.ndarray) -> None:
    """acc[dst] += contrib, with duplicate destinations accumulated.

    Uses bincount (much faster than ``np.add.at`` for large batches).
    """
    if dst.size == 0:
        return
    acc += np.bincount(dst, weights=contrib, minlength=acc.size)


def scatter_min(acc: np.ndarray, dst: np.ndarray, candidate: np.ndarray) -> None:
    """acc[dst] = min(acc[dst], candidate), duplicates resolved to the min."""
    if dst.size == 0:
        return
    np.minimum.at(acc, dst, candidate)
