"""Single-source shortest paths (Bellman-Ford style) edge-centrically.

Distances relax synchronously each iteration until no distance changes;
with non-negative weights this converges in at most |V| - 1 iterations.
Edges carry a 32-bit weight, widening the edge stream to 96 bits — one
of the two extra algorithms of the GraphR comparison (Fig. 21).
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..graph.graph import Graph
from .base import EdgeCentricAlgorithm, IterationResult, scatter_min

#: Distance of vertices not reachable from the source.
UNREACHABLE = np.inf


class SSSP(EdgeCentricAlgorithm):
    """Bellman-Ford relaxation to a fixpoint."""

    name = "SSSP"
    vertex_bits = 32
    needs_weights = True

    def __init__(self, source: int = 0) -> None:
        if source < 0:
            raise ValueError(f"source must be a valid vertex id: {source}")
        self.source = source

    def transform_graph(self, graph: Graph) -> Graph:
        # SSSP needs weights; default to unit weights if absent, which
        # degrades gracefully to BFS distances.
        return graph if graph.is_weighted else graph.with_unit_weights()

    def initial_values(self, graph: Graph) -> np.ndarray:
        if graph.num_vertices == 0:
            raise GraphError("SSSP needs at least one vertex")
        if self.source >= graph.num_vertices:
            raise GraphError(
                f"source {self.source} not in graph of "
                f"{graph.num_vertices} vertices"
            )
        if graph.is_weighted and graph.num_edges and graph.weights.min() < 0:
            raise GraphError("SSSP requires non-negative edge weights")
        dist = np.full(graph.num_vertices, UNREACHABLE)
        dist[self.source] = 0.0
        return dist

    def initial_active(self, graph: Graph) -> int:
        return 1  # only the root/source can propagate initially

    def process_edges(self, prev, acc, src, dst, weights, graph) -> None:
        reached = np.isfinite(prev[src])
        if not reached.any():
            return
        w = weights[reached] if weights is not None else 1.0
        scatter_min(acc, dst[reached], prev[src[reached]] + w)

    def iteration_end(self, prev, acc, graph, iteration) -> IterationResult:
        changed = int(np.count_nonzero(acc != prev))
        self.check_iteration_budget(iteration)
        return IterationResult(
            values=acc, converged=changed == 0, active_vertices=changed
        )
