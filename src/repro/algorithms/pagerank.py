"""PageRank in the edge-centric model.

The paper fixes PageRank at 10 iterations (Section 7.1) with the
standard damped update.  Dangling vertices (no out-edges) redistribute
their mass uniformly so the rank vector remains a probability
distribution — the property tests rely on this invariant.

PageRank's vertex record is wider than the other algorithms' (the rank
plus the out-degree are both needed to compute a contribution), which is
why the paper reports the largest data-sharing benefit on PR.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from .base import EdgeCentricAlgorithm, IterationResult, scatter_add


class PageRank(EdgeCentricAlgorithm):
    """Damped PageRank: fixed iteration count, or run to a tolerance.

    The paper fixes 10 iterations; passing ``tolerance`` instead stops
    once the L1 rank delta falls below it (capped by
    ``max_iterations``), which is how a production deployment would run.
    """

    name = "PR"
    vertex_bits = 64  # rank (32 b fixed-point) + out-degree (32 b)
    transient_attrs = ("_out_degrees",)  # derived from the graph per run
    supports_frontier = False  # ranks accumulate from zero every sweep

    def __init__(
        self,
        damping: float = 0.85,
        iterations: int = 10,
        tolerance: float | None = None,
    ) -> None:
        if not 0.0 <= damping < 1.0:
            raise ValueError(f"damping must be in [0, 1), got {damping}")
        if iterations < 1:
            raise ValueError(f"need at least one iteration, got {iterations}")
        if tolerance is not None and tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.damping = damping
        self.iterations = iterations
        self.tolerance = tolerance
        self._out_degrees: np.ndarray | None = None

    def initial_values(self, graph: Graph) -> np.ndarray:
        self._out_degrees = graph.out_degrees().astype(np.float64)
        n = max(graph.num_vertices, 1)
        return np.full(graph.num_vertices, 1.0 / n)

    def iteration_start(self, prev: np.ndarray, graph: Graph) -> np.ndarray:
        return np.zeros_like(prev)

    def process_edges(self, prev, acc, src, dst, weights, graph) -> None:
        degrees = self._out_degrees[src]
        # Out-degrees are never zero for a vertex that appears as a
        # source, but guard against malformed prepared state.
        contrib = prev[src] / np.where(degrees > 0, degrees, 1.0)
        scatter_add(acc, dst, contrib)

    def iteration_end(self, prev, acc, graph, iteration) -> IterationResult:
        n = max(graph.num_vertices, 1)
        dangling = prev[self._out_degrees == 0].sum()
        rank = (1.0 - self.damping) / n + self.damping * (acc + dangling / n)
        if self.tolerance is not None:
            delta = float(np.abs(rank - prev).sum())
            converged = delta < self.tolerance
            self.check_iteration_budget(iteration)
        else:
            converged = iteration + 1 >= self.iterations
        return IterationResult(
            values=rank,
            converged=converged,
            active_vertices=graph.num_vertices,
        )
