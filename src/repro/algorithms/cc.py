"""Connected components (weakly connected) via label propagation.

Every vertex starts with its own id as label; each iteration propagates
the minimum label across edges until fixpoint.  For *weakly* connected
components on a directed graph, the machine streams both directions of
every edge; :meth:`transform_graph` therefore symmetrises the graph —
exactly how X-Stream-style edge-centric systems store undirected graphs,
and the reason CC traverses twice the raw edge count in the evaluation.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from .base import EdgeCentricAlgorithm, IterationResult, scatter_min


class ConnectedComponents(EdgeCentricAlgorithm):
    """Min-label propagation to a fixpoint."""

    name = "CC"
    vertex_bits = 32

    def __init__(self, symmetrize: bool = True) -> None:
        self.symmetrize = symmetrize

    def transform_graph(self, graph: Graph) -> Graph:
        if not self.symmetrize:
            return graph
        src = np.concatenate([graph.src, graph.dst])
        dst = np.concatenate([graph.dst, graph.src])
        return Graph(graph.num_vertices, src, dst,
                     name=f"{graph.name}-sym")

    def initial_values(self, graph: Graph) -> np.ndarray:
        return np.arange(graph.num_vertices, dtype=np.int64)

    def process_edges(self, prev, acc, src, dst, weights, graph) -> None:
        scatter_min(acc, dst, prev[src])

    def iteration_end(self, prev, acc, graph, iteration) -> IterationResult:
        changed = int(np.count_nonzero(acc != prev))
        self.check_iteration_budget(iteration)
        return IterationResult(
            values=acc, converged=changed == 0, active_vertices=changed
        )
