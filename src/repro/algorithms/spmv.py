"""Sparse matrix-vector multiplication as a one-iteration edge workload.

``y = A^T x`` where A is the adjacency matrix (entry (s, d) = weight of
edge s->d) and x the per-vertex input vector: every edge contributes
``x[src] * weight`` to ``y[dst]``.  This is the memory-bound streaming
kernel GraphR's crossbars are nominally built for, hence its inclusion
in the Fig. 21 comparison.
"""

from __future__ import annotations

import numpy as np

from ..graph.graph import Graph
from .base import EdgeCentricAlgorithm, IterationResult, scatter_add


class SpMV(EdgeCentricAlgorithm):
    """One pass of y[dst] += x[src] * w over all edges."""

    name = "SpMV"
    vertex_bits = 32
    needs_weights = True
    supports_frontier = False  # y accumulates from zero

    def __init__(self, x: np.ndarray | None = None) -> None:
        self._x = None if x is None else np.asarray(x, dtype=np.float64)

    def transform_graph(self, graph: Graph) -> Graph:
        return graph if graph.is_weighted else graph.with_unit_weights()

    def initial_values(self, graph: Graph) -> np.ndarray:
        if self._x is not None:
            if self._x.shape != (graph.num_vertices,):
                raise ValueError(
                    f"input vector has shape {self._x.shape}, expected "
                    f"({graph.num_vertices},)"
                )
            return self._x.copy()
        return np.ones(graph.num_vertices)

    def iteration_start(self, prev: np.ndarray, graph: Graph) -> np.ndarray:
        return np.zeros_like(prev)

    def process_edges(self, prev, acc, src, dst, weights, graph) -> None:
        w = weights if weights is not None else 1.0
        scatter_add(acc, dst, prev[src] * w)

    def iteration_end(self, prev, acc, graph, iteration) -> IterationResult:
        return IterationResult(
            values=acc, converged=True, active_vertices=graph.num_vertices
        )
