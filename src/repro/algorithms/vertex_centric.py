"""Vertex-centric execution (the Section 2.1 alternative to edge-centric).

Vertex-centric iterates over *active* vertices and pushes their value
along their out-edges.  Compared with the edge-centric model HyVE
adopts, it examines fewer edges on traversal algorithms (only the
frontier's out-edges) but accesses the edge array *randomly* — the
locality trade-off X-Stream [9] articulated and that motivates HyVE's
sequential ReRAM edge stream.

With the same synchronous (previous-iteration source values) semantics,
vertex-centric computes exactly the same result as the edge-centric
executor for every algorithm in this library; the tests verify that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from ..graph.graph import Graph
from .base import EdgeCentricAlgorithm
from .runner import AlgorithmRun


@dataclass(frozen=True)
class VertexCentricRun:
    """An :class:`AlgorithmRun` plus vertex-centric traffic statistics.

    Attributes:
        run: the embedded result (same fields as the edge-centric one;
            ``edges_per_iteration`` remains the full edge count so that
            machine models see comparable workloads).
        edges_examined: edges actually touched, summed over iterations —
            the vertex-centric saving.
        vertices_scanned: active vertices processed, summed.
    """

    run: AlgorithmRun
    edges_examined: int
    vertices_scanned: int

    @property
    def edge_savings(self) -> float:
        """Fraction of edge-centric edge traffic avoided (0..1)."""
        total = self.run.total_edges
        if total == 0:
            return 0.0
        return 1.0 - self.edges_examined / total


def _csr(graph: Graph):
    """CSR adjacency: out-edges of each vertex, contiguous."""
    order = np.argsort(graph.src, kind="stable")
    src = graph.src[order]
    dst = graph.dst[order]
    weights = None if graph.weights is None else graph.weights[order]
    indptr = np.zeros(graph.num_vertices + 1, dtype=np.int64)
    counts = np.bincount(src, minlength=graph.num_vertices)
    np.cumsum(counts, out=indptr[1:])
    return indptr, src, dst, weights


def run_vertex_centric(
    algorithm: EdgeCentricAlgorithm, graph: Graph
) -> VertexCentricRun:
    """Execute vertex-centrically: scan active vertices, push out-edges."""
    streamed = algorithm.transform_graph(graph)
    indptr, src, dst, weights = _csr(streamed)
    values = algorithm.initial_values(streamed)

    # Initially-active vertices: point-initialised algorithms start from
    # their single seed; everything else starts fully active.
    if (not algorithm.supports_frontier
            or algorithm.initial_active(streamed) >= streamed.num_vertices):
        active = np.ones(streamed.num_vertices, dtype=bool)
    else:
        uniques, inverse = np.unique(values, return_inverse=True)
        bulk = np.bincount(inverse).argmax()
        active = values != uniques[bulk]

    edges_examined = 0
    vertices_scanned = 0
    iterations = 0
    while True:
        active_ids = np.nonzero(active)[0]
        vertices_scanned += int(active_ids.size)
        # Gather the out-edges of the active vertices (random CSR rows).
        if active_ids.size:
            starts = indptr[active_ids]
            ends = indptr[active_ids + 1]
            lengths = ends - starts
            sel = _expand_ranges(starts, lengths)
        else:
            sel = np.empty(0, dtype=np.int64)
        edges_examined += int(sel.size)

        acc = algorithm.iteration_start(values, streamed)
        if sel.size:
            w = None if weights is None else weights[sel]
            algorithm.process_edges(
                values, acc, src[sel], dst[sel], w, streamed
            )
        result = algorithm.iteration_end(values, acc, streamed, iterations)
        if algorithm.supports_frontier:
            active = _changed(values, result.values)
        else:
            # Accumulating algorithms rebuild every destination from
            # zero: an "unchanged" source still owes its contribution
            # (a graph at its fixpoint — e.g. PR on a symmetric cycle —
            # would otherwise lose all rank mass next sweep).
            active = np.ones(streamed.num_vertices, dtype=bool)
        values = result.values
        iterations += 1
        if result.converged:
            break
        if iterations > algorithm.max_iterations:
            raise ConvergenceError(
                f"{algorithm.name} exceeded {algorithm.max_iterations} sweeps"
            )

    run = AlgorithmRun(
        algorithm=algorithm.name,
        graph_name=streamed.name,
        values=values,
        iterations=iterations,
        num_vertices=streamed.num_vertices,
        edges_per_iteration=streamed.num_edges,
        vertex_bits=algorithm.vertex_bits,
        edge_bits=algorithm.edge_bits,
    )
    return VertexCentricRun(
        run=run,
        edges_examined=edges_examined,
        vertices_scanned=vertices_scanned,
    )


def run_vertex_centric_cached(
    algorithm: EdgeCentricAlgorithm, graph: Graph
) -> VertexCentricRun:
    """:func:`run_vertex_centric` through the persistent run cache."""
    from ..perf.cache import get_run_cache

    return get_run_cache().get_or_run_vertex_centric(algorithm, graph)


def _expand_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate [start, start+length) ranges without a Python loop."""
    keep = lengths > 0
    starts = starts[keep]
    lengths = lengths[keep]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Classic vectorised range expansion: ones everywhere, with a jump
    # at each range boundary from the previous range's end to the next
    # range's start.
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if starts.size > 1:
        boundaries = np.cumsum(lengths[:-1])
        prev_end = starts[:-1] + lengths[:-1]
        out[boundaries] = starts[1:] - prev_end + 1
    return np.cumsum(out)


def _changed(prev: np.ndarray, new: np.ndarray) -> np.ndarray:
    if prev.dtype.kind == "f" or new.dtype.kind == "f":
        with np.errstate(invalid="ignore"):
            same = np.isclose(prev, new, rtol=0.0, atol=0.0, equal_nan=True)
        return ~same
    return prev != new
