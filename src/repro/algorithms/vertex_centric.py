"""Vertex-centric execution (the Section 2.1 alternative to edge-centric).

Vertex-centric iterates over *active* vertices and pushes their value
along their out-edges.  Compared with the edge-centric model HyVE
adopts, it examines fewer edges on traversal algorithms (only the
frontier's out-edges) but accesses the edge array *randomly* — the
locality trade-off X-Stream [9] articulated and that motivates HyVE's
sequential ReRAM edge stream.

With the same synchronous (previous-iteration source values) semantics,
vertex-centric computes exactly the same result as the edge-centric
executor for every algorithm in this library; the tests verify that.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from ..graph.graph import Graph
from ..obs import metrics as obs_metrics
from .base import EdgeCentricAlgorithm
from .runner import AlgorithmRun, transform_cached


@dataclass(frozen=True)
class VertexCentricRun:
    """An :class:`AlgorithmRun` plus vertex-centric traffic statistics.

    Attributes:
        run: the embedded result (same fields as the edge-centric one;
            ``edges_per_iteration`` remains the full edge count so that
            machine models see comparable workloads).
        edges_examined: edges actually touched, summed over iterations —
            the vertex-centric saving.
        vertices_scanned: active vertices processed, summed.
    """

    run: AlgorithmRun
    edges_examined: int
    vertices_scanned: int

    @property
    def edge_savings(self) -> float:
        """Fraction of edge-centric edge traffic avoided (0..1)."""
        total = self.run.total_edges
        if total == 0:
            return 0.0
        return 1.0 - self.edges_examined / total


#: CSR adjacency views keyed on the streamed graph's fingerprint.  The
#: stable argsort behind CSR construction is O(E log E) and was paid on
#: *every* vertex-centric run; the adjacency is pure graph shape, so
#: repeated runs (the execution-model ablation prices 15 of them per
#: sweep) reuse one build.  Bounded like ``_TRANSFORM_MEMO``.
_CSR_MEMO: "OrderedDict[str, tuple]" = OrderedDict()
_CSR_MEMO_CAPACITY = 64


def _csr(graph: Graph):
    """CSR adjacency: out-edges of each vertex, contiguous (memoised)."""
    key = graph.fingerprint()
    entry = _CSR_MEMO.get(key)
    if entry is not None:
        _CSR_MEMO.move_to_end(key)
        return entry
    # numpy's radix path behind kind="stable" only covers <= 16-bit
    # keys; wider ints fall back to merge sort, several times slower.
    # Any stable sort yields the same permutation, so the CSR (and
    # every downstream result) is bit-identical across these branches.
    sort_keys = graph.src
    if sort_keys.size == 0:
        order = np.empty(0, dtype=np.intp)
    elif graph.num_vertices <= np.iinfo(np.uint16).max + 1:
        order = np.argsort(sort_keys.astype(np.uint16), kind="stable")
    elif graph.num_vertices <= np.iinfo(np.uint32).max + 1:
        # Two stable LSB->MSB passes on 16-bit halves sort 32-bit ids.
        low = np.argsort((sort_keys & 0xFFFF).astype(np.uint16),
                         kind="stable")
        high = (sort_keys[low] >> 16).astype(np.uint16)
        order = low[np.argsort(high, kind="stable")]
    else:
        order = np.argsort(sort_keys, kind="stable")
    src = graph.src[order]
    dst = graph.dst[order]
    weights = None if graph.weights is None else graph.weights[order]
    indptr = np.zeros(graph.num_vertices + 1, dtype=np.int64)
    counts = np.bincount(src, minlength=graph.num_vertices)
    np.cumsum(counts, out=indptr[1:])
    entry = (indptr, src, dst, weights)
    _CSR_MEMO[key] = entry
    while len(_CSR_MEMO) > _CSR_MEMO_CAPACITY:
        _CSR_MEMO.popitem(last=False)
    return entry


def run_vertex_centric(
    algorithm: EdgeCentricAlgorithm, graph: Graph
) -> VertexCentricRun:
    """Execute vertex-centrically: scan active vertices, push out-edges."""
    streamed = transform_cached(algorithm, graph)
    indptr, src, dst, weights = _csr(streamed)
    values = algorithm.initial_values(streamed)

    # Initially-active vertices: point-initialised algorithms start from
    # their single seed; everything else starts fully active.
    if (not algorithm.supports_frontier
            or algorithm.initial_active(streamed) >= streamed.num_vertices):
        active = np.ones(streamed.num_vertices, dtype=bool)
    else:
        uniques, inverse = np.unique(values, return_inverse=True)
        bulk = np.bincount(inverse).argmax()
        active = values != uniques[bulk]

    edges_examined = 0
    vertices_scanned = 0
    iterations = 0
    num_vertices = streamed.num_vertices
    while True:
        acc = algorithm.iteration_start(values, streamed)
        if bool(active.all()):
            # Full frontier: the range expansion would select every edge
            # in CSR order, so skip the selection and gathers entirely
            # and pass the memoised arrays through (bit-identical —
            # ``sel`` would be ``arange(num_edges)``).
            vertices_scanned += num_vertices
            edges_examined += int(src.size)
            if src.size:
                algorithm.process_edges(
                    values, acc, src, dst, weights, streamed
                )
        else:
            active_ids = np.nonzero(active)[0]
            vertices_scanned += int(active_ids.size)
            # Gather the out-edges of the active vertices (random CSR
            # rows).
            if active_ids.size:
                starts = indptr[active_ids]
                ends = indptr[active_ids + 1]
                lengths = ends - starts
                sel = _expand_ranges(starts, lengths)
            else:
                sel = np.empty(0, dtype=np.int64)
            edges_examined += int(sel.size)
            if sel.size:
                w = None if weights is None else weights[sel]
                algorithm.process_edges(
                    values, acc, src[sel], dst[sel], w, streamed
                )
        result = algorithm.iteration_end(values, acc, streamed, iterations)
        if algorithm.supports_frontier:
            active = _changed(values, result.values)
        else:
            # Accumulating algorithms rebuild every destination from
            # zero: an "unchanged" source still owes its contribution
            # (a graph at its fixpoint — e.g. PR on a symmetric cycle —
            # would otherwise lose all rank mass next sweep).
            active = np.ones(streamed.num_vertices, dtype=bool)
        values = result.values
        iterations += 1
        if result.converged:
            break
        if iterations > algorithm.max_iterations:
            raise ConvergenceError(
                f"{algorithm.name} exceeded {algorithm.max_iterations} sweeps"
            )

    obs_metrics.get_metrics().counter(
        obs_metrics.EXECUTOR_VECTORIZED_EDGES
    ).add(edges_examined)
    run = AlgorithmRun(
        algorithm=algorithm.name,
        graph_name=streamed.name,
        values=values,
        iterations=iterations,
        num_vertices=streamed.num_vertices,
        edges_per_iteration=streamed.num_edges,
        vertex_bits=algorithm.vertex_bits,
        edge_bits=algorithm.edge_bits,
    )
    return VertexCentricRun(
        run=run,
        edges_examined=edges_examined,
        vertices_scanned=vertices_scanned,
    )


def run_vertex_centric_cached(
    algorithm: EdgeCentricAlgorithm, graph: Graph
) -> VertexCentricRun:
    """:func:`run_vertex_centric` through the persistent run cache."""
    from ..perf.cache import get_run_cache

    return get_run_cache().get_or_run_vertex_centric(algorithm, graph)


def _expand_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate [start, start+length) ranges without a Python loop."""
    keep = lengths > 0
    starts = starts[keep]
    lengths = lengths[keep]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Classic vectorised range expansion: ones everywhere, with a jump
    # at each range boundary from the previous range's end to the next
    # range's start.
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if starts.size > 1:
        boundaries = np.cumsum(lengths[:-1])
        prev_end = starts[:-1] + lengths[:-1]
        out[boundaries] = starts[1:] - prev_end + 1
    return np.cumsum(out)


def _changed(prev: np.ndarray, new: np.ndarray) -> np.ndarray:
    if prev.dtype.kind == "f" or new.dtype.kind == "f":
        with np.errstate(invalid="ignore"):
            same = np.isclose(prev, new, rtol=0.0, atol=0.0, equal_nan=True)
        return ~same
    return prev != new
