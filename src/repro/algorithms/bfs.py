"""Breadth-first search in the edge-centric model.

Levels propagate synchronously: iteration k settles every vertex at
distance k from the root.  The machine streams *all* edges each
iteration (the paper applies no BFS-specific frontier optimisation:
"we do not apply a specific design for certain graph algorithms"), so
the iteration count — the BFS depth — is what the trace reports.

Unreached vertices keep the sentinel :data:`UNREACHED`.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from ..graph.graph import Graph
from .base import EdgeCentricAlgorithm, IterationResult, scatter_min

#: Level assigned to vertices the search never reaches.
UNREACHED = np.iinfo(np.int64).max


class BFS(EdgeCentricAlgorithm):
    """Single-source BFS producing hop distances."""

    name = "BFS"
    vertex_bits = 32

    def __init__(self, root: int = 0) -> None:
        if root < 0:
            raise ValueError(f"root must be a valid vertex id, got {root}")
        self.root = root

    def initial_values(self, graph: Graph) -> np.ndarray:
        if graph.num_vertices == 0:
            raise GraphError("BFS needs at least one vertex")
        if self.root >= graph.num_vertices:
            raise GraphError(
                f"root {self.root} not in graph of {graph.num_vertices} "
                "vertices"
            )
        levels = np.full(graph.num_vertices, UNREACHED, dtype=np.int64)
        levels[self.root] = 0
        return levels

    def initial_active(self, graph: Graph) -> int:
        return 1  # only the root/source can propagate initially

    def process_edges(self, prev, acc, src, dst, weights, graph) -> None:
        reached = prev[src] != UNREACHED
        if not reached.any():
            return
        candidate = prev[src[reached]] + 1
        scatter_min(acc, dst[reached], candidate)

    def iteration_end(self, prev, acc, graph, iteration) -> IterationResult:
        changed = int(np.count_nonzero(acc != prev))
        self.check_iteration_budget(iteration)
        return IterationResult(
            values=acc, converged=changed == 0, active_vertices=changed
        )
