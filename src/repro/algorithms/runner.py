"""Edge-centric executor: actually runs algorithms and yields the trace.

Two execution strategies produce bit-identical results (a property the
tests verify):

* :func:`run_vectorized` — one whole-graph pass per iteration; fastest,
  used to obtain results and iteration counts.
* :func:`run_blocked` — walks blocks in the exact super-block order of
  Algorithm 2 (including round-robin data sharing across PUs); used to
  validate that the schedule computes the same answer and to honour the
  synchronous semantics the architecture relies on.

The *trace* the architecture model consumes is deliberately small: the
iteration count and per-iteration edge activity — every other access
count follows analytically from the schedule (Equations (3), (4), (7),
(8)) and is derived in :mod:`repro.arch.scheduler`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from ..graph.graph import Graph
from ..graph.partition import IntervalBlockPartition
from ..obs import metrics as obs_metrics
from ..obs.trace import get_tracer
from .base import EdgeCentricAlgorithm


@dataclass(frozen=True)
class AlgorithmRun:
    """Result of executing an algorithm to convergence.

    Attributes:
        algorithm: name of the algorithm.
        graph_name: name of the *streamed* graph (post transform).
        values: final per-vertex values.
        iterations: number of full edge sweeps executed.
        num_vertices: vertices of the streamed graph.
        edges_per_iteration: edges streamed per sweep (all of them; the
            paper applies no frontier optimisation).
        vertex_bits: serialised vertex width (from the algorithm).
        edge_bits: serialised edge width (64, or 96 with weights).
    """

    algorithm: str
    graph_name: str
    values: np.ndarray
    iterations: int
    num_vertices: int
    edges_per_iteration: int
    vertex_bits: int
    edge_bits: int
    #: Vertices whose value changed *entering* each iteration (the
    #: sources the scheduler must have on-chip); length == iterations.
    active_sources: tuple[int, ...] = ()

    @property
    def total_edges(self) -> int:
        """Total edges traversed across all iterations."""
        return self.iterations * self.edges_per_iteration


def run_vectorized(
    algorithm: EdgeCentricAlgorithm, graph: Graph
) -> AlgorithmRun:
    """Execute with one whole-graph edge pass per iteration."""
    tracer = get_tracer()
    with tracer.span("preprocess", executor="vectorized", graph=graph.name):
        streamed = algorithm.transform_graph(graph)
    values = algorithm.initial_values(streamed)
    active = algorithm.initial_active(streamed)
    active_sources: list[int] = []
    iterations = 0
    with tracer.span(
        "converge",
        executor="vectorized",
        algorithm=algorithm.name,
        graph=streamed.name,
    ):
        while True:
            active_sources.append(active)
            acc = algorithm.iteration_start(values, streamed)
            algorithm.process_edges(
                values, acc, streamed.src, streamed.dst, streamed.weights,
                streamed,
            )
            with tracer.span("apply", iteration=iterations):
                result = algorithm.iteration_end(
                    values, acc, streamed, iterations
                )
            values = result.values
            active = result.active_vertices
            iterations += 1
            if result.converged:
                break
            if iterations > algorithm.max_iterations:
                raise ConvergenceError(
                    f"{algorithm.name} exceeded "
                    f"{algorithm.max_iterations} sweeps"
                )
    metrics = obs_metrics.get_metrics()
    metrics.counter(obs_metrics.EXECUTOR_EDGES).add(
        iterations * streamed.num_edges
    )
    metrics.histogram(obs_metrics.CONVERGENCE_ITERATIONS).observe(iterations)
    return AlgorithmRun(
        algorithm=algorithm.name,
        graph_name=streamed.name,
        values=values,
        iterations=iterations,
        num_vertices=streamed.num_vertices,
        edges_per_iteration=streamed.num_edges,
        vertex_bits=algorithm.vertex_bits,
        edge_bits=algorithm.edge_bits,
        active_sources=tuple(active_sources),
    )


def run_blocked(
    algorithm: EdgeCentricAlgorithm,
    graph: Graph,
    num_intervals: int,
    num_pus: int = 1,
) -> AlgorithmRun:
    """Execute in the block-major super-block order of Algorithm 2.

    Super blocks are scanned column-major (``y`` outer, ``x`` inner, as
    in Algorithm 2).  Edges are permuted once into block-major order
    (the partition's :attr:`streamed_edges`, mirroring the one-shot
    Section 3.4 preprocessing), so every dispatch below consumes a
    *contiguous slice* of the permuted arrays — no per-block gather.
    Within a super block the N blocks sharing a source interval are
    adjacent, so a whole super block dispatches to ``process_edges`` in
    at most N fused calls (one per source-interval row) instead of N^2.

    The round-robin step structure of Algorithm 2 only affects *when* a
    block is processed, never the answer: updates read
    previous-iteration source values only, so any order within an
    iteration computes the same result as :func:`run_vectorized`.
    """
    tracer = get_tracer()
    with tracer.span("preprocess", executor="blocked", graph=graph.name,
                     num_intervals=num_intervals):
        streamed = algorithm.transform_graph(graph)
        partition = IntervalBlockPartition.cached(streamed, num_intervals)
        q = num_intervals // num_pus
        partition.num_super_blocks(num_pus)  # validates divisibility
        bm_src, bm_dst, bm_weights = partition.streamed_edges

    values = algorithm.initial_values(streamed)
    active = algorithm.initial_active(streamed)
    active_sources: list[int] = []
    iterations = 0
    while True:
        active_sources.append(active)
        acc = algorithm.iteration_start(values, streamed)
        traced = tracer.enabled
        for y in range(q):
            j_start = y * num_pus
            j_stop = j_start + num_pus
            row_span = (
                tracer.span("superblock_row", iteration=iterations, y=y)
                if traced else None
            )
            if row_span is not None:
                row_span.__enter__()
            try:
                for x in range(q):
                    for i in range(x * num_pus, (x + 1) * num_pus):
                        sel = partition.block_row_slice(i, j_start, j_stop)
                        if sel.start == sel.stop:
                            continue
                        if traced:
                            with tracer.span("block_dispatch", row=i,
                                             j_start=j_start, j_stop=j_stop,
                                             edges=sel.stop - sel.start):
                                algorithm.process_edges(
                                    values, acc, bm_src[sel], bm_dst[sel],
                                    None if bm_weights is None
                                    else bm_weights[sel],
                                    streamed,
                                )
                        else:
                            algorithm.process_edges(
                                values,
                                acc,
                                bm_src[sel],
                                bm_dst[sel],
                                None if bm_weights is None
                                else bm_weights[sel],
                                streamed,
                            )
            finally:
                if row_span is not None:
                    row_span.__exit__(None, None, None)
        with tracer.span("apply", iteration=iterations):
            result = algorithm.iteration_end(values, acc, streamed,
                                             iterations)
        values = result.values
        active = result.active_vertices
        iterations += 1
        if result.converged:
            break
        if iterations > algorithm.max_iterations:
            raise ConvergenceError(
                f"{algorithm.name} exceeded {algorithm.max_iterations} sweeps"
            )
    metrics = obs_metrics.get_metrics()
    metrics.counter(obs_metrics.EXECUTOR_EDGES).add(
        iterations * streamed.num_edges
    )
    metrics.histogram(obs_metrics.CONVERGENCE_ITERATIONS).observe(iterations)
    return AlgorithmRun(
        algorithm=algorithm.name,
        graph_name=streamed.name,
        values=values,
        iterations=iterations,
        num_vertices=streamed.num_vertices,
        edges_per_iteration=streamed.num_edges,
        vertex_bits=algorithm.vertex_bits,
        edge_bits=algorithm.edge_bits,
        active_sources=tuple(active_sources),
    )


# --- streamed-transform memo ------------------------------------------------

#: Streamed (post-``transform_graph``) graphs, keyed on
#: ``(graph.fingerprint(), algorithm.signature())``.  CC symmetrises and
#: SSSP/SpMV attach weights on every call; memoising the result means
#: repeated runs (and the GraphR shape statistics) reuse one object —
#: and therefore one memoised fingerprint — instead of rebuilding and
#: re-hashing O(E) arrays each time.
_TRANSFORM_MEMO: "OrderedDict[tuple[str, str], Graph]" = OrderedDict()
_TRANSFORM_MEMO_CAPACITY = 64


def transform_cached(
    algorithm: EdgeCentricAlgorithm, graph: Graph
) -> Graph:
    """Memoised ``algorithm.transform_graph(graph)``."""
    key = (graph.fingerprint(), algorithm.signature())
    streamed = _TRANSFORM_MEMO.get(key)
    if streamed is not None:
        _TRANSFORM_MEMO.move_to_end(key)
        return streamed
    streamed = algorithm.transform_graph(graph)
    _TRANSFORM_MEMO[key] = streamed
    while len(_TRANSFORM_MEMO) > _TRANSFORM_MEMO_CAPACITY:
        _TRANSFORM_MEMO.popitem(last=False)
    return streamed


# --- run cache -------------------------------------------------------------


def run_cached(
    algorithm: EdgeCentricAlgorithm, graph: Graph
) -> AlgorithmRun:
    """Vectorised run memoised on (graph content, algorithm signature).

    The benchmarks evaluate dozens of machine configurations against the
    same (graph, algorithm) pairs; the algorithm result and iteration
    count are configuration-independent, so they are computed once.

    Keyed on :meth:`Graph.fingerprint` — a content digest — rather than
    ``id(graph)``: object ids are recycled after garbage collection, so
    an address-based key can serve a stale run for a *different* graph
    that happens to reuse the same address (and misses needlessly for
    equal graphs loaded twice).

    Backed by :class:`repro.perf.cache.RunCache`: a bounded in-memory
    LRU in front of an on-disk store, so fresh processes (the CLI,
    benchmarks, parallel sweep workers) skip re-convergence entirely.

    Also accepts a :class:`repro.perf.shm.SharedGraphRef`: pool
    workers can pass the shared-memory handle straight through and the
    attached graph (same fingerprint, so same cache key) is used.
    """
    from ..perf.cache import get_run_cache
    from ..perf.shm import resolve_graph

    return get_run_cache().get_or_run(algorithm, resolve_graph(graph))


def clear_run_cache() -> None:
    """Drop the in-memory run cache (the on-disk store is kept; use
    :meth:`repro.perf.cache.RunCache.clear` to wipe both)."""
    from ..perf.cache import get_run_cache

    get_run_cache().clear(disk=False)


def _signature(algorithm: EdgeCentricAlgorithm) -> str:
    """Algorithm cache key; see :meth:`EdgeCentricAlgorithm.signature`.

    Historical note: this used to hash a hardcoded attribute list
    (``damping``, ``tolerance``, ...), silently colliding for any
    algorithm with a differently named — or underscore-prefixed —
    parameter (SpMV's input vector).  The signature is now derived from
    the instance state itself.
    """
    return algorithm.signature()
