"""Edge-centric executor: actually runs algorithms and yields the trace.

Two execution strategies produce bit-identical results (a property the
tests verify):

* :func:`run_vectorized` — one whole-graph pass per iteration; fastest,
  used to obtain results and iteration counts.
* :func:`run_blocked` — walks blocks in the exact super-block order of
  Algorithm 2 (including round-robin data sharing across PUs); used to
  validate that the schedule computes the same answer and to honour the
  synchronous semantics the architecture relies on.

The *trace* the architecture model consumes is deliberately small: the
iteration count and per-iteration edge activity — every other access
count follows analytically from the schedule (Equations (3), (4), (7),
(8)) and is derived in :mod:`repro.arch.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError
from ..graph.graph import Graph
from ..graph.partition import IntervalBlockPartition
from .base import EdgeCentricAlgorithm


@dataclass(frozen=True)
class AlgorithmRun:
    """Result of executing an algorithm to convergence.

    Attributes:
        algorithm: name of the algorithm.
        graph_name: name of the *streamed* graph (post transform).
        values: final per-vertex values.
        iterations: number of full edge sweeps executed.
        num_vertices: vertices of the streamed graph.
        edges_per_iteration: edges streamed per sweep (all of them; the
            paper applies no frontier optimisation).
        vertex_bits: serialised vertex width (from the algorithm).
        edge_bits: serialised edge width (64, or 96 with weights).
    """

    algorithm: str
    graph_name: str
    values: np.ndarray
    iterations: int
    num_vertices: int
    edges_per_iteration: int
    vertex_bits: int
    edge_bits: int
    #: Vertices whose value changed *entering* each iteration (the
    #: sources the scheduler must have on-chip); length == iterations.
    active_sources: tuple[int, ...] = ()

    @property
    def total_edges(self) -> int:
        """Total edges traversed across all iterations."""
        return self.iterations * self.edges_per_iteration


def run_vectorized(
    algorithm: EdgeCentricAlgorithm, graph: Graph
) -> AlgorithmRun:
    """Execute with one whole-graph edge pass per iteration."""
    streamed = algorithm.transform_graph(graph)
    values = algorithm.initial_values(streamed)
    active = algorithm.initial_active(streamed)
    active_sources: list[int] = []
    iterations = 0
    while True:
        active_sources.append(active)
        acc = algorithm.iteration_start(values, streamed)
        algorithm.process_edges(
            values, acc, streamed.src, streamed.dst, streamed.weights, streamed
        )
        result = algorithm.iteration_end(values, acc, streamed, iterations)
        values = result.values
        active = result.active_vertices
        iterations += 1
        if result.converged:
            break
        if iterations > algorithm.max_iterations:
            raise ConvergenceError(
                f"{algorithm.name} exceeded {algorithm.max_iterations} sweeps"
            )
    return AlgorithmRun(
        algorithm=algorithm.name,
        graph_name=streamed.name,
        values=values,
        iterations=iterations,
        num_vertices=streamed.num_vertices,
        edges_per_iteration=streamed.num_edges,
        vertex_bits=algorithm.vertex_bits,
        edge_bits=algorithm.edge_bits,
        active_sources=tuple(active_sources),
    )


def run_blocked(
    algorithm: EdgeCentricAlgorithm,
    graph: Graph,
    num_intervals: int,
    num_pus: int = 1,
) -> AlgorithmRun:
    """Execute in the exact block order of Algorithm 2.

    Super blocks are scanned column-major (``y`` outer, ``x`` inner, as
    in Algorithm 2); within a super block the N PUs process blocks in
    round-robin steps.  Because updates read previous-iteration source
    values only, the result matches :func:`run_vectorized` exactly.
    """
    streamed = algorithm.transform_graph(graph)
    partition = IntervalBlockPartition.build(streamed, num_intervals)
    q = num_intervals // num_pus
    partition.num_super_blocks(num_pus)  # validates divisibility

    values = algorithm.initial_values(streamed)
    active = algorithm.initial_active(streamed)
    active_sources: list[int] = []
    iterations = 0
    while True:
        active_sources.append(active)
        acc = algorithm.iteration_start(values, streamed)
        for y in range(q):
            for x in range(q):
                for step in range(num_pus):
                    for pu in range(num_pus):
                        i = x * num_pus + (pu + step) % num_pus
                        j = y * num_pus + pu
                        idx = partition.block_edge_indices(i, j)
                        if idx.size == 0:
                            continue
                        w = (
                            streamed.weights[idx]
                            if streamed.weights is not None
                            else None
                        )
                        algorithm.process_edges(
                            values,
                            acc,
                            streamed.src[idx],
                            streamed.dst[idx],
                            w,
                            streamed,
                        )
        result = algorithm.iteration_end(values, acc, streamed, iterations)
        values = result.values
        active = result.active_vertices
        iterations += 1
        if result.converged:
            break
        if iterations > algorithm.max_iterations:
            raise ConvergenceError(
                f"{algorithm.name} exceeded {algorithm.max_iterations} sweeps"
            )
    return AlgorithmRun(
        algorithm=algorithm.name,
        graph_name=streamed.name,
        values=values,
        iterations=iterations,
        num_vertices=streamed.num_vertices,
        edges_per_iteration=streamed.num_edges,
        vertex_bits=algorithm.vertex_bits,
        edge_bits=algorithm.edge_bits,
        active_sources=tuple(active_sources),
    )


# --- run cache -------------------------------------------------------------

_RUN_CACHE: dict[tuple[str, str], AlgorithmRun] = {}


def run_cached(
    algorithm: EdgeCentricAlgorithm, graph: Graph
) -> AlgorithmRun:
    """Vectorised run memoised on (graph content, algorithm signature).

    The benchmarks evaluate dozens of machine configurations against the
    same (graph, algorithm) pairs; the algorithm result and iteration
    count are configuration-independent, so they are computed once.

    Keyed on :meth:`Graph.fingerprint` — a content digest — rather than
    ``id(graph)``: object ids are recycled after garbage collection, so
    an address-based key can serve a stale run for a *different* graph
    that happens to reuse the same address (and misses needlessly for
    equal graphs loaded twice).
    """
    key = (graph.fingerprint(), _signature(algorithm))
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = run_vectorized(algorithm, graph)
    return _RUN_CACHE[key]


def clear_run_cache() -> None:
    _RUN_CACHE.clear()


def _signature(algorithm: EdgeCentricAlgorithm) -> str:
    parts = [algorithm.name]
    for attr in ("damping", "iterations", "tolerance", "root", "source",
                 "symmetrize"):
        if hasattr(algorithm, attr):
            parts.append(f"{attr}={getattr(algorithm, attr)}")
    return ",".join(parts)
