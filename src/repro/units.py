"""Physical units and conversions used throughout the HyVE models.

Internally, the simulator works in SI base units:

* time     -> seconds
* energy   -> joules
* power    -> watts
* data     -> bits

Device datasheets and the paper quote values in pJ, ps, ns, mW, Gb, MB,
so this module provides named constants that make calibration tables read
exactly like the paper (``102.07 * PJ``, ``1983 * PS``) and helpers to
convert results back into the units the paper reports (MTEPS/W, mW/bit).
"""

from __future__ import annotations

# --- time -------------------------------------------------------------
PS = 1e-12
NS = 1e-9
US = 1e-6
MS = 1e-3
S = 1.0

# --- energy -----------------------------------------------------------
PJ = 1e-12
NJ = 1e-9
UJ = 1e-6
MJ = 1e-3
J = 1.0

# --- power ------------------------------------------------------------
UW = 1e-6
MW = 1e-3
W = 1.0

# --- data sizes (bits) ------------------------------------------------
BIT = 1
BYTE = 8
KB = 8 * 1024
MB = 8 * 1024 ** 2
GB = 8 * 1024 ** 3
KBIT = 1024
MBIT = 1024 ** 2
GBIT = 1024 ** 3

# --- frequency --------------------------------------------------------
MHZ = 1e6
GHZ = 1e9


def mteps_per_watt(edges: float, time_s: float, energy_j: float) -> float:
    """Energy efficiency in million traversed edges per second per watt.

    This is the headline metric of the paper (Figs. 13, 16 and Table 4).
    MTEPS/W simplifies to (edges / energy) / 1e6 because the time term
    cancels: ``(edges/time/1e6) / (energy/time)``.

    Args:
        edges: number of edges traversed during the run.
        time_s: execution time in seconds (kept for interface symmetry;
            the metric is time-invariant but a non-positive time signals
            a malformed report).
        energy_j: total energy in joules.

    Returns:
        Efficiency in MTEPS/W.
    """
    if time_s <= 0.0:
        raise ValueError(f"execution time must be positive, got {time_s}")
    if energy_j <= 0.0:
        raise ValueError(f"energy must be positive, got {energy_j}")
    return (edges / energy_j) / 1e6


def edp(time_s: float, energy_j: float) -> float:
    """Energy-delay product in joule-seconds (Equation (5) of the paper)."""
    return time_s * energy_j


def bits_to_mb(bits: float) -> float:
    """Convert a bit count into mebibytes (for human-readable reports)."""
    return bits / MB


def format_si(value: float, unit: str) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(1.2e-9, 'J')``.

    Picks the largest prefix that keeps the mantissa >= 1.  Values of
    exactly zero are rendered without a prefix.
    """
    prefixes = [
        (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
        (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
    ]
    if value == 0.0:
        return f"0 {unit}"
    magnitude = abs(value)
    for scale, prefix in prefixes:
        if magnitude >= scale:
            return f"{value / scale:.4g} {prefix}{unit}"
    scale, prefix = prefixes[-1]
    return f"{value / scale:.4g} {prefix}{unit}"
