"""Shared-memory graph handoff for process-pool fan-out.

Pickling a :class:`~repro.graph.graph.Graph` into every pool task
serialises its edge arrays once *per task* — the reason ``--jobs 4``
used to lose to serial execution.  This module publishes a graph's
arrays into named ``multiprocessing.shared_memory`` segments exactly
once and hands workers a tiny picklable :class:`SharedGraphRef`;
workers attach to the segments (zero-copy) and memoise the attached
graph per fingerprint, so a 100-point sweep ships ~100 bytes per task
instead of ~100 copies of the edge list.

Ownership and lifecycle (see docs/performance.md):

* The *publishing* process owns the segments.  ``share_graph`` keys
  them by :meth:`Graph.fingerprint`, so re-publishing the same graph —
  including after a supervised pool respawn
  (:mod:`repro.arch.sweep`) — reuses the live segments instead of
  leaking new ones.
* Workers only ever *attach*; an attached graph holds its segments
  open for the worker's lifetime (the arrays view the mapped buffers
  directly).  A worker dying mid-task cannot corrupt or free a
  segment: the kernel releases its mapping and the owner's segments
  survive for the respawned pool.
* ``release_graph`` / ``release_all`` close **and unlink** owned
  segments; ``release_all`` also runs via ``atexit`` in the owner, so
  a normal interpreter exit never leaks ``/dev/shm`` entries.
* Everything degrades gracefully: if shared memory is unavailable or
  creation fails (``/dev/shm`` full, exotic platforms),
  ``share_graph`` returns ``None`` and callers fall back to pickling
  the graph itself — behaviour, results, and supervision semantics
  are identical either way.
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass

import numpy as np

from ..graph.graph import VERTEX_DTYPE, Graph
from ..graph.shards import ShardedGraphRef, attach_sharded_graph
from ..obs import metrics as obs_metrics
from ..obs.trace import get_tracer

try:  # pragma: no cover - stdlib, but gate for exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


@dataclass(frozen=True)
class SharedGraphRef:
    """Picklable handle to a graph published in shared memory.

    Carries segment names plus the metadata needed to rebuild the
    :class:`Graph` on the attaching side without copying: workers map
    the segments and wrap them in (read-only) numpy views.
    """

    fingerprint: str
    graph_name: str
    num_vertices: int
    num_edges: int
    src_segment: str
    dst_segment: str
    weights_segment: str | None


#: Owner-side registry: fingerprint -> (ref, live segments).
_OWNED: dict[str, tuple[SharedGraphRef, list]] = {}

#: Worker-side memo: fingerprint -> (attached Graph, live segments).
#: Keeping the SharedMemory objects referenced pins the buffers the
#: numpy views alias.
_ATTACHED: dict[str, tuple[Graph, list]] = {}

_ATEXIT_REGISTERED = False


def shared_memory_available() -> bool:
    """Whether this platform can publish shared-memory segments."""
    return _shared_memory is not None


def _segment_of(array: np.ndarray, name_hint: str):
    """Copy ``array`` into a fresh shared-memory segment."""
    seg = _shared_memory.SharedMemory(
        create=True, size=max(array.nbytes, 1), name=name_hint
    )
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
    view[:] = array
    return seg


def share_graph(graph: Graph) -> "SharedGraphRef | ShardedGraphRef | None":
    """Publish ``graph``'s arrays into shared memory (idempotent).

    Returns a picklable :class:`SharedGraphRef`, or ``None`` when
    shared memory is unavailable or segment creation fails — the
    caller then ships the graph by pickle as before.  Re-sharing a
    graph with the same fingerprint returns the existing ref.

    A graph backed by an on-disk shard store
    (:meth:`repro.graph.shards.ShardStore.as_graph`) is handed off as a
    :class:`~repro.graph.shards.ShardedGraphRef` instead — the store's
    files are already a shared mappable medium, so no segments are
    created and nothing has to fit in ``/dev/shm``.
    """
    global _ATEXIT_REGISTERED
    manifest = getattr(graph, "_shard_manifest", None)
    if manifest is not None:
        # Shard-backed graphs already live on disk in a mappable form;
        # workers memory-map the same files instead of a /dev/shm copy
        # (which a paper-scale edge list would not fit in anyway).
        return ShardedGraphRef(
            directory=manifest,
            fingerprint=graph.fingerprint(),
            graph_name=graph.name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        )
    if _shared_memory is None:
        return None
    fingerprint = graph.fingerprint()
    owned = _OWNED.get(fingerprint)
    if owned is not None:
        return owned[0]
    base = f"repro-{fingerprint[:16]}-{os.getpid()}"
    segments: list = []
    try:
        src_seg = _segment_of(graph.src, f"{base}-s")
        segments.append(src_seg)
        dst_seg = _segment_of(graph.dst, f"{base}-d")
        segments.append(dst_seg)
        weights_seg = None
        if graph.weights is not None:
            weights_seg = _segment_of(graph.weights, f"{base}-w")
            segments.append(weights_seg)
    except (OSError, ValueError, FileExistsError):
        for seg in segments:
            try:
                seg.close()
                seg.unlink()
            except OSError:  # pragma: no cover - best effort
                pass
        return None
    ref = SharedGraphRef(
        fingerprint=fingerprint,
        graph_name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        src_segment=src_seg.name,
        dst_segment=dst_seg.name,
        weights_segment=None if weights_seg is None else weights_seg.name,
    )
    _OWNED[fingerprint] = (ref, segments)
    if not _ATEXIT_REGISTERED:
        atexit.register(release_all)
        _ATEXIT_REGISTERED = True
    return ref


def _attach_array(segment_name: str, count: int, dtype) -> tuple:
    seg = _shared_memory.SharedMemory(name=segment_name)
    array = np.ndarray((count,), dtype=dtype, buffer=seg.buf)
    array.flags.writeable = False
    return array, seg


def attach_graph(ref: SharedGraphRef) -> Graph:
    """Attach to a published graph (memoised per fingerprint).

    The returned graph's arrays are read-only views over the shared
    segments — no copy is made.  Safe in the owning process too (a
    serial fallback after repeated pool failures simply maps its own
    segments a second time).
    """
    memo = _ATTACHED.get(ref.fingerprint)
    if memo is not None:
        return memo[0]
    with get_tracer().span("shm.attach", fingerprint=ref.fingerprint[:16],
                           edges=ref.num_edges):
        src, src_seg = _attach_array(
            ref.src_segment, ref.num_edges, VERTEX_DTYPE
        )
        dst, dst_seg = _attach_array(
            ref.dst_segment, ref.num_edges, VERTEX_DTYPE
        )
        segments = [src_seg, dst_seg]
        weights = None
        if ref.weights_segment is not None:
            weights, w_seg = _attach_array(
                ref.weights_segment, ref.num_edges, np.float64
            )
            segments.append(w_seg)
        graph = Graph(ref.num_vertices, src, dst, weights,
                      name=ref.graph_name)
    obs_metrics.get_metrics().counter(
        obs_metrics.SHM_GRAPHS_ATTACHED
    ).add()
    _ATTACHED[ref.fingerprint] = (graph, segments)
    return graph


def resolve_graph(obj: "SharedGraphRef | ShardedGraphRef | Graph") -> Graph:
    """Worker-side: turn a task payload back into a :class:`Graph`.

    Accepts a :class:`SharedGraphRef` (the shared-memory path), a
    :class:`~repro.graph.shards.ShardedGraphRef` (the on-disk
    memory-mapped path), or a plain :class:`Graph` (the pickling
    fallback), so dispatch sites can pass whatever ``share_graph``
    gave them.
    """
    if isinstance(obj, SharedGraphRef):
        return attach_graph(obj)
    if isinstance(obj, ShardedGraphRef):
        return attach_sharded_graph(obj)
    return obj


@dataclass(frozen=True)
class SharedWorkloadRef:
    """Picklable handle to a workload whose graph lives out of band —
    in shared memory (:class:`SharedGraphRef`) or in an on-disk shard
    store (:class:`~repro.graph.shards.ShardedGraphRef`)."""

    graph_ref: "SharedGraphRef | ShardedGraphRef"
    reported_vertices: int | None
    reported_edges: int | None


def share_workload(workload) -> "SharedWorkloadRef | object":
    """Publish a workload's graph; fall back to the workload itself.

    Returns a tiny :class:`SharedWorkloadRef` when the graph could be
    published, or ``workload`` unchanged when shared memory is
    unavailable — dispatch sites ship the return value either way and
    workers call :func:`resolve_workload` on it.
    """
    ref = share_graph(workload.graph)
    if ref is None:
        return workload
    return SharedWorkloadRef(
        graph_ref=ref,
        reported_vertices=workload.reported_vertices,
        reported_edges=workload.reported_edges,
    )


def resolve_workload(obj):
    """Worker-side: rebuild a Workload from a task payload."""
    if isinstance(obj, SharedWorkloadRef):
        from ..arch.config import Workload

        return Workload(
            graph=resolve_graph(obj.graph_ref),
            reported_vertices=obj.reported_vertices,
            reported_edges=obj.reported_edges,
        )
    return obj


def release_graph(fingerprint: str) -> bool:
    """Close and unlink one owned graph's segments; True if it existed.

    Also drops any local attach memo for the fingerprint (the owner
    may have attached through :func:`resolve_graph` during a serial
    fallback).
    """
    detached = _ATTACHED.pop(fingerprint, None)
    if detached is not None:
        _, segments = detached
        for seg in segments:
            try:
                seg.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
    owned = _OWNED.pop(fingerprint, None)
    if owned is None:
        return detached is not None
    _, segments = owned
    for seg in segments:
        try:
            seg.close()
            seg.unlink()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass
    return True


def release_all() -> None:
    """Release every owned segment and drop all attach memos."""
    for fingerprint in list(_ATTACHED) + list(_OWNED):
        release_graph(fingerprint)


def owned_fingerprints() -> list[str]:
    """Fingerprints currently published by this process (tests)."""
    return sorted(_OWNED)
