"""Wall-clock timing harness for the experiment drivers.

Records per-experiment and total wall-clock (plus run-cache statistics)
into a JSON payload, written as ``BENCH_<n>.json`` at the repo root so
each PR leaves a perf trajectory the next one can regress against::

    PYTHONPATH=src python tools/bench.py --output BENCH_2.json
    PYTHONPATH=src python tools/bench.py --jobs 4 --experiments fig20 fig21

Timing is wall-clock (``time.perf_counter``), not CPU time: the point
is the end-to-end latency an operator experiences, including process
fan-out and cache I/O.
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Sequence

#: Schema version of the BENCH_*.json payload.
BENCH_SCHEMA = 1


def _timed_experiment_worker(name: str) -> tuple[str, float]:
    """Run one experiment driver in this (possibly worker) process.

    Returns ``(name, seconds)``; the table itself is discarded — the
    harness times, it does not collect results.
    """
    from ..experiments import ALL_EXPERIMENTS

    start = time.perf_counter()
    ALL_EXPERIMENTS[name]()
    return name, time.perf_counter() - start


def bench_experiments(
    names: Sequence[str] | None = None,
    jobs: int = 1,
) -> dict:
    """Time experiment drivers; returns the BENCH payload dict.

    With ``jobs > 1`` the drivers fan out over a process pool (the same
    machinery as ``run_all(jobs=...)``); per-experiment times are then
    measured inside each worker, and ``total_s`` is the end-to-end
    wall-clock including the fan-out overhead.
    """
    from ..experiments import ALL_EXPERIMENTS
    from .cache import get_run_cache

    chosen = list(names) if names else list(ALL_EXPERIMENTS)
    unknown = [n for n in chosen if n not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment(s): {', '.join(unknown)}")

    per_experiment: dict[str, float] = {}
    start = time.perf_counter()
    if jobs <= 1:
        for name in chosen:
            _, seconds = _timed_experiment_worker(name)
            per_experiment[name] = seconds
    else:
        import concurrent.futures

        from ..experiments.common import attach_workloads, share_workloads

        # Same parent prewarm + shared-memory publish as
        # run_selected(jobs=...): forked workers inherit the datasets,
        # other start methods attach the shared segments.
        manifest = share_workloads()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(chosen)),
            initializer=attach_workloads, initargs=(manifest,),
        ) as pool:
            futures = {
                name: pool.submit(_timed_experiment_worker, name)
                for name in chosen
            }
            for name in chosen:
                _, seconds = futures[name].result()
                per_experiment[name] = seconds
    total = time.perf_counter() - start

    return {
        "schema": BENCH_SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "experiments": per_experiment,
        "total_s": total,
        "cache": get_run_cache().info(),
    }


def bench_sweep_scenario(
    densities_gbit: Sequence[int] = (4, 8, 16, 32),
    timeouts_us: Sequence[float] = (0.1, 0.2, 0.5, 1.0, 5.0, 20.0,
                                    50.0, 100.0),
    repeats: int = 5,
) -> dict:
    """Time a density x BPG-timeout grid: serial pricing vs batch.

    The grid (default 4 x 8 = 32 points) sweeps pure pricing knobs, so
    every point shares one schedule-counts expansion.  Three timed
    passes over identical points:

    * ``serial_s`` — the pre-batching per-point pipeline: one
      ``ScheduleCounts.compute`` plus one scalar fold per point.
    * ``batch_cold_s`` — :func:`repro.perf.batch.run_grid` with empty
      counts/device memos (first batched evaluation in a process).
    * ``batch_warm_s`` — the same call again, memos warm.

    The convergence itself is untimed setup shared by all passes
    (simulate once is the premise, not the claim under test); the run
    cache is swapped to a fresh private temporary directory per
    repetition so resident state cannot skew the cold pass.  Each pass
    repeats ``repeats`` times and reports summed wall-clock — the
    individual passes are millisecond-scale, so a single measurement
    would be noise-dominated on shared CI runners.
    """
    import tempfile

    from ..algorithms import PageRank
    from ..algorithms.runner import run_cached
    from ..arch import machine as machine_mod
    from ..arch.config import HyVEConfig, Workload
    from ..arch.machine import AcceleratorMachine
    from ..arch.scheduler import ScheduleCounts
    from ..graph.generators import rmat
    from ..memory.dram import DRAMConfig
    from ..memory.powergate import PowerGatingPolicy
    from ..memory.reram import ReRAMConfig
    from ..units import GBIT, US
    from .batch import run_grid
    from .cache import RunCache, get_run_cache, set_run_cache

    configs = [
        HyVEConfig(
            label=f"d{d}-t{t:g}",
            reram=ReRAMConfig(density_bits=d * GBIT),
            dram=DRAMConfig(density_bits=d * GBIT),
            power_gating=PowerGatingPolicy(idle_timeout=t * US),
        )
        for d in densities_gbit
        for t in timeouts_us
    ]
    graph = rmat(4096, 32768, seed=42, name="bench-sweep")
    workload = Workload(graph, reported_vertices=4_096_000,
                        reported_edges=32_768_000)

    previous = get_run_cache()
    algorithm = PageRank()
    serial_s = batch_cold_s = batch_warm_s = 0.0
    counts_stats: dict = {}
    try:
        for _ in range(max(repeats, 1)):
            scratch = tempfile.mkdtemp(prefix="repro-bench-sweep-")
            set_run_cache(RunCache(directory=scratch))
            run = run_cached(algorithm, workload.graph)  # untimed setup

            start = time.perf_counter()
            for config in configs:
                machine = AcceleratorMachine(config)
                counts = ScheduleCounts.compute(run, workload, config)
                machine._fold(run, counts, workload)
            serial_s += time.perf_counter() - start

            machine_mod._DEVICE_MEMO.clear()
            machine_mod._SRAM_MEMO.clear()
            start = time.perf_counter()
            run_grid(algorithm, workload, configs)
            batch_cold_s += time.perf_counter() - start

            start = time.perf_counter()
            run_grid(algorithm, workload, configs)
            batch_warm_s += time.perf_counter() - start

            counts_stats = get_run_cache().stats.to_dict()
    finally:
        set_run_cache(previous)

    return {
        "schema": BENCH_SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "scenario": "sweep",
        "points": len(configs),
        "repeats": max(repeats, 1),
        "densities_gbit": list(densities_gbit),
        "timeouts_us": list(timeouts_us),
        "serial_s": serial_s,
        "batch_cold_s": batch_cold_s,
        "batch_warm_s": batch_warm_s,
        "speedup_cold": serial_s / batch_cold_s,
        "speedup_warm": serial_s / batch_warm_s,
        "counts_cache": {
            k: v for k, v in counts_stats.items()
            if k.startswith("counts_")
        },
    }


def bench_tune_scenario(repeats: int = 3) -> dict:
    """Autotuner throughput + guided-engine regret.

    Two claims under test (ISSUE 9 acceptance):

    * **Throughput** — the exhaustive engine over a 360-point
      pricing-only space (one counts key) must price >=10^4
      configurations/second once the counts cache is warm.  One cold
      search is untimed setup (it pays convergence + the counts
      expansion); ``repeats`` warm searches are timed end-to-end,
      including Pareto extraction.
    * **Regret** — the guided engine on a small enumerable mixed space
      must have *zero* regret vs exhaustive at full budget (identical
      frontier), and its reduced-budget EDP regret is recorded for
      trend tracking (not gated: halving legitimately trades a little
      quality for budget).
    """
    import tempfile

    from ..algorithms import PageRank
    from ..algorithms.runner import run_cached
    from ..arch import machine as machine_mod
    from ..arch.config import Workload
    from ..graph.generators import rmat
    from ..tune import SearchSpace, exhaustive_search, guided_search
    from .cache import RunCache, get_run_cache, set_run_cache

    pricing_space = SearchSpace.from_axes({
        "region_hit_rate": (0.5, 0.7, 0.85, 0.95, 1.0),
        "density_gbit": (4, 8, 16, 32),
        "bpg_timeout_us": (0.1, 0.5, 1.0, 5.0, 20.0, 100.0),
        "random_access_mlp": (4, 8, 16),
    })  # 5 x 4 x 6 x 3 = 360 configs sharing one counts key
    guided_space = SearchSpace.from_axes({
        "machine": ("acc+HyVE-opt", "acc+DRAM"),
        "num_pus": (4, 8),
        "region_hit_rate": (0.7, 0.85, 1.0),
        "density_gbit": (4, 8),
    })  # 24 configs over 4 counts keys — small enough to enumerate
    graph = rmat(4096, 32768, seed=42, name="bench-tune")
    workload = Workload(graph, reported_vertices=4_096_000,
                        reported_edges=32_768_000)
    algorithm = PageRank()

    previous = get_run_cache()
    repeats = max(repeats, 1)
    warm_s = cold_s = 0.0
    frontier_size = 0
    try:
        scratch = tempfile.mkdtemp(prefix="repro-bench-tune-")
        set_run_cache(RunCache(directory=scratch))
        machine_mod._DEVICE_MEMO.clear()
        machine_mod._SRAM_MEMO.clear()
        run_cached(algorithm, workload.graph)  # untimed convergence

        start = time.perf_counter()
        exhaustive_search(algorithm, workload, pricing_space)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(repeats):
            frontier = exhaustive_search(algorithm, workload,
                                         pricing_space)
            frontier_size = len(frontier)
        warm_s = time.perf_counter() - start
        configs_per_s = pricing_space.size * repeats / warm_s

        exhaustive = exhaustive_search(algorithm, workload, guided_space)
        full = guided_search(algorithm, workload, guided_space,
                             budget=guided_space.size, seed=0)

        def frontier_key(f):
            return [(p.index, p.label, p.time, p.energy, p.edp)
                    for p in f.points]

        def best_edp(f):
            return min(p.edp for p in f.points)

        reduced_budget = max(guided_space.size // 3, 2)
        reduced = guided_search(algorithm, workload, guided_space,
                                budget=reduced_budget, seed=0)
        exact_edp = best_edp(exhaustive)
        guided_payload = {
            "space_size": guided_space.size,
            "full_budget": {
                "evaluated": full.evaluated,
                "frontier_matches_exhaustive":
                    frontier_key(full) == frontier_key(exhaustive),
                "edp_regret": best_edp(full) / exact_edp - 1.0,
            },
            "reduced_budget": {
                "budget": reduced_budget,
                "evaluated": reduced.evaluated,
                "edp_regret": best_edp(reduced) / exact_edp - 1.0,
            },
        }
    finally:
        set_run_cache(previous)

    return {
        "schema": BENCH_SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "scenario": "tune",
        "points": pricing_space.size,
        "repeats": repeats,
        "frontier_size": frontier_size,
        "exhaustive_cold_s": cold_s,
        "exhaustive_warm_s": warm_s,
        "configs_per_s_warm": configs_per_s,
        "guided": guided_payload,
    }


#: The drivers the hot-path scenario times (the PR-7 bottlenecks).
HOTPATH_EXPERIMENTS = ("fig20", "fig21", "ablation_execution_model")


def _clear_hot_memos() -> None:
    """Drop every process-level memo the hot paths consult.

    A "cold" hot-path pass must pay CSR builds, transform caches,
    device pricing, fig20 subsampling and partition construction — the
    costs the memos normally amortise — so clearing them (plus a fresh
    run-cache directory, which the caller swaps in) reproduces a fresh
    process without the interpreter start-up noise.
    """
    from ..algorithms import runner as runner_mod
    from ..algorithms import vertex_centric as vc_mod
    from ..arch import machine as machine_mod
    from ..experiments import fig20 as fig20_mod
    # The package re-exports a ``hash_partition`` *function* that
    # shadows the submodule attribute, so import the module directly.
    from ..graph.hash_partition import (
        _HASH_PARTITION_MEMO,
        _HASHED_GRAPH_MEMO,
    )
    from ..graph import partition as partition_mod
    from ..graph import stats as stats_mod

    vc_mod._CSR_MEMO.clear()
    runner_mod._TRANSFORM_MEMO.clear()
    machine_mod._DEVICE_MEMO.clear()
    machine_mod._SRAM_MEMO.clear()
    fig20_mod._CAPPED_MEMO.clear()
    stats_mod._NONEMPTY_MEMO.clear()
    partition_mod._PARTITION_MEMO.clear()
    _HASH_PARTITION_MEMO.clear()
    _HASHED_GRAPH_MEMO.clear()


def bench_hotpath_scenario(
    num_requests: int = 20_000,
    jobs: int = 2,
    repeats: int = 3,
) -> dict:
    """Time the PR-7 hot paths: fig20, fig21, the executor-model
    ablation (cold and warm), the batched-vs-serial dynamic replay,
    and — on multi-core hosts — a jobs-vs-serial fan-out comparison.

    * ``cold`` / ``warm`` — per-driver serial wall-clock against a
      fresh private run-cache directory with all process memos cleared
      (cold), then the same calls again (warm).
    * ``replay_serial_s`` / ``replay_batched_s`` — one 45/45/5/5
      request stream applied per request (:func:`apply_requests`) and
      in vectorized chunks (:func:`apply_requests_batched`) to fresh
      HyVE + GraphR stores; ``speedup_replay`` is the gated ratio —
      machine-relative, so CI noise cannot flake it.
    * ``parallel`` — the same three drivers serial vs ``jobs`` worker
      processes, both cold; ``skipped`` on single-core hosts where
      fan-out cannot win.
    """
    import tempfile

    from ..dynamic.store import DynamicGraphStore, GraphRDynamicStore
    from ..dynamic.updates import (apply_requests, apply_requests_batched,
                                   generate_requests)
    from ..experiments import ALL_EXPERIMENTS
    from ..graph.generators import rmat
    from .cache import RunCache, get_run_cache, set_run_cache

    previous = get_run_cache()
    cold: dict[str, float] = {}
    warm: dict[str, float] = {}
    try:
        set_run_cache(RunCache(
            directory=tempfile.mkdtemp(prefix="repro-bench-hotpath-")
        ))
        _clear_hot_memos()
        for name in HOTPATH_EXPERIMENTS:
            start = time.perf_counter()
            ALL_EXPERIMENTS[name]()
            cold[name] = time.perf_counter() - start
        for name in HOTPATH_EXPERIMENTS:
            start = time.perf_counter()
            ALL_EXPERIMENTS[name]()
            warm[name] = time.perf_counter() - start
    finally:
        set_run_cache(previous)

    graph = rmat(4096, 100_000, seed=7, name="bench-hotpath")
    requests = generate_requests(graph, num_requests, seed=0)
    # Summed over repeats like the sweep scenario: the individual
    # passes are fast enough to be noise-dominated on shared runners.
    replay_serial = replay_batched = 0.0
    for _ in range(max(repeats, 1)):
        for store_cls in (DynamicGraphStore, GraphRDynamicStore):
            store = store_cls(graph)
            start = time.perf_counter()
            apply_requests(store, requests)
            replay_serial += time.perf_counter() - start
            store = store_cls(graph)
            start = time.perf_counter()
            apply_requests_batched(store, requests)
            replay_batched += time.perf_counter() - start

    cpu = os.cpu_count() or 1
    parallel: dict = {"cpu_count": cpu, "jobs": jobs}
    if cpu >= 2 and jobs >= 2:
        try:
            set_run_cache(RunCache(
                directory=tempfile.mkdtemp(prefix="repro-bench-hp-ser-")
            ))
            _clear_hot_memos()
            start = time.perf_counter()
            for name in HOTPATH_EXPERIMENTS:
                ALL_EXPERIMENTS[name]()
            parallel["serial_s"] = time.perf_counter() - start
            set_run_cache(RunCache(
                directory=tempfile.mkdtemp(prefix="repro-bench-hp-par-")
            ))
            _clear_hot_memos()
            start = time.perf_counter()
            bench_experiments(list(HOTPATH_EXPERIMENTS), jobs=jobs)
            parallel["jobs_s"] = time.perf_counter() - start
        finally:
            set_run_cache(previous)
        parallel["skipped"] = False
        parallel["speedup"] = parallel["serial_s"] / parallel["jobs_s"]
    else:
        parallel["skipped"] = True
        parallel["reason"] = f"cpu_count={cpu} < 2: fan-out cannot win"

    return {
        "schema": BENCH_SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpu,
        "scenario": "hotpath",
        "experiments": list(HOTPATH_EXPERIMENTS),
        "num_requests": num_requests,
        "repeats": max(repeats, 1),
        "cold": cold,
        "warm": warm,
        "cold_total_s": sum(cold.values()),
        "warm_total_s": sum(warm.values()),
        "replay_serial_s": replay_serial,
        "replay_batched_s": replay_batched,
        "speedup_replay": replay_serial / replay_batched,
        "parallel": parallel,
    }


def bench_outofcore_scenario(
    num_vertices: int = 4_850_000,
    num_edges: int = 69_000_000,
    shard_edges: int = 1 << 22,
    chunk_edges: int = 1 << 20,
    seed: int = 8,
    directory: str | Path | None = None,
    jobs: int = 1,
) -> dict:
    """Time the out-of-core path end to end at a chosen scale.

    Defaults to live-journal's published size (4.85M vertices, 69M
    edges — the scale the experiments otherwise approach only through
    reported-size scaling): streams an R-MAT of that size to an on-disk
    shard store, re-reads it for checksum verification, converges PR
    and BFS with :func:`repro.graph.shards.run_sharded`, and derives
    the schedule counts from per-shard partials.  Every stage records
    wall-clock and an edges/second rate; the payload also carries the
    store's resident-memory model, which is the number the scaling
    guide (docs/scaling.md) asks operators to check against their RAM.

    ``directory=None`` stages the store in a temporary directory that
    is deleted afterwards — the bench needs ``disk_bytes`` of free
    scratch space (~1.1 GB at the default scale).
    """
    import shutil
    import tempfile

    from ..algorithms.bfs import BFS
    from ..algorithms.pagerank import PageRank
    from ..arch.config import NAMED_CONFIGS
    from ..arch.scheduler import clear_imbalance_cache
    from ..graph.shards import (run_sharded, sharded_scheduled_counts,
                                sharded_workload, write_rmat_shards)
    from .cache import temporary_run_cache

    scratch = None
    if directory is None:
        scratch = tempfile.mkdtemp(prefix="repro-bench-ooc-")
        directory = Path(scratch) / "store"
    try:
        start = time.perf_counter()
        store = write_rmat_shards(
            directory, num_vertices, num_edges, seed=seed,
            shard_edges=shard_edges, chunk_edges=chunk_edges,
        )
        generate_s = time.perf_counter() - start

        start = time.perf_counter()
        store.verify()
        verify_s = time.perf_counter() - start

        algorithms = {}
        pr_run = None
        with temporary_run_cache():
            for factory in (PageRank, BFS):
                start = time.perf_counter()
                run = run_sharded(factory(), store, cache=True)
                elapsed = time.perf_counter() - start
                algorithms[run.algorithm] = {
                    "iterations": run.iterations,
                    "converge_s": elapsed,
                    "edges_per_s": run.iterations * num_edges / elapsed,
                }
                if pr_run is None:
                    pr_run = run
            config = NAMED_CONFIGS["acc+HyVE"]()
            clear_imbalance_cache()
            start = time.perf_counter()
            counts = sharded_scheduled_counts(
                pr_run, sharded_workload(store), config, jobs=jobs,
            )
            counts_s = time.perf_counter() - start

        return {
            "schema": BENCH_SCHEMA,
            "created": datetime.now(timezone.utc).isoformat(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count() or 1,
            "scenario": "outofcore",
            "num_vertices": num_vertices,
            "num_edges": num_edges,
            "edge_vertex_ratio": num_edges / max(num_vertices, 1),
            "shard_edges": shard_edges,
            "num_shards": store.num_shards,
            "jobs": jobs,
            "generate_s": generate_s,
            "generate_edges_per_s": num_edges / generate_s,
            "verify_s": verify_s,
            "verify_edges_per_s": num_edges / verify_s,
            "algorithms": algorithms,
            "counts_s": counts_s,
            "counts_edges_per_s": num_edges / counts_s,
            "counts_imbalance": counts.imbalance,
            "memory_budget": store.memory_budget(),
        }
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


def bench_stream_scenario(
    num_vertices: int = 2_000,
    num_edges: int = 16_000,
    num_updates: int = 20_000,
    repeats: int = 3,
) -> dict:
    """Streaming ingest throughput under concurrent pricing queries.

    Two claims under test (ISSUE 10 acceptance):

    * **Sustained ingest** — the bounded-staleness engine must process
      an append-only update stream (the way HyVE's write-once ReRAM
      blocks stream) at a healthy updates/second under both canonical
      mixes, with queries answered exactly at the current logical time.
    * **Not slower than rebuild** — answering the same update + query
      schedule through the engine's incremental maintenance must not
      lose to serial from-scratch replay (best of ``repeats`` legs;
      :func:`repro.dynamic.stream.measure_stream` cross-checks the
      final answers bit-for-bit, so the speedup is conformance-gated).

    A delete-heavy churn leg (20% deletes) is recorded for trend
    tracking but not gated: decremental repair keeps it near parity,
    and its exact ratio is noise-sensitive at bench scale.
    """
    from ..dynamic.stream import (READ_HEAVY, UPDATE_HEAVY,
                                  generate_update_log, measure_stream)
    from ..graph.generators import rmat

    base = rmat(num_vertices, num_edges, seed=11, name="bench-stream")
    repeats = max(repeats, 1)

    def leg(delete_fraction: float, mix) -> dict:
        log = generate_update_log(
            base, num_updates, seed=11,
            delete_fraction=delete_fraction,
            name=f"bench-stream-df{delete_fraction:g}",
        )
        runs = [measure_stream(log, mix) for _ in range(repeats)]
        best = max(runs, key=lambda r: r.speedup_vs_serial)
        return {
            "mix": mix.name,
            "delete_fraction": delete_fraction,
            "num_updates": best.num_updates,
            "num_queries": best.num_queries,
            "flushes": best.flushes,
            "incremental_refreshes": best.incremental_refreshes,
            "rebuilds": best.rebuilds,
            "engine_s": best.engine_seconds,
            "serial_s": best.serial_seconds,
            "updates_per_second": best.updates_per_second,
            "speedup_vs_serial": best.speedup_vs_serial,
            "speedups": [r.speedup_vs_serial for r in runs],
        }

    return {
        "schema": BENCH_SCHEMA,
        "mode": "scenario-stream",
        "num_vertices": num_vertices,
        "base_edges": num_edges,
        "num_updates": num_updates,
        "repeats": repeats,
        "mixes": {
            "update-heavy": leg(0.0, UPDATE_HEAVY),
            "read-heavy": leg(0.0, READ_HEAVY),
        },
        "churn": leg(0.2, UPDATE_HEAVY),
        "created": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def write_bench(payload: dict, path: str | Path) -> Path:
    """Write a BENCH payload as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
