"""Wall-clock timing harness for the experiment drivers.

Records per-experiment and total wall-clock (plus run-cache statistics)
into a JSON payload, written as ``BENCH_<n>.json`` at the repo root so
each PR leaves a perf trajectory the next one can regress against::

    PYTHONPATH=src python tools/bench.py --output BENCH_2.json
    PYTHONPATH=src python tools/bench.py --jobs 4 --experiments fig20 fig21

Timing is wall-clock (``time.perf_counter``), not CPU time: the point
is the end-to-end latency an operator experiences, including process
fan-out and cache I/O.
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Sequence

#: Schema version of the BENCH_*.json payload.
BENCH_SCHEMA = 1


def _timed_experiment_worker(name: str) -> tuple[str, float]:
    """Run one experiment driver in this (possibly worker) process.

    Returns ``(name, seconds)``; the table itself is discarded — the
    harness times, it does not collect results.
    """
    from ..experiments import ALL_EXPERIMENTS

    start = time.perf_counter()
    ALL_EXPERIMENTS[name]()
    return name, time.perf_counter() - start


def bench_experiments(
    names: Sequence[str] | None = None,
    jobs: int = 1,
) -> dict:
    """Time experiment drivers; returns the BENCH payload dict.

    With ``jobs > 1`` the drivers fan out over a process pool (the same
    machinery as ``run_all(jobs=...)``); per-experiment times are then
    measured inside each worker, and ``total_s`` is the end-to-end
    wall-clock including the fan-out overhead.
    """
    from ..experiments import ALL_EXPERIMENTS
    from .cache import get_run_cache

    chosen = list(names) if names else list(ALL_EXPERIMENTS)
    unknown = [n for n in chosen if n not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment(s): {', '.join(unknown)}")

    per_experiment: dict[str, float] = {}
    start = time.perf_counter()
    if jobs <= 1:
        for name in chosen:
            _, seconds = _timed_experiment_worker(name)
            per_experiment[name] = seconds
    else:
        import concurrent.futures

        from ..experiments.common import workloads

        # Same parent prewarm as run_selected(jobs=...): fork-inherited
        # datasets instead of per-worker regeneration.
        workloads()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(chosen))
        ) as pool:
            futures = {
                name: pool.submit(_timed_experiment_worker, name)
                for name in chosen
            }
            for name in chosen:
                _, seconds = futures[name].result()
                per_experiment[name] = seconds
    total = time.perf_counter() - start

    return {
        "schema": BENCH_SCHEMA,
        "created": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "experiments": per_experiment,
        "total_s": total,
        "cache": get_run_cache().info(),
    }


def write_bench(payload: dict, path: str | Path) -> Path:
    """Write a BENCH payload as pretty JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
