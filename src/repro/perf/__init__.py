"""Performance engine: persistent run caching and timing harnesses.

This package holds the pieces that make the reproduction *fast* without
changing any reproduced number:

* :mod:`repro.perf.cache` — a bounded in-memory LRU backed by a
  crash-safe, content-addressed disk store for converged
  :class:`~repro.algorithms.runner.AlgorithmRun` objects, so fresh
  processes (the CLI, benchmarks, sweep workers) skip re-convergence.
* :mod:`repro.perf.store` — the disk level itself: one WAL-mode SQLite
  database per cache directory with checksummed entries, provenance
  columns, LRU size budgeting and quarantine-on-corruption.
* :mod:`repro.perf.bench` — a wall-clock harness that times experiment
  drivers and records a ``BENCH_*.json`` perf trajectory for future
  changes to regress against.

The disk store's location is controlled by ``$REPRO_CACHE_DIR`` (then
``$XDG_CACHE_HOME/hyve-repro``, then ``~/.cache/hyve-repro``) and its
size budget by ``$REPRO_CACHE_MAX_BYTES``; the CLI surfaces it via
``repro cache info|clear|migrate|verify|vacuum`` and warms it under
``repro experiment --jobs N``.  Cache lookups are observable: every
hit/miss increments the ``cache_hits``/``cache_misses`` counters of
:mod:`repro.obs.metrics`.  Layout and invalidation rules are documented
in docs/performance.md; the durability model in docs/robustness.md; the
observability story in docs/observability.md.
"""

from .cache import (
    CacheStats,
    RunCache,
    default_cache_dir,
    get_run_cache,
    set_run_cache,
    temporary_run_cache,
)
from .bench import bench_experiments, write_bench
from .store import (
    MigrationReport,
    SQLiteStore,
    VerifyReport,
    clean_orphan_tmp,
    payload_checksum,
)

__all__ = [
    "CacheStats",
    "MigrationReport",
    "RunCache",
    "SQLiteStore",
    "VerifyReport",
    "bench_experiments",
    "clean_orphan_tmp",
    "default_cache_dir",
    "get_run_cache",
    "payload_checksum",
    "set_run_cache",
    "temporary_run_cache",
    "write_bench",
]
