"""Performance engine: persistent run caching and timing harnesses.

This package holds the pieces that make the reproduction *fast* without
changing any reproduced number:

* :mod:`repro.perf.cache` — a bounded in-memory LRU backed by an
  on-disk, content-addressed store for converged
  :class:`~repro.algorithms.runner.AlgorithmRun` objects, so fresh
  processes (the CLI, benchmarks, sweep workers) skip re-convergence.
* :mod:`repro.perf.bench` — a wall-clock harness that times experiment
  drivers and records a ``BENCH_*.json`` perf trajectory for future
  changes to regress against.
"""

from .cache import (
    CacheStats,
    RunCache,
    default_cache_dir,
    get_run_cache,
    set_run_cache,
)
from .bench import bench_experiments, write_bench

__all__ = [
    "CacheStats",
    "RunCache",
    "bench_experiments",
    "default_cache_dir",
    "get_run_cache",
    "set_run_cache",
    "write_bench",
]
