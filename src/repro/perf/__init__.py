"""Performance engine: persistent run caching and timing harnesses.

This package holds the pieces that make the reproduction *fast* without
changing any reproduced number:

* :mod:`repro.perf.cache` — a bounded in-memory LRU backed by an
  on-disk, content-addressed store for converged
  :class:`~repro.algorithms.runner.AlgorithmRun` objects, so fresh
  processes (the CLI, benchmarks, sweep workers) skip re-convergence.
* :mod:`repro.perf.bench` — a wall-clock harness that times experiment
  drivers and records a ``BENCH_*.json`` perf trajectory for future
  changes to regress against.

The disk store's location is controlled by ``$REPRO_CACHE_DIR`` (then
``$XDG_CACHE_HOME/hyve-repro``, then ``~/.cache/hyve-repro``); the CLI
surfaces it via ``repro cache info|clear`` and warms it under
``repro experiment --jobs N``.  Cache lookups are observable: every
hit/miss increments the ``cache_hits``/``cache_misses`` counters of
:mod:`repro.obs.metrics`.  Layout and invalidation rules are documented
in docs/performance.md; the observability story in
docs/observability.md.
"""

from .cache import (
    CacheStats,
    RunCache,
    default_cache_dir,
    get_run_cache,
    set_run_cache,
)
from .bench import bench_experiments, write_bench

__all__ = [
    "CacheStats",
    "RunCache",
    "bench_experiments",
    "default_cache_dir",
    "get_run_cache",
    "set_run_cache",
    "write_bench",
]
