"""Simulate-once / price-many batched evaluation.

The analytic pipeline factors as *convergence* (what the algorithm
does), *schedule counts* (what the machine does — Equations (3)-(8)),
and *folding* (what that costs on concrete devices).  Convergence has
been cached on disk since PR 2; this module adds the second level:
schedule counts are memoized on their minimal key, and a whole grid of
device configurations is priced against one counts record with
:func:`repro.arch.machine.fold_many` — cf. the access-pattern
characterizations that price one trace against many memory configs
(Dann & Ritter, arXiv:2104.07776).

The counts key is exactly the set of knobs that change Equations
(3)-(8): graph content, the converged run, P, N, the on-chip /
data-sharing / placement flags, and the workload's reported scale.
Everything else (ReRAM/DRAM density, BPG timeout, cell bits, SRAM
technology point, region hit rate, MLP) only changes *pricing*, so
sweeps over those axes share one counts computation.

Entry points:

* :func:`scheduled_counts` — drop-in memoized
  :meth:`~repro.arch.scheduler.ScheduleCounts.compute`.
* :func:`run_grid` — evaluate one algorithm x workload against many
  configurations, grouping them by counts key and pricing each group
  with one vectorized fold; bit-identical to a loop of
  :meth:`AcceleratorMachine.run` calls.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Iterable, Sequence

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import AlgorithmRun, run_cached
from ..arch.config import HyVEConfig, Workload, choose_num_intervals
from ..arch.machine import AcceleratorMachine, SimulationResult, fold_many
from ..arch.scheduler import ScheduleCounts
from ..graph.graph import Graph
from ..obs.trace import get_tracer
from .cache import get_run_cache

#: ScheduleCounts fields declared ``int`` — everything else is a float.
#: JSON round-trips both exactly, but the coercion keeps the rebuilt
#: dataclass type-identical to a freshly computed one.
_COUNTS_INT_FIELDS = frozenset(
    {"iterations", "num_pus", "num_intervals", "edge_bits", "vertex_bits"}
)


def _run_digest(run: AlgorithmRun) -> str:
    """Digest of the run fields that feed Equations (3)-(8).

    ``values`` is deliberately excluded: the counts depend on the
    iteration structure (``iterations``, ``active_sources``) and the
    serialised widths, never on the converged values themselves.
    """
    h = hashlib.blake2b(digest_size=16)
    for part in (
        run.algorithm,
        str(run.iterations),
        str(run.num_vertices),
        str(run.edges_per_iteration),
        str(run.vertex_bits),
        str(run.edge_bits),
        repr(run.active_sources),
    ):
        h.update(part.encode())
        h.update(b"|")
    return h.hexdigest()


def counts_cache_key(
    run: AlgorithmRun, workload: Workload, config: HyVEConfig
) -> str:
    """Content key under which this configuration's counts are shared.

    Two configurations with equal keys produce field-identical
    :class:`ScheduleCounts`; device-level knobs (densities, BPG policy,
    the SRAM operating point at fixed P, hit rates, MLP) do not appear
    here, which is what lets a sweep over them simulate once.
    """
    vertices = run.num_vertices * workload.vertex_scale
    p = choose_num_intervals(config, vertices, run.vertex_bits)
    return "|".join(
        (
            workload.graph.fingerprint(),
            _run_digest(run),
            f"n{config.num_pus}",
            f"p{p}",
            f"oc{int(config.has_onchip)}",
            f"ds{int(config.data_sharing)}",
            f"hp{int(config.hash_placement)}",
            f"vs{workload.vertex_scale!r}",
            f"es{workload.edge_scale!r}",
        )
    )


def _counts_from_record(record: dict) -> ScheduleCounts:
    kwargs = {}
    for f in dataclasses.fields(ScheduleCounts):
        value = record[f.name]
        kwargs[f.name] = (
            int(value) if f.name in _COUNTS_INT_FIELDS else float(value)
        )
    return ScheduleCounts(**kwargs)


def scheduled_counts(
    run: AlgorithmRun, workload: Workload, config: HyVEConfig
) -> ScheduleCounts:
    """Memoized :meth:`ScheduleCounts.compute`.

    Keyed on :func:`counts_cache_key` in the two-level run cache, so a
    device-knob sweep — or a fresh process pricing the same schedule —
    expands Equations (3)-(8) once.  The stored record round-trips
    every field exactly (JSON ints and shortest-round-trip floats), so
    a cache hit folds bit-identically to a fresh computation.
    """
    key = counts_cache_key(run, workload, config)

    def compute() -> dict:
        counts = ScheduleCounts.compute(run, workload, config)
        return dataclasses.asdict(counts)

    record = get_run_cache().get_or_counts(key, compute)
    return _counts_from_record(record)


def group_by_counts_key(
    run: AlgorithmRun,
    workload: Workload,
    configs: Sequence[HyVEConfig],
) -> dict[str, list[int]]:
    """Indices of ``configs`` grouped by shared counts key (ordered)."""
    groups: dict[str, list[int]] = {}
    for idx, config in enumerate(configs):
        groups.setdefault(
            counts_cache_key(run, workload, config), []
        ).append(idx)
    return groups


def run_grid(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload | Graph,
    configs: Iterable[HyVEConfig],
    faults=None,
) -> list[SimulationResult]:
    """Evaluate ``algorithm`` on ``workload`` under many configurations.

    Bit-identical to ``[AcceleratorMachine(c, faults=faults).run(...)
    for c in configs]`` but structured simulate-once / price-many: the
    algorithm converges once (run cache), each distinct counts key is
    expanded once (counts cache), and every group of configurations
    sharing a key is priced by one vectorized :func:`fold_many` pass.

    Fault-injected evaluations are not batchable — the injector
    perturbs devices and provisioning per machine — so a non-zero
    ``faults`` profile falls back to the serial path (which is
    per-config deterministic: the injector seeds on the config label).
    """
    if isinstance(workload, Graph):
        workload = Workload(workload)
    configs = list(configs)
    if not configs:
        return []
    if faults is not None and not faults.is_zero:
        return [
            AcceleratorMachine(config, faults=faults).run(
                algorithm, workload
            )
            for config in configs
        ]
    tracer = get_tracer()
    with tracer.span(
        "run_grid",
        algorithm=algorithm.name,
        graph=workload.name,
        configs=len(configs),
    ):
        with tracer.span("algorithm.converge", algorithm=algorithm.name):
            run = run_cached(algorithm, workload.graph)
        groups = group_by_counts_key(run, workload, configs)
        results: list[SimulationResult | None] = [None] * len(configs)
        for indices in groups.values():
            with tracer.span("schedule.counts"):
                counts = scheduled_counts(
                    run, workload, configs[indices[0]]
                )
            reports = fold_many(
                run, counts, workload, [configs[i] for i in indices]
            )
            for idx, report in zip(indices, reports):
                results[idx] = SimulationResult(
                    report=report, run=run, faults=None
                )
    return results  # type: ignore[return-value]
