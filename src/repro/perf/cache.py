"""Persistent, content-addressed cache for converged algorithm runs.

The evaluation replays the same (graph, algorithm) convergence runs
against dozens of machine configurations, experiments and processes.
The run itself is configuration-independent, so it is computed once and
cached at two levels:

* a bounded in-memory LRU (object identity preserved — two lookups in
  one process return the *same* :class:`AlgorithmRun`), and
* a crash-safe SQLite store (:mod:`repro.perf.store`) keyed on
  ``(Graph.fingerprint(), algorithm signature, code-version salt)``, so
  the CLI, the benchmarks, sweeps and ``run_all`` skip re-convergence
  across processes.

The disk level is one WAL-mode ``store.sqlite`` per cache directory:
entries are checksummed payloads (npz bytes for runs, JSON for scalars
and schedule counts) with provenance columns, verified on every read —
a corrupt entry is quarantined and recomputed, never served.  Legacy
file-per-entry ``*.npz`` / ``*.json`` caches (pre-store layouts) are
still read as a fallback and adopted into the store on first touch;
``repro cache migrate`` performs the one-shot bulk migration.  The
durability model is documented in docs/robustness.md.

The key embeds :data:`CACHE_SALT`; bump it whenever an executor change
alters results, which invalidates every stale entry at once.  The
directory defaults to ``$REPRO_CACHE_DIR``, falling back to
``~/.cache/hyve-repro`` (honouring ``$XDG_CACHE_HOME``); a repo-local
``.repro_cache/`` is one ``REPRO_CACHE_DIR=.repro_cache`` away.
``$REPRO_CACHE_MAX_BYTES`` bounds the store size (LRU eviction).
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import sqlite3
import time
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import AlgorithmRun, run_vectorized
from ..errors import StoreError
from ..graph.graph import Graph
from ..obs import metrics as obs_metrics
from ..obs.trace import get_tracer
from .store import MigrationReport, SQLiteStore, VerifyReport, clean_orphan_tmp

#: Errors that mean "the disk level misbehaved"; every disk operation
#: degrades to compute-and-carry-on when one of these surfaces.
_STORE_ERRORS = (OSError, sqlite3.Error, StoreError)


def _observe_lookup(hit: bool) -> None:
    """Mirror a cache lookup into the process metrics registry."""
    metrics = obs_metrics.get_metrics()
    name = obs_metrics.CACHE_HITS if hit else obs_metrics.CACHE_MISSES
    metrics.counter(name).add(1)


def _observe_counts_lookup(hit: bool) -> None:
    """Mirror a schedule-counts lookup into the metrics registry."""
    metrics = obs_metrics.get_metrics()
    name = (obs_metrics.COUNTS_CACHE_HITS if hit
            else obs_metrics.COUNTS_CACHE_MISSES)
    metrics.counter(name).add(1)

#: Code-version salt baked into every cache key.  Bump when the
#: executor or an algorithm changes in a result-affecting way.
CACHE_SALT = "hyve-run-v1"

#: Default bound on in-memory entries.
DEFAULT_MAX_ENTRIES = 256

#: Glob patterns of the legacy file-per-entry layout (still readable,
#: migrated by ``repro cache migrate``).
LEGACY_PATTERNS = ("*.npz", "scalar-*.json", "counts-*.json")


def default_cache_dir() -> Path:
    """Resolve the on-disk store location.

    ``$REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/hyve-repro``
    or ``~/.cache/hyve-repro``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "hyve-repro"


def default_max_bytes() -> int | None:
    """Size budget from ``$REPRO_CACHE_MAX_BYTES`` (unset: unbounded)."""
    env = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if not env:
        return None
    try:
        value = int(env)
    except ValueError as exc:
        raise StoreError(
            f"REPRO_CACHE_MAX_BYTES must be an integer byte count: {env!r}"
        ) from exc
    return value if value > 0 else None


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # Permission denied and friends: some process owns the PID.
        return True
    return True


@dataclass
class CacheStats:
    """Hit/miss/byte counters for one :class:`RunCache` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    errors: int = 0  # unreadable/corrupt disk entries (recomputed)
    # Schedule-counts entries (the "simulate once, price many" memo).
    counts_memory_hits: int = 0
    counts_disk_hits: int = 0
    counts_misses: int = 0
    counts_stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def counts_hits(self) -> int:
        return self.counts_memory_hits + self.counts_disk_hits

    @property
    def counts_lookups(self) -> int:
        return self.counts_hits + self.counts_misses

    @property
    def counts_hit_rate(self) -> float:
        """Fraction of counts lookups served from the memo (0 when no
        lookups happened).  Tuner throughput is dominated by this ratio
        — a cold counts cache re-expands Equations (3)-(8) per key."""
        lookups = self.counts_lookups
        return self.counts_hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "errors": self.errors,
            "counts_memory_hits": self.counts_memory_hits,
            "counts_disk_hits": self.counts_disk_hits,
            "counts_misses": self.counts_misses,
            "counts_stores": self.counts_stores,
        }

    def summary(self) -> str:
        """One line for ``--verbose`` CLI output and reports."""
        return (
            f"run cache: {self.hits} hit(s) "
            f"({self.memory_hits} memory / {self.disk_hits} disk), "
            f"{self.misses} miss(es), "
            f"{self.bytes_read} B read, {self.bytes_written} B written"
        )

    def counts_summary(self) -> str:
        """One line for the schedule-counts memo (CLI ``--verbose``)."""
        rate = (
            f"{self.counts_hit_rate:.1%} hit rate"
            if self.counts_lookups else "no lookups"
        )
        return (
            f"counts cache: {self.counts_hits} hit(s) "
            f"({self.counts_memory_hits} memory / "
            f"{self.counts_disk_hits} disk), "
            f"{self.counts_misses} miss(es), {rate}"
        )


class RunCache:
    """Two-level (memory LRU + SQLite store) cache of :class:`AlgorithmRun`.

    Args:
        directory: on-disk store location; ``None`` resolves via
            :func:`default_cache_dir`, ``False``-y string disables the
            disk level entirely (memory-only cache).
        max_entries: in-memory LRU bound.
        salt: code-version salt mixed into every key.
        max_bytes: disk-store size budget (LRU eviction); ``None``
            reads ``$REPRO_CACHE_MAX_BYTES`` (unset: unbounded).
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        salt: str = CACHE_SALT,
        max_bytes: int | None = None,
    ) -> None:
        if directory is None:
            self.directory: Path | None = default_cache_dir()
        elif str(directory) == "":
            self.directory = None
        else:
            self.directory = Path(directory).expanduser()
        self.max_entries = max(int(max_entries), 1)
        self.salt = salt
        self.max_bytes = (max_bytes if max_bytes is not None
                          else default_max_bytes())
        self.stats = CacheStats()
        #: Longest a process waits for a peer's in-flight computation of
        #: the same entry before computing it itself (see
        #: :meth:`_singleflight`).
        self.singleflight_timeout = 30.0
        self._memory: OrderedDict[str, AlgorithmRun] = OrderedDict()
        self._store_obj: SQLiteStore | None = None
        self._store_failed = False

    # --- disk level plumbing ---------------------------------------------

    def _disk(self) -> SQLiteStore | None:
        """The SQLite store, opened lazily; a failed open degrades the
        cache to memory-only for this instance's lifetime."""
        if self.directory is None or self._store_failed:
            return None
        if self._store_obj is None:
            try:
                self._store_obj = SQLiteStore(
                    self.directory, max_bytes=self.max_bytes,
                    salt=self.salt,
                )
            except _STORE_ERRORS:
                self._store_failed = True
                self.stats.errors += 1
                return None
        return self._store_obj

    def _disk_get(self, key: str, kind: str,
                  legacy_name: str | None = None) -> bytes | None:
        """Store lookup with transparent legacy-file fallback.

        A legacy hit is adopted into the store (the file is left in
        place; ``repro cache migrate`` removes it), so repeat lookups
        come from SQLite.
        """
        store = self._disk()
        if store is not None:
            try:
                payload = store.get(key)
            except _STORE_ERRORS:
                self.stats.errors += 1
                payload = None
            if payload is not None:
                return payload
        if legacy_name is None or self.directory is None:
            return None
        legacy = self.directory / legacy_name
        if not legacy.exists():
            return None
        try:
            payload = legacy.read_bytes()
        except OSError:
            self.stats.errors += 1
            return None
        if store is not None:
            try:
                store.put(key, payload, kind=kind)
            except _STORE_ERRORS:
                self.stats.errors += 1
        return payload

    def _disk_put(self, key: str, payload: bytes, kind: str) -> bool:
        store = self._disk()
        if store is None:
            return False
        try:
            store.put(key, payload, kind=kind)
            return True
        except _STORE_ERRORS:
            # A read-only or full filesystem degrades to memory-only.
            self.stats.errors += 1
            return False

    # --- keys ------------------------------------------------------------

    def key(
        self,
        algorithm: EdgeCentricAlgorithm,
        graph: Graph,
        kind: str = "edge",
    ) -> str:
        """Content-addressed key: graph digest + algorithm signature + salt.

        ``kind`` separates execution models sharing one (graph,
        algorithm) pair — the edge-centric run and the vertex-centric
        run cache under distinct keys.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(graph.fingerprint().encode())
        h.update(b"|")
        h.update(algorithm.signature().encode())
        h.update(b"|")
        h.update(self.salt.encode())
        h.update(b"|")
        h.update(kind.encode())
        return h.hexdigest()

    def _lock_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key}.lock"

    # --- main entry ------------------------------------------------------

    def get_or_run(
        self, algorithm: EdgeCentricAlgorithm, graph: Graph
    ) -> AlgorithmRun:
        """Return the cached run, loading or computing it on demand."""
        key = self.key(algorithm, graph)
        run = self._memory.get(key)
        if run is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            _observe_lookup(hit=True)
            return run
        loaded = self._load(key)
        if loaded is not None:
            run, _ = loaded
            self.stats.disk_hits += 1
            _observe_lookup(hit=True)
        else:
            self.stats.misses += 1
            _observe_lookup(hit=False)

            def compute() -> AlgorithmRun:
                result = run_vectorized(algorithm, graph)
                self._store(key, result)
                return result

            def try_load():
                peer = self._load(key)
                return None if peer is None else peer[0]

            run = self._singleflight(key, try_load, compute)
        self._remember(key, run)
        return run

    def seed_run(
        self, algorithm: EdgeCentricAlgorithm, graph: Graph, run: AlgorithmRun
    ) -> AlgorithmRun:
        """Install a run produced by another executor under the standard key.

        The out-of-core path (:func:`repro.graph.shards.run_sharded`)
        converges paper-scale graphs by streaming shards; seeding its
        result here lets every downstream engine price the workload
        through the normal :meth:`get_or_run` without an in-memory
        convergence pass.  An existing entry wins — keys are
        content-addressed, so whatever is already cached is equivalent
        — mirroring :meth:`get_or_scalar`.
        """
        key = self.key(algorithm, graph)
        existing = self._memory.get(key)
        if existing is not None:
            self._memory.move_to_end(key)
            return existing
        loaded = self._load(key)
        if loaded is not None:
            run = loaded[0]
        else:
            self._store(key, run)
        self._remember(key, run)
        return run

    def get_or_run_vertex_centric(
        self, algorithm: EdgeCentricAlgorithm, graph: Graph
    ):
        """Like :meth:`get_or_run` for the vertex-centric executor.

        Returns a :class:`repro.algorithms.vertex_centric
        .VertexCentricRun`; the two traffic counters ride along in the
        entry's JSON metadata.
        """
        from ..algorithms.vertex_centric import (VertexCentricRun,
                                                 run_vertex_centric)

        key = self.key(algorithm, graph, kind="vertex")
        vc = self._memory.get(key)
        if vc is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            _observe_lookup(hit=True)
            return vc
        loaded = self._load(key)
        if loaded is not None:
            run, meta = loaded
            try:
                vc = VertexCentricRun(
                    run=run,
                    edges_examined=int(meta["edges_examined"]),
                    vertices_scanned=int(meta["vertices_scanned"]),
                )
                self.stats.disk_hits += 1
                _observe_lookup(hit=True)
            except KeyError:
                self.stats.errors += 1
                vc = None
        if vc is None:
            self.stats.misses += 1
            _observe_lookup(hit=False)

            def compute():
                result = run_vertex_centric(algorithm, graph)
                self._store(key, result.run, extra={
                    "edges_examined": result.edges_examined,
                    "vertices_scanned": result.vertices_scanned,
                })
                return result

            def try_load():
                peer = self._load(key)
                if peer is None:
                    return None
                run, meta = peer
                try:
                    return VertexCentricRun(
                        run=run,
                        edges_examined=int(meta["edges_examined"]),
                        vertices_scanned=int(meta["vertices_scanned"]),
                    )
                except KeyError:
                    return None

            vc = self._singleflight(key, try_load, compute)
        self._remember(key, vc)
        return vc

    def get_or_scalar(self, name: str, graph: Graph, compute) -> float:
        """Cached scalar graph statistic (imbalance, block counts, ...).

        Keyed on ``(graph content, name, salt)`` and stored as a tiny
        JSON payload, so statistics that cost an O(E) pass are computed
        by one process and read back by every other (sweep workers,
        ``--jobs`` experiment runners, fresh CLI invocations).
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(graph.fingerprint().encode())
        h.update(b"|")
        h.update(name.encode())
        h.update(b"|")
        h.update(self.salt.encode())
        key = "scalar-" + h.hexdigest()
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            _observe_lookup(hit=True)
            return hit

        def read_scalar() -> float | None:
            payload = self._disk_get(key, kind="scalar",
                                     legacy_name=f"{key}.json")
            if payload is None:
                return None
            try:
                value = float(json.loads(payload.decode("utf-8"))["value"])
            except (ValueError, KeyError, UnicodeDecodeError,
                    json.JSONDecodeError):
                self.stats.errors += 1
                return None
            self.stats.bytes_read += len(payload)
            return value

        value = read_scalar()
        if value is not None:
            self.stats.disk_hits += 1
            _observe_lookup(hit=True)
            self._remember(key, value)
            return value
        self.stats.misses += 1
        _observe_lookup(hit=False)

        def compute_and_store() -> float:
            value = float(compute())
            payload = json.dumps(
                {"name": name, "value": value, "salt": self.salt}
            ).encode("utf-8")
            if self._disk_put(key, payload, kind="scalar"):
                self.stats.stores += 1
                self.stats.bytes_written += len(payload)
            return value

        value = self._singleflight(key, read_scalar, compute_and_store)
        self._remember(key, value)
        return value

    def get_or_counts(self, counts_key: str, compute) -> dict:
        """Cached schedule-counts record (the Equations (3)-(8) expansion).

        ``counts_key`` is the *content* key assembled by
        :func:`repro.perf.batch.counts_cache_key` — graph fingerprint,
        algorithm signature, partition count P, PU count N, the
        data-sharing/on-chip/placement flags and the workload scale.
        ``compute`` returns a JSON-ready dict of the
        :class:`~repro.arch.scheduler.ScheduleCounts` fields; JSON
        round-trips every int and float exactly, so a disk hit prices
        bit-identically to a fresh computation.

        Sweeps over device knobs (density, BPG timeout, cell bits, SRAM
        technology) share one entry per counts key, which is the whole
        point: simulate once, price many.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(counts_key.encode())
        h.update(b"|")
        h.update(self.salt.encode())
        key = "counts-" + h.hexdigest()
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            self.stats.counts_memory_hits += 1
            _observe_counts_lookup(hit=True)
            return hit
        payload = self._disk_get(key, kind="counts",
                                 legacy_name=f"{key}.json")
        if payload is not None:
            try:
                record = json.loads(payload.decode("utf-8"))["counts"]
                if not isinstance(record, dict):
                    raise ValueError("counts entry is not a record")
                self.stats.counts_disk_hits += 1
                self.stats.bytes_read += len(payload)
                _observe_counts_lookup(hit=True)
                self._remember(key, record)
                return record
            except (ValueError, KeyError, UnicodeDecodeError,
                    json.JSONDecodeError):
                self.stats.errors += 1
        self.stats.counts_misses += 1
        _observe_counts_lookup(hit=False)
        record = compute()
        blob = json.dumps(
            {"key": counts_key, "salt": self.salt, "counts": record}
        ).encode("utf-8")
        if self._disk_put(key, blob, kind="counts"):
            self.stats.counts_stores += 1
            self.stats.bytes_written += len(blob)
        self._remember(key, record)
        return record

    def _remember(self, key: str, run) -> None:
        self._memory[key] = run
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    # --- single flight ----------------------------------------------------

    def _break_stale_lock(self, lock: Path) -> bool:
        """Break a lock whose recorded owner is dead.

        Locks carry ``{"pid": ..., "created": ...}``; a dead owner's
        lock is removed immediately instead of stalling every peer for
        the full single-flight timeout.  Unreadable (legacy/empty)
        locks fall back to age: older than the timeout means the owner
        is presumed gone.
        """
        pid: int | None = None
        try:
            owner = json.loads(lock.read_text())
            pid = int(owner["pid"])
        except (OSError, ValueError, KeyError, TypeError,
                json.JSONDecodeError):
            try:
                age = time.time() - lock.stat().st_mtime
            except OSError:
                return True  # lock vanished: treat as broken
            if age < self.singleflight_timeout:
                return False
        if pid is not None and _pid_alive(pid):
            return False
        try:
            lock.unlink()
        except FileNotFoundError:
            pass
        except OSError:
            return False
        obs_metrics.get_metrics().counter(
            obs_metrics.STORE_LOCKS_BROKEN
        ).add(1)
        return True

    def _singleflight(self, key: str, try_load, compute):
        """Best-effort cross-process dedup of one cache fill.

        Concurrent workers (``sweep(max_workers=...)``,
        ``run_all(jobs=...)``) often miss on the same key at the same
        moment.  The first claims ``<key>.lock`` (``O_EXCL``, recording
        its PID); the rest poll for the stored entry instead of redoing
        the computation.  A lock whose owner died is broken on sight
        (:meth:`_break_stale_lock`) rather than waited out.  Strictly
        an optimisation: on timeout or any filesystem error the caller
        just computes.
        """
        lock = self._lock_path(key)
        if lock is None:
            return compute()
        from ..faults.chaos import get_chaos

        chaos = get_chaos()
        if chaos is not None:
            chaos.maybe_stale_lock(lock)
        claimed = False
        deadline = time.monotonic() + self.singleflight_timeout
        while True:
            try:
                lock.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(str(lock),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                try:
                    os.write(fd, json.dumps(
                        {"pid": os.getpid(), "created": time.time()}
                    ).encode("utf-8"))
                finally:
                    os.close(fd)
                claimed = True
                break
            except FileExistsError:
                value = try_load()
                if value is not None:
                    return value
                if not lock.exists():
                    # Owner finished without storing (error path) or
                    # the entry was evicted; compute ourselves.
                    return compute()
                if self._break_stale_lock(lock):
                    continue  # reclaim: try to take the lock ourselves
                if time.monotonic() >= deadline:
                    return compute()
                time.sleep(0.02)
            except OSError:
                return compute()
        try:
            return compute()
        finally:
            if claimed:
                try:
                    os.unlink(lock)
                except OSError:
                    pass

    # --- disk level ------------------------------------------------------

    def _load(self, key: str) -> tuple[AlgorithmRun, dict] | None:
        payload = self._disk_get(key, kind="run",
                                 legacy_name=f"{key}.npz")
        if payload is None:
            return None
        try:
            with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
                meta = json.loads(str(npz["meta"]))
                values = npz["values"]
                active = npz["active_sources"]
            self.stats.bytes_read += len(payload)
            return AlgorithmRun(
                algorithm=meta["algorithm"],
                graph_name=meta["graph_name"],
                values=values,
                iterations=int(meta["iterations"]),
                num_vertices=int(meta["num_vertices"]),
                edges_per_iteration=int(meta["edges_per_iteration"]),
                vertex_bits=int(meta["vertex_bits"]),
                edge_bits=int(meta["edge_bits"]),
                active_sources=tuple(int(a) for a in active),
            ), meta
        except (OSError, KeyError, ValueError, json.JSONDecodeError,
                zipfile.BadZipFile):
            # A corrupt/truncated entry is treated as a miss and will be
            # overwritten by the recomputed run.
            self.stats.errors += 1
            return None

    def _store(
        self, key: str, run: AlgorithmRun, extra: dict | None = None
    ) -> None:
        record = {
            "algorithm": run.algorithm,
            "graph_name": run.graph_name,
            "iterations": run.iterations,
            "num_vertices": run.num_vertices,
            "edges_per_iteration": run.edges_per_iteration,
            "vertex_bits": run.vertex_bits,
            "edge_bits": run.edge_bits,
            "salt": self.salt,
        }
        if extra:
            record.update(extra)
        buffer = io.BytesIO()
        np.savez(
            buffer,
            meta=np.asarray(json.dumps(record)),
            values=run.values,
            active_sources=np.asarray(run.active_sources, dtype=np.int64),
        )
        payload = buffer.getvalue()
        if self._disk_put(key, payload, kind="run"):
            self.stats.stores += 1
            self.stats.bytes_written += len(payload)

    # --- maintenance ------------------------------------------------------

    def _legacy_files(self) -> list[Path]:
        if self.directory is None or not self.directory.exists():
            return []
        files: list[Path] = []
        for pattern in LEGACY_PATTERNS:
            files.extend(self.directory.glob(pattern))
        return files

    def clear(self, disk: bool = True) -> int:
        """Drop cached entries; returns the number of entries removed.

        Also removes orphaned ``*.tmp`` files left behind by
        interrupted legacy atomic writes (counted in the
        ``store_tmp_files_cleaned`` metric, not the return value).
        """
        self._memory.clear()
        removed = 0
        if not disk or self.directory is None:
            return removed
        store = self._disk()
        if store is not None:
            try:
                removed += store.clear()
            except _STORE_ERRORS:
                self.stats.errors += 1
        for entry in self._legacy_files():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        clean_orphan_tmp(self.directory, max_age_s=None)
        return removed

    def migrate(self) -> MigrationReport:
        """One-shot migration of legacy files into the SQLite store."""
        store = self._disk()
        if store is None:
            raise StoreError(
                "cannot migrate: the disk store is disabled or failed "
                "to open"
            )
        with get_tracer().span("store.migrate"):
            return store.migrate_from_files(self.directory)

    def verify_store(self) -> VerifyReport:
        """Integrity-scan the store (``repro cache verify``)."""
        store = self._disk()
        if store is None:
            raise StoreError(
                "cannot verify: the disk store is disabled or failed "
                "to open"
            )
        with get_tracer().span("store.verify"):
            return store.verify()

    def vacuum(self) -> dict:
        """Compact the store (``repro cache vacuum``)."""
        store = self._disk()
        if store is None:
            raise StoreError(
                "cannot vacuum: the disk store is disabled or failed "
                "to open"
            )
        with get_tracer().span("store.vacuum"):
            return store.vacuum()

    def info(self) -> dict:
        """Snapshot of the cache state (for ``repro cache info``)."""
        store = self._disk()
        entries = 0
        disk_bytes = 0
        quarantined = 0
        if store is not None:
            try:
                entries = store.entry_count()
                disk_bytes = store.total_bytes()
                quarantined = store.quarantine_count()
            except _STORE_ERRORS:
                self.stats.errors += 1
        legacy = self._legacy_files()
        for entry in legacy:
            try:
                disk_bytes += entry.stat().st_size
            except OSError:
                pass
        return {
            "directory": str(self.directory) if self.directory else None,
            "backend": "sqlite" if store is not None else None,
            "salt": self.salt,
            "disk_entries": entries + len(legacy),
            "disk_bytes": disk_bytes,
            "legacy_files": len(legacy),
            "quarantined": quarantined,
            "max_bytes": self.max_bytes,
            "memory_entries": len(self._memory),
            "memory_limit": self.max_entries,
            "stats": self.stats.to_dict(),
        }


# --- process-wide default ----------------------------------------------------

_DEFAULT_CACHE: RunCache | None = None


def get_run_cache() -> RunCache:
    """The process-wide cache used by ``run_cached`` (created lazily)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = RunCache()
    return _DEFAULT_CACHE


def set_run_cache(cache: RunCache | None) -> None:
    """Replace the process-wide cache (``None`` resets to lazy default)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = cache


@contextlib.contextmanager
def temporary_run_cache(directory: str | Path | None = ""):
    """Swap in a scratch process-wide cache for the duration.

    The default ``directory=""`` gives a memory-only cache, which is
    what the differential-conformance harness wants: every evaluation
    starts cold (nothing leaks in from a developer's warm disk cache)
    and leaves nothing behind.  Pass a path for a disk-backed scratch
    cache.  The previous cache — including the not-yet-created lazy
    default — is restored on exit.
    """
    previous = _DEFAULT_CACHE
    cache = RunCache(directory=directory)
    set_run_cache(cache)
    try:
        yield cache
    finally:
        set_run_cache(previous)
