"""Persistent, content-addressed cache for converged algorithm runs.

The evaluation replays the same (graph, algorithm) convergence runs
against dozens of machine configurations, experiments and processes.
The run itself is configuration-independent, so it is computed once and
cached at two levels:

* a bounded in-memory LRU (object identity preserved — two lookups in
  one process return the *same* :class:`AlgorithmRun`), and
* an on-disk npz store keyed on ``(Graph.fingerprint(), algorithm
  signature, code-version salt)``, so the CLI, the benchmarks, sweeps
  and ``run_all`` skip re-convergence across processes.

The disk layout is one ``<key>.npz`` per entry under the cache
directory, holding the values array, the per-iteration activity trace
and a JSON metadata record.  Writes are atomic (tmp file +
``os.replace``), so concurrent sweep workers can warm the same store.

The key embeds :data:`CACHE_SALT`; bump it whenever an executor change
alters results, which invalidates every stale entry at once.  The
directory defaults to ``$REPRO_CACHE_DIR``, falling back to
``~/.cache/hyve-repro`` (honouring ``$XDG_CACHE_HOME``); a repo-local
``.repro_cache/`` is one ``REPRO_CACHE_DIR=.repro_cache`` away.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import AlgorithmRun, run_vectorized
from ..graph.graph import Graph
from ..obs import metrics as obs_metrics


def _observe_lookup(hit: bool) -> None:
    """Mirror a cache lookup into the process metrics registry."""
    metrics = obs_metrics.get_metrics()
    name = obs_metrics.CACHE_HITS if hit else obs_metrics.CACHE_MISSES
    metrics.counter(name).add(1)


def _observe_counts_lookup(hit: bool) -> None:
    """Mirror a schedule-counts lookup into the metrics registry."""
    metrics = obs_metrics.get_metrics()
    name = (obs_metrics.COUNTS_CACHE_HITS if hit
            else obs_metrics.COUNTS_CACHE_MISSES)
    metrics.counter(name).add(1)

#: Code-version salt baked into every cache key.  Bump when the
#: executor or an algorithm changes in a result-affecting way.
CACHE_SALT = "hyve-run-v1"

#: Default bound on in-memory entries.
DEFAULT_MAX_ENTRIES = 256


def default_cache_dir() -> Path:
    """Resolve the on-disk store location.

    ``$REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/hyve-repro``
    or ``~/.cache/hyve-repro``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "hyve-repro"


@dataclass
class CacheStats:
    """Hit/miss/byte counters for one :class:`RunCache` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    errors: int = 0  # unreadable/corrupt disk entries (recomputed)
    # Schedule-counts entries (the "simulate once, price many" memo).
    counts_memory_hits: int = 0
    counts_disk_hits: int = 0
    counts_misses: int = 0
    counts_stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def counts_hits(self) -> int:
        return self.counts_memory_hits + self.counts_disk_hits

    @property
    def counts_lookups(self) -> int:
        return self.counts_hits + self.counts_misses

    def to_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "errors": self.errors,
            "counts_memory_hits": self.counts_memory_hits,
            "counts_disk_hits": self.counts_disk_hits,
            "counts_misses": self.counts_misses,
            "counts_stores": self.counts_stores,
        }

    def summary(self) -> str:
        """One line for ``--verbose`` CLI output and reports."""
        return (
            f"run cache: {self.hits} hit(s) "
            f"({self.memory_hits} memory / {self.disk_hits} disk), "
            f"{self.misses} miss(es), "
            f"{self.bytes_read} B read, {self.bytes_written} B written"
        )

    def counts_summary(self) -> str:
        """One line for the schedule-counts memo (CLI ``--verbose``)."""
        return (
            f"counts cache: {self.counts_hits} hit(s) "
            f"({self.counts_memory_hits} memory / "
            f"{self.counts_disk_hits} disk), "
            f"{self.counts_misses} miss(es)"
        )


class RunCache:
    """Two-level (memory LRU + disk) cache of :class:`AlgorithmRun`.

    Args:
        directory: on-disk store location; ``None`` resolves via
            :func:`default_cache_dir`, ``False``-y string disables the
            disk level entirely (memory-only cache).
        max_entries: in-memory LRU bound.
        salt: code-version salt mixed into every key.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        salt: str = CACHE_SALT,
    ) -> None:
        if directory is None:
            self.directory: Path | None = default_cache_dir()
        elif str(directory) == "":
            self.directory = None
        else:
            self.directory = Path(directory).expanduser()
        self.max_entries = max(int(max_entries), 1)
        self.salt = salt
        self.stats = CacheStats()
        #: Longest a process waits for a peer's in-flight computation of
        #: the same entry before computing it itself (see
        #: :meth:`_singleflight`).
        self.singleflight_timeout = 30.0
        self._memory: OrderedDict[str, AlgorithmRun] = OrderedDict()

    # --- keys ------------------------------------------------------------

    def key(
        self,
        algorithm: EdgeCentricAlgorithm,
        graph: Graph,
        kind: str = "edge",
    ) -> str:
        """Content-addressed key: graph digest + algorithm signature + salt.

        ``kind`` separates execution models sharing one (graph,
        algorithm) pair — the edge-centric run and the vertex-centric
        run cache under distinct keys.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(graph.fingerprint().encode())
        h.update(b"|")
        h.update(algorithm.signature().encode())
        h.update(b"|")
        h.update(self.salt.encode())
        h.update(b"|")
        h.update(kind.encode())
        return h.hexdigest()

    def _path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key}.npz"

    # --- main entry ------------------------------------------------------

    def get_or_run(
        self, algorithm: EdgeCentricAlgorithm, graph: Graph
    ) -> AlgorithmRun:
        """Return the cached run, loading or computing it on demand."""
        key = self.key(algorithm, graph)
        run = self._memory.get(key)
        if run is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            _observe_lookup(hit=True)
            return run
        loaded = self._load(key)
        if loaded is not None:
            run, _ = loaded
            self.stats.disk_hits += 1
            _observe_lookup(hit=True)
        else:
            self.stats.misses += 1
            _observe_lookup(hit=False)

            def compute() -> AlgorithmRun:
                result = run_vectorized(algorithm, graph)
                self._store(key, result)
                return result

            def try_load():
                peer = self._load(key)
                return None if peer is None else peer[0]

            run = self._singleflight(self._path(key), try_load, compute)
        self._remember(key, run)
        return run

    def get_or_run_vertex_centric(
        self, algorithm: EdgeCentricAlgorithm, graph: Graph
    ):
        """Like :meth:`get_or_run` for the vertex-centric executor.

        Returns a :class:`repro.algorithms.vertex_centric
        .VertexCentricRun`; the two traffic counters ride along in the
        entry's JSON metadata.
        """
        from ..algorithms.vertex_centric import (VertexCentricRun,
                                                 run_vertex_centric)

        key = self.key(algorithm, graph, kind="vertex")
        vc = self._memory.get(key)
        if vc is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            _observe_lookup(hit=True)
            return vc
        loaded = self._load(key)
        if loaded is not None:
            run, meta = loaded
            try:
                vc = VertexCentricRun(
                    run=run,
                    edges_examined=int(meta["edges_examined"]),
                    vertices_scanned=int(meta["vertices_scanned"]),
                )
                self.stats.disk_hits += 1
                _observe_lookup(hit=True)
            except KeyError:
                self.stats.errors += 1
                vc = None
        if vc is None:
            self.stats.misses += 1
            _observe_lookup(hit=False)

            def compute():
                result = run_vertex_centric(algorithm, graph)
                self._store(key, result.run, extra={
                    "edges_examined": result.edges_examined,
                    "vertices_scanned": result.vertices_scanned,
                })
                return result

            def try_load():
                peer = self._load(key)
                if peer is None:
                    return None
                run, meta = peer
                try:
                    return VertexCentricRun(
                        run=run,
                        edges_examined=int(meta["edges_examined"]),
                        vertices_scanned=int(meta["vertices_scanned"]),
                    )
                except KeyError:
                    return None

            vc = self._singleflight(self._path(key), try_load, compute)
        self._remember(key, vc)
        return vc

    def get_or_scalar(self, name: str, graph: Graph, compute) -> float:
        """Cached scalar graph statistic (imbalance, block counts, ...).

        Keyed on ``(graph content, name, salt)`` and stored as a tiny
        JSON file, so statistics that cost an O(E) pass are computed by
        one process and read back by every other (sweep workers,
        ``--jobs`` experiment runners, fresh CLI invocations).
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(graph.fingerprint().encode())
        h.update(b"|")
        h.update(name.encode())
        h.update(b"|")
        h.update(self.salt.encode())
        key = "scalar-" + h.hexdigest()
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            _observe_lookup(hit=True)
            return hit
        path = (None if self.directory is None
                else self.directory / f"{key}.json")
        if path is not None and path.exists():
            try:
                raw = path.read_text()
                value = float(json.loads(raw)["value"])
                self.stats.disk_hits += 1
                self.stats.bytes_read += len(raw)
                _observe_lookup(hit=True)
                self._remember(key, value)
                return value
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                self.stats.errors += 1
        self.stats.misses += 1
        _observe_lookup(hit=False)

        def compute_and_store() -> float:
            value = float(compute())
            if path is None:
                return value
            payload = json.dumps(
                {"name": name, "value": value, "salt": self.salt}
            )
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    suffix=".json.tmp", dir=str(path.parent)
                )
                with os.fdopen(fd, "w") as fh:
                    fh.write(payload)
                os.replace(tmp, path)
                self.stats.stores += 1
                self.stats.bytes_written += len(payload)
            except OSError:
                self.stats.errors += 1
            return value

        def try_load():
            if path is None or not path.exists():
                return None
            try:
                return float(json.loads(path.read_text())["value"])
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                return None

        value = self._singleflight(path, try_load, compute_and_store)
        self._remember(key, value)
        return value

    def get_or_counts(self, counts_key: str, compute) -> dict:
        """Cached schedule-counts record (the Equations (3)-(8) expansion).

        ``counts_key`` is the *content* key assembled by
        :func:`repro.perf.batch.counts_cache_key` — graph fingerprint,
        algorithm signature, partition count P, PU count N, the
        data-sharing/on-chip/placement flags and the workload scale.
        ``compute`` returns a JSON-ready dict of the
        :class:`~repro.arch.scheduler.ScheduleCounts` fields; JSON
        round-trips every int and float exactly, so a disk hit prices
        bit-identically to a fresh computation.

        Sweeps over device knobs (density, BPG timeout, cell bits, SRAM
        technology) share one entry per counts key, which is the whole
        point: simulate once, price many.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(counts_key.encode())
        h.update(b"|")
        h.update(self.salt.encode())
        key = "counts-" + h.hexdigest()
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            self.stats.counts_memory_hits += 1
            _observe_counts_lookup(hit=True)
            return hit
        path = (None if self.directory is None
                else self.directory / f"{key}.json")
        if path is not None and path.exists():
            try:
                raw = path.read_text()
                record = json.loads(raw)["counts"]
                if not isinstance(record, dict):
                    raise ValueError("counts entry is not a record")
                self.stats.counts_disk_hits += 1
                self.stats.bytes_read += len(raw)
                _observe_counts_lookup(hit=True)
                self._remember(key, record)
                return record
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                self.stats.errors += 1
        self.stats.counts_misses += 1
        _observe_counts_lookup(hit=False)
        record = compute()
        if path is not None:
            payload = json.dumps(
                {"key": counts_key, "salt": self.salt, "counts": record}
            )
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    suffix=".json.tmp", dir=str(path.parent)
                )
                with os.fdopen(fd, "w") as fh:
                    fh.write(payload)
                os.replace(tmp, path)
                self.stats.counts_stores += 1
                self.stats.bytes_written += len(payload)
            except OSError:
                self.stats.errors += 1
        self._remember(key, record)
        return record

    def _remember(self, key: str, run) -> None:
        self._memory[key] = run
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def _singleflight(self, path: Path | None, try_load, compute):
        """Best-effort cross-process dedup of one cache fill.

        Concurrent workers (``sweep(max_workers=...)``,
        ``run_all(jobs=...)``) often miss on the same key at the same
        moment.  The first claims ``<entry>.lock`` (``O_EXCL``); the
        rest poll for the stored entry instead of redoing the
        computation.  Strictly an optimisation: on timeout (stale lock,
        dead peer) or any filesystem error the caller just computes.
        """
        if path is None:
            return compute()
        lock = Path(str(path) + ".lock")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(str(lock), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
        except FileExistsError:
            deadline = time.monotonic() + self.singleflight_timeout
            while time.monotonic() < deadline:
                time.sleep(0.02)
                if path.exists():
                    value = try_load()
                    if value is not None:
                        return value
                if not lock.exists():
                    break
            return compute()
        except OSError:
            return compute()
        try:
            return compute()
        finally:
            try:
                os.unlink(lock)
            except OSError:
                pass

    # --- disk level ------------------------------------------------------

    def _load(self, key: str) -> tuple[AlgorithmRun, dict] | None:
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                meta = json.loads(str(npz["meta"]))
                values = npz["values"]
                active = npz["active_sources"]
            self.stats.bytes_read += path.stat().st_size
            return AlgorithmRun(
                algorithm=meta["algorithm"],
                graph_name=meta["graph_name"],
                values=values,
                iterations=int(meta["iterations"]),
                num_vertices=int(meta["num_vertices"]),
                edges_per_iteration=int(meta["edges_per_iteration"]),
                vertex_bits=int(meta["vertex_bits"]),
                edge_bits=int(meta["edge_bits"]),
                active_sources=tuple(int(a) for a in active),
            ), meta
        except (OSError, KeyError, ValueError, json.JSONDecodeError):
            # A corrupt/truncated entry is treated as a miss and will be
            # overwritten by the recomputed run.
            self.stats.errors += 1
            return None

    def _store(
        self, key: str, run: AlgorithmRun, extra: dict | None = None
    ) -> None:
        path = self._path(key)
        if path is None:
            return
        record = {
            "algorithm": run.algorithm,
            "graph_name": run.graph_name,
            "iterations": run.iterations,
            "num_vertices": run.num_vertices,
            "edges_per_iteration": run.edges_per_iteration,
            "vertex_bits": run.vertex_bits,
            "edge_bits": run.edge_bits,
            "salt": self.salt,
        }
        if extra:
            record.update(extra)
        meta = json.dumps(record)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                suffix=".npz.tmp", dir=str(path.parent)
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez(
                        fh,
                        meta=np.asarray(meta),
                        values=run.values,
                        active_sources=np.asarray(
                            run.active_sources, dtype=np.int64
                        ),
                    )
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.stats.stores += 1
            self.stats.bytes_written += path.stat().st_size
        except OSError:
            # A read-only or full filesystem degrades to memory-only.
            self.stats.errors += 1

    # --- maintenance ------------------------------------------------------

    def clear(self, disk: bool = True) -> int:
        """Drop cached entries; returns the number of disk files removed."""
        self._memory.clear()
        removed = 0
        if disk and self.directory is not None and self.directory.exists():
            for pattern in ("*.npz", "scalar-*.json", "counts-*.json"):
                for entry in self.directory.glob(pattern):
                    try:
                        entry.unlink()
                        removed += 1
                    except OSError:
                        pass
        return removed

    def info(self) -> dict:
        """Snapshot of the cache state (for ``repro cache info``)."""
        files = 0
        disk_bytes = 0
        if self.directory is not None and self.directory.exists():
            for pattern in ("*.npz", "scalar-*.json", "counts-*.json"):
                for entry in self.directory.glob(pattern):
                    try:
                        disk_bytes += entry.stat().st_size
                        files += 1
                    except OSError:
                        pass
        return {
            "directory": str(self.directory) if self.directory else None,
            "salt": self.salt,
            "disk_entries": files,
            "disk_bytes": disk_bytes,
            "memory_entries": len(self._memory),
            "memory_limit": self.max_entries,
            "stats": self.stats.to_dict(),
        }


# --- process-wide default ----------------------------------------------------

_DEFAULT_CACHE: RunCache | None = None


def get_run_cache() -> RunCache:
    """The process-wide cache used by ``run_cached`` (created lazily)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = RunCache()
    return _DEFAULT_CACHE


def set_run_cache(cache: RunCache | None) -> None:
    """Replace the process-wide cache (``None`` resets to lazy default)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = cache


@contextlib.contextmanager
def temporary_run_cache(directory: str | Path | None = ""):
    """Swap in a scratch process-wide cache for the duration.

    The default ``directory=""`` gives a memory-only cache, which is
    what the differential-conformance harness wants: every evaluation
    starts cold (nothing leaks in from a developer's warm disk cache)
    and leaves nothing behind.  Pass a path for a disk-backed scratch
    cache.  The previous cache — including the not-yet-created lazy
    default — is restored on exit.
    """
    previous = _DEFAULT_CACHE
    cache = RunCache(directory=directory)
    set_run_cache(cache)
    try:
        yield cache
    finally:
        set_run_cache(previous)
