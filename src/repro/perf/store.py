"""Crash-safe SQLite result store behind the run cache's disk level.

The file-per-entry npz/JSON layout of PR 2 was best-effort: a torn
write left an undetected half-entry, heavy traffic meant thousands of
small files, and nothing recorded where an entry came from.  This
module replaces that disk level with one SQLite database per cache
directory (``store.sqlite``), designed around four promises:

* **Durability** — the database runs in WAL mode with
  ``synchronous=NORMAL``: a process killed mid-write (SIGKILL, power
  loss) leaves either the old entry or the new one, never a torn row,
  and concurrent readers are never blocked by a writer.
* **Integrity** — every entry stores a BLAKE2b checksum of its
  payload, verified on every read.  A mismatch (bit rot, a torn write
  that slipped past the journal) *quarantines* the entry — the row
  moves to a ``quarantine`` table for later inspection and the caller
  recomputes — instead of crashing or silently serving garbage.
* **Provenance** — entries carry ``kind``, ``salt`` (code version),
  optional ``seed``, ``created_at`` and ``last_used_at`` columns, so a
  store can be audited and evicted meaningfully.
* **Bounded size** — an optional byte budget evicts least-recently-used
  entries on write (``$REPRO_CACHE_MAX_BYTES`` from the CLI side).

Concurrency: SQLite's own locking makes concurrent readers/writers
across processes safe; transient ``SQLITE_BUSY`` results are absorbed
by a ``busy_timeout`` plus a jittered exponential-backoff retry loop.
Connections are never shared across a fork — each store reopens its
connection when it notices a new PID, so process-pool sweep workers
inherit a store object but talk to the database through their own
handle.

Migration from the legacy file layout is one explicit call
(:meth:`SQLiteStore.migrate_from_files`, surfaced as ``repro cache
migrate``); unmigrated legacy files are still *read* transparently by
:class:`~repro.perf.cache.RunCache` as a fallback.  The durability
model, quarantine semantics and chaos-testing story are documented in
docs/robustness.md.
"""

from __future__ import annotations

import hashlib
import os
import random
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import StoreError
from ..obs import metrics as obs_metrics

#: Database filename inside a cache directory.
STORE_FILENAME = "store.sqlite"

#: Schema version stamped into the database; a store written by a
#: newer incompatible layout is refused rather than misread.
STORE_SCHEMA_VERSION = 1

#: How long SQLite itself waits on a locked database before returning
#: SQLITE_BUSY (milliseconds), the first line of defence.
BUSY_TIMEOUT_MS = 5_000

#: Extra application-level retries after a busy timeout, with jittered
#: exponential backoff (the second line of defence).
BUSY_RETRIES = 5
BUSY_BACKOFF_S = 0.01

#: Orphaned ``*.tmp`` files older than this are removed on store open;
#: younger ones may belong to an in-flight legacy writer and are kept.
TMP_MAX_AGE_S = 600.0

_ENTRY_COLUMNS = (
    "key", "kind", "payload", "checksum", "size",
    "salt", "seed", "created_at", "last_used_at",
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    name TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entries (
    key TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    payload BLOB NOT NULL,
    checksum TEXT NOT NULL,
    size INTEGER NOT NULL,
    salt TEXT NOT NULL,
    seed INTEGER,
    created_at REAL NOT NULL,
    last_used_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_entries_lru ON entries (last_used_at);
CREATE TABLE IF NOT EXISTS quarantine (
    key TEXT NOT NULL,
    kind TEXT NOT NULL,
    payload BLOB,
    checksum_expected TEXT,
    checksum_actual TEXT,
    reason TEXT NOT NULL,
    quarantined_at REAL NOT NULL
);
"""


def payload_checksum(payload: bytes) -> str:
    """The integrity checksum stored (and verified) with every entry."""
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def _is_busy(exc: sqlite3.OperationalError) -> bool:
    text = str(exc).lower()
    return "locked" in text or "busy" in text


def clean_orphan_tmp(directory: Path, max_age_s: float | None = None) -> int:
    """Remove ``*.tmp`` leftovers of interrupted atomic writes.

    ``max_age_s`` keeps files younger than the threshold (they may
    belong to a live legacy writer); ``None`` removes every match.
    Returns the number of files removed and bumps the
    ``store_tmp_files_cleaned`` counter.
    """
    removed = 0
    if not directory.exists():
        return 0
    now = time.time()
    for entry in directory.glob("*.tmp"):
        try:
            if max_age_s is not None:
                if now - entry.stat().st_mtime < max_age_s:
                    continue
            entry.unlink()
            removed += 1
        except OSError:
            continue
    if removed:
        obs_metrics.get_metrics().counter(
            obs_metrics.STORE_TMP_CLEANED
        ).add(removed)
    return removed


@dataclass
class VerifyReport:
    """Outcome of one integrity scan (``repro cache verify``)."""

    entries: int = 0
    ok: int = 0
    quarantined: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.quarantined

    def format(self) -> str:
        lines = [f"scanned {self.entries} entr(ies): {self.ok} ok, "
                 f"{len(self.quarantined)} quarantined"]
        for key in self.quarantined:
            lines.append(f"  quarantined: {key}")
        return "\n".join(lines)


@dataclass
class MigrationReport:
    """Outcome of one legacy-file migration (``repro cache migrate``)."""

    migrated: int = 0
    bytes_migrated: int = 0
    skipped: list[str] = field(default_factory=list)
    tmp_removed: int = 0

    def format(self) -> str:
        lines = [f"migrated {self.migrated} entr(ies) "
                 f"({self.bytes_migrated:,} B) into the SQLite store, "
                 f"removed {self.tmp_removed} orphaned tmp file(s)"]
        for name in self.skipped:
            lines.append(f"  skipped corrupt legacy file: {name}")
        return "\n".join(lines)


def _chaos():
    from ..faults.chaos import get_chaos

    return get_chaos()


class SQLiteStore:
    """One WAL-mode SQLite database of content-addressed payloads.

    Args:
        directory: cache directory; the database lives at
            ``<directory>/store.sqlite`` (created on open).
        max_bytes: size budget; writes evict least-recently-used
            entries until the payload total fits.  ``None``: unbounded.
        salt: code-version tag recorded with every entry.
    """

    def __init__(
        self,
        directory: str | Path,
        max_bytes: int | None = None,
        salt: str = "",
    ) -> None:
        self.directory = Path(directory).expanduser()
        if max_bytes is not None and max_bytes <= 0:
            raise StoreError(f"max_bytes must be positive: {max_bytes}")
        self.max_bytes = max_bytes
        self.salt = salt
        self._lock = threading.RLock()
        self._conn: sqlite3.Connection | None = None
        self._conn_pid: int | None = None
        #: Connections inherited across a fork are parked here (never
        #: closed, never used): closing the parent's handle from the
        #: child is exactly the cross-fork use SQLite forbids.
        self._orphaned_conns: list[sqlite3.Connection] = []
        self._jitter = random.Random(os.getpid())
        self.directory.mkdir(parents=True, exist_ok=True)
        clean_orphan_tmp(self.directory, TMP_MAX_AGE_S)
        self._open()

    @property
    def path(self) -> Path:
        return self.directory / STORE_FILENAME

    # --- connection lifecycle --------------------------------------------

    def _open(self) -> None:
        conn = sqlite3.connect(
            str(self.path),
            timeout=BUSY_TIMEOUT_MS / 1000.0,
            check_same_thread=False,
        )
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.executescript(_SCHEMA)
            row = conn.execute(
                "SELECT value FROM meta WHERE name='schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT OR IGNORE INTO meta (name, value) "
                    "VALUES ('schema_version', ?)",
                    (str(STORE_SCHEMA_VERSION),),
                )
                conn.commit()
            elif int(row[0]) > STORE_SCHEMA_VERSION:
                raise StoreError(
                    f"{self.path}: store schema v{row[0]} is newer than "
                    f"this code understands (v{STORE_SCHEMA_VERSION})"
                )
        except BaseException:
            conn.close()
            raise
        self._conn = conn
        self._conn_pid = os.getpid()

    def _connection(self) -> sqlite3.Connection:
        """The current process's connection, reopened after a fork."""
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            if self._conn is not None:
                # Inherited from the parent process: park, never close.
                self._orphaned_conns.append(self._conn)
                self._conn = None
            self._jitter = random.Random(pid)
            self._open()
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None and self._conn_pid == os.getpid():
                self._conn.close()
            self._conn = None
            self._conn_pid = None

    # --- busy retry -------------------------------------------------------

    def _with_retry(self, fn):
        """Run ``fn`` absorbing transient SQLITE_BUSY with jittered
        exponential backoff (on top of SQLite's own busy timeout)."""
        for attempt in range(BUSY_RETRIES + 1):
            try:
                return fn()
            except sqlite3.OperationalError as exc:
                if not _is_busy(exc) or attempt == BUSY_RETRIES:
                    raise
                obs_metrics.get_metrics().counter(
                    obs_metrics.STORE_BUSY_RETRIES
                ).add(1)
                delay = (BUSY_BACKOFF_S * (2 ** attempt)
                         * (0.5 + self._jitter.random()))
                time.sleep(delay)

    # --- entry operations -------------------------------------------------

    def get(self, key: str) -> bytes | None:
        """Fetch one payload, verifying its checksum.

        A checksum mismatch quarantines the entry and returns ``None``
        (the caller recomputes), so a corrupt store degrades to a cold
        one instead of propagating bad data.
        """
        chaos = _chaos()
        if chaos is not None:
            chaos.io_delay()
        with self._lock:
            conn = self._connection()
            row = self._with_retry(lambda: conn.execute(
                "SELECT payload, checksum, kind FROM entries WHERE key=?",
                (key,),
            ).fetchone())
            if row is None:
                return None
            payload = bytes(row[0])
            if payload_checksum(payload) != row[1]:
                self._quarantine(key, row[2], payload, row[1],
                                 reason="checksum mismatch on read")
                return None

            def touch() -> None:
                conn.execute(
                    "UPDATE entries SET last_used_at=? WHERE key=?",
                    (time.time(), key),
                )
                conn.commit()

            try:
                # LRU recency is best-effort: losing a touch to a busy
                # database must not fail the read.
                self._with_retry(touch)
            except sqlite3.OperationalError:
                pass
            return payload

    def put(
        self,
        key: str,
        payload: bytes,
        kind: str,
        seed: int | None = None,
    ) -> None:
        """Insert or replace one entry (checksummed, provenance-stamped),
        then evict down to the size budget."""
        chaos = _chaos()
        checksum = payload_checksum(payload)
        stored = payload
        if chaos is not None:
            chaos.io_delay()
            # A torn write persists a prefix of the payload while the
            # checksum (journalled first in this simulation) describes
            # the whole: exactly what the read-side check must catch.
            stored = chaos.filter_payload(key, payload)
        now = time.time()
        with self._lock:
            conn = self._connection()

            def write() -> None:
                conn.execute(
                    "INSERT OR REPLACE INTO entries "
                    f"({', '.join(_ENTRY_COLUMNS)}) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (key, kind, stored, checksum, len(payload),
                     self.salt, seed, now, now),
                )
                conn.commit()

            self._with_retry(write)
            self._evict_to_budget(protect=key)
        if chaos is not None:
            chaos.after_put(self, key)

    def delete(self, key: str) -> bool:
        with self._lock:
            conn = self._connection()

            def drop() -> int:
                cur = conn.execute(
                    "DELETE FROM entries WHERE key=?", (key,)
                )
                conn.commit()
                return cur.rowcount

            return self._with_retry(drop) > 0

    def keys(self, kind: str | None = None) -> list[str]:
        with self._lock:
            conn = self._connection()
            if kind is None:
                rows = conn.execute(
                    "SELECT key FROM entries ORDER BY key"
                ).fetchall()
            else:
                rows = conn.execute(
                    "SELECT key FROM entries WHERE kind=? ORDER BY key",
                    (kind,),
                ).fetchall()
            return [r[0] for r in rows]

    def entry_count(self) -> int:
        with self._lock:
            conn = self._connection()
            return conn.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()[0]

    def total_bytes(self) -> int:
        """Sum of stored payload sizes (the evictable budget)."""
        with self._lock:
            conn = self._connection()
            return conn.execute(
                "SELECT COALESCE(SUM(size), 0) FROM entries"
            ).fetchone()[0]

    def quarantine_count(self) -> int:
        with self._lock:
            conn = self._connection()
            return conn.execute(
                "SELECT COUNT(*) FROM quarantine"
            ).fetchone()[0]

    def clear(self) -> int:
        """Drop every entry (quarantine included); returns entries removed."""
        with self._lock:
            conn = self._connection()

            def wipe() -> int:
                count = conn.execute(
                    "SELECT COUNT(*) FROM entries"
                ).fetchone()[0]
                conn.execute("DELETE FROM entries")
                conn.execute("DELETE FROM quarantine")
                conn.commit()
                return count

            return self._with_retry(wipe)

    # --- corruption handling ----------------------------------------------

    def _quarantine(
        self,
        key: str,
        kind: str,
        payload: bytes,
        expected: str,
        reason: str,
    ) -> None:
        conn = self._connection()

        def move() -> None:
            conn.execute(
                "INSERT INTO quarantine (key, kind, payload, "
                "checksum_expected, checksum_actual, reason, "
                "quarantined_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (key, kind, payload, expected,
                 payload_checksum(payload), reason, time.time()),
            )
            conn.execute("DELETE FROM entries WHERE key=?", (key,))
            conn.commit()

        try:
            self._with_retry(move)
        except sqlite3.OperationalError:
            # Unable to record the quarantine (hot contention): still
            # refuse to serve the entry; a later read retries the move.
            pass
        obs_metrics.get_metrics().counter(
            obs_metrics.STORE_QUARANTINED
        ).add(1)

    def corrupt_bit(self, key: str, bit_index: int) -> bool:
        """Flip one payload bit *without* updating the checksum.

        This deliberately breaks the entry — it exists for the chaos
        injector and the crash-consistency tests, which assert the next
        read quarantines rather than serves it.
        """
        with self._lock:
            conn = self._connection()
            row = conn.execute(
                "SELECT payload FROM entries WHERE key=?", (key,)
            ).fetchone()
            if row is None or not row[0]:
                return False
            payload = bytearray(row[0])
            bit = bit_index % (len(payload) * 8)
            payload[bit // 8] ^= 1 << (bit % 8)

            def write() -> None:
                conn.execute(
                    "UPDATE entries SET payload=? WHERE key=?",
                    (bytes(payload), key),
                )
                conn.commit()

            self._with_retry(write)
            return True

    # --- size budget ------------------------------------------------------

    def _evict_to_budget(self, protect: str | None = None) -> int:
        """Evict LRU entries until the payload total fits the budget.

        ``protect`` exempts the just-written key, so a single oversized
        entry is kept rather than thrashing."""
        if self.max_bytes is None:
            return 0
        conn = self._connection()
        evicted = 0
        while True:
            total = conn.execute(
                "SELECT COALESCE(SUM(size), 0) FROM entries"
            ).fetchone()[0]
            if total <= self.max_bytes:
                break
            row = conn.execute(
                "SELECT key FROM entries WHERE key != ? "
                "ORDER BY last_used_at ASC, key ASC LIMIT 1",
                (protect or "",),
            ).fetchone()
            if row is None:
                break

            def drop(victim=row[0]) -> None:
                conn.execute(
                    "DELETE FROM entries WHERE key=?", (victim,)
                )
                conn.commit()

            self._with_retry(drop)
            evicted += 1
        if evicted:
            obs_metrics.get_metrics().counter(
                obs_metrics.STORE_EVICTIONS
            ).add(evicted)
        return evicted

    # --- maintenance ------------------------------------------------------

    def verify(self) -> VerifyReport:
        """Integrity-scan every entry, quarantining checksum failures."""
        report = VerifyReport()
        with self._lock:
            conn = self._connection()
            rows = conn.execute(
                "SELECT key, kind, payload, checksum FROM entries "
                "ORDER BY key"
            ).fetchall()
            report.entries = len(rows)
            for key, kind, payload, checksum in rows:
                payload = bytes(payload)
                if payload_checksum(payload) == checksum:
                    report.ok += 1
                else:
                    self._quarantine(key, kind, payload, checksum,
                                     reason="checksum mismatch on scan")
                    report.quarantined.append(key)
        return report

    def vacuum(self) -> dict:
        """Drop quarantined rows and compact the database file."""
        with self._lock:
            conn = self._connection()
            before = self.path.stat().st_size if self.path.exists() else 0
            dropped = conn.execute(
                "SELECT COUNT(*) FROM quarantine"
            ).fetchone()[0]

            def compact() -> None:
                conn.execute("DELETE FROM quarantine")
                conn.commit()
                conn.execute("VACUUM")
                conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")

            self._with_retry(compact)
            after = self.path.stat().st_size if self.path.exists() else 0
        return {
            "quarantine_dropped": dropped,
            "bytes_before": before,
            "bytes_after": after,
        }

    # --- migration --------------------------------------------------------

    def migrate_from_files(
        self, directory: str | Path | None = None
    ) -> MigrationReport:
        """One-shot adoption of the legacy file-per-entry layout.

        Every readable ``<key>.npz`` / ``scalar-*.json`` /
        ``counts-*.json`` becomes a store entry (keyed on its stem) and
        the source file is removed; an unreadable legacy file is
        renamed ``<name>.corrupt`` so re-running ``migrate`` converges.
        """
        import io as _io
        import json as _json
        import zipfile as _zipfile

        import numpy as _np

        directory = Path(directory) if directory else self.directory
        report = MigrationReport()
        report.tmp_removed = clean_orphan_tmp(directory, max_age_s=None)
        patterns = (
            ("*.npz", "run"),
            ("scalar-*.json", "scalar"),
            ("counts-*.json", "counts"),
        )
        for pattern, kind in patterns:
            for entry in sorted(directory.glob(pattern)):
                try:
                    payload = entry.read_bytes()
                    if kind == "run":
                        with _np.load(_io.BytesIO(payload),
                                      allow_pickle=False) as npz:
                            _json.loads(str(npz["meta"]))
                    else:
                        _json.loads(payload.decode("utf-8"))
                except (OSError, ValueError, KeyError,
                        _json.JSONDecodeError, _zipfile.BadZipFile):
                    report.skipped.append(entry.name)
                    try:
                        entry.rename(
                            entry.with_name(entry.name + ".corrupt")
                        )
                    except OSError:
                        pass
                    continue
                self.put(entry.stem, payload, kind=kind)
                report.migrated += 1
                report.bytes_migrated += len(payload)
                try:
                    entry.unlink()
                except OSError:
                    pass
        return report
