"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — list datasets, machines, algorithms and experiments.
* ``run`` — simulate one (machine, algorithm, workload) and print the
  report (``--json`` for machine-readable output).
* ``compare`` — run every machine on one workload and print a ranking.
* ``experiment`` — regenerate one or more tables/figures
  (``--jobs N`` fans the drivers out over worker processes).
* ``cache`` — inspect (``cache info``) or wipe (``cache clear``) the
  persistent run cache that skips re-running converged algorithms.
* ``trace`` — run one experiment with span tracing enabled, write the
  JSONL trace, and print its per-phase time/energy attribution.
* ``metrics`` — run one simulation and print the metrics registry.
* ``verify`` — fuzz the differential-conformance oracles: random
  graphs/configs through every redundant execution path, mismatches
  shrunk and written as replayable repro files (docs/verification.md).
* ``optimize`` — search the machine design space (HyVE, GraphR, CPU
  backends) for Pareto-optimal (time, energy, EDP) configurations and
  print a recommended machine per (dataset, algorithm) cell
  (docs/autotuning.md).
* ``stream`` — replay an ``hyve-updates-v1`` update log (or a seeded
  synthetic stream) through the bounded-staleness engine, check the
  incremental values against a from-scratch rebuild, and print the
  staleness and throughput tables (docs/streaming.md).

``run``, ``compare`` and ``experiment`` also accept ``--trace-out PATH``
to record a trace of whatever they execute (see docs/observability.md).

Examples::

    python -m repro info
    python -m repro run --machine acc+HyVE-opt --algorithm pr --dataset LJ
    python -m repro run --algorithm bfs --graph edges.txt --json
    python -m repro run --faults harsh --seed 7 --dataset YT --verbose
    python -m repro compare --algorithm pr --dataset YT
    python -m repro experiment fig16 fig21
    python -m repro experiment --jobs 4
    python -m repro cache info
    python -m repro trace headline --trace-out trace.jsonl
    python -m repro metrics --algorithm pr --dataset YT --json
    python -m repro verify --seed 0 --cases 50
    python -m repro verify --list
    python -m repro verify --replay tests/corpus/some-repro.json
    python -m repro optimize --dataset YT --dataset LJ --algorithm pr
    python -m repro optimize --engine guided --budget 200 --weight edp=1
    python -m repro optimize --backend hyve --frontier-out frontier.csv
    python -m repro stream --log updates.jsonl --k 16
    python -m repro stream --vertices 200 --updates 2000 --json

Operator errors (unknown names, unreadable graph files, malformed edge
lists) print one ``error:`` line on stderr and exit with status 2.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys

from .algorithms import make_algorithm
from .arch.config import NAMED_CONFIGS, Workload
from .arch.cpu import CPU_DRAM, CPU_DRAM_OPT, CPUMachine
from .arch.graphr import GraphRMachine
from .arch.machine import make_machine
from .errors import ReproError
from .faults import FAULT_PROFILES, make_profile
from .graph.datasets import DATASET_ORDER, DATASETS
from .graph import io as graph_io

#: Machines addressable from the CLI.
MACHINE_NAMES = tuple(NAMED_CONFIGS) + ("CPU+DRAM", "CPU+DRAM-opt", "GraphR")

ALGORITHM_NAMES = ("pr", "bfs", "cc", "sssp", "spmv")


def build_machine(name: str, faults=None):
    """Build a named machine; ``faults`` applies to accelerators only
    (the CPU and GraphR models have no fault instrumentation)."""
    if name == "CPU+DRAM":
        return CPUMachine(CPU_DRAM)
    if name == "CPU+DRAM-opt":
        return CPUMachine(CPU_DRAM_OPT)
    if name == "GraphR":
        return GraphRMachine()
    return make_machine(name, faults=faults)


def load_faults(args: argparse.Namespace):
    if not getattr(args, "faults", None):
        return None
    return make_profile(args.faults, seed=getattr(args, "seed", None))


def load_workload(args: argparse.Namespace) -> Workload:
    if args.graph:
        graph = graph_io.load_edge_list(args.graph)
        return Workload(graph)
    return Workload.from_dataset(args.dataset)


def cmd_info(args: argparse.Namespace) -> int:
    del args
    print("datasets (synthetic stand-ins at paper-reported scale):")
    for key in DATASET_ORDER:
        spec = DATASETS[key]
        print(f"  {key}: {spec.full_name}, "
              f"{spec.paper_vertices:,} vertices / "
              f"{spec.paper_edges:,} edges "
              f"(synthetic {spec.num_vertices:,}/{spec.num_edges:,})")
    print("\nmachines:")
    for name in MACHINE_NAMES:
        print(f"  {name}")
    print("\nalgorithms:", ", ".join(ALGORITHM_NAMES))
    from .experiments import ALL_EXPERIMENTS

    print("\nexperiments:", ", ".join(ALL_EXPERIMENTS))
    return 0


def _print_cache_stats() -> None:
    from .perf.cache import get_run_cache

    stats = get_run_cache().stats
    print(f"[run cache] {stats.summary()}")
    print(f"[counts cache] {stats.counts_summary()}")


@contextlib.contextmanager
def _tracing(path: str | None):
    """Record a trace to ``path`` for the duration; no-op when None.

    The completion note goes to stderr so machine-readable stdout
    (``--json``, CSV redirects) stays clean.
    """
    if not path:
        yield None
        return
    from .obs.trace import get_tracer

    tracer = get_tracer()
    tracer.start(path)
    try:
        yield tracer
    finally:
        records = tracer.records_written
        tracer.stop()
        print(f"[trace written to {path} ({records} records)]",
              file=sys.stderr)


def cmd_run(args: argparse.Namespace) -> int:
    workload = load_workload(args)
    faults = load_faults(args)
    machine = build_machine(args.machine, faults=faults)
    algorithm = make_algorithm(args.algorithm)
    with _tracing(args.trace_out):
        result = machine.run(algorithm, workload)
    if args.json:
        payload = result.report.to_dict()
        if result.faults is not None:
            payload["faults"] = result.faults.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        print(result.report.summary())
        print("breakdown:")
        for bucket, share in result.report.breakdown().items():
            print(f"  {bucket:18s} {100 * share:5.1f}%")
        if result.faults is not None:
            print(result.faults.summary())
    if args.verbose:
        _print_cache_stats()
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .perf.batch import run_grid

    workload = load_workload(args)
    faults = load_faults(args)
    rows = []
    with _tracing(args.trace_out):
        # The named accelerators share one convergence and (per counts
        # key) one schedule expansion; price them as one grid.  CPU and
        # GraphR models keep their own run paths.
        acc_names = list(NAMED_CONFIGS)
        grid = run_grid(make_algorithm(args.algorithm), workload,
                        [NAMED_CONFIGS[n]() for n in acc_names],
                        faults=faults)
        batched = {n: r.report for n, r in zip(acc_names, grid)}
        for name in MACHINE_NAMES:
            report = batched.get(name)
            if report is None:
                machine = build_machine(name, faults=faults)
                report = machine.run(make_algorithm(args.algorithm),
                                     workload).report
            rows.append((name, report.mteps_per_watt, report.total_energy,
                         report.time))
    rows.sort(key=lambda r: -r[1])
    print(f"{'machine':16s} {'MTEPS/W':>10s} {'energy (mJ)':>12s} "
          f"{'time (ms)':>10s}")
    for name, eff, energy, time in rows:
        print(f"{name:16s} {eff:10.1f} {energy * 1e3:12.3f} "
              f"{time * 1e3:10.2f}")
    if args.verbose:
        _print_cache_stats()
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import ALL_EXPERIMENTS, run_selected

    names = args.names or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    if args.trace_out and args.jobs > 1:
        print("error: --trace-out requires serial execution (--jobs 1); "
              "worker processes cannot share one trace stream",
              file=sys.stderr)
        return 2
    with _tracing(args.trace_out):
        results = run_selected(names, save=False, jobs=args.jobs)
    for name in names:
        result = results[name]
        print(result.format())
        if not args.no_save:
            path = result.save()
            result.save_csv()
            print(f"[saved to {path}]")
        print()
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from .experiments import ALL_EXPERIMENTS, run_selected

    if args.experiment not in ALL_EXPERIMENTS:
        print(f"unknown experiment: {args.experiment} "
              f"(choose from {', '.join(ALL_EXPERIMENTS)})",
              file=sys.stderr)
        return 2
    with _tracing(args.trace_out):
        results = run_selected([args.experiment], save=False, jobs=1)
    if not args.quiet:
        print(results[args.experiment].format())
        print()
    from .obs import AttributionError, fold_records, format_attribution
    from .obs.trace import read_trace

    attribution = fold_records(read_trace(args.trace_out))
    try:
        print(format_attribution(attribution))
    except AttributionError:
        # Experiments over non-accelerator machines only carry spans,
        # not attribution events; the trace file is still valid.
        print(f"({attribution.span_count} spans, "
              f"{attribution.event_count} events; no accelerator report "
              f"events to attribute)")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import get_metrics

    workload = load_workload(args)
    faults = load_faults(args)
    machine = build_machine(args.machine, faults=faults)
    algorithm = make_algorithm(args.algorithm)
    registry = get_metrics()
    registry.reset()
    with _tracing(args.trace_out):
        machine.run(algorithm, workload)
    if args.json:
        print(json.dumps(registry.snapshot(), indent=2))
    else:
        print(registry.format())
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from .verify import get_oracles, replay_file, run_verify

    if args.list:
        for oracle in get_oracles():
            stride = (f" [every {oracle.stride} cases]"
                      if oracle.stride > 1 else "")
            print(f"{oracle.name}: {oracle.description}{stride}")
        return 0
    if args.replay:
        failed = 0
        for path in args.replay:
            result = replay_file(path)
            if result.ok:
                print(f"{path}: PASS ({result.oracle} on "
                      f"{result.case.describe()})")
            else:
                failed += 1
                print(f"{path}: FAIL ({result.oracle})\n  {result.error}")
        return 1 if failed else 0
    summary = run_verify(
        seed=args.seed,
        cases=args.cases,
        oracle_names=args.oracle or None,
        failures_dir=args.failures_dir,
        max_failures=args.max_failures,
        shrink=not args.no_shrink,
    )
    print(summary.format())
    return 0 if summary.ok else 1


def _parse_weights(pairs: "list[str] | None") -> dict[str, float] | None:
    """Parse repeated ``--weight name=value`` flags into a dict."""
    from .tune import OBJECTIVES

    if not pairs:
        return None
    weights: dict[str, float] = {}
    for pair in pairs:
        name, sep, raw = pair.partition("=")
        if not sep or name not in OBJECTIVES:
            raise ReproError(
                f"bad --weight {pair!r}; expected name=value with name "
                f"in {{{', '.join(OBJECTIVES)}}}"
            )
        try:
            weights[name] = float(raw)
        except ValueError:
            raise ReproError(
                f"bad --weight {pair!r}: {raw!r} is not a number"
            ) from None
    return weights


def cmd_optimize(args: argparse.Namespace) -> int:
    from .algorithms import make_algorithm as _make_algorithm
    from .tune import (
        BACKENDS,
        default_space,
        format_recommendations,
        frontiers_to_csv,
        recommend,
        search,
    )

    datasets = args.dataset or ["YT", "LJ"]
    algorithms = args.algorithm or ["pr", "bfs"]
    backends = args.backend or list(BACKENDS)
    weights = _parse_weights(args.weight)
    # The guided engine only guides when it cannot afford everything;
    # the structural HyVE space is what makes a budget meaningful.
    structural = args.engine == "guided"
    spaces = [default_space(b, structural=structural) for b in backends]
    frontiers = []
    with _tracing(args.trace_out):
        for dataset in datasets:
            workload = Workload.from_dataset(dataset)
            for algorithm_name in algorithms:
                frontier = search(
                    _make_algorithm(algorithm_name),
                    workload,
                    spaces,
                    engine=args.engine,
                    budget=args.budget,
                    seed=args.seed,
                )
                frontiers.append(frontier)
                print(
                    f"[{dataset} {algorithm_name}] priced "
                    f"{frontier.evaluated} config(s) "
                    f"({frontier.skipped} invalid corner(s) skipped), "
                    f"frontier holds {len(frontier)} point(s)",
                    file=sys.stderr,
                )
    if args.frontier_out:
        from pathlib import Path

        Path(args.frontier_out).write_text(frontiers_to_csv(frontiers))
        print(f"[frontier written to {args.frontier_out}]",
              file=sys.stderr)
    if args.json:
        print(json.dumps([f.to_dict() for f in frontiers], indent=2,
                         sort_keys=True))
    else:
        print(format_recommendations(recommend(frontiers, weights)))
    if args.verbose:
        _print_cache_stats()
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    import numpy as np

    from .algorithms import make_algorithm as _make_algorithm
    from .algorithms.runner import run_vectorized
    from .dynamic.stream import (READ_HEAVY, UPDATE_HEAVY, UPDATES_SCHEMA,
                                 StreamEngine, UpdateLog,
                                 generate_update_log, measure_stream)
    from .graph.generators import rmat
    from .perf.cache import temporary_run_cache

    if args.log:
        log = UpdateLog.load(args.log)
    else:
        base = rmat(args.vertices, args.edges, seed=args.seed,
                    name="stream-cli")
        log = generate_update_log(base, args.updates, seed=args.seed,
                                  delete_fraction=args.delete_fraction)
    events = log.to_arrays()
    deletes = int(np.count_nonzero(events[:, 1] == 1))

    with temporary_run_cache(""):
        engine = StreamEngine(log.num_vertices, k=args.k, name=log.name) \
            if args.k else StreamEngine(log.num_vertices, name=log.name)
        engine.replay(log)
        snapshot = engine.snapshot()
        conforming = True
        for name in engine.algorithms:
            rebuilt = run_vectorized(_make_algorithm(name), snapshot).values
            got = engine.query(name)
            ok = (np.allclose(got, rebuilt, rtol=1e-12, atol=1e-12)
                  if name == "pr" else np.array_equal(got, rebuilt))
            conforming = conforming and ok
        stats = engine.stats

    mixes = {m.name: m for m in (UPDATE_HEAVY, READ_HEAVY)}
    chosen = args.mix or list(mixes)
    results = [measure_stream(log, mixes[m], k=args.k or None)
               for m in chosen]

    if args.json:
        pending = stats.pending_at_flush
        print(json.dumps({
            "schema": UPDATES_SCHEMA,
            "log": log.name,
            "num_vertices": log.num_vertices,
            "events": len(log),
            "deletes": deletes,
            "logical_time": engine.logical_time,
            "live_edges": engine.num_edges,
            "k": engine.k,
            "incremental_matches_rebuild": bool(conforming),
            "staleness": {
                "flushes": stats.flushes,
                "max_pending_at_flush": stats.max_pending_at_flush,
                "mean_pending_at_flush":
                    sum(pending) / len(pending) if pending else 0.0,
                "incremental_refreshes": stats.incremental_refreshes,
                "rebuilds": stats.rebuilds,
            },
            "mixes": [{
                "mix": r.mix,
                "num_updates": r.num_updates,
                "num_queries": r.num_queries,
                "flushes": r.flushes,
                "updates_per_second": r.updates_per_second,
                "speedup_vs_serial": r.speedup_vs_serial,
            } for r in results],
        }, indent=2, sort_keys=True))
        return 0

    print(f"log:          {log.name} ({UPDATES_SCHEMA})")
    print(f"vertices:     {log.num_vertices}")
    print(f"events:       {len(log)} ({len(log) - deletes} adds / "
          f"{deletes} deletes, t0..t{engine.logical_time})")
    print(f"live edges:   {engine.num_edges}")
    print(f"incremental values match from-scratch rebuild: {conforming}")
    print(f"\nstaleness contract (k={engine.k}, "
          f"algorithms: {', '.join(engine.algorithms)}):")
    pending = stats.pending_at_flush
    mean_pending = sum(pending) / len(pending) if pending else 0.0
    print(f"  flushes                {stats.flushes}")
    print(f"  max pending at flush   {stats.max_pending_at_flush}")
    print(f"  mean pending at flush  {mean_pending:.1f}")
    print(f"  incremental refreshes  {stats.incremental_refreshes}")
    print(f"  rebuilds               {stats.rebuilds}")
    print("\nthroughput:")
    for r in results:
        print(f"  {r.mix}: {r.updates_per_second:,.0f} updates/s "
              f"({r.speedup_vs_serial:.2f}x vs serial; "
              f"{r.num_updates} updates, {r.num_queries} queries, "
              f"{r.flushes} flushes)")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .errors import StoreError
    from .perf.cache import get_run_cache

    cache = get_run_cache()
    if args.action == "clear":
        removed = cache.clear(disk=True)
        print(f"removed {removed} cached run(s)")
        return 0
    if args.action == "migrate":
        try:
            report = cache.migrate()
        except StoreError as exc:
            print(f"migrate failed: {exc}", file=sys.stderr)
            return 1
        print(report.format())
        return 0
    if args.action == "verify":
        try:
            report = cache.verify_store()
        except StoreError as exc:
            print(f"verify failed: {exc}", file=sys.stderr)
            return 1
        print(report.format())
        return 0 if report.clean else 1
    if args.action == "vacuum":
        try:
            result = cache.vacuum()
        except StoreError as exc:
            print(f"vacuum failed: {exc}", file=sys.stderr)
            return 1
        print(f"dropped {result['quarantine_dropped']} quarantined "
              f"row(s); {result['bytes_before']:,} B -> "
              f"{result['bytes_after']:,} B")
        return 0
    info = cache.info()
    print(f"directory:      {info['directory'] or '(disk cache disabled)'}")
    print(f"backend:        {info['backend'] or '(none)'}")
    print(f"salt:           {info['salt']}")
    print(f"disk entries:   {info['disk_entries']}"
          + (f" (+{info['legacy_files']} unmigrated legacy file(s))"
             if info['legacy_files'] else ""))
    print(f"disk bytes:     {info['disk_bytes']:,}"
          + (f" (budget {info['max_bytes']:,})"
             if info['max_bytes'] else ""))
    print(f"quarantined:    {info['quarantined']}")
    print(f"memory entries: {info['memory_entries']} "
          f"(limit {info['memory_limit']})")
    print(f"session stats:  {cache.stats.summary()}")
    print(f"counts stats:   {cache.stats.counts_summary()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HyVE hybrid vertex-edge memory hierarchy simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list datasets, machines and experiments")

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", choices=DATASET_ORDER, default="YT",
                       help="evaluation dataset (default YT)")
        p.add_argument("--graph", metavar="FILE",
                       help="edge-list file instead of a dataset")
        p.add_argument("--algorithm", choices=ALGORITHM_NAMES, default="pr")
        p.add_argument("--faults", choices=tuple(FAULT_PROFILES),
                       help="inject faults per the named profile "
                            "(accelerator machines only)")
        p.add_argument("--seed", type=int, default=None,
                       help="fault-injection seed (same seed + profile "
                            "=> identical injected faults)")

    def add_trace_arg(p: argparse.ArgumentParser,
                      default: str | None = None) -> None:
        p.add_argument("--trace-out", metavar="PATH", default=default,
                       help="record a JSONL span trace of the execution "
                            "to PATH (see docs/observability.md)"
                            + (f" (default {default})" if default else ""))

    run = sub.add_parser("run", help="simulate one machine")
    add_workload_args(run)
    add_trace_arg(run)
    run.add_argument("--machine", choices=MACHINE_NAMES,
                     default="acc+HyVE-opt")
    run.add_argument("--json", action="store_true",
                     help="print the full report as JSON")
    run.add_argument("--verbose", action="store_true",
                     help="print run-cache statistics after the report")

    compare = sub.add_parser("compare", help="rank every machine")
    add_workload_args(compare)
    add_trace_arg(compare)
    compare.add_argument("--verbose", action="store_true",
                         help="print run-cache statistics after the "
                              "ranking")

    exp = sub.add_parser("experiment",
                         help="regenerate paper tables/figures")
    exp.add_argument("names", nargs="*",
                     help="experiment ids (default: all)")
    exp.add_argument("--no-save", action="store_true",
                     help="print only; do not write under results/")
    exp.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="run drivers over N worker processes "
                          "(default 1: serial)")
    add_trace_arg(exp)

    trace = sub.add_parser("trace",
                           help="run one experiment with tracing on and "
                                "print its per-phase attribution")
    trace.add_argument("experiment",
                       help="experiment id (see `repro info`)")
    add_trace_arg(trace, default="trace.jsonl")
    trace.add_argument("--quiet", action="store_true",
                       help="skip the experiment table; print only the "
                            "attribution")

    metrics = sub.add_parser("metrics",
                             help="run one simulation and print the "
                                  "metrics registry")
    add_workload_args(metrics)
    add_trace_arg(metrics)
    metrics.add_argument("--machine", choices=MACHINE_NAMES,
                         default="acc+HyVE-opt")
    metrics.add_argument("--json", action="store_true",
                         help="print the snapshot as JSON")

    verify = sub.add_parser(
        "verify",
        help="fuzz the differential-conformance oracles "
             "(cross-engine identity, executor equivalence, "
             "metamorphic invariants)")
    verify.add_argument("--seed", type=int, default=0,
                        help="case-generation seed (default 0; same "
                             "seed => same cases)")
    verify.add_argument("--cases", type=int, default=50,
                        help="number of random cases (default 50)")
    verify.add_argument("--oracle", action="append", metavar="NAME",
                        help="run only this oracle (repeatable; "
                             "default: all; see --list)")
    verify.add_argument("--failures-dir", metavar="DIR",
                        default="verify-failures",
                        help="where shrunk repro files are written "
                             "(default verify-failures/)")
    verify.add_argument("--max-failures", type=int, default=5,
                        help="stop after this many distinct failures "
                             "(default 5)")
    verify.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimising them")
    verify.add_argument("--list", action="store_true",
                        help="list the registered oracles and exit")
    verify.add_argument("--replay", nargs="+", metavar="FILE",
                        help="replay repro file(s) instead of fuzzing; "
                             "exits 1 if any still fails")

    optimize = sub.add_parser(
        "optimize",
        help="search the machine design space for Pareto-optimal "
             "(time, energy, EDP) configurations (docs/autotuning.md)")
    optimize.add_argument("--dataset", action="append",
                          choices=DATASET_ORDER, metavar="NAME",
                          help="dataset to tune for (repeatable; "
                               "default: YT and LJ)")
    optimize.add_argument("--algorithm", action="append",
                          choices=ALGORITHM_NAMES, metavar="NAME",
                          help="algorithm to tune for (repeatable; "
                               "default: pr and bfs)")
    optimize.add_argument("--backend", action="append",
                          choices=("hyve", "graphr", "cpu"),
                          help="backend space(s) to search (repeatable; "
                               "default: all three)")
    optimize.add_argument("--engine", choices=("exhaustive", "guided"),
                          default="exhaustive",
                          help="exhaustive: price every configuration; "
                               "guided: budgeted successive halving over "
                               "the structural space")
    optimize.add_argument("--budget", type=int, default=None,
                          metavar="N",
                          help="max configurations the guided engine "
                               "prices (default: everything)")
    optimize.add_argument("--seed", type=int, default=0,
                          help="guided-engine sampling seed (default 0; "
                               "same seed => same frontier)")
    optimize.add_argument("--weight", action="append", metavar="OBJ=W",
                          help="objective weight for the recommendation, "
                               "e.g. --weight edp=2 --weight time=1 "
                               "(repeatable; named objectives: time, "
                               "energy, edp; unnamed ones drop to 0)")
    optimize.add_argument("--frontier-out", metavar="PATH",
                          help="write every frontier point as CSV")
    optimize.add_argument("--json", action="store_true",
                          help="print the frontiers as JSON instead of "
                               "the recommendation table")
    optimize.add_argument("--verbose", action="store_true",
                          help="print run-cache statistics at the end")
    add_trace_arg(optimize)

    stream = sub.add_parser(
        "stream",
        help="replay an update log through the bounded-staleness "
             "streaming engine and print staleness + throughput tables "
             "(docs/streaming.md)")
    stream.add_argument("--log", metavar="FILE",
                        help="hyve-updates-v1 JSONL log to replay "
                             "(default: a seeded synthetic stream)")
    stream.add_argument("--vertices", type=int, default=200,
                        help="synthetic base-graph vertices (default 200)")
    stream.add_argument("--edges", type=int, default=800,
                        help="synthetic base-graph edges (default 800)")
    stream.add_argument("--updates", type=int, default=2000,
                        help="synthetic update count (default 2000)")
    stream.add_argument("--delete-fraction", type=float, default=0.25,
                        help="synthetic delete share (default 0.25)")
    stream.add_argument("--seed", type=int, default=0,
                        help="synthetic stream seed (default 0)")
    stream.add_argument("--k", type=int, default=None,
                        help="staleness bound: flush after K pending "
                             "updates (default: engine/mix defaults)")
    stream.add_argument("--mix", action="append",
                        choices=("update-heavy", "read-heavy"),
                        help="throughput mix to bench (repeatable; "
                             "default: both)")
    stream.add_argument("--json", action="store_true",
                        help="print everything as JSON")

    cache = sub.add_parser("cache",
                           help="inspect or maintain the persistent run "
                                "cache (see docs/robustness.md)")
    cache.add_argument("action",
                       choices=("info", "clear", "migrate", "verify",
                                "vacuum"),
                       help="info: show location/size/stats; "
                            "clear: delete all cached runs; "
                            "migrate: adopt legacy file-per-entry "
                            "caches into the SQLite store; "
                            "verify: integrity-scan the store "
                            "(exit 1 if anything was quarantined); "
                            "vacuum: drop quarantined rows and "
                            "compact the database")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "run": cmd_run,
        "compare": cmd_compare,
        "experiment": cmd_experiment,
        "cache": cmd_cache,
        "trace": cmd_trace,
        "metrics": cmd_metrics,
        "verify": cmd_verify,
        "optimize": cmd_optimize,
        "stream": cmd_stream,
    }
    try:
        return handlers[args.command](args)
    except (ReproError, OSError) as exc:
        # Operator errors (unknown names, unreadable files, malformed
        # inputs) get one line on stderr and exit code 2 — not a
        # traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
