"""The two search engines behind ``repro optimize``.

* :func:`exhaustive_search` prices *every* candidate.  HyVE candidates
  route through :func:`repro.arch.sweep.sweep_axis` /
  :func:`repro.perf.batch.run_grid`, so the space is grouped by counts
  key and each group is priced by a handful of vectorized
  :func:`~repro.arch.machine.fold_many` passes — on a warm counts cache
  this prices >10^4 configurations/second (``tools/bench.py --scenario
  tune``) while staying bit-identical to a serial ``run()`` loop.

* :func:`guided_search` runs seeded successive halving over counts-key
  *groups* for the axes that change the schedule (N, the SRAM point,
  placement, data sharing): each rung samples a few configurations per
  surviving group, ranks groups by their best EDP so far, and halves.
  With ``budget >= space.size`` it degenerates to exhaustive pricing,
  which is what guarantees zero regret on enumerable spaces (the
  ``tuner-identity`` oracle checks the exhaustive side).

Both return a :class:`~repro.tune.frontier.ParetoFrontier` extracted by
one exact :func:`~repro.tune.pareto.pareto_mask` pass over everything
priced.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Sequence

import numpy as np

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import run_cached
from ..arch.config import Workload
from ..arch.cpu import CPUMachine
from ..arch.graphr import GraphRMachine
from ..arch.report import EnergyReport
from ..errors import ConfigError
from ..graph.graph import Graph
from ..obs.metrics import (
    TUNE_CONFIGS_PRICED,
    TUNE_FRONTIER_SIZE,
    get_metrics,
)
from ..obs.trace import get_tracer
from ..perf.batch import counts_cache_key
from .frontier import FrontierPoint, ParetoFrontier
from .pareto import pareto_mask
from .space import BACKEND_HYVE, Candidate, SearchSpace

#: Engine names (the CLI's ``--engine`` vocabulary).
EXHAUSTIVE = "exhaustive"
GUIDED = "guided"
ENGINES = (EXHAUSTIVE, GUIDED)


def _enumerate(
    spaces: Sequence[SearchSpace],
) -> tuple[list[Candidate], int]:
    """Concatenate spaces into one globally indexed candidate list."""
    candidates: list[Candidate] = []
    skipped = 0
    for space in spaces:
        cands, skip = space.candidates()
        skipped += skip
        for cand in cands:
            candidates.append(replace(cand, index=len(candidates)))
    return candidates, skipped


def _price(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload,
    candidates: Sequence[Candidate],
) -> list[EnergyReport]:
    """Price candidates in order, batching per backend.

    HyVE configs go through the simulate-once/price-many grid
    (:func:`~repro.arch.sweep.sweep_axis`); GraphR configurations share
    one cached traffic expansion per (run, workload), so each extra
    config is a cheap scalar fold; the CPU baseline is closed-form.
    """
    from ..arch.sweep import sweep_axis

    reports: list[EnergyReport | None] = [None] * len(candidates)
    by_backend: dict[str, list[int]] = {}
    for i, cand in enumerate(candidates):
        by_backend.setdefault(cand.backend, []).append(i)
    tracer = get_tracer()
    for backend, indices in by_backend.items():
        with tracer.span(
            "tune.price", backend=backend, configs=len(indices)
        ):
            if backend == BACKEND_HYVE:
                results = sweep_axis(
                    [candidates[i] for i in indices],
                    lambda cand: cand.config,
                    lambda: algorithm,
                    workload,
                )
                for i, result in zip(indices, results):
                    reports[i] = result.report
            else:
                machine_cls = (
                    GraphRMachine if backend == "graphr" else CPUMachine
                )
                for i in indices:
                    machine = machine_cls(candidates[i].config)
                    reports[i] = machine.run(algorithm, workload).report
    return reports  # type: ignore[return-value]


def _extract(
    workload: Workload,
    algorithm: EdgeCentricAlgorithm,
    engine: str,
    pairs: "list[tuple[Candidate, EnergyReport]]",
    skipped: int,
) -> ParetoFrontier:
    """One exact Pareto pass over everything an engine priced."""
    metrics = get_metrics()
    metrics.counter(TUNE_CONFIGS_PRICED).add(len(pairs))
    with get_tracer().span("tune.pareto", points=len(pairs)):
        if pairs:
            objectives = np.array(
                [[r.time, r.total_energy, r.edp] for _, r in pairs],
                dtype=float,
            )
            mask = pareto_mask(objectives)
        else:
            mask = np.zeros(0, dtype=bool)
        points = [
            FrontierPoint(
                index=cand.index,
                backend=cand.backend,
                label=cand.label,
                time=report.time,
                energy=report.total_energy,
                edp=report.edp,
                mteps_per_watt=report.mteps_per_watt,
                report=report,
            )
            for (cand, report), keep in zip(pairs, mask)
            if keep
        ]
    points.sort(key=lambda p: (p.time, p.energy, p.edp, p.label, p.index))
    metrics.gauge(TUNE_FRONTIER_SIZE).set(len(points))
    return ParetoFrontier(
        graph=workload.name,
        algorithm=algorithm.name,
        engine=engine,
        evaluated=len(pairs),
        skipped=skipped,
        points=tuple(points),
    )


def _successive_halving(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload,
    candidates: "list[Candidate]",
    budget: int,
    seed: int,
    eta: int,
) -> "list[tuple[Candidate, EnergyReport]]":
    """Seeded successive halving over counts-key groups.

    Configurations sharing a counts key fold against the same schedule
    expansion, so the rungs sample *groups* (the expensive unit) and
    spend the pricing budget inside whichever groups keep producing the
    best EDP.  Deterministic for a fixed (space, budget, seed).
    """
    if not candidates:
        return []
    if budget >= len(candidates):
        return list(zip(candidates, _price(algorithm, workload, candidates)))
    run = run_cached(algorithm, workload.graph)
    groups: dict[str, list[int]] = {}
    for pos, cand in enumerate(candidates):
        key = counts_cache_key(run, workload, cand.config)
        groups.setdefault(key, []).append(pos)
    survivors = list(groups.values())
    rng = np.random.default_rng(seed)
    priced: dict[int, EnergyReport] = {}
    remaining = budget

    def price_positions(positions: "list[int]") -> None:
        nonlocal remaining
        todo = [p for p in positions if p not in priced]
        if len(todo) > remaining:
            todo = todo[:remaining]
        if not todo:
            return
        picked = [candidates[p] for p in todo]
        for p, report in zip(todo, _price(algorithm, workload, picked)):
            priced[p] = report
        remaining -= len(todo)

    rounds = max(1, math.ceil(math.log(len(survivors), eta))
                 ) if len(survivors) > 1 else 1
    per_rung = max(1, budget // (rounds + 1))
    while remaining > 0 and len(survivors) > 1:
        quota = max(1, per_rung // len(survivors))
        sample: list[int] = []
        for group in survivors:
            unpriced = [p for p in group if p not in priced]
            if not unpriced:
                continue
            order = rng.permutation(len(unpriced))
            sample.extend(sorted(unpriced[i] for i in order[:quota]))
        if not sample:
            break
        price_positions(sample)
        ranked = sorted(
            range(len(survivors)),
            key=lambda gi: (
                min(
                    (priced[p].edp for p in survivors[gi] if p in priced),
                    default=math.inf,
                ),
                gi,
            ),
        )
        keep = max(1, math.ceil(len(survivors) / eta))
        survivors = [survivors[gi] for gi in sorted(ranked[:keep])]
    # Spend whatever budget is left fully pricing the surviving groups.
    for group in survivors:
        if remaining <= 0:
            break
        price_positions(group)
    return [(candidates[p], priced[p]) for p in sorted(priced)]


def _guided_pairs(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload,
    candidates: "list[Candidate]",
    budget: int,
    seed: int,
    eta: int,
) -> "list[tuple[Candidate, EnergyReport]]":
    """Guided pricing: halve the HyVE space, enumerate the rest.

    The GraphR and CPU spaces are a handful of points sharing cached
    traffic expansions, so they are always priced outright and charged
    against the budget first; successive halving spends the remainder
    on the HyVE counts-key groups.
    """
    others = [c for c in candidates if c.backend != BACKEND_HYVE]
    hyve = [c for c in candidates if c.backend == BACKEND_HYVE]
    if budget < len(others) + (1 if hyve else 0):
        raise ConfigError(
            f"guided budget {budget} is too small: the space holds "
            f"{len(others)} deterministic-backend config(s) plus "
            f"{len(hyve)} HyVE config(s); raise --budget"
        )
    pairs = list(zip(others, _price(algorithm, workload, others)))
    pairs += _successive_halving(
        algorithm, workload, hyve, budget - len(others), seed, eta
    )
    pairs.sort(key=lambda pair: pair[0].index)
    return pairs


def search(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload | Graph,
    spaces: "SearchSpace | Sequence[SearchSpace]",
    engine: str = EXHAUSTIVE,
    budget: int | None = None,
    seed: int = 0,
    eta: int = 2,
) -> ParetoFrontier:
    """Search one or more spaces for the (time, energy, EDP) frontier.

    ``engine`` selects exhaustive pricing or budgeted successive
    halving; the guided engine with ``budget=None`` (or a budget at
    least the space size) prices everything, making it exactly
    exhaustive — the zero-regret fallback for enumerable spaces.
    """
    if isinstance(spaces, SearchSpace):
        spaces = [spaces]
    spaces = list(spaces)
    if isinstance(workload, Graph):
        workload = Workload(workload)
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown tuner engine {engine!r}; "
            f"known: {', '.join(ENGINES)}"
        )
    if budget is not None and budget <= 0:
        raise ConfigError(f"search budget must be positive, got {budget}")
    candidates, skipped = _enumerate(spaces)
    with get_tracer().span(
        "tune.search",
        algorithm=algorithm.name,
        graph=workload.name,
        engine=engine,
        configs=len(candidates),
    ):
        if (
            engine == EXHAUSTIVE
            or budget is None
            or budget >= len(candidates)
        ):
            pairs = list(
                zip(candidates, _price(algorithm, workload, candidates))
            )
        else:
            pairs = _guided_pairs(
                algorithm, workload, candidates, budget, seed, eta
            )
        return _extract(workload, algorithm, engine, pairs, skipped)


def exhaustive_search(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload | Graph,
    spaces: "SearchSpace | Sequence[SearchSpace]",
) -> ParetoFrontier:
    """Price every candidate; the frontier is exact by construction."""
    return search(algorithm, workload, spaces, engine=EXHAUSTIVE)


def guided_search(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload | Graph,
    spaces: "SearchSpace | Sequence[SearchSpace]",
    budget: int,
    seed: int = 0,
    eta: int = 2,
) -> ParetoFrontier:
    """Budgeted successive-halving search (seeded, deterministic)."""
    return search(
        algorithm, workload, spaces,
        engine=GUIDED, budget=budget, seed=seed, eta=eta,
    )
