"""Frontier result objects and their CSV/JSON emitters.

A :class:`ParetoFrontier` is what a search returns: the non-dominated
(time, energy, EDP) points over everything the engine priced, plus
enough bookkeeping (evaluated / skipped counts, engine name) to judge
how much of the space backs the frontier.  ``best()`` scalarizes the
frontier with min-normalized objective weights, which is what the
recommended-machine report and ``repro optimize --weight`` use.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..arch.report import EnergyReport
from ..errors import ConfigError

#: Objectives a frontier minimizes, in emitter column order.
OBJECTIVES = ("time", "energy", "edp")

#: Equal weighting across (time, energy, EDP) — the default scalarizer.
DEFAULT_WEIGHTS = {"time": 1.0, "energy": 1.0, "edp": 1.0}


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated configuration with its priced objectives."""

    index: int          #: global candidate index within the search
    backend: str        #: "hyve" | "graphr" | "cpu"
    label: str          #: the candidate's axis-assignment label
    time: float         #: modelled execution time (s)
    energy: float       #: total energy (J)
    edp: float          #: energy-delay product (J*s), Equation (5)
    mteps_per_watt: float
    report: EnergyReport = field(repr=False, compare=False)

    def objective(self, name: str) -> float:
        if name not in OBJECTIVES:
            raise ConfigError(
                f"unknown objective {name!r}; "
                f"known: {', '.join(OBJECTIVES)}"
            )
        return getattr(self, name)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "backend": self.backend,
            "label": self.label,
            "time": self.time,
            "energy": self.energy,
            "edp": self.edp,
            "mteps_per_watt": self.mteps_per_watt,
        }


#: CSV schema shared by :meth:`ParetoFrontier.to_csv` and
#: :func:`frontiers_to_csv`.
CSV_HEADER = (
    "graph,algorithm,engine,backend,label,"
    "time_s,energy_j,edp,mteps_per_watt"
)


def _csv_rows(frontier: "ParetoFrontier") -> list[str]:
    rows = []
    for p in frontier.points:
        rows.append(
            f"{frontier.graph},{frontier.algorithm},{frontier.engine},"
            f"{p.backend},{p.label},"
            f"{p.time!r},{p.energy!r},{p.edp!r},{p.mteps_per_watt!r}"
        )
    return rows


@dataclass(frozen=True)
class ParetoFrontier:
    """The non-dominated set one search discovered for one workload.

    ``points`` are sorted by ascending time (energy, EDP, label, index
    break ties), so walking the frontier reads as the classic
    fast-and-hungry -> slow-and-frugal trade-off curve.  ``evaluated``
    counts configurations actually priced (for the guided engine this
    is at most the budget), ``skipped`` counts cross-product corners
    the config dataclasses rejected.
    """

    graph: str
    algorithm: str
    engine: str
    evaluated: int
    skipped: int
    points: tuple[FrontierPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def best(self, weights: dict[str, float] | None = None) -> FrontierPoint:
        """Scalarize the frontier with min-normalized objective weights.

        Each objective is divided by its minimum over the frontier
        (so weights compare like-for-like ratios, not raw J against s)
        and the weighted sum is minimized.  Ties break deterministically
        on (time, energy, EDP, label, index).
        """
        if not self.points:
            raise ConfigError(
                f"frontier for {self.algorithm} on {self.graph} is "
                f"empty; nothing to recommend"
            )
        merged = dict(DEFAULT_WEIGHTS)
        if weights:
            unknown = sorted(set(weights) - set(OBJECTIVES))
            if unknown:
                raise ConfigError(
                    f"unknown objective weight(s): {', '.join(unknown)}; "
                    f"known: {', '.join(OBJECTIVES)}"
                )
            merged = {name: 0.0 for name in OBJECTIVES}
            merged.update(weights)
        mins = {
            name: min(p.objective(name) for p in self.points)
            for name in OBJECTIVES
        }

        def score(p: FrontierPoint) -> float:
            total = 0.0
            for name, weight in merged.items():
                floor = mins[name]
                total += weight * (
                    p.objective(name) / floor if floor > 0
                    else p.objective(name)
                )
            return total

        return min(
            self.points,
            key=lambda p: (score(p), p.time, p.energy, p.edp,
                           p.label, p.index),
        )

    def to_csv(self) -> str:
        """One CSV table (header + one row per frontier point)."""
        return "\n".join([CSV_HEADER, *_csv_rows(self)]) + "\n"

    def to_dict(self) -> dict:
        return {
            "graph": self.graph,
            "algorithm": self.algorithm,
            "engine": self.engine,
            "evaluated": self.evaluated,
            "skipped": self.skipped,
            "points": [p.to_dict() for p in self.points],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def frontiers_to_csv(frontiers: "list[ParetoFrontier]") -> str:
    """Concatenate frontiers into one CSV (single shared header)."""
    rows = [CSV_HEADER]
    for frontier in frontiers:
        rows.extend(_csv_rows(frontier))
    return "\n".join(rows) + "\n"
