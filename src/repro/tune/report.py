"""Recommended-machine report over a batch of frontiers.

``repro optimize`` searches several (graph, algorithm) cells and then
wants one answer per cell: the machine to build.  :func:`recommend`
scalarizes each frontier with :meth:`ParetoFrontier.best` and
:func:`format_recommendations` renders the aligned text table the CLI
prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from .frontier import FrontierPoint, ParetoFrontier


@dataclass(frozen=True)
class Recommendation:
    """The scalarized winner of one (graph, algorithm) frontier."""

    graph: str
    algorithm: str
    point: FrontierPoint
    frontier_size: int
    evaluated: int


def recommend(
    frontiers: "list[ParetoFrontier]",
    weights: dict[str, float] | None = None,
) -> "list[Recommendation]":
    """One :class:`Recommendation` per frontier, in input order."""
    return [
        Recommendation(
            graph=frontier.graph,
            algorithm=frontier.algorithm,
            point=frontier.best(weights),
            frontier_size=len(frontier),
            evaluated=frontier.evaluated,
        )
        for frontier in frontiers
    ]


def format_recommendations(
    recommendations: "list[Recommendation]",
) -> str:
    """Aligned text table: one recommended machine per cell."""
    if not recommendations:
        return "(no frontiers searched)"
    headers = (
        "graph", "algorithm", "recommended machine",
        "time (ms)", "energy (mJ)", "MTEPS/W", "frontier",
    )
    rows = [
        (
            rec.graph,
            rec.algorithm,
            f"{rec.point.backend}:{rec.point.label}",
            f"{rec.point.time * 1e3:.3f}",
            f"{rec.point.energy * 1e3:.3f}",
            f"{rec.point.mteps_per_watt:.2f}",
            f"{rec.frontier_size}/{rec.evaluated}",
        )
        for rec in recommendations
    ]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows))
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)
