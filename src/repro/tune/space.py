"""Design-space definition for the autotuner (``repro optimize``).

A :class:`SearchSpace` is the cross product of named *axes* over one
backend's configuration dataclass.  Axes come in two flavours:

* **direct** axes name a top-level config field (``num_pus``,
  ``region_hit_rate``, ``hash_placement``...), applied with
  :func:`dataclasses.replace` exactly like :func:`repro.arch.sweep.sweep`;
* **derived** axes expand to nested device objects the way the figure
  drivers build them by hand: ``density_gbit`` prepares matching
  ``ReRAMConfig``/``DRAMConfig`` densities, ``bpg_timeout_us`` a
  :class:`~repro.memory.powergate.PowerGatingPolicy`, ``mlc_bits`` the
  ReRAM cell's bits-per-cell, and ``machine`` swaps the whole base for
  a named Fig. 16 configuration.

Enumeration skips combinations the config dataclasses reject (e.g.
``data_sharing=True`` on a scratchpad-less ``acc+DRAM`` base) and
reports how many were skipped, so a frontier always states how much of
the nominal cross product was actually priceable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from dataclasses import fields as dataclass_fields
from typing import Any, Mapping, Sequence

from ..arch.config import NAMED_CONFIGS, HyVEConfig
from ..arch.cpu import CPU_DRAM, CPU_DRAM_OPT, CPUModel
from ..arch.graphr import GraphRConfig
from ..errors import ConfigError
from ..units import GBIT, US

#: Backend identifiers (the ``--backend`` vocabulary of the CLI).
BACKEND_HYVE = "hyve"
BACKEND_GRAPHR = "graphr"
BACKEND_CPU = "cpu"
BACKENDS = (BACKEND_HYVE, BACKEND_GRAPHR, BACKEND_CPU)

#: Derived axes shared by the HyVE and GraphR backends.
_DERIVED_HYVE = ("machine", "density_gbit", "bpg_timeout_us", "mlc_bits")
_DERIVED_GRAPHR = ("density_gbit", "mlc_bits")

#: Valid axis names per backend.  HyVE direct axes are every
#: :class:`HyVEConfig` field except the label (labels are generated).
HYVE_AXES = frozenset(
    f.name for f in dataclass_fields(HyVEConfig) if f.name != "label"
) | frozenset(_DERIVED_HYVE)
GRAPHR_AXES = frozenset(
    f.name for f in dataclass_fields(GraphRConfig) if f.name != "label"
) | frozenset(_DERIVED_GRAPHR)
CPU_AXES = frozenset({"model"})

_AXES_BY_BACKEND = {
    BACKEND_HYVE: HYVE_AXES,
    BACKEND_GRAPHR: GRAPHR_AXES,
    BACKEND_CPU: CPU_AXES,
}

#: HyVE axes that only change *pricing* (never the counts key), so an
#: exhaustive fold prices their whole cross product against one
#: schedule expansion — see :func:`repro.perf.batch.counts_cache_key`.
PRICING_ONLY_AXES = frozenset({
    "density_gbit", "bpg_timeout_us", "mlc_bits", "region_hit_rate",
    "random_access_mlp", "reram", "dram", "power_gating",
})

#: The CPU backend's addressable baselines.
CPU_MODELS: dict[str, CPUModel] = {
    "CPU+DRAM": CPU_DRAM,
    "CPU+DRAM-opt": CPU_DRAM_OPT,
}


@dataclass(frozen=True)
class Candidate:
    """One enumerated design point, ready to price.

    ``config`` is a :class:`HyVEConfig`, :class:`GraphRConfig` or
    :class:`~repro.arch.cpu.CPUModel` depending on ``backend``; its
    label equals ``label``, so the priced report is self-describing.
    """

    index: int
    backend: str
    label: str
    config: Any


def _axis_label(name: str, value: Any) -> str:
    if isinstance(value, float):
        return f"{name}={value:g}"
    return f"{name}={value}"


def _hyve_candidate(
    base: HyVEConfig, assignment: Mapping[str, Any], label: str
) -> HyVEConfig:
    """Build one HyVE config from an axis assignment (may raise
    :class:`ConfigError` for combinations the dataclass rejects)."""
    cfg = base
    machine = assignment.get("machine")
    if machine is not None:
        cfg = NAMED_CONFIGS[machine]()
    overrides: dict[str, Any] = {}
    for name, value in assignment.items():
        if name == "machine":
            continue
        if name == "density_gbit":
            bits = int(value * GBIT)
            overrides["reram"] = replace(
                overrides.get("reram", cfg.reram), density_bits=bits
            )
            overrides["dram"] = replace(cfg.dram, density_bits=bits)
        elif name == "bpg_timeout_us":
            overrides["power_gating"] = replace(
                cfg.power_gating, idle_timeout=value * US
            )
        elif name == "mlc_bits":
            reram = overrides.get("reram", cfg.reram)
            overrides["reram"] = replace(
                reram, cell=replace(reram.cell, cell_bits=int(value))
            )
        else:
            overrides[name] = value
    overrides["label"] = label
    return replace(cfg, **overrides)


def _graphr_candidate(
    base: GraphRConfig, assignment: Mapping[str, Any], label: str
) -> GraphRConfig:
    cfg = base
    overrides: dict[str, Any] = {}
    for name, value in assignment.items():
        if name == "density_gbit":
            overrides["reram"] = replace(
                overrides.get("reram", cfg.reram),
                density_bits=int(value * GBIT),
            )
        elif name == "mlc_bits":
            reram = overrides.get("reram", cfg.reram)
            overrides["reram"] = replace(
                reram, cell=replace(reram.cell, cell_bits=int(value))
            )
        else:
            overrides[name] = value
    overrides["label"] = label
    return replace(cfg, **overrides)


@dataclass(frozen=True)
class SearchSpace:
    """The cross product of axis values over one backend.

    ``axes`` is an ordered tuple of ``(name, values)`` pairs — the
    enumeration order is the lexicographic product in axis order, so a
    space enumerates identically on every machine and every run.
    Construct via :meth:`from_axes`.
    """

    backend: str = BACKEND_HYVE
    axes: tuple[tuple[str, tuple], ...] = ()
    base: Any = None

    @classmethod
    def from_axes(
        cls,
        axes: Mapping[str, Sequence[Any]],
        backend: str = BACKEND_HYVE,
        base: Any = None,
    ) -> "SearchSpace":
        """Validate and freeze an axes mapping into a space."""
        if backend not in _AXES_BY_BACKEND:
            raise ConfigError(
                f"unknown tuner backend {backend!r}; "
                f"known: {', '.join(BACKENDS)}"
            )
        valid = _AXES_BY_BACKEND[backend]
        unknown = sorted(set(axes) - valid)
        if unknown:
            raise ConfigError(
                f"unknown axis(es) for the {backend!r} backend: "
                f"{', '.join(unknown)}; valid: {', '.join(sorted(valid))}"
            )
        frozen: list[tuple[str, tuple]] = []
        for name, values in axes.items():
            values = tuple(values)
            if not values:
                raise ConfigError(f"axis {name!r} needs at least one value")
            if name == "machine":
                bad = sorted(set(values) - set(NAMED_CONFIGS))
                if bad:
                    raise ConfigError(
                        f"unknown machine(s) on the 'machine' axis: "
                        f"{', '.join(bad)}; "
                        f"known: {', '.join(NAMED_CONFIGS)}"
                    )
            if name == "model":
                bad = sorted(set(values) - set(CPU_MODELS))
                if bad:
                    raise ConfigError(
                        f"unknown CPU model(s) on the 'model' axis: "
                        f"{', '.join(bad)}; "
                        f"known: {', '.join(CPU_MODELS)}"
                    )
            frozen.append((name, values))
        return cls(backend=backend, axes=tuple(frozen), base=base)

    @property
    def size(self) -> int:
        """Nominal cross-product size (before invalid-combo skipping)."""
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    @property
    def pricing_only(self) -> bool:
        """True when every axis folds against one schedule expansion."""
        return self.backend != BACKEND_HYVE or all(
            name in PRICING_ONLY_AXES for name, _ in self.axes
        )

    def candidates(self) -> tuple[list[Candidate], int]:
        """Enumerate ``(valid candidates, skipped invalid combos)``.

        Combinations the backend's config dataclass rejects (an
        explicit :class:`ConfigError`, e.g. data sharing without a
        scratchpad, or a partition override that is not a multiple of
        N) are skipped and counted, not raised: a wide cross product
        legitimately contains corners that do not exist as machines.

        The space is immutable, so the enumeration is memoized on the
        instance: repeated searches over one space (the autotuner's
        per-workload loop, warm benchmark repeats) pay the config
        construction once.  Callers get a fresh list each time.
        """
        memo = self.__dict__.get("_candidates_memo")
        if memo is not None:
            return list(memo[0]), memo[1]
        out, skipped = self._enumerate()
        object.__setattr__(self, "_candidates_memo", (tuple(out), skipped))
        return out, skipped

    def _enumerate(self) -> tuple[list[Candidate], int]:
        names = [name for name, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        out: list[Candidate] = []
        skipped = 0
        if self.backend == BACKEND_CPU:
            chosen = (value_lists[0] if names
                      else tuple(CPU_MODELS))
            for name in chosen:
                model = CPU_MODELS[name]
                out.append(Candidate(len(out), BACKEND_CPU,
                                     model.label, model))
            return out, 0
        base = self.base
        if base is None:
            base = (HyVEConfig() if self.backend == BACKEND_HYVE
                    else GraphRConfig())
        build = (_hyve_candidate if self.backend == BACKEND_HYVE
                 else _graphr_candidate)
        for combo in itertools.product(*value_lists):
            assignment = dict(zip(names, combo))
            label = "|".join(
                _axis_label(n, v) for n, v in assignment.items()
            ) or base.label
            try:
                config = build(base, assignment, label)
            except ConfigError:
                skipped += 1
                continue
            out.append(Candidate(len(out), self.backend, label, config))
        return out, skipped


#: Default exhaustive axes per backend: every pricing knob the paper
#: sweeps, plus the named machine (HyVE) / crossbar shape (GraphR).
_DEFAULT_AXES = {
    BACKEND_HYVE: {
        "machine": tuple(NAMED_CONFIGS),
        "density_gbit": (4, 8, 16),
        "bpg_timeout_us": (0.5, 1.0, 5.0),
        "region_hit_rate": (0.7, 0.85, 1.0),
        "random_access_mlp": (4, 8),
        "mlc_bits": (1, 2),
    },
    BACKEND_GRAPHR: {
        "num_crossbar_groups": (4, 8, 16),
        "density_gbit": (4, 8, 16),
        "mlc_bits": (1, 2),
    },
    BACKEND_CPU: {"model": tuple(CPU_MODELS)},
}

#: Structural HyVE axes for the guided engine: N, the SRAM point (which
#: moves P), and placement each change the counts key, so their cross
#: product multiplies schedule expansions — exactly the explosion
#: successive halving is for.
_STRUCTURAL_AXES_HYVE = {
    "machine": tuple(NAMED_CONFIGS),
    "num_pus": (2, 4, 8, 16),
    "sram_bits": tuple(m * 1024 * 1024 * 8 for m in (1, 2, 4)),
    "hash_placement": (True, False),
    "density_gbit": (4, 8, 16),
    "region_hit_rate": (0.7, 0.85, 1.0),
}


def default_space(
    backend: str = BACKEND_HYVE, structural: bool = False
) -> SearchSpace:
    """The stock machine space for one backend.

    ``structural=True`` (the guided engine's default) widens the HyVE
    space with the counts-key axes — N, SRAM point, placement — on top
    of the pricing knobs; the GraphR and CPU spaces are small enough
    that the flag changes nothing there.
    """
    if backend == BACKEND_HYVE and structural:
        return SearchSpace.from_axes(_STRUCTURAL_AXES_HYVE, backend)
    if backend not in _DEFAULT_AXES:
        raise ConfigError(
            f"unknown tuner backend {backend!r}; "
            f"known: {', '.join(BACKENDS)}"
        )
    return SearchSpace.from_axes(_DEFAULT_AXES[backend], backend)
