"""Design-space autotuner: Pareto search over the full machine space.

Public surface:

* :class:`SearchSpace` / :class:`Candidate` / :func:`default_space` —
  axis cross products per backend (HyVE, GraphR, CPU).
* :func:`search` / :func:`exhaustive_search` / :func:`guided_search` —
  the exhaustive vectorized engine and the budgeted successive-halving
  engine, both returning a :class:`ParetoFrontier`.
* :func:`pareto_mask` — exact vectorized non-dominated extraction.
* :func:`recommend` / :func:`format_recommendations` — the
  recommended-machine report behind ``repro optimize``.

See docs/autotuning.md for the search-space table and engine selection
rules.
"""

from .engine import (
    ENGINES,
    EXHAUSTIVE,
    GUIDED,
    exhaustive_search,
    guided_search,
    search,
)
from .frontier import (
    DEFAULT_WEIGHTS,
    OBJECTIVES,
    FrontierPoint,
    ParetoFrontier,
    frontiers_to_csv,
)
from .pareto import pareto_indices, pareto_mask
from .report import Recommendation, format_recommendations, recommend
from .space import (
    BACKEND_CPU,
    BACKEND_GRAPHR,
    BACKEND_HYVE,
    BACKENDS,
    Candidate,
    SearchSpace,
    default_space,
)

__all__ = [
    "BACKENDS",
    "BACKEND_CPU",
    "BACKEND_GRAPHR",
    "BACKEND_HYVE",
    "Candidate",
    "DEFAULT_WEIGHTS",
    "ENGINES",
    "EXHAUSTIVE",
    "FrontierPoint",
    "GUIDED",
    "OBJECTIVES",
    "ParetoFrontier",
    "Recommendation",
    "SearchSpace",
    "default_space",
    "exhaustive_search",
    "format_recommendations",
    "frontiers_to_csv",
    "guided_search",
    "pareto_indices",
    "pareto_mask",
    "recommend",
    "search",
]
