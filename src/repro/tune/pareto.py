"""Exact vectorized Pareto-frontier extraction (minimization).

The tuner's objective vectors are tiny tuples — (time, energy, EDP) —
over up to tens of thousands of priced configurations, so the
non-dominated set is computed exactly with one blocked NumPy dominance
matrix rather than an approximate sort.  Duplicated frontier points
all survive (neither strictly dominates the other), which keeps the
extraction order-independent: permuting the input rows permutes the
mask identically.
"""

from __future__ import annotations

import numpy as np

#: Rows per dominance block: bounds the broadcast matrix at
#: ``_BLOCK x n x k`` floats, so a 10^5-point space stays in cache-sized
#: chunks instead of allocating an n^2 boolean matrix at once.
_BLOCK = 256


def pareto_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of ``objectives``.

    All columns are minimized.  Row ``a`` dominates row ``b`` when
    ``a <= b`` on every objective and ``a < b`` on at least one;
    a row survives iff no other row dominates it.  Exact (no epsilon),
    deterministic, and order-independent — identical rows either all
    survive or all fall together.

    >>> import numpy as np
    >>> pareto_mask(np.array([[1.0, 4.0], [2.0, 2.0], [3.0, 3.0]]))
    array([ True,  True, False])
    """
    points = np.asarray(objectives, dtype=float)
    if points.ndim != 2:
        raise ValueError(
            f"objectives must be a 2-D (points x objectives) array, "
            f"got shape {points.shape}"
        )
    n = points.shape[0]
    mask = np.ones(n, dtype=bool)
    if n == 0:
        return mask
    for start in range(0, n, _BLOCK):
        block = points[start:start + _BLOCK]
        # le[i, j]: candidate j is <= block row i on every objective;
        # lt[i, j]: ... and strictly better somewhere => j dominates i.
        le = (points[None, :, :] <= block[:, None, :]).all(axis=-1)
        lt = (points[None, :, :] < block[:, None, :]).any(axis=-1)
        mask[start:start + _BLOCK] = ~(le & lt).any(axis=1)
    return mask


def pareto_indices(objectives: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated rows, in input order."""
    return np.flatnonzero(pareto_mask(objectives))
