"""The oracle registry: every cross-path promise, checked on demand.

An **oracle** takes a :class:`~repro.verify.cases.Case` and raises
:class:`~repro.errors.VerificationError` when two execution paths that
promise identical results disagree.  Three families are registered:

* *cross-engine report identity* — serial ``AcceleratorMachine.run``
  vs ``fold_many`` vs ``run_grid`` vs a cache-warm replay vs the
  (batched / unbatched / ``max_workers=N``) sweep drivers, compared
  field-for-field including the energy-dict insertion order;
* *algorithm-output equivalence* — the edge-centric vectorized,
  block-major and vertex-centric executors must agree on the value
  vector (bit-exact for the min-based algorithms, 1e-12 relative for
  the sum-based ones, matching tests/test_blocked_identity.py);
* *metamorphic invariants* — vertex-relabeling permutation invariance,
  interval-count ``P`` invariance of algorithm results, exact traffic
  linearity under power-of-two ``edge_scale``, and zero-fault-profile
  pass-through;
* *infrastructure-chaos recovery* — runs against a result store under
  injected torn writes, bit flips and stale locks
  (:mod:`repro.faults.chaos`) must recover to bit-identical reports,
  and an all-zero chaos profile must be an exact pass-through;
* *streaming conformance* — a :class:`repro.dynamic.stream.StreamEngine`
  replaying a seeded update log must match a from-scratch rebuild of
  the same log prefix at every queried instant
  (``stream-rebuild-identity``), and permuting a log within
  commutative batches must leave every snapshot fingerprint and
  maintained value unchanged (``window-invariance``).

The equality policy is deliberately the strictest one the codebase
already commits to elsewhere; an oracle failure is a broken promise,
not a tolerance call.
"""

from __future__ import annotations

import dataclasses
import tempfile
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..algorithms.runner import run_blocked, run_cached, run_vectorized
from ..algorithms.vertex_centric import run_vertex_centric
from ..arch.config import Workload
from ..arch.machine import AcceleratorMachine, fold_many
from ..arch.report import EnergyReport
from ..arch.scheduler import ScheduleCounts
from ..arch.sweep import SweepPolicy, points_to_csv, sweep
from ..errors import VerificationError
from ..faults import FaultProfile
from ..faults.chaos import ChaosProfile, chaos_context
from ..perf.batch import run_grid, scheduled_counts
from ..perf.cache import temporary_run_cache
from .cases import Case

#: Algorithms whose executors are bit-identical everywhere (min-based
#: updates commute exactly); the sum-based rest carry accumulation-order
#: differences between executors bounded by SUM_RTOL.
EXACT_ALGORITHMS = frozenset({"bfs", "cc", "sssp"})
#: Cross-executor tolerance for sum-based algorithms (PR, SpMV) — the
#: policy of tests/test_blocked_identity.py.
SUM_RTOL = 1e-12
SUM_ATOL = 1e-12
#: Permutation invariance reorders *within* accumulation bins (the
#: dangling-mass sum, scatter segments), so sum-based algorithms get a
#: slightly looser bound there.
PERM_RTOL = 1e-9
PERM_ATOL = 1e-12

#: The config field the sweep oracles vary: pricing-only (all points
#: share one counts key), so it exercises the batched fold hardest.
SWEEP_FIELD = "region_hit_rate"
SWEEP_VALUES = (0.25, 0.75, 1.0)

#: ScheduleCounts fields that must double exactly when the reported
#: edge count doubles, and fields that must not move at all.  Any field
#: outside both sets must still be exactly x1 or x2 (the oracle rejects
#: anything in between).
LINEAR_IN_EDGE_SCALE = ("edges_total", "edge_stream_bits", "pu_ops")
EDGE_SCALE_INVARIANT = (
    "iterations", "num_pus", "num_intervals", "vertices",
    "vertex_bits", "edge_bits", "steps_total",
)


@dataclass(frozen=True)
class Oracle:
    """A registered conformance check.

    ``stride`` runs the oracle on every stride-th case only — the
    escape hatch for oracles whose setup cost (process pools) would
    otherwise dominate a CI fuzz-smoke run.
    """

    name: str
    description: str
    fn: Callable[[Case], None]
    stride: int = 1


ORACLES: dict[str, Oracle] = {}


def oracle(name: str, description: str, stride: int = 1):
    """Register a conformance oracle under ``name``."""
    if stride < 1:
        raise VerificationError(f"oracle stride must be >= 1: {stride}")

    def register(fn: Callable[[Case], None]) -> Callable[[Case], None]:
        if name in ORACLES:
            raise VerificationError(f"duplicate oracle name {name!r}")
        ORACLES[name] = Oracle(name, description, fn, stride)
        return fn

    return register


def get_oracles(names: list[str] | None = None) -> list[Oracle]:
    """Resolve a name selection (``None``: every registered oracle)."""
    if names is None:
        return list(ORACLES.values())
    unknown = [n for n in names if n not in ORACLES]
    if unknown:
        raise VerificationError(
            f"unknown oracle(s): {', '.join(unknown)}; "
            f"known: {', '.join(ORACLES)}"
        )
    return [ORACLES[n] for n in names]


# --- comparison helpers ------------------------------------------------------

def fail(message: str) -> None:
    raise VerificationError(message)


def assert_reports_identical(
    a: EnergyReport, b: EnergyReport, context: str,
    ignore_machine_label: bool = False,
) -> None:
    """Field-for-field bit identity, including energy insertion order."""
    diffs: list[str] = []
    scalar_fields = ["machine", "algorithm", "graph", "edges_traversed",
                     "iterations", "time"]
    if ignore_machine_label:
        scalar_fields.remove("machine")
    for name in scalar_fields:
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            diffs.append(f"{name}: {va!r} != {vb!r}")
    if list(a.energy) != list(b.energy):
        diffs.append(
            f"energy component order: {list(a.energy)} != {list(b.energy)}"
        )
    else:
        for component, va in a.energy.items():
            vb = b.energy[component]
            if va != vb:
                diffs.append(f"energy[{component}]: {va!r} != {vb!r}")
    if diffs:
        fail(f"{context}: reports differ — " + "; ".join(diffs))


def assert_values_match(
    case: Case, a: np.ndarray, b: np.ndarray, context: str,
    rtol: float = SUM_RTOL, atol: float = SUM_ATOL,
) -> None:
    """Value-vector agreement under the repo's per-algorithm policy."""
    if a.shape != b.shape:
        fail(f"{context}: value shapes differ {a.shape} vs {b.shape}")
    if case.algorithm in EXACT_ALGORITHMS:
        mismatches = np.nonzero(a != b)[0]
        if mismatches.size:
            v = int(mismatches[0])
            fail(f"{context}: {mismatches.size} exact mismatch(es), "
                 f"first at vertex {v}: {a[v]!r} != {b[v]!r}")
    elif not np.allclose(a, b, rtol=rtol, atol=atol):
        delta = np.abs(a - b)
        v = int(np.argmax(delta))
        fail(f"{context}: sum-based values disagree beyond "
             f"rtol={rtol}/atol={atol}, worst at vertex {v}: "
             f"{a[v]!r} vs {b[v]!r}")


@dataclass(frozen=True)
class _CaseAlgorithmFactory:
    """Picklable algorithm factory (sweep workers rebuild from the
    case, which serialises; a closure over a Graph would not)."""

    case: Case

    def __call__(self):
        return self.case.make_algorithm(self.case.graph())


def _partition(values: np.ndarray) -> set[frozenset[int]]:
    """Vertex partition induced by equal labels (CC canonical form)."""
    groups: dict[float, list[int]] = {}
    for v, label in enumerate(values.tolist()):
        groups.setdefault(label, []).append(v)
    return {frozenset(g) for g in groups.values()}


# --- cross-engine report identity --------------------------------------------

@oracle(
    "engine-identity",
    "serial run == cache-warm replay == fold_many == run_grid, "
    "field-for-field",
)
def engine_report_identity(case: Case) -> None:
    graph = case.graph()
    workload = case.workload(graph)
    config = case.config()
    serial = AcceleratorMachine(config).run(
        case.make_algorithm(graph), workload
    )
    warm = AcceleratorMachine(config).run(
        case.make_algorithm(graph), workload
    )
    assert_reports_identical(serial.report, warm.report,
                             "cache-warm replay")
    counts = scheduled_counts(serial.run, workload, config)
    folded = fold_many(serial.run, counts, workload, [config])[0]
    assert_reports_identical(serial.report, folded, "fold_many")
    gridded = run_grid(case.make_algorithm(graph), workload, [config])[0]
    assert_reports_identical(serial.report, gridded.report, "run_grid")


@oracle(
    "sweep-identity",
    "batched sweep == per-point sweep == direct machine runs, "
    "byte-identical CSV",
)
def sweep_path_identity(case: Case) -> None:
    graph = case.graph()
    workload = case.workload(graph)
    config = case.config()
    factory = _CaseAlgorithmFactory(case)
    batched = sweep(SWEEP_FIELD, list(SWEEP_VALUES), factory, workload,
                    config, SweepPolicy(batch=True))
    per_point = sweep(SWEEP_FIELD, list(SWEEP_VALUES), factory, workload,
                      config, SweepPolicy(batch=False))
    csv_batched = points_to_csv(batched)
    csv_serial = points_to_csv(per_point)
    if csv_batched != csv_serial:
        fail("sweep CSV differs between batched and per-point paths:\n"
             f"batched:\n{csv_batched}\nper-point:\n{csv_serial}")
    for point, value in zip(batched, SWEEP_VALUES):
        direct_config = dataclasses.replace(
            config, **{SWEEP_FIELD: value,
                       "label": f"{SWEEP_FIELD}={value}"})
        direct = AcceleratorMachine(direct_config).run(factory(), workload)
        assert_reports_identical(
            direct.report, point.report,
            f"sweep point {SWEEP_FIELD}={value} vs direct run",
        )


@oracle(
    "parallel-sweep",
    "max_workers=2 sweep reproduces the serial sweep byte-for-byte",
    stride=10,
)
def parallel_sweep_identity(case: Case) -> None:
    graph = case.graph()
    workload = case.workload(graph)
    config = case.config()
    factory = _CaseAlgorithmFactory(case)
    serial = sweep(SWEEP_FIELD, list(SWEEP_VALUES), factory, workload,
                   config, SweepPolicy(max_workers=1))
    parallel = sweep(SWEEP_FIELD, list(SWEEP_VALUES), factory, workload,
                     config, SweepPolicy(max_workers=2))
    csv_serial = points_to_csv(serial)
    csv_parallel = points_to_csv(parallel)
    if csv_serial != csv_parallel:
        fail("sweep CSV differs between serial and max_workers=2 paths:\n"
             f"serial:\n{csv_serial}\nparallel:\n{csv_parallel}")


# --- algorithm-output equivalence --------------------------------------------

@oracle(
    "algorithm-equivalence",
    "vectorized == block-major == vertex-centric executor outputs",
)
def algorithm_equivalence(case: Case) -> None:
    graph = case.graph()
    vec = run_vectorized(case.make_algorithm(graph), graph)
    p = 4 if graph.num_vertices >= 4 else 2
    blocked = run_blocked(case.make_algorithm(graph), graph,
                          num_intervals=p, num_pus=2)
    if vec.iterations != blocked.iterations:
        fail(f"blocked executor iterated {blocked.iterations}x, "
             f"vectorized {vec.iterations}x")
    assert_values_match(case, vec.values, blocked.values,
                        "vectorized vs block-major")
    vc = run_vertex_centric(case.make_algorithm(graph), graph)
    assert_values_match(case, vec.values, vc.run.values,
                        "edge-centric vs vertex-centric",
                        rtol=PERM_RTOL, atol=PERM_ATOL)


# --- metamorphic invariants --------------------------------------------------

@oracle(
    "permutation-invariance",
    "relabeling vertices permutes the outputs and nothing else",
)
def permutation_invariance(case: Case) -> None:
    graph = case.graph()
    nv = graph.num_vertices
    rng = np.random.default_rng(case.seed ^ 0x5EED)
    perm = rng.permutation(nv)
    mapped = graph.relabel(perm)
    base = run_vectorized(case.make_algorithm(graph), graph).values
    mapped_root = int(perm[case.root % nv])
    permuted = run_vectorized(
        case.make_algorithm(graph, root=mapped_root), mapped
    ).values
    if case.algorithm == "cc":
        # CC labels are representative vertex *ids*: not equivariant as
        # values, but the induced component partition must map exactly.
        expected = {frozenset(int(perm[v]) for v in comp)
                    for comp in _partition(base)}
        actual = _partition(permuted)
        if expected != actual:
            fail(f"CC component partition changed under relabeling: "
                 f"{len(expected)} vs {len(actual)} components")
        return
    # permuted[perm[v]] is vertex v's value in the relabelled run.
    assert_values_match(case, base, permuted[perm],
                        "relabelled run (mapped back)",
                        rtol=PERM_RTOL, atol=PERM_ATOL)


@oracle(
    "interval-invariance",
    "algorithm outputs do not depend on the partition grid (P, N)",
)
def interval_count_invariance(case: Case) -> None:
    graph = case.graph()
    vec = run_vectorized(case.make_algorithm(graph), graph)
    grids = [(p, n) for p, n in ((2, 1), (4, 2), (8, 4))
             if p <= graph.num_vertices]
    for p, n in grids:
        blocked = run_blocked(case.make_algorithm(graph), graph,
                              num_intervals=p, num_pus=n)
        if blocked.iterations != vec.iterations:
            fail(f"P={p},N={n}: iterated {blocked.iterations}x, "
                 f"vectorized {vec.iterations}x")
        assert_values_match(case, vec.values, blocked.values,
                            f"P={p},N={n} vs vectorized")


@oracle(
    "scale-linearity",
    "doubling reported_edges exactly doubles the edge-traffic counts "
    "and moves nothing else",
)
def scale_linearity(case: Case) -> None:
    graph = case.graph()
    config = case.config()
    base_workload = case.workload(graph)
    doubled_workload = Workload(
        graph,
        reported_vertices=base_workload.reported_vertices,
        reported_edges=base_workload.reported_edges * 2,
    )
    run = run_cached(case.make_algorithm(graph), graph)
    base = ScheduleCounts.compute(run, base_workload, config)
    doubled = ScheduleCounts.compute(run, doubled_workload, config)
    for f in dataclasses.fields(ScheduleCounts):
        va = getattr(base, f.name)
        vb = getattr(doubled, f.name)
        if f.name in LINEAR_IN_EDGE_SCALE:
            if vb != va * 2:
                fail(f"{f.name} must double exactly under 2x edge "
                     f"scale: {va!r} -> {vb!r}")
        elif f.name in EDGE_SCALE_INVARIANT:
            if vb != va:
                fail(f"{f.name} must not move under edge scale: "
                     f"{va!r} -> {vb!r}")
        elif vb != va and vb != va * 2:
            fail(f"{f.name} is neither invariant nor exactly doubled "
                 f"under 2x edge scale: {va!r} -> {vb!r}")


# --- infrastructure-chaos recovery -------------------------------------------

#: Chaos rates for the recovery oracle: hostile enough that most cases
#: actually tear/flip something, but with slow-I/O kept cheap so the
#: oracle stays fuzz-smoke friendly.  No killed workers — the oracle is
#: single-process by construction.
_RECOVERY_CHAOS = dict(
    torn_write_rate=0.30,
    bit_flip_rate=0.25,
    stale_lock_rate=0.25,
    slow_io_rate=0.10,
    slow_io_max_s=0.0005,
)


@oracle(
    "chaos-recovery",
    "runs against a store under torn writes / bit flips / stale locks "
    "recover to bit-identical reports",
    stride=2,
)
def chaos_recovery(case: Case) -> None:
    graph = case.graph()
    workload = case.workload(graph)
    config = case.config()

    def evaluate():
        return AcceleratorMachine(config).run(
            case.make_algorithm(graph), workload
        )

    with tempfile.TemporaryDirectory() as clean_dir:
        with temporary_run_cache(clean_dir):
            baseline = evaluate()
    profile = ChaosProfile(seed=case.seed, **_RECOVERY_CHAOS)
    with tempfile.TemporaryDirectory() as chaos_dir:
        with temporary_run_cache(chaos_dir) as cache:
            with chaos_context(profile):
                cold = evaluate()
                # Drop the memory level so the warm run must go through
                # the (possibly damaged) disk store: a torn or
                # bit-flipped entry is quarantined and recomputed.
                cache.clear(disk=False)
                warm = evaluate()
            # Chaos off: recovery against whatever damage remains.
            cache.clear(disk=False)
            recovered = evaluate()
    for context, result in (("chaos cold run", cold),
                            ("chaos warm run", warm),
                            ("post-chaos recovery run", recovered)):
        assert_reports_identical(baseline.report, result.report, context)
        assert_values_match(case, baseline.run.values,
                            result.run.values, f"{context} values")


@oracle(
    "zero-chaos",
    "an all-zero chaos profile draws no entropy and is bit-identical "
    "to no injector at all",
    stride=2,
)
def zero_chaos_passthrough(case: Case) -> None:
    graph = case.graph()
    workload = case.workload(graph)
    config = case.config()

    def evaluate():
        return AcceleratorMachine(config).run(
            case.make_algorithm(graph), workload
        )

    with tempfile.TemporaryDirectory() as scratch:
        with temporary_run_cache(scratch):
            plain = evaluate()
    with tempfile.TemporaryDirectory() as scratch:
        with temporary_run_cache(scratch):
            with chaos_context(
                ChaosProfile.zero(seed=case.seed)
            ) as injector:
                zeroed = evaluate()
    if injector.total_injections:
        fail(f"zero chaos profile injected "
             f"{injector.total_injections} fault(s): "
             f"{injector.summary()}")
    assert_reports_identical(plain.report, zeroed.report,
                             "zero-chaos profile")
    assert_values_match(case, plain.run.values, zeroed.run.values,
                        "zero-chaos profile values")


# --- out-of-core shard identity ----------------------------------------------

@oracle(
    "shard-identity",
    "shard round trip preserves the fingerprint; streamed runs and "
    "merged per-shard counts reproduce the in-memory path",
    stride=2,
)
def shard_identity(case: Case) -> None:
    """The out-of-core promises of :mod:`repro.graph.shards`.

    Writes the case's graph to an on-disk shard store cut into several
    shards, then checks every identity the paper-scale path relies on:
    the memory-mapped round trip preserves the content fingerprint
    (and survives :meth:`ShardStore.verify`'s re-hash); streamed
    convergence matches ``run_vectorized`` under the per-algorithm
    value policy with identical iteration and active-source traces;
    and schedule counts merged from per-shard partials are
    **bit-identical** — not merely close — to the whole-graph
    computation, under fresh scratch caches on both sides so the
    comparison is compute-vs-compute, never compute-vs-recall.
    """
    from pathlib import Path

    from ..arch.scheduler import clear_imbalance_cache
    from ..graph.shards import (run_sharded, sharded_scheduled_counts,
                                write_graph_shards)

    graph = case.graph()
    config = case.config()
    # Cut into ~4 shards so merge order and boundary handling are real.
    shard_edges = max(1, -(-graph.num_edges // 4))
    with tempfile.TemporaryDirectory() as scratch:
        store = write_graph_shards(graph, Path(scratch) / "store",
                                   shard_edges=shard_edges)
        mapped = store.as_graph()
        if mapped.fingerprint() != graph.fingerprint():
            fail(f"shard round trip changed the fingerprint: "
                 f"{graph.fingerprint()} -> {mapped.fingerprint()}")
        store.verify()

        vec = run_vectorized(case.make_algorithm(graph), graph)
        with temporary_run_cache():
            streamed = run_sharded(case.make_algorithm(graph), store)
        if streamed.iterations != vec.iterations:
            fail(f"sharded executor iterated {streamed.iterations}x, "
                 f"vectorized {vec.iterations}x")
        if streamed.active_sources != vec.active_sources:
            fail("sharded executor's active-source trace diverged: "
                 f"{streamed.active_sources} vs {vec.active_sources}")
        assert_values_match(case, vec.values, streamed.values,
                            "sharded vs vectorized")

        try:
            with temporary_run_cache():
                clear_imbalance_cache()
                whole = scheduled_counts(
                    vec, case.workload(graph), config
                )
            with temporary_run_cache():
                clear_imbalance_cache()
                merged = sharded_scheduled_counts(
                    vec, case.workload(mapped), config, store=store,
                )
        finally:
            # The seeded memo keys on the graph fingerprint; drop it so
            # later oracles compute rather than recall.
            clear_imbalance_cache()
        if merged != whole:
            diffs = [
                f"{f.name}: {getattr(whole, f.name)!r} != "
                f"{getattr(merged, f.name)!r}"
                for f in dataclasses.fields(ScheduleCounts)
                if getattr(whole, f.name) != getattr(merged, f.name)
            ]
            fail("merged per-shard counts are not bit-identical to the "
                 "whole-graph counts — " + "; ".join(diffs))


@oracle(
    "zero-fault",
    "an all-zero fault profile is bit-identical to no profile at all",
)
def zero_fault_passthrough(case: Case) -> None:
    graph = case.graph()
    workload = case.workload(graph)
    config = case.config()
    plain = AcceleratorMachine(config).run(
        case.make_algorithm(graph), workload
    )
    zeroed = AcceleratorMachine(
        config, faults=FaultProfile.zero(seed=case.seed)
    ).run(case.make_algorithm(graph), workload)
    assert_reports_identical(plain.report, zeroed.report,
                             "zero-fault profile")
    assert_values_match(case, plain.run.values, zeroed.run.values,
                        "zero-fault profile values")


#: Pricing-only axes the tuner oracle cross-products over the case's
#: config: 12 candidates, one counts key, exercising the grouped fold
#: path against per-point machine runs.
TUNER_AXES = {
    "region_hit_rate": (0.5, 0.85, 1.0),
    "density_gbit": (4, 8),
    "bpg_timeout_us": (0.5, 5.0),
}


@oracle(
    "tuner-identity",
    "exhaustive autotuner frontier == brute-force per-point run() "
    "frontier, bit-for-bit",
    stride=3,
)
def tuner_identity(case: Case) -> None:
    """The exhaustive engine's promise (docs/autotuning.md).

    Builds a small pricing-only space over the case's config, searches
    it with :func:`repro.tune.exhaustive_search`, and independently
    reconstructs the frontier the slow way: one serial
    ``AcceleratorMachine.run`` per candidate plus an O(n^2) Python
    dominance scan.  The two frontiers must select the same candidate
    indices, and each selected report must be field-identical —
    pricing through the vectorized grouped fold must never move a
    point on or off the frontier.
    """
    from ..tune import SearchSpace, exhaustive_search

    graph = case.graph()
    workload = case.workload(graph)
    space = SearchSpace.from_axes(TUNER_AXES, base=case.config())
    frontier = exhaustive_search(case.make_algorithm(graph), workload,
                                 space)

    candidates, skipped = space.candidates()
    if skipped:
        fail(f"pricing-only axes skipped {skipped} combo(s); the "
             f"oracle space must enumerate fully")
    if frontier.evaluated != len(candidates):
        fail(f"exhaustive engine priced {frontier.evaluated} of "
             f"{len(candidates)} candidate(s)")
    reports = [
        AcceleratorMachine(cand.config).run(
            case.make_algorithm(graph), workload
        ).report
        for cand in candidates
    ]
    objectives = [(r.time, r.total_energy, r.edp) for r in reports]
    brute = set()
    for i, a in enumerate(objectives):
        dominated = any(
            all(b[k] <= a[k] for k in range(3))
            and any(b[k] < a[k] for k in range(3))
            for b in objectives
        )
        if not dominated:
            brute.add(i)
    tuned = {point.index for point in frontier.points}
    if tuned != brute:
        fail(f"frontier membership differs: tuner chose "
             f"{sorted(tuned)}, brute force {sorted(brute)}")
    for point in frontier.points:
        assert_reports_identical(
            point.report, reports[point.index],
            f"frontier point {point.label!r}",
        )


# --- streaming / temporal oracles ---------------------------------------------

#: The incremental-vs-rebuild battery's equality policy: BFS and CC are
#: min-based (bit-exact everywhere), PR is sum-based and the engine
#: rebuilds it from the canonical snapshot, so 1e-12 relative is the
#: same promise tests/test_blocked_identity.py already makes.
STREAM_ALGORITHMS = ("pr", "cc", "bfs")


def _stream_log(case: Case):
    """Derive a deterministic update log + engine knobs from a case.

    The case seed picks the delete fraction (0.0-0.4), the staleness
    bound ``k`` (1-37, so eager K=1 engines and lazy ones both appear),
    and the stream length — everything an oracle replay needs.
    """
    from ..dynamic.stream import generate_update_log

    graph = case.graph()
    delete_fraction = ((case.seed // 7) % 5) / 10
    k = 1 + case.seed % 37
    num_updates = 60 + case.seed % 64
    log = generate_update_log(graph, num_updates, seed=case.seed,
                              delete_fraction=delete_fraction)
    return graph, log, k


def _stream_values_match(name: str, engine_values: np.ndarray,
                         rebuilt_values: np.ndarray, where: str) -> None:
    if name in EXACT_ALGORITHMS:
        if not np.array_equal(engine_values, rebuilt_values):
            bad = int(np.flatnonzero(engine_values != rebuilt_values)[0])
            fail(f"{where}: incremental {name} diverged from rebuild at "
                 f"vertex {bad}: {engine_values[bad]!r} != "
                 f"{rebuilt_values[bad]!r}")
    elif not np.allclose(engine_values, rebuilt_values,
                         rtol=SUM_RTOL, atol=SUM_ATOL):
        worst = float(np.max(np.abs(engine_values - rebuilt_values)))
        fail(f"{where}: {name} diverged from rebuild "
             f"(max abs diff {worst:g} > {SUM_ATOL:g})")


@oracle(
    "stream-rebuild-identity",
    "incrementally maintained stream values == from-scratch rebuild at "
    "the same logical time, at every prefix; snapshot fingerprints key "
    "the run cache",
)
def stream_rebuild_identity(case: Case) -> None:
    """The bounded-staleness engine's correctness anchor.

    Replays a seeded log through a :class:`StreamEngine` in several
    prefix steps.  After each step the engine — whose BFS/CC values
    are maintained *incrementally* (delta gates, orphan repair,
    component re-seeding) — is compared against a from-scratch rebuild
    of the **same log prefix**: the temporal snapshot at the engine's
    logical time must have a bit-identical fingerprint, and every
    maintained value vector must match the vectorized run on that
    snapshot (bit-exact for the min-based algorithms, 1e-12 for PR).
    Finally the rebuilt snapshot is priced through the run cache to
    prove the fingerprint identity is *useful*: the engine's
    query-time flush already populated the cache, so the rebuild's
    lookup must be a memory hit, never a recompute.
    """
    from ..algorithms import make_algorithm
    from ..dynamic.stream import StreamEngine, UpdateLog

    graph, log, k = _stream_log(case)
    events = log.to_arrays()
    base = int(np.count_nonzero(events[:, 0] == 0))
    prefixes = sorted({base, base + (len(log) - base) // 2, len(log)})
    algs = {name: make_algorithm(name) for name in STREAM_ALGORITHMS}

    with temporary_run_cache("") as cache:
        engine = StreamEngine(log.num_vertices,
                              algorithms=STREAM_ALGORITHMS, k=k,
                              name=log.name)
        done = 0
        for prefix in prefixes:
            engine.ingest(events[done:prefix])
            done = prefix
            t = engine.logical_time
            where = f"prefix {prefix}/{len(log)} (t={t}, k={k})"
            rebuilt_log = UpdateLog.from_arrays(
                log.num_vertices, events[:prefix], name=log.name)
            snapshot = rebuilt_log.temporal().snapshot_at(t)
            for name in STREAM_ALGORITHMS:
                _stream_values_match(
                    name, engine.query(name),
                    run_vectorized(algs[name], snapshot).values, where)
            if engine.snapshot(t).fingerprint() != snapshot.fingerprint():
                fail(f"{where}: engine snapshot fingerprint diverged "
                     f"from the log-prefix rebuild")
        # Price the engine's live snapshot once (a query-time flush
        # does the same when updates are pending); rebuilding the same
        # instant from the raw log must then *hit* the cache under the
        # identical fingerprint, never recompute.
        run_cached(algs["pr"], engine.snapshot(t))
        hits_before = cache.stats.memory_hits
        run_cached(algs["pr"], snapshot)
        if cache.stats.memory_hits <= hits_before:
            fail("rebuilt snapshot missed the run cache: snapshot_at() "
                 "fingerprints do not key the engine's cached runs")


@oracle(
    "window-invariance",
    "permuting a log within commutative batches leaves every snapshot "
    "fingerprint and maintained value unchanged",
)
def window_invariance(case: Case) -> None:
    """Order within a logical batch must not be observable.

    Events sharing a timestamp form one batch; inside a batch, events
    on *distinct* edges commute (same-key events keep their FIFO
    order).  The oracle re-batches a seeded log into multi-event
    windows, applies a seeded commutative permutation inside every
    batch, and demands the permuted replay be indistinguishable from
    the original: identical snapshot fingerprints at every batch
    boundary, and identical maintained values from engines fed either
    log.  Any divergence means replay order leaks into state that the
    format promises is a pure function of the log's batch contents.
    """
    from ..dynamic.stream import StreamEngine, UpdateLog

    graph, log, k = _stream_log(case)
    events = log.to_arrays()
    # Re-batch: keep the t=0 base batch, then group the singleton
    # events into windows of `width` sharing one timestamp.
    width = 4 + case.seed % 8
    events = events.copy()
    tail = events[:, 0] > 0
    events[tail, 0] = 1 + (events[tail, 0] - 1) // width
    original = UpdateLog.from_arrays(log.num_vertices, events,
                                     name=log.name)

    # Commutative permutation: within each batch, stable-sort by a
    # seeded priority drawn *per distinct key*, so events on the same
    # edge keep their relative (FIFO) order.
    rng = np.random.default_rng(case.seed + 1)
    permuted = events.copy()
    keys = (events[:, 2] << 32) | events[:, 3]
    for t in np.unique(events[:, 0]):
        rows = np.flatnonzero(events[:, 0] == t)
        _, inverse = np.unique(keys[rows], return_inverse=True)
        priority = rng.random(int(inverse.max()) + 1)
        permuted[rows] = events[rows][np.argsort(priority[inverse],
                                                 kind="stable")]
    shuffled = UpdateLog.from_arrays(log.num_vertices, permuted,
                                     name=log.name)

    boundaries = np.unique(events[:, 0])
    temporal_a = original.temporal()
    temporal_b = shuffled.temporal()
    for t in boundaries.tolist():
        fp_a = temporal_a.snapshot_at(t).fingerprint()
        fp_b = temporal_b.snapshot_at(t).fingerprint()
        if fp_a != fp_b:
            fail(f"snapshot at t={t} depends on intra-batch order: "
                 f"{fp_a} != {fp_b}")

    with temporary_run_cache(""):
        engine_a = StreamEngine(log.num_vertices,
                                algorithms=STREAM_ALGORITHMS, k=k,
                                name=log.name)
        engine_b = StreamEngine(log.num_vertices,
                                algorithms=STREAM_ALGORITHMS, k=k,
                                name=log.name)
        engine_a.replay(original)
        engine_b.replay(shuffled)
        for name in STREAM_ALGORITHMS:
            _stream_values_match(name, engine_a.query(name),
                                 engine_b.query(name),
                                 f"engine replay (k={k})")
        fp_a = engine_a.snapshot().fingerprint()
        fp_b = engine_b.snapshot().fingerprint()
        if fp_a != fp_b:
            fail(f"live engine snapshots diverged under a commutative "
                 f"permutation: {fp_a} != {fp_b}")
