"""Seedable random test cases for the differential-conformance harness.

A :class:`Case` is a *self-contained, JSON-serialisable* description of
one fuzzing input: which random graph to generate, which machine
configuration to build (a named base plus optional knob overrides),
which algorithm to run, and at which reported scale.  Everything an
oracle needs is derived from the case on demand (``graph()``,
``config()``, ``workload()``, ``algorithm()``), so a failing case can
be written to disk and replayed bit-identically by a later process —
the repro-file workflow of :mod:`repro.verify.corpus`.

:func:`generate_cases` draws cases from one ``numpy`` PCG64 stream, so
``repro verify --seed S --cases K`` explores the same K cases on every
machine and the shrinker (:mod:`repro.verify.shrink`) can mutate the
recorded fields directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..algorithms import BFS, SSSP, EdgeCentricAlgorithm, make_algorithm
from ..arch.config import NAMED_CONFIGS, HyVEConfig, Workload
from ..errors import VerificationError
from ..graph import generators
from ..graph.graph import Graph
from ..units import KB

#: Graph shapes the generator samples; random kinds honour
#: ``num_vertices``/``num_edges``, structured kinds only the former.
GRAPH_KINDS = (
    "rmat", "erdos-renyi", "path", "cycle", "star", "complete", "grid",
)
RANDOM_KINDS = ("rmat", "erdos-renyi")

ALGORITHMS = ("pr", "bfs", "cc", "sssp", "spmv")

#: Sampled knob overrides (``None`` keeps the named config's value).
NUM_PUS_CHOICES = (1, 2, 4, 8)
SRAM_KB_CHOICES = (64, 256, 2048)
HIT_RATE_CHOICES = (0.5, 0.85, 1.0)
#: Reported-scale multipliers are powers of two so the linearity oracle
#: can demand *exact* IEEE-754 doubling, not approximate closeness.
SCALE_EXP_CHOICES = (0, 1, 2)

_CASE_FIELDS: tuple[str, ...] = (
    "seed", "graph_kind", "num_vertices", "num_edges", "weighted",
    "machine", "algorithm", "root", "num_pus", "sram_kb",
    "hash_placement", "region_hit_rate", "vertex_scale_exp",
    "edge_scale_exp",
)


@dataclass(frozen=True)
class Case:
    """One replayable fuzzing input (all fields JSON-serialisable)."""

    seed: int = 0
    graph_kind: str = "rmat"
    num_vertices: int = 64
    num_edges: int = 256
    weighted: bool = False
    machine: str = "acc+HyVE-opt"
    algorithm: str = "pr"
    #: Seed vertex for BFS/SSSP (taken modulo the vertex count).
    root: int = 0
    #: Optional HyVEConfig overrides; ``None`` keeps the named default.
    num_pus: int | None = None
    sram_kb: int | None = None
    hash_placement: bool | None = None
    region_hit_rate: float | None = None
    #: Reported scale = synthetic size << exponent (exact powers of 2).
    vertex_scale_exp: int = 0
    edge_scale_exp: int = 0

    def __post_init__(self) -> None:
        if self.graph_kind not in GRAPH_KINDS:
            raise VerificationError(
                f"unknown graph kind {self.graph_kind!r}; "
                f"known: {', '.join(GRAPH_KINDS)}"
            )
        if self.machine not in NAMED_CONFIGS:
            raise VerificationError(
                f"unknown machine {self.machine!r}; "
                f"known: {', '.join(NAMED_CONFIGS)}"
            )
        if self.algorithm not in ALGORITHMS:
            raise VerificationError(
                f"unknown algorithm {self.algorithm!r}; "
                f"known: {', '.join(ALGORITHMS)}"
            )
        if self.num_vertices < 2:
            raise VerificationError(
                f"cases need at least 2 vertices, got {self.num_vertices}"
            )
        if self.num_edges < 1:
            raise VerificationError(
                f"cases need at least 1 edge, got {self.num_edges}"
            )

    # --- builders -----------------------------------------------------------

    def graph(self) -> Graph:
        """Materialise the case's graph (deterministic in the case)."""
        name = f"verify-{self.graph_kind}-{self.seed}"
        nv = self.num_vertices
        if self.graph_kind == "rmat":
            g = generators.rmat(nv, self.num_edges, seed=self.seed,
                                name=name)
        elif self.graph_kind == "erdos-renyi":
            g = generators.erdos_renyi(nv, self.num_edges, seed=self.seed,
                                       name=name)
        elif self.graph_kind == "path":
            g = generators.path(nv, name=name)
        elif self.graph_kind == "cycle":
            g = generators.cycle(nv, name=name)
        elif self.graph_kind == "star":
            g = generators.star(nv - 1, name=name)
        elif self.graph_kind == "complete":
            g = generators.complete(min(nv, 24), name=name)
        else:  # grid
            side = max(2, int(np.sqrt(nv)))
            g = generators.grid_2d(side, side, name=name)
        if self.weighted:
            g = generators.random_weights(g, seed=self.seed + 1)
        return g

    def config(self) -> HyVEConfig:
        """The machine configuration (named base + knob overrides)."""
        base = NAMED_CONFIGS[self.machine]()
        overrides: dict = {}
        if self.num_pus is not None:
            overrides["num_pus"] = self.num_pus
        if self.sram_kb is not None:
            overrides["sram_bits"] = self.sram_kb * KB
        if self.hash_placement is not None:
            overrides["hash_placement"] = self.hash_placement
        if self.region_hit_rate is not None:
            overrides["region_hit_rate"] = self.region_hit_rate
        if not overrides:
            return base
        return dataclasses.replace(base, **overrides)

    def workload(self, graph: Graph | None = None) -> Workload:
        """Workload at the case's reported scale (powers of two)."""
        graph = self.graph() if graph is None else graph
        return Workload(
            graph,
            reported_vertices=graph.num_vertices << self.vertex_scale_exp,
            reported_edges=max(1, graph.num_edges) << self.edge_scale_exp,
        )

    def make_algorithm(self, graph: Graph | None = None,
                       root: int | None = None) -> EdgeCentricAlgorithm:
        """A *fresh* algorithm instance (executors consume state).

        ``root`` overrides the seed vertex (the permutation oracle maps
        it through the relabeling); it is taken modulo the vertex count
        so shrunk cases stay valid.
        """
        nv = (self.graph() if graph is None else graph).num_vertices
        seed_vertex = (self.root if root is None else root) % nv
        if self.algorithm == "bfs":
            return BFS(root=seed_vertex)
        if self.algorithm == "sssp":
            return SSSP(source=seed_vertex)
        return make_algorithm(self.algorithm)

    # --- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        return {f: getattr(self, f) for f in _CASE_FIELDS}

    @classmethod
    def from_dict(cls, data: dict) -> "Case":
        unknown = set(data) - set(_CASE_FIELDS)
        if unknown:
            raise VerificationError(
                f"unknown case field(s): {sorted(unknown)}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise VerificationError(f"malformed case record: {exc}") from exc

    def describe(self) -> str:
        """One-line summary for failure reports."""
        knobs = []
        for knob in ("num_pus", "sram_kb", "hash_placement",
                     "region_hit_rate"):
            value = getattr(self, knob)
            if value is not None:
                knobs.append(f"{knob}={value}")
        scale = ""
        if self.vertex_scale_exp or self.edge_scale_exp:
            scale = (f" scale=2^{self.vertex_scale_exp}v"
                     f"/2^{self.edge_scale_exp}e")
        return (f"{self.algorithm} on {self.graph_kind}"
                f"({self.num_vertices}v/{self.num_edges}e"
                f"{',w' if self.weighted else ''}) @ {self.machine}"
                + (f" [{', '.join(knobs)}]" if knobs else "") + scale)


def generate_cases(seed: int, count: int) -> list[Case]:
    """Draw ``count`` cases from one seeded PCG64 stream.

    The distribution leans on the random kinds (they exercise the block
    machinery hardest) but keeps structured graphs in the mix for their
    degenerate shapes (stars concentrate one interval, paths/cycles
    have unit degree, complete graphs stress every block).
    """
    if count < 0:
        raise VerificationError(f"case count must be >= 0, got {count}")
    rng = np.random.default_rng(seed)
    kinds = list(RANDOM_KINDS) * 3 + [
        k for k in GRAPH_KINDS if k not in RANDOM_KINDS
    ]
    cases: list[Case] = []
    for _ in range(count):
        kind = kinds[int(rng.integers(len(kinds)))]
        nv = int(2 ** rng.uniform(1.0, 8.0))  # 2..256, log-uniform
        nv = max(2, nv)
        ne = int(min(1024, max(1, nv * rng.uniform(0.5, 4.0))))
        algorithm = ALGORITHMS[int(rng.integers(len(ALGORITHMS)))]
        machine = list(NAMED_CONFIGS)[int(rng.integers(len(NAMED_CONFIGS)))]

        def maybe(choices, p=0.5):
            if rng.random() >= p:
                return None
            return choices[int(rng.integers(len(choices)))]

        cases.append(Case(
            seed=int(rng.integers(2 ** 31)),
            graph_kind=kind,
            num_vertices=nv,
            num_edges=ne,
            weighted=bool(rng.random() < 0.3),
            machine=machine,
            algorithm=algorithm,
            root=int(rng.integers(nv)),
            num_pus=maybe(NUM_PUS_CHOICES),
            sram_kb=maybe(SRAM_KB_CHOICES),
            hash_placement=maybe((True, False), p=0.25),
            region_hit_rate=maybe(HIT_RATE_CHOICES, p=0.25),
            vertex_scale_exp=int(rng.integers(len(SCALE_EXP_CHOICES))),
            edge_scale_exp=int(rng.integers(len(SCALE_EXP_CHOICES))),
        ))
    return cases
