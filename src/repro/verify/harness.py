"""The differential-conformance driver behind ``repro verify``.

:func:`run_verify` generates K seeded cases, runs every registered
oracle on each (honouring per-oracle strides), shrinks whatever fails,
and writes replayable repro files.  Each (oracle, case) evaluation runs
under a fresh memory-only run cache (:func:`temporary_run_cache`), so
evaluations are independent, hermetic, and reproduce identically when
replayed from a repro file in another process.

Observability: the run is wrapped in ``verify.run`` / ``verify.case`` /
``verify.oracle`` / ``verify.shrink`` spans, and the registry counts
``verify_oracle_runs`` / ``verify_failures`` / ``verify_shrink_evals``
(docs/observability.md has the taxonomy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ReproError, VerificationError
from ..obs import metrics as obs_metrics
from ..obs.trace import get_tracer
from ..perf.cache import temporary_run_cache
from .cases import Case, generate_cases
from .corpus import repro_record, write_repro
from .oracles import Oracle, get_oracles
from .shrink import shrink_case

#: Stop fuzzing after this many distinct failures: every further case
#: would likely shrink to the same defect, and shrinking is the
#: expensive part.
DEFAULT_MAX_FAILURES = 5
DEFAULT_FAILURES_DIR = "verify-failures"


def run_oracle_on_case(oracle: Oracle, case: Case) -> str | None:
    """One hermetic oracle evaluation -> failure message or ``None``.

    A :class:`VerificationError` is the oracle's verdict; any other
    library error means the *case* is invalid (e.g. a shrink produced
    an inconsistent config) and is reported as such, distinct from a
    conformance failure.
    """
    tracer = get_tracer()
    metrics = obs_metrics.get_metrics()
    metrics.counter(obs_metrics.VERIFY_ORACLE_RUNS).add(1)
    with tracer.span("verify.oracle", oracle=oracle.name,
                     case=case.describe()):
        with temporary_run_cache(""):
            try:
                oracle.fn(case)
            except VerificationError as exc:
                metrics.counter(obs_metrics.VERIFY_FAILURES).add(1)
                return str(exc)
    return None


@dataclass(frozen=True)
class Failure:
    """One shrunk, serialised conformance failure."""

    oracle: str
    case: Case
    original: Case
    error: str
    shrink_evals: int
    path: Path | None


@dataclass
class OracleStats:
    name: str
    description: str
    stride: int
    cases_run: int = 0
    failures: int = 0


@dataclass
class VerifySummary:
    """Outcome of one ``run_verify`` invocation."""

    seed: int
    cases: int
    stats: list[OracleStats] = field(default_factory=list)
    failures: list[Failure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def evaluations(self) -> int:
        return sum(s.cases_run for s in self.stats)

    def format(self) -> str:
        """Human-readable result table plus failure details."""
        width = max([len(s.name) for s in self.stats] or [6])
        lines = [f"{'oracle':{width}s} {'cases':>6s} {'failures':>9s}"]
        lines.append("-" * (width + 17))
        for s in self.stats:
            lines.append(
                f"{s.name:{width}s} {s.cases_run:6d} {s.failures:9d}"
            )
        lines.append("-" * (width + 17))
        verdict = "OK" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {self.evaluations} oracle evaluation(s) over "
            f"{self.cases} case(s), seed {self.seed}, "
            f"{len(self.failures)} failure(s)"
        )
        for failure in self.failures:
            lines.append("")
            lines.append(f"[{failure.oracle}] {failure.case.describe()}")
            lines.append(f"  {failure.error}")
            lines.append(
                f"  shrunk from: {failure.original.describe()} "
                f"({failure.shrink_evals} shrink evaluation(s))"
            )
            if failure.path is not None:
                lines.append(f"  repro written to {failure.path}")
        return "\n".join(lines)


def _shrink_failure(oracle: Oracle, case: Case) -> tuple[Case, str, int]:
    """Shrink a failing case; returns (case, error, evaluations)."""
    tracer = get_tracer()
    metrics = obs_metrics.get_metrics()
    errors: dict[Case, str] = {}

    def still_fails(candidate: Case) -> bool:
        try:
            error = run_oracle_on_case(oracle, candidate)
        except ReproError:
            # The shrink produced an invalid case (e.g. a root outside
            # a collapsed graph); reject it rather than adopt it.
            return False
        if error is not None:
            errors[candidate] = error
        return error is not None

    with tracer.span("verify.shrink", oracle=oracle.name):
        shrunk, evals = shrink_case(case, still_fails)
    metrics.counter(obs_metrics.VERIFY_SHRINK_EVALS).add(evals)
    error = errors.get(shrunk)
    if error is None:
        # Nothing smaller failed: re-derive the message on the original.
        error = run_oracle_on_case(oracle, case) or "(not reproduced)"
    return shrunk, error, evals


def run_verify(
    seed: int = 0,
    cases: int = 50,
    oracle_names: list[str] | None = None,
    failures_dir: str | Path | None = DEFAULT_FAILURES_DIR,
    max_failures: int = DEFAULT_MAX_FAILURES,
    shrink: bool = True,
) -> VerifySummary:
    """Fuzz ``cases`` seeded cases through the registered oracles.

    ``failures_dir=None`` disables repro-file writing (failures are
    still shrunk and reported in the summary).
    """
    oracles = get_oracles(oracle_names)
    generated = generate_cases(seed, cases)
    summary = VerifySummary(seed=seed, cases=len(generated))
    stats = {o.name: OracleStats(o.name, o.description, o.stride)
             for o in oracles}
    summary.stats = list(stats.values())
    tracer = get_tracer()
    with tracer.span("verify.run", seed=seed, cases=len(generated)):
        for index, case in enumerate(generated):
            if len(summary.failures) >= max_failures:
                break
            with tracer.span("verify.case", index=index):
                for oracle in oracles:
                    if index % oracle.stride:
                        continue
                    stat = stats[oracle.name]
                    stat.cases_run += 1
                    error = run_oracle_on_case(oracle, case)
                    if error is None:
                        continue
                    stat.failures += 1
                    shrunk, evals = case, 0
                    if shrink:
                        shrunk, error, evals = _shrink_failure(
                            oracle, case
                        )
                    path = None
                    if failures_dir is not None:
                        path = write_repro(
                            Path(failures_dir)
                            / f"{oracle.name}-seed{seed}-case{index}.json",
                            repro_record(oracle.name, shrunk, error,
                                         shrink_evals=evals),
                        )
                    summary.failures.append(Failure(
                        oracle=oracle.name, case=shrunk, original=case,
                        error=error, shrink_evals=evals, path=path,
                    ))
                    if len(summary.failures) >= max_failures:
                        break
    return summary
