"""Greedy case shrinking: smallest input that still breaks the oracle.

Fuzzers find failures on noisy 200-vertex graphs with four overridden
knobs; nobody debugs those.  :func:`shrink_case` repeatedly applies
size- and complexity-reducing transformations — halve the vertex and
edge counts, drop knob overrides back to the named default, zero the
scale exponents, fall back to the plainest graph kind and machine —
and keeps a candidate only while the *same oracle still fails* on it.
The result is the (locally) minimal case that is serialised into the
repro file.

The failure predicate must return ``True`` only for a genuine
:class:`~repro.errors.VerificationError`; a candidate that blows up
some other way (an invalid shrink) is simply rejected, never adopted.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from .cases import Case

#: Hard ceiling on predicate evaluations per shrink (each evaluation
#: re-runs the oracle, so this bounds shrinking wall-clock).
DEFAULT_MAX_EVALS = 48


def _candidates(case: Case) -> list[Case]:
    """Single-step reductions of ``case``, most aggressive first."""
    out: list[Case] = []

    def mutate(**changes) -> None:
        candidate = dataclasses.replace(case, **changes)
        if candidate != case:
            out.append(candidate)

    if case.num_vertices > 2:
        mutate(num_vertices=max(2, case.num_vertices // 2),
               num_edges=max(1, min(case.num_edges,
                                    case.num_vertices // 2 * 4)))
    if case.num_edges > 1:
        mutate(num_edges=max(1, case.num_edges // 2))
    if case.graph_kind != "erdos-renyi":
        mutate(graph_kind="erdos-renyi")
    if case.weighted:
        mutate(weighted=False)
    if case.vertex_scale_exp or case.edge_scale_exp:
        mutate(vertex_scale_exp=0, edge_scale_exp=0)
    for knob in ("num_pus", "sram_kb", "hash_placement",
                 "region_hit_rate"):
        if getattr(case, knob) is not None:
            mutate(**{knob: None})
    if case.machine != "acc+HyVE-opt":
        mutate(machine="acc+HyVE-opt")
    if case.root != 0:
        mutate(root=0)
    return out


def shrink_case(
    case: Case,
    still_fails: Callable[[Case], bool],
    max_evals: int = DEFAULT_MAX_EVALS,
) -> tuple[Case, int]:
    """Greedily minimise ``case`` while ``still_fails`` holds.

    Returns ``(smallest_failing_case, evaluations_spent)``.  The input
    case is assumed failing (it is returned unchanged if no reduction
    reproduces the failure or the evaluation budget runs out).
    """
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _candidates(case):
            if evals >= max_evals:
                break
            evals += 1
            if still_fails(candidate):
                case = candidate
                improved = True
                break
    return case, evals
