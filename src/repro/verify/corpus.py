"""Replayable repro files and the committed regression corpus.

When the harness finds (and shrinks) a failing case, it serialises a
**repro file** — a small JSON record of the oracle name, the shrunk
:class:`~repro.verify.cases.Case`, and the failure message — under the
failures directory.  A repro file is self-contained: replaying it
rebuilds the exact graph/config/workload from the case fields and
re-runs the named oracle.

``tests/corpus/`` holds the committed corpus: repro files of
historical (or deliberately injected, see tests/test_verify.py)
failures whose execution paths are now guaranteed by the suite —
``tests/test_verify_corpus.py`` replays every file on every run and
fails if any of them regresses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..errors import VerificationError
from .cases import Case

#: Schema tag every repro file must carry.
REPRO_SCHEMA = "hyve-verify-repro-v1"


def repro_record(oracle_name: str, case: Case, error: str,
                 shrink_evals: int = 0, note: str = "") -> dict:
    """Assemble the JSON payload for one shrunk failure."""
    record = {
        "schema": REPRO_SCHEMA,
        "oracle": oracle_name,
        "case": case.to_dict(),
        "error": error,
        "shrink_evals": shrink_evals,
    }
    if note:
        record["note"] = note
    return record


def write_repro(path: str | Path, record: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path


def load_repro(path: str | Path) -> tuple[str, Case, dict]:
    """Parse and validate one repro file -> (oracle name, case, record)."""
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise VerificationError(
            f"unreadable repro file {path}: {exc}"
        ) from exc
    if not isinstance(record, dict) or record.get("schema") != REPRO_SCHEMA:
        raise VerificationError(
            f"{path} is not a {REPRO_SCHEMA} repro file "
            f"(schema={record.get('schema') if isinstance(record, dict) else None!r})"
        )
    for key in ("oracle", "case"):
        if key not in record:
            raise VerificationError(f"{path} is missing the {key!r} field")
    return record["oracle"], Case.from_dict(record["case"]), record


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one repro file."""

    path: Path
    oracle: str
    case: Case
    #: ``None`` when the oracle passes now (the failure is fixed /
    #: guarded); otherwise the fresh failure message.
    error: str | None

    @property
    def ok(self) -> bool:
        return self.error is None


def replay_file(path: str | Path) -> ReplayResult:
    """Re-run the repro file's oracle on its case."""
    from .harness import run_oracle_on_case
    from .oracles import get_oracles

    oracle_name, case, _record = load_repro(path)
    oracle = get_oracles([oracle_name])[0]
    return ReplayResult(
        path=Path(path),
        oracle=oracle_name,
        case=case,
        error=run_oracle_on_case(oracle, case),
    )


def corpus_files(directory: str | Path) -> list[Path]:
    """Sorted repro files under a corpus directory."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))
