"""Differential conformance and fuzzing for every execution engine.

The codebase offers several redundant ways to produce the same answer —
serial :meth:`AcceleratorMachine.run`, the block-major executor, the
vectorized ``fold_many`` grid pricer, cache-warm replays, and the
(batched / parallel) sweep drivers — each promising identical results.
This package is the machinery that holds them to it:

* :mod:`repro.verify.cases` — seedable, JSON-serialisable random cases
  (graph x machine x algorithm x scale);
* :mod:`repro.verify.oracles` — the oracle registry: cross-engine
  report identity, executor output equivalence, and metamorphic
  invariants (permutation, interval count, scale linearity, zero-fault
  pass-through);
* :mod:`repro.verify.shrink` — greedy minimisation of failing cases;
* :mod:`repro.verify.corpus` — replayable repro files and the
  committed regression corpus under ``tests/corpus/``;
* :mod:`repro.verify.harness` — the ``repro verify --seed S --cases K``
  driver.

See docs/verification.md for the full workflow.
"""

from .cases import Case, generate_cases
from .corpus import (
    REPRO_SCHEMA,
    ReplayResult,
    corpus_files,
    load_repro,
    replay_file,
    repro_record,
    write_repro,
)
from .harness import (
    Failure,
    OracleStats,
    VerifySummary,
    run_oracle_on_case,
    run_verify,
)
from .oracles import ORACLES, Oracle, get_oracles, oracle
from .shrink import shrink_case

__all__ = [
    "Case",
    "Failure",
    "ORACLES",
    "Oracle",
    "OracleStats",
    "REPRO_SCHEMA",
    "ReplayResult",
    "VerifySummary",
    "corpus_files",
    "generate_cases",
    "get_oracles",
    "load_repro",
    "oracle",
    "replay_file",
    "repro_record",
    "run_oracle_on_case",
    "run_verify",
    "shrink_case",
    "write_repro",
]
