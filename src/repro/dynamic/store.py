"""Dynamic graph storage (Section 5).

HyVE supports evolving graphs with O(1) incremental updates instead of
re-running preprocessing:

* **Adding edges** — appended at the end of the owning block's memory
  extent; every block reserves ~30% slack, and when it runs out an
  extension region is allocated and linked from the block's end.
* **Deleting edges** — the deleted edge is overwritten by the block's
  last edge and the last slot is freed (order inside a block is
  irrelevant to the edge-centric model).
* **Adding vertices** — intervals also reserve slack; when an interval
  overflows, a full re-preprocessing pass runs (vertex access is not
  sequential, so extension chaining does not work — Section 5).
* **Deleting vertices** — the value is set to an invalid sentinel and
  incident edges are removed.

A :class:`GraphRDynamicStore` mirrors the same request interface over
GraphR's representation — fixed 8x8 adjacency tiles that must be kept
in dense (crossbar-loadable) form — which is what makes its update
throughput ~8x lower (Fig. 20).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DynamicGraphError
from ..graph.graph import Graph, VERTEX_DTYPE
from ..graph.partition import interval_bounds

#: Sentinel value of deleted vertices ("e.g., -1 for PageRank").
INVALID_VALUE = -1.0

#: Default reserved slack ("e.g., 30% of a block size").
DEFAULT_SLACK = 0.30


@dataclass
class DynamicStats:
    """Bookkeeping of one store's update history."""

    edges_added: int = 0
    edges_deleted: int = 0
    vertices_added: int = 0
    vertices_deleted: int = 0
    extensions_allocated: int = 0
    repartitions: int = 0

    @property
    def edges_changed(self) -> int:
        """Total edge mutations (the Fig. 20 throughput numerator)."""
        return self.edges_added + self.edges_deleted


def _encode_edges(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Pack (src, dst) pairs into single int64 edge records."""
    return (src.astype(np.int64) << 32) | dst.astype(np.int64)


class DynamicGraphStore:
    """HyVE's interval-block layout with O(1) incremental updates.

    Edges are packed 8-byte records (``src << 32 | dst``) held in a
    global multiset keyed by record, alongside dense per-block
    occupancy/capacity/extension counters — the paper's layout is a
    flat record array per block with ~30% reserved slack and extension
    chaining, and the counters reproduce exactly the extension
    allocations that layout would make, while the multiset makes every
    update a single O(1) dict operation (HyVE's whole point: one
    8-byte record write per update, no image rewrites).
    """

    def __init__(
        self,
        graph: Graph,
        num_intervals: int = 32,
        slack: float = DEFAULT_SLACK,
    ) -> None:
        if slack < 0:
            raise DynamicGraphError(f"slack must be non-negative: {slack}")
        self.slack = slack
        self.num_intervals = num_intervals
        self.stats = DynamicStats()
        self._build(graph)

    # --- construction ------------------------------------------------------

    def _build(self, graph: Graph) -> None:
        self._capacity = max(
            4, int(np.ceil(graph.num_vertices * (1.0 + self.slack)))
        )
        self._num_vertices = graph.num_vertices
        self._valid = np.zeros(self._capacity, dtype=bool)
        self._valid[: graph.num_vertices] = True
        self._values = np.zeros(self._capacity)
        self._bounds = interval_bounds(
            max(self._capacity, 1), self.num_intervals
        )
        # Uniform-enough interval size for O(1) id -> interval mapping.
        self._interval_stride = max(
            1, -(-self._capacity // self.num_intervals)
        )
        nblocks = self.num_intervals * self.num_intervals
        self._block_used = np.zeros(nblocks, dtype=np.int64)
        self._counts: dict[int, int] = {}
        self._weights_map: dict[int, list[float]] | None = (
            {} if graph.is_weighted else None
        )
        if graph.num_edges:
            records = _encode_edges(graph.src, graph.dst)
            uniq, mult = np.unique(records, return_counts=True)
            self._counts = dict(zip(uniq.tolist(), mult.tolist()))
            np.add.at(
                self._block_used, self._block_ids(graph.src, graph.dst), 1
            )
            if self._weights_map is not None:
                wmap = self._weights_map
                for key, w in zip(
                    records.tolist(), graph.weights.tolist()
                ):
                    wmap.setdefault(key, []).append(w)
        # Every block reserves ~30% slack over its initial population
        # (an empty block's first extent holds four records).
        self._block_cap = np.maximum(
            4,
            np.ceil(self._block_used * (1.0 + self.slack)).astype(np.int64),
        )
        self._block_ext = np.zeros(nblocks, dtype=np.int64)
        self._num_edges = graph.num_edges
        self._weighted = graph.is_weighted

    # --- queries ------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def is_valid(self, v: int) -> bool:
        return 0 <= v < self._num_vertices and bool(self._valid[v])

    def invalid_vertices(self) -> list[int]:
        """Ids of vertices deleted by invalidation."""
        return np.nonzero(~self._valid[: self._num_vertices])[0].tolist()

    def value(self, v: int) -> float:
        self._check_vertex(v)
        return float(self._values[v]) if self._valid[v] else INVALID_VALUE

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._num_vertices:
            raise DynamicGraphError(
                f"vertex {v} out of range [0, {self._num_vertices})"
            )

    def _interval_of(self, v: int) -> int:
        return min(v // self._interval_stride, self.num_intervals - 1)

    def _block_of(self, s: int, d: int) -> tuple[int, int]:
        return self._interval_of(s), self._interval_of(d)

    def _block_id(self, s: int, d: int) -> int:
        return (
            self._interval_of(s) * self.num_intervals + self._interval_of(d)
        )

    def _block_ids(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        ni = self.num_intervals
        src_iv = np.minimum(src // self._interval_stride, ni - 1)
        dst_iv = np.minimum(dst // self._interval_stride, ni - 1)
        return src_iv * ni + dst_iv

    # --- mutations ----------------------------------------------------------

    def _grow_block(self, block: int) -> None:
        """Allocate extensions until the block's occupancy fits — the
        exact count serial appends would have triggered (Section 5:
        reserved space exhausted means an extension region is allocated
        and linked at the end of the block)."""
        used = int(self._block_used[block])
        cap = int(self._block_cap[block])
        while cap < used:
            cap += max(4, cap // 2)
            self._block_ext[block] += 1
            self.stats.extensions_allocated += 1
        self._block_cap[block] = cap

    def add_edge(self, s: int, d: int, weight: float | None = None) -> None:
        """O(1): append a record into the owning block's slack space."""
        self._check_vertex(s)
        self._check_vertex(d)
        if not (self._valid[s] and self._valid[d]):
            raise DynamicGraphError(
                f"edge ({s}, {d}) touches a deleted vertex"
            )
        if self._weighted and weight is None:
            raise DynamicGraphError(
                "this store holds weighted edges; pass weight="
            )
        if not self._weighted and weight is not None:
            raise DynamicGraphError(
                "this store holds unweighted edges; omit weight="
            )
        key = (s << 32) | d
        self._counts[key] = self._counts.get(key, 0) + 1
        if self._weights_map is not None:
            self._weights_map.setdefault(key, []).append(float(weight))
        block = self._block_id(s, d)
        self._block_used[block] += 1
        if self._block_used[block] > self._block_cap[block]:
            self._grow_block(block)
        self._num_edges += 1
        self.stats.edges_added += 1

    def delete_edge(self, s: int, d: int) -> None:
        """O(1): the record is overwritten by the block's last edge and
        the last slot is freed (order inside a block is irrelevant)."""
        key = (s << 32) | d
        count = self._counts.get(key, 0)
        if count <= 0:
            raise DynamicGraphError(f"edge ({s}, {d}) not present")
        if count == 1:
            del self._counts[key]
        else:
            self._counts[key] = count - 1
        if self._weights_map is not None:
            weights = self._weights_map[key]
            weights.pop()
            if not weights:
                del self._weights_map[key]
        self._block_used[self._block_id(s, d)] -= 1
        self._num_edges -= 1
        self.stats.edges_deleted += 1

    def add_edges(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Bulk :meth:`add_edge`: the batch is validated vectorially,
        counted into the multiset, and block occupancies are updated in
        one scatter; extension accounting matches what the same appends
        would have allocated serially."""
        src = np.asarray(src, dtype=VERTEX_DTYPE)
        dst = np.asarray(dst, dtype=VERTEX_DTYPE)
        n = int(src.size)
        if n == 0:
            return
        if self._weighted and weights is None:
            raise DynamicGraphError(
                "this store holds weighted edges; pass weights="
            )
        if not self._weighted and weights is not None:
            raise DynamicGraphError(
                "this store holds unweighted edges; omit weights="
            )
        lo = min(int(src.min()), int(dst.min()))
        hi = max(int(src.max()), int(dst.max()))
        if lo < 0 or hi >= self._num_vertices:
            raise DynamicGraphError(
                f"edge endpoint out of range [0, {self._num_vertices})"
            )
        if not bool((self._valid[src] & self._valid[dst]).all()):
            raise DynamicGraphError("edge batch touches a deleted vertex")
        counts = self._counts
        get = counts.get
        for key in _encode_edges(src, dst).tolist():
            counts[key] = get(key, 0) + 1
        if self._weights_map is not None:
            wmap = self._weights_map
            for key, w in zip(
                _encode_edges(src, dst).tolist(), weights.tolist()
            ):
                wmap.setdefault(key, []).append(w)
        added = np.bincount(
            self._block_ids(src, dst),
            minlength=self._block_used.size,
        )
        self._block_used += added
        for block in np.nonzero(
            self._block_used > self._block_cap
        )[0].tolist():
            self._grow_block(block)
        self._num_edges += n
        self.stats.edges_added += n

    def delete_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Bulk :meth:`delete_edge`.  Availability is checked before
        any mutation, so a rejected batch leaves the store untouched."""
        src = np.asarray(src, dtype=VERTEX_DTYPE)
        dst = np.asarray(dst, dtype=VERTEX_DTYPE)
        n = int(src.size)
        if n == 0:
            return
        records = _encode_edges(src, dst)
        uniq, mult = np.unique(records, return_counts=True)
        counts = self._counts
        get = counts.get
        for key, m in zip(uniq.tolist(), mult.tolist()):
            if get(key, 0) < m:
                raise DynamicGraphError(
                    f"edge ({key >> 32}, {key & 0xFFFFFFFF}) not present"
                )
        for key, m in zip(uniq.tolist(), mult.tolist()):
            remaining = counts[key] - m
            if remaining:
                counts[key] = remaining
            else:
                del counts[key]
            if self._weights_map is not None:
                weights = self._weights_map[key]
                del weights[len(weights) - m:]
                if not weights:
                    del self._weights_map[key]
        removed = np.bincount(
            self._block_ids(src, dst),
            minlength=self._block_used.size,
        )
        self._block_used -= removed
        self._num_edges -= n
        self.stats.edges_deleted += n

    def add_vertex(self, value: float = 0.0) -> int:
        """O(1) while interval slack lasts; repartitions on overflow."""
        if self._num_vertices == self._capacity:
            self._repartition()
        v = self._num_vertices
        self._num_vertices += 1
        self._valid[v] = True
        self._values[v] = value
        self.stats.vertices_added += 1
        return v

    def add_vertices(self, count: int) -> int:
        """Bulk :meth:`add_vertex` (default value); returns the first new
        id.  Repartitions exactly where the serial loop would: whenever
        the interval slack runs out."""
        if count <= 0:
            raise DynamicGraphError(f"count must be positive: {count}")
        first = self._num_vertices
        remaining = count
        while remaining:
            if self._num_vertices == self._capacity:
                self._repartition()
            take = min(self._capacity - self._num_vertices, remaining)
            v0 = self._num_vertices
            self._valid[v0:v0 + take] = True
            self._values[v0:v0 + take] = 0.0
            self._num_vertices += take
            self.stats.vertices_added += take
            remaining -= take
        return first

    def delete_vertices(self, vs: np.ndarray) -> None:
        """Bulk :meth:`delete_vertex` (invalidation only)."""
        vs = np.asarray(vs, dtype=VERTEX_DTYPE)
        if vs.size == 0:
            return
        if int(vs.min()) < 0 or int(vs.max()) >= self._num_vertices:
            raise DynamicGraphError(
                f"vertex out of range [0, {self._num_vertices})"
            )
        if not bool(self._valid[vs].all()):
            raise DynamicGraphError("vertex batch targets a deleted vertex")
        self._valid[vs] = False
        self._values[vs] = INVALID_VALUE
        self.stats.vertices_deleted += int(vs.size)

    def delete_vertex(self, v: int, purge_edges: bool = False) -> int:
        """Delete vertex ``v``.

        The paper's O(1) scheme marks the value invalid (-1) and leaves
        incident edges in place — the edge-centric update simply has no
        effect for them.  ``purge_edges=True`` additionally removes the
        incident edges (O(edge records)), for callers that need a
        physically clean graph.
        """
        self._check_vertex(v)
        if not self._valid[v]:
            raise DynamicGraphError(f"vertex {v} already deleted")
        self._valid[v] = False
        self._values[v] = INVALID_VALUE
        removed = 0
        if purge_edges and self._counts:
            keys = np.fromiter(
                self._counts.keys(), dtype=np.int64, count=len(self._counts)
            )
            mult = np.fromiter(
                self._counts.values(), dtype=np.int64,
                count=len(self._counts),
            )
            src = keys >> 32
            dst = keys & 0xFFFFFFFF
            incident = (src == v) | (dst == v)
            removed = int(mult[incident].sum())
            if removed:
                for key in keys[incident].tolist():
                    del self._counts[key]
                    if self._weights_map is not None:
                        self._weights_map.pop(key, None)
                freed = np.bincount(
                    self._block_ids(src[incident], dst[incident]),
                    weights=mult[incident],
                    minlength=self._block_used.size,
                ).astype(np.int64)
                self._block_used -= freed
                self._num_edges -= removed
                self.stats.edges_deleted += removed
        self.stats.vertices_deleted += 1
        return removed

    def _repartition(self) -> None:
        """Full re-preprocessing: rebuild layout with fresh slack."""
        graph = self.to_graph()
        values = self._values[: self._num_vertices].copy()
        valid = self._valid[: self._num_vertices].copy()
        stats = self.stats
        self._build(graph)
        self._values[: values.size] = values
        self._valid[: valid.size] = valid
        self.stats = stats
        self.stats.repartitions += 1

    # --- export -------------------------------------------------------------

    def to_graph(self, name: str = "dynamic") -> Graph:
        """Materialise the current edge set as an immutable graph."""
        if not self._counts:
            empty = np.empty(0, dtype=VERTEX_DTYPE)
            return Graph(
                self._num_vertices, empty, empty,
                np.empty(0) if self._weighted else None,
                name=name,
            )
        keys = np.fromiter(
            self._counts.keys(), dtype=np.int64, count=len(self._counts)
        )
        mult = np.fromiter(
            self._counts.values(), dtype=np.int64, count=len(self._counts)
        )
        expanded = np.repeat(keys, mult)
        src = (expanded >> 32).astype(VERTEX_DTYPE)
        dst = (expanded & 0xFFFFFFFF).astype(VERTEX_DTYPE)
        weights = None
        if self._weighted:
            weights = np.array(
                [
                    w
                    for key in keys.tolist()
                    for w in self._weights_map[key]
                ]
            )
        return Graph(self._num_vertices, src, dst, weights, name=name)


class GraphRDynamicStore:
    """The same request interface over GraphR's 8x8-tile representation.

    GraphR's processing format is the dense adjacency matrix of each
    non-empty 8x8 tile (what gets written into a crossbar), so every
    edge mutation must also update the dense tile image — and the tile
    population is ~N_avg edges, so there are orders of magnitude more
    tiles to manage than HyVE has blocks.

    All tile images live in one growable ``(tiles, planes, 8, 8)``
    array with a key -> slot directory, so a batched update gathers and
    scatters the touched cells of *every* touched tile in a handful of
    NumPy calls — no per-tile Python iteration on the hot path.
    """

    TILE = 8
    #: 16-bit cell values split over four 4-bit crossbar planes.
    PLANES = 4
    #: Cell counts are 16-bit (four 4-bit nibbles), so the images are
    #: stored at exactly that width.
    IMAGE_DTYPE = np.uint16

    def __init__(self, graph: Graph, slack: float = DEFAULT_SLACK) -> None:
        self.slack = slack
        self.stats = DynamicStats()
        self._num_vertices = graph.num_vertices
        self._valid = np.ones(graph.num_vertices, dtype=bool)
        self._slot: dict[tuple[int, int], int] = {}
        self._ntiles = 0
        self._images = np.zeros(
            (0, self.PLANES, self.TILE, self.TILE), dtype=self.IMAGE_DTYPE
        )
        # Row/column tile directories, built lazily: only vertex purges
        # read them, so bulk loading skips the per-tile registration.
        self._row_index: dict[int, set[tuple[int, int]]] | None = None
        self._col_index: dict[int, set[tuple[int, int]]] | None = None
        self._num_edges = 0
        if graph.num_edges:
            self._bulk_load(graph)

    @property
    def _tiles(self) -> dict[tuple[int, int], np.ndarray]:
        """Key -> dense image (views into the slot array), for
        inspection; the hot paths go through the slot directory."""
        return {
            key: self._images[slot] for key, slot in self._slot.items()
        }

    def _indexes(
        self,
    ) -> tuple[
        dict[int, set[tuple[int, int]]], dict[int, set[tuple[int, int]]]
    ]:
        if self._row_index is None or self._col_index is None:
            row: dict[int, set[tuple[int, int]]] = {}
            col: dict[int, set[tuple[int, int]]] = {}
            for key in self._slot:
                row.setdefault(key[0], set()).add(key)
                col.setdefault(key[1], set()).add(key)
            self._row_index, self._col_index = row, col
        return self._row_index, self._col_index

    def _register_tile(self, key: tuple[int, int]) -> None:
        if self._row_index is not None:
            self._row_index.setdefault(key[0], set()).add(key)
        if self._col_index is not None:
            self._col_index.setdefault(key[1], set()).add(key)

    def _ensure_capacity(self, extra: int) -> None:
        need = self._ntiles + extra
        cap = len(self._images)
        if need > cap:
            new_cap = max(need, cap + (cap >> 1), 64)
            grown = np.zeros(
                (new_cap, self.PLANES, self.TILE, self.TILE),
                dtype=self.IMAGE_DTYPE,
            )
            grown[: self._ntiles] = self._images[: self._ntiles]
            self._images = grown

    def _bulk_load(self, graph: Graph) -> None:
        """Vectorised initial tiling (the one-shot preprocessing pass).

        One ``np.unique`` over a combined (tile, cell) key replaces the
        per-tile ``np.add.at`` scatter of the naive version: cell counts
        for *all* tiles land directly in the slot array, and the only
        remaining Python work is the key -> slot dict construction.
        """
        t = self.TILE
        cells = t * t
        stride = (self._num_vertices // t) + 1
        flat = (graph.src // t) * stride + graph.dst // t
        combined = flat * cells + (graph.src % t) * t + graph.dst % t
        uniq, counts = np.unique(combined, return_counts=True)
        cell_idx = uniq % cells
        tile_flat = uniq // cells
        boundaries = np.nonzero(np.diff(tile_flat))[0] + 1
        tile_ids = tile_flat[np.concatenate([[0], boundaries])]
        ntiles = tile_ids.size
        sizes = np.diff(np.concatenate([[0], boundaries,
                                        [tile_flat.size]]))
        owner = np.repeat(np.arange(ntiles), sizes)

        # Allocate the slack share up front: the untouched tail pages
        # cost nothing until a batch claims slots, and the first bulk
        # update then skips the grow-and-copy entirely.
        cap = ntiles + max(64, int(ntiles * self.slack))
        tiles = np.zeros(
            (cap, self.PLANES, t, t), dtype=self.IMAGE_DTYPE
        )
        tiles[:ntiles, 0].reshape(ntiles, cells)[owner, cell_idx] = counts
        # Upper planes hold the 4-bit nibbles of the 16-bit cell count;
        # they are only non-zero where a cell count reaches 16.
        if counts.size and int(counts.max()) >= 16:
            base = tiles[:ntiles, 0]
            for plane in range(1, self.PLANES):
                tiles[:ntiles, plane] = (base >> (4 * plane)) & 0xF

        rows = (tile_ids // stride).tolist()
        cols = (tile_ids % stride).tolist()
        self._images = tiles
        self._ntiles = ntiles
        self._slot = dict(zip(zip(rows, cols), range(ntiles)))
        self._num_edges = graph.num_edges

    def _tile_key(self, s: int, d: int) -> tuple[tuple[int, int], int, int]:
        t = self.TILE
        return (s // t, d // t), s % t, d % t

    def _tile_set(self, s: int, d: int, value: int) -> np.ndarray:
        key, r, c = self._tile_key(s, d)
        slot = self._slot.get(key)
        if slot is None:
            self._ensure_capacity(1)
            slot = self._ntiles
            self._ntiles += 1
            self._slot[key] = slot
            self._register_tile(key)
        tile = self._images[slot]
        count = int(tile[0, r, c]) + value
        # The dense images are what the four 4-bit crossbars load:
        # every mutation re-encodes the cell across all planes and
        # rewrites the image.
        for plane in range(self.PLANES):
            tile[plane, r, c] = (count >> (4 * plane)) & 0xF if count else 0
        tile[0, r, c] = count
        return tile

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def invalid_vertices(self) -> list[int]:
        """Ids of vertices deleted by invalidation."""
        return np.nonzero(~self._valid[: self._num_vertices])[0].tolist()

    def add_edge(self, s: int, d: int) -> None:
        if not (0 <= s < self._num_vertices and 0 <= d < self._num_vertices):
            raise DynamicGraphError(f"edge ({s}, {d}) out of range")
        self._tile_set(s, d, 1)
        self._num_edges += 1
        self.stats.edges_added += 1

    def delete_edge(self, s: int, d: int) -> None:
        key, r, c = self._tile_key(s, d)
        slot = self._slot.get(key)
        if slot is None or self._images[slot, 0, r, c] <= 0:
            raise DynamicGraphError(f"edge ({s}, {d}) not present")
        self._tile_set(s, d, -1)
        self._num_edges -= 1
        self.stats.edges_deleted += 1

    def add_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Bulk :meth:`add_edge`: one gather/scatter over the slot
        array re-encodes every touched cell across all planes."""
        src = np.asarray(src, dtype=VERTEX_DTYPE)
        dst = np.asarray(dst, dtype=VERTEX_DTYPE)
        n = int(src.size)
        if n == 0:
            return
        lo = min(int(src.min()), int(dst.min()))
        hi = max(int(src.max()), int(dst.max()))
        if lo < 0 or hi >= self._num_vertices:
            raise DynamicGraphError("edge batch out of range")
        self._apply_cell_deltas(src, dst, +1)
        self._num_edges += n
        self.stats.edges_added += n

    def delete_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Bulk :meth:`delete_edge` over the dense tile images."""
        src = np.asarray(src, dtype=VERTEX_DTYPE)
        dst = np.asarray(dst, dtype=VERTEX_DTYPE)
        n = int(src.size)
        if n == 0:
            return
        self._apply_cell_deltas(src, dst, -1)
        self._num_edges -= n
        self.stats.edges_deleted += n

    def _apply_cell_deltas(
        self, src: np.ndarray, dst: np.ndarray, sign: int
    ) -> None:
        """Add ``sign`` per (src, dst) occurrence to the tile cells.

        Deltas are grouped per (tile, cell), missing tiles get slots
        allocated, and then one fancy-indexed gather/scatter per plane
        re-encodes every mutated cell — exactly what :meth:`_tile_set`
        does per edge, across all touched tiles at once.  Validation
        (deleting from an absent tile or below zero) happens before any
        write, so a rejected batch leaves the store untouched.
        """
        t = self.TILE
        cells = t * t
        stride = (self._num_vertices // t) + 1
        flat_tile = (src // t) * stride + dst // t
        combined = flat_tile * cells + (src % t) * t + dst % t
        ordered = np.sort(combined)
        boundaries = np.nonzero(np.diff(ordered))[0] + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [ordered.size]])
        uniq = ordered[starts]
        deltas = (ends - starts) * sign
        tile_of = uniq // cells
        cell_of = uniq % cells
        tile_bounds = np.nonzero(np.diff(tile_of))[0] + 1
        tile_starts = np.concatenate([[0], tile_bounds])
        tile_sizes = np.diff(
            np.concatenate([tile_starts, [tile_of.size]])
        )
        keys = [
            divmod(k, stride) for k in tile_of[tile_starts].tolist()
        ]
        get = self._slot.get
        slots = np.fromiter(
            (get(k, -1) for k in keys), dtype=np.int64, count=len(keys)
        )
        missing = np.nonzero(slots < 0)[0]
        if missing.size:
            if sign < 0:
                raise DynamicGraphError(
                    "edge batch deletes from an empty tile"
                )
            self._ensure_capacity(missing.size)
            base = self._ntiles
            for j, i in enumerate(missing.tolist()):
                self._slot[keys[i]] = base + j
                self._register_tile(keys[i])
            slots[missing] = base + np.arange(missing.size)
            self._ntiles = base + missing.size
        slot_per_cell = np.repeat(slots, tile_sizes)
        flat_images = self._images.reshape(
            len(self._images), self.PLANES, cells
        )
        counts = flat_images[slot_per_cell, 0, cell_of] + deltas
        if sign < 0 and bool((counts < 0).any()):
            raise DynamicGraphError("edge batch deletes absent edges")
        # Re-encode the mutated cells across all planes and rewrite
        # the dense images (what the four 4-bit crossbars reload).
        flat_images[slot_per_cell, 0, cell_of] = counts
        for plane in range(1, self.PLANES):
            flat_images[slot_per_cell, plane, cell_of] = (
                counts >> (4 * plane)
            ) & 0xF

    def add_vertex(self, value: float = 0.0) -> int:
        del value
        # The tile grid is sized by vertex count: growing it shifts the
        # tiling, which GraphR handles with a re-preprocessing pass
        # unless the id lands inside the current boundary tile.
        v = self._num_vertices
        self._num_vertices += 1
        self._valid = np.append(self._valid, True)
        if v % self.TILE == 0:
            self.stats.repartitions += 1
        self.stats.vertices_added += 1
        return v

    def add_vertices(self, count: int) -> int:
        """Bulk :meth:`add_vertex`; returns the first new id."""
        if count <= 0:
            raise DynamicGraphError(f"count must be positive: {count}")
        first = self._num_vertices
        self._num_vertices += count
        self._valid = np.append(
            self._valid, np.ones(count, dtype=bool)
        )
        # One repartition per tile-grid growth, as the serial loop counts.
        self.stats.repartitions += len(
            range(first + (-first) % self.TILE, first + count, self.TILE)
        )
        self.stats.vertices_added += count
        return first

    def delete_vertices(self, vs: np.ndarray) -> None:
        """Bulk :meth:`delete_vertex` (invalidation only)."""
        vs = np.asarray(vs, dtype=VERTEX_DTYPE)
        if vs.size == 0:
            return
        if int(vs.min()) < 0 or int(vs.max()) >= self._num_vertices:
            raise DynamicGraphError("vertex batch out of range")
        if not bool(self._valid[vs].all()):
            raise DynamicGraphError("vertex batch targets a deleted vertex")
        self._valid[vs] = False
        self.stats.vertices_deleted += int(vs.size)

    def delete_vertex(self, v: int, purge_edges: bool = False) -> int:
        """Same invalidation strategy as HyVE ("we apply the same
        strategy for GraphR"); purging additionally clears the vertex's
        row/column in every dense tile image."""
        if not (0 <= v < self._num_vertices and self._valid[v]):
            raise DynamicGraphError(f"vertex {v} not present")
        self._valid[v] = False
        removed = 0
        if purge_edges:
            t = self.TILE
            row, col = v // t, v % t
            row_index, col_index = self._indexes()
            keys = (
                row_index.get(row, set())
                | col_index.get(row, set())
            )
            for key in keys:
                tile = self._images[self._slot[key]]
                if key[0] == row:
                    removed += int(tile[0, col, :].sum())
                    tile[:, col, :] = 0
                if key[1] == row:
                    removed += int(tile[0, :, col].sum())
                    tile[:, :, col] = 0
            self._num_edges -= removed
            self.stats.edges_deleted += removed
        self.stats.vertices_deleted += 1
        return removed
