"""Dynamic graph storage (Section 5).

HyVE supports evolving graphs with O(1) incremental updates instead of
re-running preprocessing:

* **Adding edges** — appended at the end of the owning block's memory
  extent; every block reserves ~30% slack, and when it runs out an
  extension region is allocated and linked from the block's end.
* **Deleting edges** — the deleted edge is overwritten by the block's
  last edge and the last slot is freed (order inside a block is
  irrelevant to the edge-centric model).
* **Adding vertices** — intervals also reserve slack; when an interval
  overflows, a full re-preprocessing pass runs (vertex access is not
  sequential, so extension chaining does not work — Section 5).
* **Deleting vertices** — the value is set to an invalid sentinel and
  incident edges are removed.

A :class:`GraphRDynamicStore` mirrors the same request interface over
GraphR's representation — fixed 8x8 adjacency tiles that must be kept
in dense (crossbar-loadable) form — which is what makes its update
throughput ~8x lower (Fig. 20).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DynamicGraphError
from ..graph.graph import Graph, VERTEX_DTYPE
from ..graph.partition import interval_bounds

#: Sentinel value of deleted vertices ("e.g., -1 for PageRank").
INVALID_VALUE = -1.0

#: Default reserved slack ("e.g., 30% of a block size").
DEFAULT_SLACK = 0.30


@dataclass
class DynamicStats:
    """Bookkeeping of one store's update history."""

    edges_added: int = 0
    edges_deleted: int = 0
    vertices_added: int = 0
    vertices_deleted: int = 0
    extensions_allocated: int = 0
    repartitions: int = 0

    @property
    def edges_changed(self) -> int:
        """Total edge mutations (the Fig. 20 throughput numerator)."""
        return self.edges_added + self.edges_deleted


class _BlockStore:
    """One block's edge storage with slack and extension chaining.

    Mirrors the paper's layout: a flat pair array with reserved space at
    the end, plus the controller's address map — here a position index —
    so both insertion (append into slack) and deletion (swap-with-last
    at a known address) are O(1), as Section 5 claims.
    """

    __slots__ = ("pairs", "weights", "positions", "capacity", "extensions")

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        slack: float,
        weights: np.ndarray | None = None,
    ) -> None:
        self.pairs: list[tuple[int, int]] = list(
            zip(src.tolist(), dst.tolist())
        )
        self.weights: list[float] | None = (
            None if weights is None else list(weights.tolist())
        )
        self.positions: dict[tuple[int, int], list[int]] = {}
        for idx, pair in enumerate(self.pairs):
            self.positions.setdefault(pair, []).append(idx)
        self.capacity = max(4, int(np.ceil(len(self.pairs) * (1.0 + slack))))
        self.extensions = 0

    @property
    def used(self) -> int:
        return len(self.pairs)

    def append(self, s: int, d: int, weight: float | None = None) -> bool:
        """Add an edge; returns True if an extension was allocated."""
        extended = False
        if len(self.pairs) == self.capacity:
            # Reserved space exhausted: allocate and link an extension
            # region at the end of the block (Section 5).
            self.capacity += max(4, self.capacity // 2)
            self.extensions += 1
            extended = True
        pair = (s, d)
        self.positions.setdefault(pair, []).append(len(self.pairs))
        self.pairs.append(pair)
        if self.weights is not None:
            self.weights.append(0.0 if weight is None else float(weight))
        return extended

    def delete(self, s: int, d: int) -> bool:
        """Remove one matching edge by swap-with-last; False if absent."""
        pair = (s, d)
        stack = self.positions.get(pair)
        if not stack:
            return False
        idx = stack.pop()
        if not stack:
            del self.positions[pair]
        last = len(self.pairs) - 1
        if idx != last:
            moved = self.pairs[last]
            self.pairs[idx] = moved
            moved_stack = self.positions[moved]
            moved_stack[moved_stack.index(last)] = idx
            if self.weights is not None:
                self.weights[idx] = self.weights[last]
        self.pairs.pop()
        if self.weights is not None:
            self.weights.pop()
        return True

    def delete_vertex_edges(self, v: int) -> int:
        """Remove every edge incident to ``v``; returns removal count."""
        victims = [p for p in self.pairs if p[0] == v or p[1] == v]
        for pair in victims:
            self.delete(pair[0], pair[1])
        return len(victims)

    def edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        if not self.pairs:
            empty = np.empty(0, dtype=VERTEX_DTYPE)
            return empty, empty, (
                None if self.weights is None else np.empty(0)
            )
        arr = np.asarray(self.pairs, dtype=VERTEX_DTYPE)
        weights = (
            None if self.weights is None else np.asarray(self.weights)
        )
        return arr[:, 0], arr[:, 1], weights


class DynamicGraphStore:
    """HyVE's interval-block layout with O(1) incremental updates."""

    def __init__(
        self,
        graph: Graph,
        num_intervals: int = 32,
        slack: float = DEFAULT_SLACK,
    ) -> None:
        if slack < 0:
            raise DynamicGraphError(f"slack must be non-negative: {slack}")
        self.slack = slack
        self.num_intervals = num_intervals
        self.stats = DynamicStats()
        self._build(graph)

    # --- construction ------------------------------------------------------

    def _build(self, graph: Graph) -> None:
        self._capacity = max(
            4, int(np.ceil(graph.num_vertices * (1.0 + self.slack)))
        )
        self._num_vertices = graph.num_vertices
        self._valid = np.zeros(self._capacity, dtype=bool)
        self._valid[: graph.num_vertices] = True
        self._values = np.zeros(self._capacity)
        self._bounds = interval_bounds(
            max(self._capacity, 1), self.num_intervals
        )
        # Uniform-enough interval size for O(1) id -> interval mapping.
        self._interval_stride = max(
            1, -(-self._capacity // self.num_intervals)
        )
        self._blocks: dict[tuple[int, int], _BlockStore] = {}
        if graph.num_edges:
            src_iv = np.minimum(
                graph.src // self._interval_stride, self.num_intervals - 1
            )
            dst_iv = np.minimum(
                graph.dst // self._interval_stride, self.num_intervals - 1
            )
            flat = src_iv * self.num_intervals + dst_iv
            order = np.argsort(flat, kind="stable")
            sorted_flat = flat[order]
            boundaries = np.nonzero(np.diff(sorted_flat))[0] + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [sorted_flat.size]])
            for start, end in zip(starts, ends):
                key_flat = int(sorted_flat[start])
                key = divmod(key_flat, self.num_intervals)
                sel = order[start:end]
                self._blocks[key] = _BlockStore(
                    graph.src[sel],
                    graph.dst[sel],
                    self.slack,
                    None if graph.weights is None else graph.weights[sel],
                )
        self._num_edges = graph.num_edges
        self._weighted = graph.is_weighted

    # --- queries ------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def is_valid(self, v: int) -> bool:
        return 0 <= v < self._num_vertices and bool(self._valid[v])

    def invalid_vertices(self) -> list[int]:
        """Ids of vertices deleted by invalidation."""
        return np.nonzero(~self._valid[: self._num_vertices])[0].tolist()

    def value(self, v: int) -> float:
        self._check_vertex(v)
        return float(self._values[v]) if self._valid[v] else INVALID_VALUE

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._num_vertices:
            raise DynamicGraphError(
                f"vertex {v} out of range [0, {self._num_vertices})"
            )

    def _interval_of(self, v: int) -> int:
        return min(v // self._interval_stride, self.num_intervals - 1)

    def _block_of(self, s: int, d: int) -> tuple[int, int]:
        return self._interval_of(s), self._interval_of(d)

    # --- mutations ------------------------------------------------------------

    def add_edge(self, s: int, d: int, weight: float | None = None) -> None:
        """O(1): append to the owning block's slack space."""
        self._check_vertex(s)
        self._check_vertex(d)
        if not (self._valid[s] and self._valid[d]):
            raise DynamicGraphError(
                f"edge ({s}, {d}) touches a deleted vertex"
            )
        if self._weighted and weight is None:
            raise DynamicGraphError(
                "this store holds weighted edges; pass weight="
            )
        if not self._weighted and weight is not None:
            raise DynamicGraphError(
                "this store holds unweighted edges; omit weight="
            )
        key = self._block_of(s, d)
        block = self._blocks.get(key)
        if block is None:
            block = _BlockStore(
                np.empty(0, dtype=VERTEX_DTYPE),
                np.empty(0, dtype=VERTEX_DTYPE),
                self.slack,
                np.empty(0) if self._weighted else None,
            )
            self._blocks[key] = block
        if block.append(s, d, weight):
            self.stats.extensions_allocated += 1
        self._num_edges += 1
        self.stats.edges_added += 1

    def delete_edge(self, s: int, d: int) -> None:
        """O(block): swap-with-last inside the owning block."""
        block = self._blocks.get(self._block_of(s, d))
        if block is None or not block.delete(s, d):
            raise DynamicGraphError(f"edge ({s}, {d}) not present")
        self._num_edges -= 1
        self.stats.edges_deleted += 1

    def add_vertex(self, value: float = 0.0) -> int:
        """O(1) while interval slack lasts; repartitions on overflow."""
        if self._num_vertices == self._capacity:
            self._repartition()
        v = self._num_vertices
        self._num_vertices += 1
        self._valid[v] = True
        self._values[v] = value
        self.stats.vertices_added += 1
        return v

    def delete_vertex(self, v: int, purge_edges: bool = False) -> int:
        """Delete vertex ``v``.

        The paper's O(1) scheme marks the value invalid (-1) and leaves
        incident edges in place — the edge-centric update simply has no
        effect for them.  ``purge_edges=True`` additionally removes the
        incident edges (O(degree + blocks touched)), for callers that
        need a physically clean graph.
        """
        self._check_vertex(v)
        if not self._valid[v]:
            raise DynamicGraphError(f"vertex {v} already deleted")
        self._valid[v] = False
        self._values[v] = INVALID_VALUE
        removed = 0
        if purge_edges:
            i = self._interval_of(v)
            seen: set[tuple[int, int]] = set()
            for k in range(self.num_intervals):
                for key in ((i, k), (k, i)):
                    if key in seen:
                        continue
                    seen.add(key)
                    block = self._blocks.get(key)
                    if block is not None:
                        removed += block.delete_vertex_edges(v)
            self._num_edges -= removed
            self.stats.edges_deleted += removed
        self.stats.vertices_deleted += 1
        return removed

    def _repartition(self) -> None:
        """Full re-preprocessing: rebuild layout with fresh slack."""
        graph = self.to_graph()
        values = self._values[: self._num_vertices].copy()
        valid = self._valid[: self._num_vertices].copy()
        stats = self.stats
        self._build(graph)
        self._values[: values.size] = values
        self._valid[: valid.size] = valid
        self.stats = stats
        self.stats.repartitions += 1

    # --- export -------------------------------------------------------------

    def to_graph(self, name: str = "dynamic") -> Graph:
        """Materialise the current edge set as an immutable graph."""
        srcs = []
        dsts = []
        weight_parts = []
        for block in self._blocks.values():
            s, d, w = block.edges()
            srcs.append(s)
            dsts.append(d)
            if w is not None:
                weight_parts.append(w)
        if srcs:
            src = np.concatenate(srcs)
            dst = np.concatenate(dsts)
            weights = (
                np.concatenate(weight_parts) if self._weighted else None
            )
        else:
            src = np.empty(0, dtype=VERTEX_DTYPE)
            dst = np.empty(0, dtype=VERTEX_DTYPE)
            weights = np.empty(0) if self._weighted else None
        return Graph(self._num_vertices, src, dst, weights, name=name)


class GraphRDynamicStore:
    """The same request interface over GraphR's 8x8-tile representation.

    GraphR's processing format is the dense adjacency matrix of each
    non-empty 8x8 tile (what gets written into a crossbar), so every
    edge mutation must also update the dense tile image — and the tile
    population is ~N_avg edges, so there are orders of magnitude more
    tiles to manage than HyVE has blocks.
    """

    TILE = 8

    def __init__(self, graph: Graph, slack: float = DEFAULT_SLACK) -> None:
        self.slack = slack
        self.stats = DynamicStats()
        self._num_vertices = graph.num_vertices
        self._valid = np.ones(graph.num_vertices, dtype=bool)
        self._tiles: dict[tuple[int, int], np.ndarray] = {}
        self._row_index: dict[int, set[tuple[int, int]]] = {}
        self._col_index: dict[int, set[tuple[int, int]]] = {}
        self._num_edges = 0
        if graph.num_edges:
            self._bulk_load(graph)

    def _bulk_load(self, graph: Graph) -> None:
        """Vectorised initial tiling (the one-shot preprocessing pass).

        One ``np.unique`` over a combined (tile, cell) key replaces the
        per-tile ``np.add.at`` scatter of the naive version: cell counts
        for *all* tiles land in a single preallocated array, and the
        remaining Python loop only registers dict/index entries (views
        into that array, one per non-empty tile).
        """
        t = self.TILE
        cells = t * t
        stride = (self._num_vertices // t) + 1
        flat = (graph.src // t) * stride + graph.dst // t
        combined = flat * cells + (graph.src % t) * t + graph.dst % t
        uniq, counts = np.unique(combined, return_counts=True)
        cell_idx = uniq % cells
        tile_flat = uniq // cells
        boundaries = np.nonzero(np.diff(tile_flat))[0] + 1
        tile_ids = tile_flat[np.concatenate([[0], boundaries])]
        ntiles = tile_ids.size
        sizes = np.diff(np.concatenate([[0], boundaries,
                                        [tile_flat.size]]))
        owner = np.repeat(np.arange(ntiles), sizes)

        tiles = np.zeros((ntiles, self.PLANES, t, t), dtype=np.int32)
        tiles[:, 0].reshape(ntiles, cells)[owner, cell_idx] = counts
        # Upper planes hold the 4-bit nibbles of the 16-bit cell count;
        # they are only non-zero where a cell count reaches 16.
        if counts.size and int(counts.max()) >= 16:
            base = tiles[:, 0]
            for plane in range(1, self.PLANES):
                tiles[:, plane] = (base >> (4 * plane)) & 0xF

        rows = (tile_ids // stride).tolist()
        cols = (tile_ids % stride).tolist()
        for k, (ti, tj) in enumerate(zip(rows, cols)):
            key = (int(ti), int(tj))
            self._tiles[key] = tiles[k]
            self._row_index.setdefault(key[0], set()).add(key)
            self._col_index.setdefault(key[1], set()).add(key)
        self._num_edges = graph.num_edges

    def _tile_key(self, s: int, d: int) -> tuple[tuple[int, int], int, int]:
        t = self.TILE
        return (s // t, d // t), s % t, d % t

    #: 16-bit cell values split over four 4-bit crossbar planes.
    PLANES = 4

    def _tile_set(self, s: int, d: int, value: int) -> np.ndarray:
        key, r, c = self._tile_key(s, d)
        tile = self._tiles.get(key)
        if tile is None:
            tile = np.zeros((self.PLANES, self.TILE, self.TILE),
                            dtype=np.int32)
            self._tiles[key] = tile
            self._row_index.setdefault(key[0], set()).add(key)
            self._col_index.setdefault(key[1], set()).add(key)
        count = tile[0, r, c] + value
        # The dense images are what the four 4-bit crossbars load:
        # every mutation re-encodes the cell across all planes and
        # rewrites the images.
        for plane in range(self.PLANES):
            tile[plane, r, c] = (count >> (4 * plane)) & 0xF if count else 0
        tile[0, r, c] = count
        self._tiles[key] = tile.copy()
        return tile

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def invalid_vertices(self) -> list[int]:
        """Ids of vertices deleted by invalidation."""
        return np.nonzero(~self._valid[: self._num_vertices])[0].tolist()

    def add_edge(self, s: int, d: int) -> None:
        if not (0 <= s < self._num_vertices and 0 <= d < self._num_vertices):
            raise DynamicGraphError(f"edge ({s}, {d}) out of range")
        self._tile_set(s, d, 1)
        self._num_edges += 1
        self.stats.edges_added += 1

    def delete_edge(self, s: int, d: int) -> None:
        key, r, c = self._tile_key(s, d)
        tile = self._tiles.get(key)
        if tile is None or tile[0, r, c] <= 0:
            raise DynamicGraphError(f"edge ({s}, {d}) not present")
        self._tile_set(s, d, -1)
        self._num_edges -= 1
        self.stats.edges_deleted += 1

    def add_vertex(self, value: float = 0.0) -> int:
        del value
        # The tile grid is sized by vertex count: growing it shifts the
        # tiling, which GraphR handles with a re-preprocessing pass
        # unless the id lands inside the current boundary tile.
        v = self._num_vertices
        self._num_vertices += 1
        self._valid = np.append(self._valid, True)
        if v % self.TILE == 0:
            self.stats.repartitions += 1
        self.stats.vertices_added += 1
        return v

    def delete_vertex(self, v: int, purge_edges: bool = False) -> int:
        """Same invalidation strategy as HyVE ("we apply the same
        strategy for GraphR"); purging additionally clears the vertex's
        row/column in every dense tile image."""
        if not (0 <= v < self._num_vertices and self._valid[v]):
            raise DynamicGraphError(f"vertex {v} not present")
        self._valid[v] = False
        removed = 0
        if purge_edges:
            t = self.TILE
            row, col = v // t, v % t
            keys = (
                self._row_index.get(row, set())
                | self._col_index.get(row, set())
            )
            for key in keys:
                tile = self._tiles[key]
                if key[0] == row:
                    removed += int(tile[0, col, :].sum())
                    tile[:, col, :] = 0
                if key[1] == row:
                    removed += int(tile[0, :, col].sum())
                    tile[:, :, col] = 0
                self._tiles[key] = tile.copy()
            self._num_edges -= removed
            self.stats.edges_deleted += removed
        self.stats.vertices_deleted += 1
        return removed
