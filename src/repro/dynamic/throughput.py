"""Dynamic-update throughput measurement (Fig. 20).

Measures real wall-clock throughput (millions of changed edges per
second, single thread) of the HyVE and GraphR stores under the paper's
45/45/5/5 request mix.  Absolute numbers are a Python-vs-RTL-simulation
gap away from the paper's 42-47 M edges/s; the HyVE-vs-GraphR *ratio*
(~8x) is the reproduced quantity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..graph.graph import Graph
from .store import DynamicGraphStore, GraphRDynamicStore
from .updates import Request, apply_requests_batched, generate_requests

#: Memory traffic of one edge update in each representation.  HyVE
#: appends/overwrites one 8-byte edge record and touches the block
#: directory; GraphR must rewrite the dense crossbar image of the tile
#: (four 8x8 crossbars of 4-bit cells = 128 bytes) plus its directory
#: entry.  At fixed memory bandwidth, update throughput is inversely
#: proportional to these — the modelled ratio (~8.5x) brackets the
#: paper's measured 8.04x, while the Python wall-clock ratio below is
#: compressed by interpreter constant overheads.
HYVE_BYTES_PER_UPDATE = 8 + 8
GRAPHR_BYTES_PER_UPDATE = 128 + 8


def modeled_update_ratio() -> float:
    """HyVE-over-GraphR update throughput predicted by data movement."""
    return GRAPHR_BYTES_PER_UPDATE / HYVE_BYTES_PER_UPDATE


def modeled_absolute_throughput() -> float:
    """Modelled single-thread HyVE update rate (edges/s).

    An update is one address computation plus one in-cache record
    append — the same per-edge work as the preprocessing inner loop, so
    the calibrated per-edge constant of the preprocessing model applies.
    The paper measures 42.43 M edges/s/thread (Section 1) and up to
    46.98 M (Section 7.4.2).
    """
    from ..model.preprocessing import PER_EDGE_BASE

    return 1.0 / PER_EDGE_BASE


@dataclass(frozen=True)
class ThroughputResult:
    """Throughput of one store on one request stream."""

    store: str
    dataset: str
    requests: int
    edges_changed: int
    seconds: float

    @property
    def million_edges_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.edges_changed / self.seconds / 1e6


def measure_store(
    name: str,
    store,
    dataset: str,
    requests: list[Request],
) -> ThroughputResult:
    """Replay ``requests`` against ``store`` under a wall clock.

    Uses the chunked vectorized replay: each store ingests the 45/45/5/5
    mix as bulk operations, which is also how a hardware update queue
    would batch the request stream.
    """
    start = time.perf_counter()
    changed = apply_requests_batched(store, requests)
    elapsed = time.perf_counter() - start
    return ThroughputResult(
        store=name,
        dataset=dataset,
        requests=len(requests),
        edges_changed=changed,
        seconds=elapsed,
    )


def compare_dynamic_throughput(
    graph: Graph,
    num_requests: int = 20_000,
    num_intervals: int = 32,
    seed: int = 0,
) -> tuple[ThroughputResult, ThroughputResult]:
    """Fig. 20 for one dataset: (HyVE result, GraphR result)."""
    requests = generate_requests(graph, num_requests, seed=seed)
    hyve = measure_store(
        "HyVE",
        DynamicGraphStore(graph, num_intervals=num_intervals),
        graph.name,
        requests,
    )
    graphr = measure_store(
        "GraphR",
        GraphRDynamicStore(graph),
        graph.name,
        requests,
    )
    return hyve, graphr
