"""Streaming ingest: append-only update logs and a bounded-staleness engine.

This is the continuous-ingest half of the dynamic-graph story (ROADMAP
item 3).  Three pieces:

* :class:`UpdateLog` — an append-only, replayable log of edge ``add`` /
  ``del`` events with **monotonic logical timestamps**, serialised as
  ``hyve-updates-v1`` JSONL (one header record, then one record per
  event) or as a packed ``(n, 4)`` int64 array.  The log is laid out
  the way HyVE's write-once ReRAM blocks stream: strictly sequential
  appends, no in-place mutation, so replay is a single forward scan.
* :class:`StreamEngine` — consumes updates and maintains incremental
  PR/CC/BFS values under a **bounded-staleness contract**: the
  published values may lag the log by at most ``K - 1`` updates, and a
  flush (value refresh) happens whenever ``K`` updates are pending or
  a query arrives.  ``K = 1`` degenerates to eager exact maintenance.
  BFS and CC refresh *incrementally* for insert-only deltas (monotone
  min-relaxation from the previous fixpoint — exact, because the
  fixpoint is unique); deletions and PR fall back to a from-scratch
  rebuild of the canonical snapshot through the run cache, which is
  bit-identical by construction.  Either way, every published value is
  bit-identical (exact ints for BFS/CC, 1e-12 for PR) to a full
  rebuild of ``snapshot_at(t)`` — the ``stream-rebuild-identity``
  oracle enforces this over generated logs.
* :func:`measure_stream` — a :class:`StreamThroughputResult` bench:
  sustained updates/second under concurrent pricing queries, compared
  against a serial-replay baseline that rebuilds the graph from the
  log prefix at every query.
"""

from __future__ import annotations

import json
import time
from collections import defaultdict
from dataclasses import dataclass, field
from operator import itemgetter
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..algorithms import BFS, UNREACHED, make_algorithm, run_cached
from ..algorithms.runner import run_vectorized
from ..errors import StreamError
from ..graph.graph import VERTEX_DTYPE, Graph
from ..obs.metrics import STALENESS_FLUSHES, UPDATES_APPLIED, get_metrics
from ..obs.trace import get_tracer
from .temporal import TemporalGraph

#: Schema tag carried by every serialised update log.
UPDATES_SCHEMA = "hyve-updates-v1"

#: Default staleness bound: flush after this many pending updates.
DEFAULT_STALENESS_K = 64

#: Algorithms the stream engine knows how to maintain.
MAINTAINED_ALGORITHMS = ("pr", "cc", "bfs")

_OPS = ("add", "del")


@dataclass(frozen=True)
class Update:
    """One logged event: ``op`` ("add"/"del") on edge ``src -> dst``
    at logical time ``t``."""

    t: int
    op: str
    src: int
    dst: int


class UpdateLog:
    """Append-only edge-update log with monotonic logical timestamps.

    Timestamps are non-decreasing; events sharing a timestamp form one
    logical batch.  Appends are validated eagerly: vertex ids must be
    in range and a ``del`` must close a currently-open edge instance,
    so any prefix of a log is always replayable.
    """

    def __init__(self, num_vertices: int, name: str = "stream") -> None:
        if num_vertices < 0:
            raise StreamError(f"negative vertex count: {num_vertices}")
        self.num_vertices = int(num_vertices)
        self.name = name
        self._t: list[int] = []
        self._op: list[str] = []
        self._src: list[int] = []
        self._dst: list[int] = []
        #: open-instance multiset per packed key (append-time
        #: validation); a defaultdict so bulk appends can read counts
        #: through a single C-level ``itemgetter`` call
        self._open: defaultdict[int, int] = defaultdict(int)

    # --- appending -------------------------------------------------------

    @property
    def last_time(self) -> int:
        """Timestamp of the newest event (-1 when empty)."""
        return self._t[-1] if self._t else -1

    def append(self, op: str, src: int, dst: int, t: int | None = None,
               dedupe: bool = False) -> bool:
        """Append one event; returns False iff suppressed by ``dedupe``.

        ``t=None`` auto-assigns ``last_time + 1``.  With
        ``dedupe=True`` an ``add`` for an edge that already has an
        open instance is suppressed (duplicate suppression for
        at-least-once upstream feeds).
        """
        if op not in _OPS:
            raise StreamError(f"unknown op {op!r} (expected add/del)")
        src = int(src)
        dst = int(dst)
        if not (0 <= src < self.num_vertices and 0 <= dst < self.num_vertices):
            raise StreamError(
                f"edge {src}->{dst} out of range [0, {self.num_vertices})"
            )
        t = self.last_time + 1 if t is None else int(t)
        if t < self.last_time:
            raise StreamError(
                f"non-monotonic timestamp {t} after {self.last_time}"
            )
        key = (src << 32) | dst
        if op == "add":
            if dedupe and self._open.get(key, 0):
                return False
            self._open[key] = self._open.get(key, 0) + 1
        else:
            if not self._open.get(key, 0):
                raise StreamError(
                    f"del {src}->{dst} at t={t} has no matching open edge"
                )
            self._open[key] -= 1
            if not self._open[key]:
                del self._open[key]
        self._t.append(t)
        self._op.append(op)
        self._src.append(src)
        self._dst.append(dst)
        return True

    def extend(self, updates: Iterable["Update | tuple"]) -> int:
        """Append many events; returns the number accepted."""
        n = 0
        for u in updates:
            if isinstance(u, Update):
                n += self.append(u.op, u.src, u.dst, t=u.t)
            else:
                n += self.append(*u)
        return n

    def extend_arrays(self, events: np.ndarray) -> int:
        """Append a packed ``(n, 4)`` event block with vectorized
        validation (range, monotonic timestamps, and the FIFO
        open-instance check for deletes) — the bulk-ingest fast path.
        """
        events = np.asarray(events, dtype=np.int64)
        if events.ndim != 2 or events.shape[1] != 4:
            raise StreamError(
                f"packed update array must be (n, 4), got {events.shape}"
            )
        if events.shape[0] == 0:
            return 0
        t, op, src, dst = events.T
        bad_op = (op != 0) & (op != 1)
        if bad_op.any():
            raise StreamError(
                f"packed op must be 0/1, got {int(op[np.argmax(bad_op)])}"
            )
        if src.min() < 0 or dst.min() < 0 \
                or max(src.max(), dst.max()) >= self.num_vertices:
            raise StreamError(
                f"vertex ids must lie in [0, {self.num_vertices})"
            )
        if t[0] < self.last_time or np.any(np.diff(t) < 0):
            raise StreamError(
                f"non-monotonic timestamps in block starting at t={int(t[0])}"
            )
        keys = (src << 32) | dst
        delta = np.where(op == 0, 1, -1).astype(np.int64)
        # Per-key running balance (seeded from the currently-open
        # counts) must never go negative: group events by key with a
        # stable sort, then do a segmented cumulative sum.
        order = np.lexsort((np.arange(keys.size), keys))
        ks, ds = keys[order], delta[order]
        seg = np.r_[True, ks[1:] != ks[:-1]]
        uk = ks[seg]
        key_list = uk.tolist()
        if len(key_list) == 1:
            base = np.array([self._open[key_list[0]]], dtype=np.int64)
        else:
            base = np.array(itemgetter(*key_list)(self._open),
                            dtype=np.int64)
        csum = np.cumsum(ds)
        starts = np.flatnonzero(seg)
        seg_sizes = np.diff(np.r_[starts, keys.size])
        seg_base = np.repeat(csum[starts] - ds[starts], seg_sizes)
        running = csum - seg_base + np.repeat(base, seg_sizes)
        if (running < 0).any():
            j = int(order[int(np.argmax(running < 0))])
            raise StreamError(
                f"del {int(src[j])}->{int(dst[j])} at t={int(t[j])} "
                f"has no matching open edge"
            )
        self._t.extend(t.tolist())
        self._op.extend(["add" if o == 0 else "del" for o in op.tolist()])
        self._src.extend(src.tolist())
        self._dst.extend(dst.tolist())
        final = running[np.r_[np.flatnonzero(seg)[1:] - 1, keys.size - 1]]
        for k, c in zip(uk.tolist(), final.tolist()):
            if c:
                self._open[k] = c
            else:
                self._open.pop(k, None)
        return events.shape[0]

    # --- reading ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._t)

    def __getitem__(self, i: int) -> Update:
        return Update(self._t[i], self._op[i], self._src[i], self._dst[i])

    def __iter__(self) -> Iterator[Update]:
        for i in range(len(self._t)):
            yield self[i]

    @property
    def open_edges(self) -> int:
        """Edges currently alive (multiset size) after the whole log."""
        return sum(self._open.values())

    def temporal(self) -> TemporalGraph:
        """Replay into validity intervals (see :class:`TemporalGraph`)."""
        return TemporalGraph.from_log(self)

    # --- packed-array form -----------------------------------------------

    def to_arrays(self) -> np.ndarray:
        """Packed ``(n, 4)`` int64 array: columns t, op(0=add,1=del),
        src, dst — the sequential-stream layout."""
        arr = np.empty((len(self._t), 4), dtype=np.int64)
        arr[:, 0] = self._t
        arr[:, 1] = [0 if op == "add" else 1 for op in self._op]
        arr[:, 2] = self._src
        arr[:, 3] = self._dst
        return arr

    @classmethod
    def from_arrays(cls, num_vertices: int, events: np.ndarray,
                    name: str = "stream") -> "UpdateLog":
        """Rebuild (and re-validate) a log from its packed-array form."""
        events = np.asarray(events, dtype=np.int64)
        if events.ndim != 2 or events.shape[1] != 4:
            raise StreamError(
                f"packed update array must be (n, 4), got {events.shape}"
            )
        log = cls(num_vertices, name=name)
        for t, op, src, dst in events:
            if op not in (0, 1):
                raise StreamError(f"packed op must be 0/1, got {int(op)}")
            log.append(_OPS[int(op)], int(src), int(dst), t=int(t))
        return log

    # --- JSONL form ------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write ``hyve-updates-v1`` JSONL: header record, then events."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as sink:
            json.dump({"schema": UPDATES_SCHEMA, "kind": "header",
                       "num_vertices": self.num_vertices,
                       "name": self.name, "events": len(self)}, sink,
                      sort_keys=True)
            sink.write("\n")
            for u in self:
                json.dump({"t": u.t, "op": u.op, "src": u.src,
                           "dst": u.dst}, sink, sort_keys=True)
                sink.write("\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "UpdateLog":
        """Parse and validate one ``hyve-updates-v1`` JSONL file."""
        path = Path(path)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise StreamError(f"unreadable update log {path}: {exc}") from exc
        if not lines:
            raise StreamError(f"{path} is empty (missing header record)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise StreamError(f"{path}:1: bad JSON: {exc}") from exc
        if not isinstance(header, dict) \
                or header.get("schema") != UPDATES_SCHEMA:
            raise StreamError(
                f"{path} is not a {UPDATES_SCHEMA} log (schema="
                f"{header.get('schema') if isinstance(header, dict) else None!r})"
            )
        log = cls(int(header["num_vertices"]),
                  name=str(header.get("name", "stream")))
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                log.append(record["op"], record["src"], record["dst"],
                           t=record["t"])
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise StreamError(f"{path}:{lineno}: bad event: {exc}") from exc
        declared = header.get("events")
        if declared is not None and int(declared) != len(log):
            raise StreamError(
                f"{path}: header declares {declared} events, found {len(log)}"
            )
        return log


def generate_update_log(graph: Graph, num_updates: int, seed: int = 0,
                        delete_fraction: float = 0.3,
                        name: str | None = None) -> UpdateLog:
    """Deterministic synthetic log: the base graph's edges as one
    ``t=0`` batch, then ``num_updates`` seeded add/del events at
    ``t = 1..num_updates`` (deletes target a random open edge, so
    delete-then-re-insert of the same key occurs naturally)."""
    if graph.num_vertices <= 0:
        raise StreamError("generate_update_log needs a non-empty vertex set")
    rng = np.random.default_rng(seed)
    log = UpdateLog(graph.num_vertices, name=name or f"{graph.name}-stream")
    open_edges: list[tuple[int, int]] = []
    for s, d in zip(graph.src.tolist(), graph.dst.tolist()):
        log.append("add", s, d, t=0)
        open_edges.append((s, d))
    for i in range(num_updates):
        t = i + 1
        if open_edges and rng.random() < delete_fraction:
            j = int(rng.integers(len(open_edges)))
            s, d = open_edges.pop(j)
            log.append("del", s, d, t=t)
        else:
            s = int(rng.integers(graph.num_vertices))
            d = int(rng.integers(graph.num_vertices))
            log.append("add", s, d, t=t)
            open_edges.append((s, d))
    return log


# --- incremental maintenance (exact min-relaxation) ---------------------------


def _sorted_member(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Membership mask of ``needles`` in a *sorted* ``haystack``."""
    if not haystack.size:
        return np.zeros(needles.size, dtype=bool)
    pos = np.searchsorted(haystack, needles)
    probe = np.minimum(pos, haystack.size - 1)
    return (pos < haystack.size) & (haystack[probe] == needles)


class _RelaxEdges:
    """Segment structure for repeated exact scatter-min sweeps over one
    fixed edge-support set.

    ``np.minimum.at`` pays a heavy per-duplicate penalty on *every*
    sweep; the refixpoint loops instead sort each scatter direction
    once and reduce per-target segments with ``np.minimum.reduceat`` —
    the same exact minimum, with the sort amortised across all sweeps
    of a flush and shared between the BFS and CC refreshes.  The packed
    support keys arrive sorted by ``(src, dst)``, so the backward
    direction (scatter into ``src``) is free; the forward direction
    sorts the swapped keys once.
    """

    __slots__ = ("fwd", "bwd")

    def __init__(self, keys: np.ndarray) -> None:
        self.bwd = self._segments(keys & 0xFFFFFFFF, keys >> 32)
        rev = np.sort(((keys & 0xFFFFFFFF) << 32) | (keys >> 32))
        self.fwd = self._segments(rev & 0xFFFFFFFF, rev >> 32)

    @staticmethod
    def _segments(gather: np.ndarray, target: np.ndarray):
        """(gather ids, segment starts, one target per segment) for a
        ``target``-sorted edge direction."""
        if not target.size:
            return gather, np.empty(0, dtype=np.intp), target
        starts = np.flatnonzero(
            np.concatenate(([True], target[1:] != target[:-1])))
        return gather, starts, target[starts]


def _sweep_min(values: np.ndarray, direction, plus_one: bool = False) -> bool:
    """One exact scatter-min sweep; returns True iff any value improved.

    ``plus_one`` adds the unit hop cost while leaving ``UNREACHED``
    saturated (BFS relaxation); without it the sweep is plain min-label
    propagation (CC)."""
    gather, starts, targets = direction
    if not targets.size:
        return False
    cand = values[gather]
    if plus_one:
        np.add(cand, 1, out=cand, where=cand != UNREACHED)
    mins = np.minimum.reduceat(cand, starts)
    improved = mins < values[targets]
    if not improved.any():
        return False
    values[targets[improved]] = mins[improved]
    return True


def _bfs_delete_repair(previous: np.ndarray, dropped: np.ndarray,
                       keys: np.ndarray) -> tuple[np.ndarray, int]:
    """Invalidate exactly the region a support deletion can orphan.

    A dropped edge ``(u, v)`` only matters if it was *tight*
    (``level[u] + 1 == level[v]``).  Its target is orphaned when no
    tight in-edge remains in the current support; orphaning then
    propagates — a vertex whose every tight parent was invalidated is
    invalid too.  The closure runs as a vectorized worklist over
    per-level rounds, decrementing tight-support counts.  Surviving
    levels are provably achievable on the current support, so after
    setting the invalidated region to ``UNREACHED`` the array is a
    valid upper-bound seed for :func:`_bfs_refixpoint` — and when
    nothing is invalidated the previous levels are already exact.

    Returns ``(levels, invalidated_count)``; ``levels`` is ``previous``
    itself (not a copy) when the count is zero.
    """
    du = dropped >> 32
    dv = dropped & 0xFFFFFFFF
    dl = previous[du]
    seeds = dv[(dl != UNREACHED) & (dl + 1 == previous[dv])]
    if not seeds.size:
        # No dropped edge was tight — levels provably unchanged, and
        # the O(support) scan below never runs.
        return previous, 0
    src = keys >> 32
    dst = keys & 0xFFFFFFFF
    lu = previous[src]
    tight = (lu != UNREACHED) & (lu + 1 == previous[dst])
    tsrc = src[tight]
    tdst = dst[tight]
    support = np.bincount(tdst, minlength=previous.size)
    seeds = np.unique(seeds)
    frontier = seeds[support[seeds] == 0]
    if not frontier.size:
        return previous, 0
    invalid = np.zeros(previous.size, dtype=bool)
    invalid[frontier] = True
    while frontier.size:
        newly = np.zeros(previous.size, dtype=bool)
        newly[frontier] = True
        sel = newly[tsrc]
        hit = tdst[sel]
        support -= np.bincount(hit, minlength=previous.size)
        hit = np.unique(hit)
        frontier = hit[(support[hit] <= 0) & ~invalid[hit]]
        invalid[frontier] = True
    values = previous.copy()
    values[invalid] = UNREACHED
    return values, int(np.count_nonzero(invalid))


def _bfs_refixpoint(values: np.ndarray, edges: _RelaxEdges) -> np.ndarray:
    """Relax BFS hop levels to the fixpoint from valid upper bounds.

    When the incoming levels are achievable upper bounds on the new
    shortest hop distances (true after insertions, and after
    :func:`_bfs_delete_repair` has reset the orphaned region),
    unit-weight Bellman-Ford relaxation converges to the unique
    fixpoint — exactly the levels a from-scratch BFS computes."""
    values = values.copy()
    while _sweep_min(values, edges.fwd, plus_one=True):
        pass
    return values


def _bfs_delta_unchanged(values: np.ndarray, added: np.ndarray) -> bool:
    """True iff no inserted support edge can lower any BFS level.

    The previous levels are a fixpoint of the old support; if every new
    edge ``(u, v)`` already satisfies ``level[v] <= level[u] + 1`` they
    are consistent (and still achievable) on the new support too — so
    by uniqueness they *are* the new levels, and the flush can skip the
    relaxation sweeps entirely."""
    if not added.size:
        return True
    lu = values[added >> 32]
    lv = values[added & 0xFFFFFFFF]
    reach = lu != UNREACHED
    return not np.any(lu[reach] + 1 < lv[reach])


def _cc_delta_unchanged(values: np.ndarray, added: np.ndarray) -> bool:
    """True iff every inserted support edge joins same-label vertices —
    components (hence min-id labels) provably did not change."""
    if not added.size:
        return True
    return not np.any(values[added >> 32] != values[added & 0xFFFFFFFF])


def _cc_refixpoint(values: np.ndarray, edges: _RelaxEdges) -> np.ndarray:
    """Relax CC min-labels to the fixpoint from a seed labelling.

    Exact whenever every seed label is the id of some vertex inside
    the labelled vertex's *current* component (true for previous
    labels after insertions, and for the re-initialised seeds
    :func:`_cc_delete_seed` builds after deletions): symmetric
    min-propagation then converges to the unique fixpoint — the
    minimum vertex id in each component — identical to a rebuild."""
    values = values.copy()
    while True:
        fwd = _sweep_min(values, edges.fwd)
        bwd = _sweep_min(values, edges.bwd)
        # Pointer shortcutting (Shiloach–Vishkin): every label is the
        # id of a vertex in the same component, so jumping to the
        # label's own label stays inside the component and squeezes
        # convergence from O(diameter) to O(log diameter) sweeps
        # without changing the fixpoint.
        jumped = values[values]
        short = jumped < values
        if short.any():
            np.minimum(values, jumped, out=values)
        elif not (fwd or bwd):
            return values


def _cc_delete_seed(values: np.ndarray, dropped: np.ndarray) -> np.ndarray:
    """Seed labels for a CC refresh after support deletions.

    Deletions can split components, so labels of components touched by
    a dropped edge are no longer trustworthy: those vertices are
    re-seeded with their own ids (a from-scratch start *local to the
    affected components*), while every untouched component keeps its
    minimal label.  No post-deletion edge connects an affected to an
    unaffected component, so relaxing the seeds over the new edge set
    (insertions included) reaches the exact min-id fixpoint."""
    endpoints = np.concatenate([dropped >> 32, dropped & 0xFFFFFFFF])
    # Labels are vertex ids, so membership in the affected-label set is
    # a plain table lookup (no np.isin hashing).
    hit = np.zeros(values.size, dtype=bool)
    hit[values[endpoints]] = True
    affected = hit[values]
    return np.where(affected, np.arange(values.size, dtype=values.dtype),
                    values)


@dataclass
class StreamStats:
    """Counters describing one engine's lifetime (mutable, additive)."""

    updates: int = 0
    queries: int = 0
    flushes: int = 0
    incremental_refreshes: int = 0
    rebuilds: int = 0
    max_pending_at_flush: int = 0
    #: pending-update count at each flush (the staleness the flush
    #: retired; feeds the CLI staleness table)
    pending_at_flush: list[int] = field(default_factory=list)


class StreamEngine:
    """Bounded-staleness ingest engine over an append-only log.

    The engine owns an :class:`UpdateLog`, applies every accepted event
    to O(1) multiset edge state immediately, and refreshes the
    published algorithm values whenever ``k`` updates are pending or a
    query arrives — so published values lag the log by at most
    ``k - 1`` updates, and a query is always answered at the current
    logical time.
    """

    def __init__(self, num_vertices: int,
                 algorithms: tuple[str, ...] = MAINTAINED_ALGORITHMS,
                 k: int = DEFAULT_STALENESS_K, name: str = "stream",
                 root: int = 0) -> None:
        if k < 1:
            raise StreamError(f"staleness bound k must be >= 1, got {k}")
        unknown = [a for a in algorithms if a not in MAINTAINED_ALGORITHMS]
        if unknown:
            raise StreamError(
                f"cannot maintain {unknown}; supported: "
                f"{list(MAINTAINED_ALGORITHMS)}"
            )
        self.log = UpdateLog(num_vertices, name=name)
        self.k = int(k)
        self.root = int(root)
        self.algorithms = tuple(algorithms)
        self._algs = {
            a: BFS(root=self.root) if a == "bfs" else make_algorithm(a)
            for a in self.algorithms
        }
        #: live edge multiset as parallel sorted arrays (packed key,
        #: multiplicity) — updated by vectorized merges per chunk
        self._live_keys = np.empty(0, dtype=np.int64)
        self._live_mult = np.empty(0, dtype=np.int64)
        self._num_edges = 0
        self._pending = 0
        #: edge support (distinct live keys) at the last value refresh;
        #: the flush diffs it against the live support to decide which
        #: incremental path is sound
        self._support_at_refresh = np.empty(0, dtype=np.int64)
        self._values: dict[str, np.ndarray] = {}
        self._values_time = -1
        self._temporal: tuple[int, TemporalGraph] | None = None
        self.stats = StreamStats()

    @classmethod
    def from_graph(cls, graph: Graph, **kwargs) -> "StreamEngine":
        """Seed an engine with a base graph as one ``t=0`` add batch."""
        kwargs.setdefault("name", f"{graph.name}-stream")
        engine = cls(graph.num_vertices, **kwargs)
        engine.ingest(
            ("add", int(s), int(d), 0)
            for s, d in zip(graph.src, graph.dst)
        )
        return engine

    # --- state -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.log.num_vertices

    @property
    def num_edges(self) -> int:
        """Edges currently alive (multiset size)."""
        return self._num_edges

    @property
    def logical_time(self) -> int:
        """Timestamp of the newest ingested event (-1 when empty)."""
        return self.log.last_time

    @property
    def pending(self) -> int:
        """Updates ingested since the last value refresh (< k, except
        transiently inside :meth:`ingest`)."""
        return self._pending

    @property
    def values_time(self) -> int:
        """Logical time the published values correspond to."""
        return self._values_time

    # --- ingest / flush --------------------------------------------------

    def ingest(self, updates) -> int:
        """Append + apply a batch of events; flush per the K contract.

        Accepts a packed ``(n, 4)`` int64 array (the fast path — all
        validation and state maintenance is vectorized), an
        :class:`UpdateLog`, or an iterable of :class:`Update` objects /
        ``(op, src, dst[, t])`` tuples (``t`` omitted = auto-assigned).
        Returns the number of events applied.
        """
        if isinstance(updates, UpdateLog):
            events = updates.to_arrays()
        elif isinstance(updates, np.ndarray):
            events = updates
        else:
            rows = []
            t_prev = self.log.last_time
            for u in updates:
                if isinstance(u, Update):
                    t, op, src, dst = u.t, u.op, u.src, u.dst
                else:
                    op, src, dst, *rest = u
                    t = rest[0] if rest else None
                if op not in _OPS:
                    raise StreamError(f"unknown op {op!r} (expected add/del)")
                t = t_prev + 1 if t is None else int(t)
                t_prev = t
                rows.append((t, _OPS.index(op), int(src), int(dst)))
            events = np.asarray(rows, dtype=np.int64).reshape(-1, 4)
        applied = 0
        with get_tracer().span("stream.ingest", log=self.log.name):
            i = 0
            n = events.shape[0]
            while i < n:
                take = min(self.k - self._pending, n - i)
                chunk = events[i:i + take]
                self.log.extend_arrays(chunk)
                self._apply_chunk(chunk)
                self._pending += take
                applied += take
                i += take
                if self._pending >= self.k:
                    self.flush()
        if applied:
            get_metrics().counter(UPDATES_APPLIED).add(applied)
            self.stats.updates += applied
        return applied

    def _apply_chunk(self, chunk: np.ndarray) -> None:
        """Merge one validated event block into the live multiset.

        Sorted merge of (live keys, chunk keys) without re-sorting the
        whole live array: insert the genuinely-new keys, then add the
        net deltas in place.
        """
        keys = (chunk[:, 2] << 32) | chunk[:, 3]
        delta = np.where(chunk[:, 1] == 0, 1, -1).astype(np.int64)
        uk, inv = np.unique(keys, return_inverse=True)
        net = np.zeros(uk.size, dtype=np.int64)
        np.add.at(net, inv, delta)
        fresh = uk[~_sorted_member(self._live_keys, uk)]
        if fresh.size:
            where = np.searchsorted(self._live_keys, fresh)
            merged = np.insert(self._live_keys, where, fresh)
            mult = np.insert(self._live_mult, where, 0)
        else:
            merged = self._live_keys
            mult = self._live_mult.copy()
        mult[np.searchsorted(merged, uk)] += net
        keep = mult > 0
        self._live_keys = merged[keep]
        self._live_mult = mult[keep]
        self._num_edges += int(delta.sum())

    def replay(self, log: UpdateLog) -> int:
        """Ingest every event of an existing log, timestamps preserved."""
        return self.ingest(log)

    def flush(self, use_cache: bool = False) -> None:
        """Refresh published values to the current logical time.

        No-op when nothing is pending.  BFS and CC always refresh
        incrementally (and exactly) once initialised: support-growing
        deltas relax from the previous fixpoint, CC deletions re-seed
        the affected components locally, and BFS deletions invalidate
        just the orphaned region before relaxing.  PR — a sum-based
        fixpoint with no monotone incremental rule — and first-time
        initialisation rebuild the canonical snapshot from scratch.
        ``use_cache=True`` routes rebuilds through the run cache
        (query-time flushes do this, so time-sliced pricing at the
        same instant reuses the run); contract flushes between queries
        skip the cache store.
        """
        if self._pending == 0:
            return
        t = self.logical_time
        with get_tracer().span("stream.flush", t=t, pending=self._pending,
                               log=self.log.name):
            live = self._live_keys
            dropped = self._support_at_refresh[
                ~_sorted_member(live, self._support_at_refresh)]
            added = live[~_sorted_member(self._support_at_refresh, live)]
            # BFS/CC see only the edge *support*, so incremental
            # refreshes first test just the added-support delta (most
            # flushes change nothing provable), then relax over the
            # distinct-key arrays; the multiset snapshot Graph is
            # materialised lazily, only when some algorithm rebuilds.
            edges: _RelaxEdges | None = None
            snapshot: Graph | None = None
            for name in self.algorithms:
                previous = self._values.get(name)
                values = None
                if previous is not None and name == "cc":
                    if dropped.size:
                        edges = edges or _RelaxEdges(live)
                        values = _cc_refixpoint(
                            _cc_delete_seed(previous, dropped), edges)
                    elif _cc_delta_unchanged(previous, added):
                        values = previous
                    else:
                        edges = edges or _RelaxEdges(live)
                        values = _cc_refixpoint(previous, edges)
                elif previous is not None and name == "bfs":
                    orphans = 0
                    if dropped.size:
                        values, orphans = _bfs_delete_repair(
                            previous, dropped, live)
                    else:
                        values = previous
                    if orphans or not _bfs_delta_unchanged(values, added):
                        edges = edges or _RelaxEdges(live)
                        values = _bfs_refixpoint(values, edges)
                if values is not None:
                    self.stats.incremental_refreshes += 1
                else:
                    if snapshot is None:
                        snapshot = self.snapshot(t)
                    runner = run_cached if use_cache else run_vectorized
                    values = runner(self._algs[name], snapshot).values
                    self.stats.rebuilds += 1
                self._values[name] = values
        self.stats.flushes += 1
        self.stats.pending_at_flush.append(self._pending)
        self.stats.max_pending_at_flush = max(
            self.stats.max_pending_at_flush, self._pending)
        get_metrics().counter(STALENESS_FLUSHES).add(1)
        self._values_time = t
        self._pending = 0
        self._support_at_refresh = self._live_keys.copy()

    # --- queries ---------------------------------------------------------

    def snapshot(self, t: int | None = None) -> Graph:
        """Canonical :class:`Graph` alive at ``t`` (default: now).

        The current instant is served straight from the O(1) multiset
        state (one vectorized sort — no log replay); historical times
        replay the log into a :class:`TemporalGraph`.  Both produce the
        same canonical edge order and name, so the fingerprints agree.
        """
        now = self.logical_time
        t = now if t is None else int(t)
        if t == now:
            return self._snapshot_now(t)
        if self._temporal is None or self._temporal[0] != len(self.log):
            self._temporal = (len(self.log), self.log.temporal())
        return self._temporal[1].snapshot_at(t)

    def _snapshot_now(self, t: int) -> Graph:
        from ..obs.metrics import SNAPSHOTS_MATERIALIZED
        with get_tracer().span("stream.snapshot", t=t, log=self.log.name):
            keys = np.repeat(self._live_keys, self._live_mult)
            graph = Graph(
                self.num_vertices,
                (keys >> 32).astype(VERTEX_DTYPE),
                (keys & 0xFFFFFFFF).astype(VERTEX_DTYPE),
                name=f"{self.log.name}@t{t}",
            )
        get_metrics().counter(SNAPSHOTS_MATERIALIZED).add(1)
        return graph

    def query(self, algorithm: str) -> np.ndarray:
        """Current values for ``algorithm`` (flushes pending updates
        first, so the answer is exact at the current logical time)."""
        if algorithm not in self.algorithms:
            raise StreamError(
                f"engine does not maintain {algorithm!r} "
                f"(maintaining {list(self.algorithms)})"
            )
        self.flush(use_cache=True)
        self.stats.queries += 1
        if algorithm not in self._values:
            # Queried before any event: values of the empty graph.
            empty = self.snapshot(self.logical_time)
            self._values[algorithm] = run_cached(
                self._algs[algorithm], empty).values
            self._values_time = self.logical_time
        return self._values[algorithm]


# --- throughput bench ---------------------------------------------------------


@dataclass(frozen=True)
class StreamMix:
    """One workload mix: how many updates arrive between queries."""

    name: str
    updates_per_query: int


#: Ingest-dominated mix (queries are rare checkpoints).
UPDATE_HEAVY = StreamMix("update-heavy", 500)
#: Query-dominated mix (dashboards polling a live graph).
READ_HEAVY = StreamMix("read-heavy", 25)


@dataclass(frozen=True)
class StreamThroughputResult:
    """Sustained ingest throughput under one update/query mix."""

    mix: str
    num_updates: int
    num_queries: int
    flushes: int
    incremental_refreshes: int
    rebuilds: int
    engine_seconds: float
    serial_seconds: float

    @property
    def updates_per_second(self) -> float:
        return self.num_updates / self.engine_seconds \
            if self.engine_seconds > 0 else float("inf")

    @property
    def speedup_vs_serial(self) -> float:
        """How much faster the concurrent engine path answered the same
        update + query schedule than serial replay (>1 = faster)."""
        return self.serial_seconds / self.engine_seconds \
            if self.engine_seconds > 0 else float("inf")


def _serial_rebuild(events: np.ndarray, prefix: int, num_vertices: int
                    ) -> Graph:
    """From-scratch graph at ``events[:prefix]`` (the serial baseline)."""
    head = events[:prefix]
    keys = (head[:, 2] << 32) | head[:, 3]
    delta = np.where(head[:, 1] == 0, 1, -1)
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    net = np.zeros(unique_keys.size, dtype=np.int64)
    np.add.at(net, inverse, delta)
    keys = np.repeat(unique_keys, np.maximum(net, 0))
    return Graph(num_vertices,
                 (keys >> 32).astype(VERTEX_DTYPE),
                 (keys & 0xFFFFFFFF).astype(VERTEX_DTYPE),
                 name=f"serial@{prefix}")


def measure_stream(log: UpdateLog, mix: StreamMix,
                   k: int | None = None,
                   algorithms: tuple[str, ...] = ("cc", "bfs"),
                   root: int = 0) -> StreamThroughputResult:
    """Time one mix through the engine and through serial replay.

    The engine path ingests the log with a query for every maintained
    algorithm each ``mix.updates_per_query`` updates (concurrent
    pricing queries); ``k`` defaults to the query period, so the
    staleness bound and the query cadence coincide.  The serial
    baseline replays the log prefix from scratch at every query point
    and re-runs each algorithm fresh.  Final answers from both paths
    are checked for exact agreement, so the bench doubles as an
    end-to-end conformance check.
    """
    k = mix.updates_per_query if k is None else k
    events = log.to_arrays()
    query_points = list(range(mix.updates_per_query, len(log) + 1,
                              mix.updates_per_query))
    if not query_points or query_points[-1] != len(log):
        query_points.append(len(log))

    t0 = time.perf_counter()
    engine = StreamEngine(log.num_vertices, algorithms=algorithms, k=k,
                          name=log.name, root=root)
    done = 0
    engine_answers: dict[str, np.ndarray] = {}
    for point in query_points:
        engine.ingest(events[done:point])
        done = point
        for a in algorithms:
            engine_answers[a] = engine.query(a)
    engine_seconds = time.perf_counter() - t0

    algs = {a: BFS(root=root) if a == "bfs" else make_algorithm(a)
            for a in algorithms}
    t0 = time.perf_counter()
    serial_answers: dict[str, np.ndarray] = {}
    # The serial system consumes the same feed, so it pays the same
    # durable-log maintenance (validated appends) the engine pays;
    # only the query-answering strategy differs (full replay+rerun).
    serial_log = UpdateLog(log.num_vertices, name=f"{log.name}-serial")
    done = 0
    for prefix in query_points:
        serial_log.extend_arrays(events[done:prefix])
        done = prefix
        graph = _serial_rebuild(events, prefix, log.num_vertices)
        for a in algorithms:
            serial_answers[a] = run_vectorized(algs[a], graph).values
    serial_seconds = time.perf_counter() - t0

    for a in algorithms:
        ours, theirs = engine_answers[a], serial_answers[a]
        exact = ours.dtype.kind in "iu"
        same = np.array_equal(ours, theirs) if exact else np.allclose(
            ours, theirs, rtol=1e-12, atol=1e-12)
        if not same:
            raise StreamError(
                f"stream bench diverged: engine vs serial {a} values "
                f"differ at t={log.last_time}"
            )

    return StreamThroughputResult(
        mix=mix.name,
        num_updates=len(log),
        num_queries=len(query_points) * len(algorithms),
        flushes=engine.stats.flushes,
        incremental_refreshes=engine.stats.incremental_refreshes,
        rebuilds=engine.stats.rebuilds,
        engine_seconds=engine_seconds,
        serial_seconds=serial_seconds,
    )
