"""Dynamic (evolving) graph support (Section 5)."""

from .store import (
    DEFAULT_SLACK,
    DynamicGraphStore,
    DynamicStats,
    GraphRDynamicStore,
    INVALID_VALUE,
)
from .updates import (
    DEFAULT_MIX,
    Request,
    RequestKind,
    apply_requests,
    generate_requests,
)
from .throughput import (
    GRAPHR_BYTES_PER_UPDATE,
    HYVE_BYTES_PER_UPDATE,
    ThroughputResult,
    compare_dynamic_throughput,
    measure_store,
    modeled_absolute_throughput,
    modeled_update_ratio,
)

__all__ = [
    "DEFAULT_SLACK",
    "DynamicGraphStore",
    "DynamicStats",
    "GraphRDynamicStore",
    "INVALID_VALUE",
    "DEFAULT_MIX",
    "Request",
    "RequestKind",
    "apply_requests",
    "generate_requests",
    "GRAPHR_BYTES_PER_UPDATE",
    "HYVE_BYTES_PER_UPDATE",
    "ThroughputResult",
    "compare_dynamic_throughput",
    "measure_store",
    "modeled_absolute_throughput",
    "modeled_update_ratio",
]
