"""Temporal edge semantics: validity intervals and time snapshots.

The journal version of HyVE evolves graphs continuously; this module
gives the reproduction the *temporal* half of that story.  Every edge
carries a half-open validity interval ``[start, end)`` in logical time:
an ``add`` event at time ``t`` opens an interval ``[t, OPEN_END)``, and
a ``del`` event at time ``t`` closes the **oldest still-open** instance
of that edge (FIFO), turning it into ``[t_add, t_del)``.  The FIFO rule
makes replay deterministic even for multi-edges: deleting one of three
parallel ``(u, v)`` edges always closes the earliest-opened one.

:meth:`TemporalGraph.snapshot_at` materialises the graph alive at one
instant as an ordinary immutable :class:`~repro.graph.graph.Graph`.
Snapshots are **canonical**: edges are sorted by ``(src, dst)`` and the
name is a pure function of the log name and the query time, so
``snapshot_at(t).fingerprint()`` is identical no matter how the log was
chunked or how commutative events were ordered on the way in.  That
fingerprint keys the existing run cache, which is what lets time-sliced
pricing compose with :func:`~repro.arch.machine.fold_many` /
``run_grid`` for free — price one snapshot, and every later query at
the same logical time is a cache hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import StreamError
from ..graph.graph import VERTEX_DTYPE, Graph
from ..obs.metrics import SNAPSHOTS_MATERIALIZED, get_metrics
from ..obs.trace import get_tracer

#: Sentinel ``end`` for an interval that is still open ("until further
#: notice").  ``snapshot_at`` treats it as +infinity.
OPEN_END = np.iinfo(np.int64).max


@dataclass(frozen=True)
class TemporalEdge:
    """One edge with a half-open validity interval ``[start, end)``."""

    src: int
    dst: int
    start: int
    end: int = OPEN_END

    def alive_at(self, t: int) -> bool:
        return self.start <= t < self.end


class TemporalGraph:
    """An interval-edge graph supporting canonical time snapshots.

    The edge set is stored as four parallel int64 arrays
    (``src``/``dst``/``start``/``end``) sorted lexicographically by
    ``(src, dst, start)`` — the canonical order.  Construction sorts
    once; snapshots are then a vectorized mask plus a cached
    :class:`Graph`.
    """

    def __init__(self, num_vertices: int, src, dst, start, end,
                 name: str = "temporal") -> None:
        src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
        dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
        start = np.ascontiguousarray(start, dtype=np.int64)
        end = np.ascontiguousarray(end, dtype=np.int64)
        if not (src.shape == dst.shape == start.shape == end.shape):
            raise StreamError("temporal edge arrays must share one length")
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= num_vertices:
                raise StreamError(
                    f"vertex ids must lie in [0, {num_vertices}), "
                    f"found [{lo}, {hi}]"
                )
            if np.any(start >= end):
                bad = int(np.argmax(start >= end))
                raise StreamError(
                    f"edge {int(src[bad])}->{int(dst[bad])} has an empty "
                    f"interval [{int(start[bad])}, {int(end[bad])})"
                )
        order = np.lexsort((start, dst, src))
        self.num_vertices = int(num_vertices)
        self.name = name
        self.src = src[order]
        self.dst = dst[order]
        self.start = start[order]
        self.end = end[order]
        self._snapshots: dict[int, Graph] = {}

    # --- construction ----------------------------------------------------

    @classmethod
    def from_intervals(cls, num_vertices: int, edges, name: str = "temporal"
                       ) -> "TemporalGraph":
        """Build from an iterable of :class:`TemporalEdge` (or 4-tuples)."""
        rows = [(e.src, e.dst, e.start, e.end)
                if isinstance(e, TemporalEdge) else tuple(e) for e in edges]
        arr = np.asarray(rows, dtype=np.int64).reshape(-1, 4)
        return cls(num_vertices, arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3],
                   name=name)

    @classmethod
    def from_log(cls, log: "UpdateLog") -> "TemporalGraph":  # noqa: F821
        """Replay an update log into validity intervals (FIFO deletes)."""
        src: list[int] = []
        dst: list[int] = []
        start: list[int] = []
        end: list[int] = []
        # Open intervals per packed edge key, FIFO: row indices in
        # append order, so a delete closes the oldest open instance.
        open_rows: dict[int, list[int]] = {}
        for update in log:
            key = (update.src << 32) | update.dst
            if update.op == "add":
                open_rows.setdefault(key, []).append(len(src))
                src.append(update.src)
                dst.append(update.dst)
                start.append(update.t)
                end.append(OPEN_END)
            else:
                rows = open_rows.get(key)
                if not rows:
                    raise StreamError(
                        f"del {update.src}->{update.dst} at t={update.t} "
                        f"has no matching open edge"
                    )
                row = rows.pop(0)
                if not rows:
                    del open_rows[key]
                if start[row] == update.t:
                    # Zero-width interval: the edge was added and deleted
                    # at the same logical instant, so it is never visible.
                    src[row] = dst[row] = -1
                else:
                    end[row] = update.t
        keep = [i for i, s in enumerate(src) if s >= 0]
        arr = np.asarray(
            [(src[i], dst[i], start[i], end[i]) for i in keep],
            dtype=np.int64,
        ).reshape(-1, 4)
        return cls(log.num_vertices, arr[:, 0], arr[:, 1], arr[:, 2],
                   arr[:, 3], name=log.name)

    # --- queries ---------------------------------------------------------

    @property
    def num_intervals(self) -> int:
        """Number of stored validity intervals (edge instances)."""
        return int(self.src.size)

    def event_times(self) -> np.ndarray:
        """Sorted distinct logical times at which the edge set changes."""
        closed = self.end[self.end != OPEN_END]
        return np.unique(np.concatenate([self.start, closed]))

    def active_count_at(self, t: int) -> int:
        """Number of edges alive at logical time ``t``."""
        return int(np.count_nonzero((self.start <= t) & (t < self.end)))

    def snapshot_at(self, t: int, base_name: str | None = None) -> Graph:
        """The :class:`Graph` alive at logical time ``t`` (canonical).

        The result is memoised per ``t``; its name is
        ``f"{base_name or self.name}@t{t}"``, so its ``fingerprint()``
        is a pure function of (log content alive at ``t``, ``t``) and
        keys the run cache deterministically.
        """
        t = int(t)
        cached = self._snapshots.get(t)
        if cached is not None:
            return cached
        with get_tracer().span("stream.snapshot", t=t, log=self.name):
            mask = (self.start <= t) & (t < self.end)
            graph = Graph(
                self.num_vertices,
                self.src[mask],
                self.dst[mask],
                name=f"{base_name or self.name}@t{t}",
            )
        get_metrics().counter(SNAPSHOTS_MATERIALIZED).add(1)
        self._snapshots[t] = graph
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TemporalGraph(name={self.name!r}, "
                f"num_vertices={self.num_vertices}, "
                f"intervals={self.num_intervals})")


@dataclass(frozen=True)
class TimeSlice:
    """One priced span of a temporal sweep: ``[start, end)`` plus the
    :class:`~repro.arch.report.EnergyReport` of the snapshot that was
    alive over it."""

    start: int
    end: int
    report: "EnergyReport" = field(repr=False)  # noqa: F821

    @property
    def width(self) -> int:
        return self.end - self.start
