"""Dynamic-graph request generation and replay (Section 7.4.2).

The Fig. 20 experiment issues tens of thousands of requests with the
paper's mix — 45% edge additions, 45% edge deletions, 5% vertex
additions, 5% vertex deletions — and measures millions of *changed
edges* per second (vertex operations also change edges).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import DynamicGraphError
from ..graph.graph import Graph

#: The paper's request mix.
DEFAULT_MIX = {"add_edge": 0.45, "delete_edge": 0.45,
               "add_vertex": 0.05, "delete_vertex": 0.05}


class RequestKind(enum.Enum):
    ADD_EDGE = "add_edge"
    DELETE_EDGE = "delete_edge"
    ADD_VERTEX = "add_vertex"
    DELETE_VERTEX = "delete_vertex"


@dataclass(frozen=True)
class Request:
    """One dynamic-graph update request."""

    kind: RequestKind
    src: int = -1
    dst: int = -1


def generate_requests(
    graph: Graph,
    count: int,
    mix: dict[str, float] | None = None,
    seed: int = 0,
    exclude_vertices: list[int] | tuple[int, ...] = (),
) -> list[Request]:
    """Generate a replayable request stream against ``graph``.

    Deletion requests target edges that exist at the time they execute
    (the generator tracks the evolving edge multiset), and vertex
    deletions target live vertices, so replaying the stream never
    raises.  ``exclude_vertices`` marks ids already invalidated in the
    target store (see ``DynamicGraphStore.invalid_vertices``) so a
    fresh stream can be generated against an evolved store.
    """
    mix = dict(DEFAULT_MIX if mix is None else mix)
    total = sum(mix.values())
    if total <= 0:
        raise DynamicGraphError("request mix must have positive weights")
    kinds = [RequestKind(k) for k in mix]
    probs = np.array([mix[k.value] for k in kinds]) / total

    rng = np.random.default_rng(seed)
    # Evolving state mirrors.
    edges: list[tuple[int, int]] = list(
        zip(graph.src.tolist(), graph.dst.tolist())
    )
    excluded = set(exclude_vertices)
    live = [v for v in range(graph.num_vertices) if v not in excluded]
    next_vertex = graph.num_vertices

    requests: list[Request] = []
    draws = rng.choice(len(kinds), size=count, p=probs).tolist()
    # All index randomness drawn up front (a request consumes at most
    # two draws); `int(u * n)` replaces one `rng.integers` call per
    # index, which is what made generation the slowest part of fig20.
    uniform = rng.random(2 * count).tolist()
    ui = 0
    for draw in draws:
        kind = kinds[draw]
        if kind is RequestKind.ADD_EDGE:
            if len(live) < 2:
                continue
            s = live[int(uniform[ui] * len(live))]
            d = live[int(uniform[ui + 1] * len(live))]
            ui += 2
            edges.append((s, d))
            requests.append(Request(RequestKind.ADD_EDGE, s, d))
        elif kind is RequestKind.DELETE_EDGE:
            if not edges:
                continue
            idx = int(uniform[ui] * len(edges))
            ui += 1
            s, d = edges[idx]
            edges[idx] = edges[-1]
            edges.pop()
            requests.append(Request(RequestKind.DELETE_EDGE, s, d))
        elif kind is RequestKind.ADD_VERTEX:
            live.append(next_vertex)
            next_vertex += 1
            requests.append(Request(RequestKind.ADD_VERTEX))
        else:
            if not live:
                continue
            pos = int(uniform[ui] * len(live))
            ui += 1
            v = live[pos]
            live[pos] = live[-1]
            live.pop()
            # Invalidation leaves incident edges stored (Section 5), so
            # they stay in the deletable mirror.
            requests.append(Request(RequestKind.DELETE_VERTEX, src=v))
    return requests


#: Requests folded into one vectorized store call per kind.
DEFAULT_CHUNK = 4096


def _assert_same_store_state(batched, serial) -> None:
    """Raise :class:`DynamicGraphError` unless two stores hold the same
    logical state (vertex count, validity, edge multiset)."""
    if batched.num_vertices != serial.num_vertices:
        raise DynamicGraphError(
            f"batched/serial divergence: {batched.num_vertices} vs "
            f"{serial.num_vertices} vertices"
        )
    if batched.invalid_vertices() != serial.invalid_vertices():
        raise DynamicGraphError(
            "batched/serial divergence in vertex validity"
        )
    gb = batched.to_graph(name="batched")
    gs = serial.to_graph(name="serial")
    kb = np.sort((gb.src.astype(np.int64) << 32) | gb.dst)
    ks = np.sort((gs.src.astype(np.int64) << 32) | gs.dst)
    if not np.array_equal(kb, ks):
        raise DynamicGraphError(
            f"batched/serial divergence in edge multiset "
            f"({kb.size} vs {ks.size} edges)"
        )


def apply_requests_batched(
    store, requests: list[Request], chunk_size: int = DEFAULT_CHUNK,
    verify: bool = False,
) -> int:
    """Replay a request stream in vectorized chunks; returns changed
    edges.

    Within each chunk the 45/45/5/5 mix is applied as four bulk store
    calls, ordered ``add_vertices -> add_edges -> delete_edges ->
    delete_vertices``.  That order is safe for any stream the generator
    emits: a deletion targets an edge/vertex that existed at its serial
    position, so it exists a fortiori once every addition in the chunk
    has been applied, and additions never reference a vertex the chunk
    deletes earlier (the generator only draws live vertices).  The final
    store state — edge multiset, vertex validity, counts — is identical
    to :func:`apply_requests`; only per-block extension bookkeeping may
    differ (interleaving determines when slack runs out).

    Strict like the serial path: a request the store rejects raises.

    ``verify=True`` is a debug flag closing the latent batch/stream
    divergence risk: the same stream is also replayed serially against
    a deep copy of the starting store, and the final logical states
    (vertex count, validity, edge multiset) are asserted identical —
    raising :class:`DynamicGraphError` on any divergence instead of
    relying on test-only spot checks.
    """
    if chunk_size <= 0:
        raise DynamicGraphError(f"chunk size must be positive: {chunk_size}")
    shadow = None
    if verify:
        import copy

        shadow = copy.deepcopy(store)
    before = store.stats.edges_changed
    for base in range(0, len(requests), chunk_size):
        chunk = requests[base:base + chunk_size]
        add_src: list[int] = []
        add_dst: list[int] = []
        del_src: list[int] = []
        del_dst: list[int] = []
        del_vs: list[int] = []
        new_vertices = 0
        for req in chunk:
            if req.kind is RequestKind.ADD_EDGE:
                add_src.append(req.src)
                add_dst.append(req.dst)
            elif req.kind is RequestKind.DELETE_EDGE:
                del_src.append(req.src)
                del_dst.append(req.dst)
            elif req.kind is RequestKind.ADD_VERTEX:
                new_vertices += 1
            else:
                del_vs.append(req.src)
        if new_vertices:
            store.add_vertices(new_vertices)
        if add_src:
            store.add_edges(np.asarray(add_src), np.asarray(add_dst))
        if del_src:
            store.delete_edges(np.asarray(del_src), np.asarray(del_dst))
        if del_vs:
            store.delete_vertices(np.asarray(del_vs))
    if shadow is not None:
        apply_requests(shadow, requests)
        _assert_same_store_state(store, shadow)
    return store.stats.edges_changed - before


def apply_requests(store, requests: list[Request], injector=None) -> int:
    """Replay a request stream against a store; returns changed edges.

    ``injector`` (a :class:`repro.faults.FaultInjector`) optionally
    perturbs the stream in flight — dropping and duplicating requests
    per its profile.  A perturbed stream loses the generator's replay
    guarantee (a duplicated deletion targets an edge that is already
    gone), so replay errors are absorbed and tallied as conflicts in
    ``injector.update_counts`` instead of raising.  Without an injector
    the strict (raising) semantics are unchanged.
    """
    if injector is not None:
        requests = injector.perturb_requests(requests)
    before = store.stats.edges_changed
    for req in requests:
        try:
            if req.kind is RequestKind.ADD_EDGE:
                store.add_edge(req.src, req.dst)
            elif req.kind is RequestKind.DELETE_EDGE:
                store.delete_edge(req.src, req.dst)
            elif req.kind is RequestKind.ADD_VERTEX:
                store.add_vertex()
            else:
                store.delete_vertex(req.src)
        except DynamicGraphError:
            if injector is None:
                raise
            injector.update_counts.conflicts += 1
    return store.stats.edges_changed - before
