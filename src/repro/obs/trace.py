"""Span-based JSONL tracer: where a run spends its time.

The tracer materialises the execution structure the machine model
already knows about — preprocess → super-block row → block dispatch →
apply — as *nested spans* with monotonic timestamps, plus point-in-time
*events* carrying attribution payloads (phase times, per-component
energy).  One trace is one JSONL file: the first record is a ``meta``
header stamping the schema version; every later line is a ``span`` or
``event`` record (see :data:`TRACE_SCHEMA` and docs/observability.md
for the field-by-field contract).

Design constraints, in order:

1. **Near-zero overhead when disabled.**  The process-wide tracer
   starts disabled; ``span()`` then returns one shared no-op singleton
   and ``event()`` returns immediately, so instrumented hot paths cost
   one attribute check.  Hot loops additionally guard on
   ``tracer.enabled`` before building tag dictionaries.
2. **Monotonic time.**  Timestamps come from ``time.perf_counter()``
   relative to ``start()``, so spans never go backwards under wall-clock
   adjustments; the header records the wall-clock start for humans.
3. **Append-only JSONL.**  Spans are written on *exit* (events inline),
   so a crashed run leaves a readable prefix; ``read_trace`` validates
   every line and rejects schema mismatches with a line number.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

from ..errors import ReproError

#: Versioned schema tag stamped into every trace header.  Bump when a
#: record field changes meaning; ``read_trace`` rejects other versions.
TRACE_SCHEMA = "hyve-trace-v1"

#: Record kinds a v1 trace may contain.
RECORD_KINDS = ("meta", "span", "event")

#: Fields required per record kind (beyond the optional ``tags``).
_REQUIRED_FIELDS = {
    "meta": ("schema", "kind", "wall_time_unix", "pid"),
    "span": ("kind", "name", "id", "parent", "t_start", "t_end", "dur"),
    "event": ("kind", "name", "id", "parent", "t"),
}


class TraceError(ReproError):
    """Malformed trace file or invalid tracer usage."""


class _NullSpan:
    """Shared no-op span returned while the tracer is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The singleton every disabled ``span()`` call returns (no allocation).
NULL_SPAN = _NullSpan()


class _Span:
    """A live span; use as a context manager (emitted on exit)."""

    __slots__ = ("_tracer", "name", "id", "parent", "tags", "_t_start")

    def __init__(self, tracer: "Tracer", name: str, tags: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.id = tracer._next_id()
        self.parent = tracer._current_span_id()
        self._t_start = 0.0

    def __enter__(self) -> "_Span":
        self._t_start = self._tracer._now()
        self._tracer._push(self.id)
        return self

    def __exit__(self, *exc) -> bool:
        t_end = self._tracer._now()
        self._tracer._pop(self.id)
        record = {
            "kind": "span",
            "name": self.name,
            "id": self.id,
            "parent": self.parent,
            "t_start": self._t_start,
            "t_end": t_end,
            "dur": t_end - self._t_start,
        }
        if self.tags:
            record["tags"] = self.tags
        self._tracer._emit(record)
        return False


class Tracer:
    """Writes one JSONL trace; disabled (and free) until ``start()``.

    A single tracer instance is process-wide state: the instrumentation
    hooks all route through :func:`get_tracer`.  The span stack is a
    plain list — the simulator is single-threaded per process, and each
    sweep/experiment worker process owns its own tracer.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.records_written = 0
        self._sink: io.TextIOBase | None = None
        self._path: Path | None = None
        self._owns_sink = False
        self._stack: list[int] = []
        self._id = 0
        self._t0 = 0.0

    # --- lifecycle -------------------------------------------------------

    def start(self, path: str | Path | io.TextIOBase) -> None:
        """Open ``path`` (or adopt a text stream) and begin recording."""
        if self.enabled:
            raise TraceError("tracer already started")
        if isinstance(path, (str, Path)):
            self._path = Path(path)
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = self._path.open("w", encoding="utf-8")
            self._owns_sink = True
        else:
            self._path = None
            self._sink = path
            self._owns_sink = False
        self._stack.clear()
        self._id = 0
        self.records_written = 0
        self._t0 = time.perf_counter()
        self.enabled = True
        self._emit({
            "schema": TRACE_SCHEMA,
            "kind": "meta",
            "wall_time_unix": time.time(),
            "pid": os.getpid(),
        })

    def stop(self) -> None:
        """Flush and close the trace (idempotent)."""
        if not self.enabled:
            return
        self.enabled = False
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
        self._sink = None
        self._stack.clear()

    @property
    def path(self) -> Path | None:
        """Where the current/most recent trace was written (if a file)."""
        return self._path

    # --- recording -------------------------------------------------------

    def span(self, name: str, **tags):
        """A context manager timing one nested region.

        While the tracer is disabled this returns the shared
        :data:`NULL_SPAN` singleton; guard tag construction in hot loops
        with ``tracer.enabled`` to avoid even the kwargs dict.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, tags)

    def event(self, name: str, **tags) -> None:
        """Record a point-in-time event under the current span."""
        if not self.enabled:
            return
        record = {
            "kind": "event",
            "name": name,
            "id": self._next_id(),
            "parent": self._current_span_id(),
            "t": self._now(),
        }
        if tags:
            record["tags"] = tags
        self._emit(record)

    # --- internals -------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _next_id(self) -> int:
        self._id += 1
        return self._id

    def _current_span_id(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def _push(self, span_id: int) -> None:
        self._stack.append(span_id)

    def _pop(self, span_id: int) -> None:
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        elif span_id in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span_id)

    def _emit(self, record: dict) -> None:
        if self._sink is None:
            return
        self._sink.write(json.dumps(record) + "\n")
        self.records_written += 1


# --- reading & validation ----------------------------------------------------


def validate_record(record: object, lineno: int = 0) -> dict:
    """Check one parsed trace record against the v1 schema."""
    where = f"line {lineno}: " if lineno else ""
    if not isinstance(record, dict):
        raise TraceError(f"{where}trace record must be an object, "
                         f"got {type(record).__name__}")
    kind = record.get("kind")
    if kind not in RECORD_KINDS:
        raise TraceError(f"{where}unknown record kind {kind!r}")
    missing = [f for f in _REQUIRED_FIELDS[kind] if f not in record]
    if missing:
        raise TraceError(f"{where}{kind} record missing {missing}")
    if kind == "meta" and record["schema"] != TRACE_SCHEMA:
        raise TraceError(
            f"{where}unsupported trace schema {record['schema']!r} "
            f"(this reader understands {TRACE_SCHEMA!r})"
        )
    if kind == "span" and record["t_end"] < record["t_start"]:
        raise TraceError(f"{where}span {record.get('name')!r} ends "
                         "before it starts")
    tags = record.get("tags")
    if tags is not None and not isinstance(tags, dict):
        raise TraceError(f"{where}tags must be an object")
    return record


def read_trace(path: str | Path) -> list[dict]:
    """Parse and validate a JSONL trace; first record must be the header."""
    path = Path(path)
    records: list[dict] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from exc
            records.append(validate_record(parsed, lineno))
    if not records:
        raise TraceError(f"{path}: empty trace")
    if records[0]["kind"] != "meta":
        raise TraceError(f"{path}: first record must be the meta header")
    return records


# --- process-wide default ----------------------------------------------------

_TRACER: Tracer | None = None


def get_tracer() -> Tracer:
    """The process-wide tracer the instrumentation hooks write to."""
    global _TRACER
    if _TRACER is None:
        _TRACER = Tracer()
    return _TRACER


def set_tracer(tracer: Tracer | None) -> None:
    """Replace the process-wide tracer (``None`` resets to a fresh one)."""
    global _TRACER
    _TRACER = tracer
