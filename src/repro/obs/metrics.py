"""Lightweight metrics registry: counters, gauges, histograms.

Metrics answer "how much work happened" where spans answer "when".
They are always on — every instrument is a couple of attribute
operations under one registry lock, incremented at coarse points
(per iteration, per sweep point, per cache lookup), never per edge —
and are read back either programmatically (``snapshot()``), from the
CLI (``repro metrics``), or merged across worker processes
(``merge()``).

The canonical instrument names the instrumentation hooks use are the
module constants below; docs/observability.md is the registry of
record for their meanings.
"""

from __future__ import annotations

import threading

from ..errors import ReproError

# --- canonical instrument names ----------------------------------------------

#: Modelled edges streamed through the edge memory, at reported scale.
EDGES_STREAMED = "edges_streamed"
#: Edges actually processed by the executors (synthetic scale).
EXECUTOR_EDGES = "executor_edges_processed"
#: Edges applied through the vectorized vertex-centric gather/scatter
#: path (memoised CSR + full-frontier fast path) instead of per-edge
#: Python dispatch.
EXECUTOR_VECTORIZED_EDGES = "executor_vectorized_edges"
#: Graphs attached from shared-memory segments by pool workers instead
#: of being unpickled from the task payload.
SHM_GRAPHS_ATTACHED = "shm_graphs_attached"
#: Shard slices streamed by the out-of-core executor (one per shard per
#: iteration; see :func:`repro.graph.shards.run_sharded`).
SHARDS_STREAMED = "shards_streamed"
#: Per-shard ScheduleCounts partials merged exactly into whole-graph
#: counts (:func:`repro.graph.shards.sharded_scheduled_counts`).
SHARD_COUNTS_MERGED = "shard_counts_merged"
#: GraphR configurations priced through the counts-keyed fold path
#: (one traffic expansion reused across the fig21 grid).
GRAPHR_FOLD_CONFIGS = "graphr_fold_configs"
#: Bank-power-gating wake transitions planned by the BPG controller.
BPG_BANK_WAKES = "bpg_bank_wakes"
#: Router re-routing (rotation) events under data sharing.
ROUTER_ROTATIONS = "router_rotations"
#: Run-cache hits (memory + disk) observed by this process.
CACHE_HITS = "cache_hits"
#: Run-cache misses (fresh convergences) observed by this process.
CACHE_MISSES = "cache_misses"
#: Schedule-counts cache hits (memory + disk): sweeps over device knobs
#: reusing one Equations (3)-(8) expansion instead of recomputing it.
COUNTS_CACHE_HITS = "counts_cache_hits"
#: Schedule-counts cache misses (fresh ScheduleCounts computations).
COUNTS_CACHE_MISSES = "counts_cache_misses"
#: Configurations priced by the vectorized batch fold (fold_many).
FOLD_MANY_CONFIGS = "fold_many_configs"
#: Configurations priced by the design-space autotuner (all backends).
TUNE_CONFIGS_PRICED = "tune_configs_priced"
#: Size of the most recent Pareto frontier the autotuner extracted.
TUNE_FRONTIER_SIZE = "tune_frontier_size"
#: Current number of entries in the scheduler's imbalance memo.
IMBALANCE_CACHE_SIZE = "imbalance_cache_size"
#: Sweep-point retry attempts beyond the first try.
SWEEP_POINT_RETRIES = "sweep_point_retries"
#: Vertex intervals fetched by the hybrid memory controller.
INTERVAL_FETCHES = "interval_fetches"
#: Algorithm convergence sweeps executed (iterations histogram source).
CONVERGENCE_ITERATIONS = "convergence_iterations"
#: Result-store entries that failed their checksum on read and were
#: moved to the quarantine table (then recomputed by the caller).
STORE_QUARANTINED = "store_quarantined_entries"
#: Orphaned ``*.tmp`` files (interrupted atomic writes) removed on
#: store open and by ``repro cache clear``.
STORE_TMP_CLEANED = "store_tmp_files_cleaned"
#: Entries evicted from the result store to stay under the size budget.
STORE_EVICTIONS = "store_evictions"
#: SQLite busy/locked retries absorbed by the jittered-backoff loop.
STORE_BUSY_RETRIES = "store_busy_retries"
#: Single-flight locks broken because their recorded owner was dead.
STORE_LOCKS_BROKEN = "store_locks_broken"
#: Process pools respawned after a worker death broke the pool.
SWEEP_POOL_RESPAWNS = "sweep_pool_respawns"
#: Sweeps that degraded to serial after repeated pool failures.
SWEEP_SERIAL_FALLBACKS = "sweep_serial_fallbacks"
#: Infrastructure faults injected by the chaos layer (all kinds).
CHAOS_INJECTIONS = "chaos_injections"
#: Streaming updates applied to a stream engine's edge state
#: (add/del events accepted by :meth:`StreamEngine.ingest`).
UPDATES_APPLIED = "updates_applied"
#: Temporal snapshots materialised as concrete :class:`Graph` objects
#: (``TemporalGraph.snapshot_at`` / ``StreamEngine.snapshot``).
SNAPSHOTS_MATERIALIZED = "snapshots_materialized"
#: Stream-engine value refreshes forced by the bounded-staleness
#: contract (pending updates reached K, or a query arrived).
STALENESS_FLUSHES = "staleness_flushes"
#: Differential-conformance oracle evaluations executed (repro verify).
VERIFY_ORACLE_RUNS = "verify_oracle_runs"
#: Oracle evaluations that found a cross-path mismatch.
VERIFY_FAILURES = "verify_failures"
#: Candidate evaluations spent shrinking failing verify cases.
VERIFY_SHRINK_EVALS = "verify_shrink_evals"


class MetricsError(ReproError):
    """Invalid metrics usage (type clash on a name, bad value)."""


class Counter:
    """Monotonically increasing sum (float-valued: edge counts scale)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming summary (count/sum/min/max) of observed values."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }


_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Create-on-first-use registry of named instruments.

    Thread-safe: instrument creation and every update share one
    registry lock, so concurrent sweep evaluations (worker threads, or
    the timeout thread in :mod:`repro.arch.sweep`) never lose
    increments.  Worker *processes* each own a registry; the parent
    folds their snapshots back in with :meth:`merge`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, self._lock)
                self._instruments[name] = instrument
                return instrument
        if not isinstance(instrument, cls):
            raise MetricsError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__.lower()}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # --- reading ---------------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """Point-in-time dict view, sorted by name (JSON-ready)."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: inst.to_dict() for name, inst in items}

    def merge(self, snapshot: dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` from another process into this one.

        Counters and histogram summaries add; gauges take the incoming
        value (last writer wins, matching gauge semantics).
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).add(float(data["value"]))
            elif kind == "gauge":
                self.gauge(name).set(float(data["value"]))
            elif kind == "histogram":
                hist = self.histogram(name)
                with self._lock:
                    count = int(data["count"])
                    if count:
                        hist.count += count
                        hist.total += float(data["sum"])
                        hist.min = min(hist.min, float(data["min"]))
                        hist.max = max(hist.max, float(data["max"]))
            else:
                raise MetricsError(
                    f"cannot merge metric {name!r} of type {kind!r}"
                )

    def reset(self) -> None:
        """Drop every instrument (tests; the CLI resets per invocation)."""
        with self._lock:
            self._instruments.clear()

    def format(self) -> str:
        """Aligned text rendering for ``repro metrics``."""
        lines = []
        for name, data in self.snapshot().items():
            if data["type"] == "histogram":
                value = (f"count={data['count']} sum={data['sum']:g} "
                         f"min={data['min']} max={data['max']}")
            else:
                value = f"{data['value']:g}"
            lines.append(f"{name:28s} {data['type']:9s} {value}")
        return "\n".join(lines) if lines else "(no metrics recorded)"


# --- process-wide default ----------------------------------------------------

_REGISTRY: MetricsRegistry | None = None


def get_metrics() -> MetricsRegistry:
    """The process-wide registry the instrumentation hooks update."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def set_metrics(registry: MetricsRegistry | None) -> None:
    """Replace the process-wide registry (``None`` resets lazily)."""
    global _REGISTRY
    _REGISTRY = registry
