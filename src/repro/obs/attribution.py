"""Phase attribution: fold a trace into per-phase time/energy tables.

The machine model composes execution time from a handful of named
quantities (edge stream vs compute vs random vertex service, interval
scheduling, gating transitions) and tallies energy per component.  This
module fixes the mapping from those quantities onto a small, stable
*phase taxonomy*, emits them into a trace as ``phase_time`` /
``energy`` / ``report`` events, and folds a recorded trace back into
the attribution table ``tools/trace_report.py`` prints.

The invariant the acceptance tests rely on: the folded totals equal the
sum of the run's :class:`~repro.arch.report.EnergyReport` totals
exactly, because both are emitted from the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch import report as rpt
from ..errors import ReproError

#: The attribution phases, in presentation order.
PHASES = (
    "preprocess",   # partitioning, schedule counting (host-side)
    "stream",       # edge-memory sequential streaming
    "process",      # PU compute, scratchpad traffic, router, controller
    "schedule",     # off-chip vertex interval loads/stores
    "gating",       # bank power-gating wake transitions
    "background",   # standby/leakage energy integrated over the run
)

#: Energy component → phase (every :data:`repro.arch.report.ALL_COMPONENTS`
#: key must appear here; a test enforces it).
COMPONENT_PHASE = {
    rpt.EDGE_MEMORY: "stream",
    rpt.OFFCHIP_VERTEX: "schedule",
    rpt.ONCHIP_VERTEX: "process",
    rpt.PROCESSING: "process",
    rpt.ROUTER: "process",
    rpt.CONTROLLER: "process",
    rpt.EDGE_MEMORY_BG: "background",
    rpt.OFFCHIP_VERTEX_BG: "background",
    rpt.ONCHIP_VERTEX_BG: "background",
    rpt.LOGIC_BG: "background",
}


class AttributionError(ReproError):
    """A trace cannot be folded (no report events, unknown phase...)."""


def emit_report(tracer, report, phase_times: dict[str, float],
                detail: dict[str, float] | None = None) -> None:
    """Write one simulation's attribution events into ``tracer``.

    ``phase_times`` maps phase name → seconds and must sum to the
    report's modelled time (the machine passes its own composition).
    ``detail`` carries informational sub-quantities (e.g. the raw
    stream/compute/random times whose max forms the processing phase);
    they are recorded but never counted into totals.
    """
    for phase, seconds in phase_times.items():
        if phase not in PHASES:
            raise AttributionError(f"unknown phase {phase!r}")
        tracer.event("phase_time", phase=phase, seconds=seconds)
    for component, joules in report.energy.items():
        tracer.event(
            "energy",
            component=component,
            phase=COMPONENT_PHASE[component],
            joules=joules,
        )
    if detail:
        tracer.event("phase_detail", **detail)
    tracer.event(
        "report",
        machine=report.machine,
        algorithm=report.algorithm,
        graph=report.graph,
        time_s=report.time,
        total_energy_j=report.total_energy,
        mteps_per_watt=report.mteps_per_watt,
    )


@dataclass
class Attribution:
    """Folded per-phase totals of one trace (possibly many reports)."""

    time_s: dict[str, float] = field(
        default_factory=lambda: {p: 0.0 for p in PHASES}
    )
    energy_j: dict[str, float] = field(
        default_factory=lambda: {p: 0.0 for p in PHASES}
    )
    reports: list[dict] = field(default_factory=list)
    span_count: int = 0
    event_count: int = 0

    @property
    def total_time_s(self) -> float:
        return sum(self.time_s.values())

    @property
    def total_energy_j(self) -> float:
        return sum(self.energy_j.values())

    @property
    def reported_time_s(self) -> float:
        return sum(r["time_s"] for r in self.reports)

    @property
    def reported_energy_j(self) -> float:
        return sum(r["total_energy_j"] for r in self.reports)


def fold_records(records: list[dict]) -> Attribution:
    """Fold validated trace records into per-phase time/energy totals."""
    out = Attribution()
    for record in records:
        kind = record.get("kind")
        if kind == "span":
            out.span_count += 1
            continue
        if kind != "event":
            continue
        out.event_count += 1
        name = record.get("name")
        tags = record.get("tags", {})
        if name == "phase_time":
            phase = tags.get("phase")
            if phase not in PHASES:
                raise AttributionError(
                    f"phase_time event names unknown phase {phase!r}"
                )
            out.time_s[phase] += float(tags.get("seconds", 0.0))
        elif name == "energy":
            phase = tags.get("phase")
            if phase not in PHASES:
                raise AttributionError(
                    f"energy event names unknown phase {phase!r}"
                )
            out.energy_j[phase] += float(tags.get("joules", 0.0))
        elif name == "report":
            out.reports.append({
                "machine": tags.get("machine", "?"),
                "algorithm": tags.get("algorithm", "?"),
                "graph": tags.get("graph", "?"),
                "time_s": float(tags.get("time_s", 0.0)),
                "total_energy_j": float(tags.get("total_energy_j", 0.0)),
            })
    return out


def format_attribution(attribution: Attribution) -> str:
    """Render the per-phase table (the ``trace_report`` output)."""
    a = attribution
    if not a.reports:
        raise AttributionError(
            "trace holds no report events — was it recorded with "
            "tracing enabled around a machine run?"
        )
    t_total = a.total_time_s or 1.0
    e_total = a.total_energy_j or 1.0
    lines = [
        f"{'phase':12s} {'time_s':>12s} {'time_%':>7s} "
        f"{'energy_j':>12s} {'energy_%':>8s}",
        "-" * 55,
    ]
    for phase in PHASES:
        t = a.time_s[phase]
        e = a.energy_j[phase]
        lines.append(
            f"{phase:12s} {t:12.6g} {100 * t / t_total:6.1f}% "
            f"{e:12.6g} {100 * e / e_total:7.1f}%"
        )
    lines.append("-" * 55)
    lines.append(
        f"{'total':12s} {a.total_time_s:12.6g} {'100.0':>6s}% "
        f"{a.total_energy_j:12.6g} {'100.0':>7s}%"
    )
    dt = _relative_delta(a.total_time_s, a.reported_time_s)
    de = _relative_delta(a.total_energy_j, a.reported_energy_j)
    lines.append("")
    lines.append(
        f"{len(a.reports)} report(s); EnergyReport totals: "
        f"{a.reported_time_s:.6g} s / {a.reported_energy_j:.6g} J "
        f"(fold delta {100 * dt:.2f}% time, {100 * de:.2f}% energy)"
    )
    return "\n".join(lines)


def _relative_delta(folded: float, reported: float) -> float:
    if reported == 0.0:
        return 0.0 if folded == 0.0 else float("inf")
    return abs(folded - reported) / abs(reported)
