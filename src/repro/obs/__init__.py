"""Observability: span tracing, metrics, and phase attribution.

This package is the instrumentation substrate of the reproduction —
the machinery that shows *where* a run spends its time and energy while
it executes, instead of only the end-of-run
:class:`~repro.arch.report.EnergyReport` totals:

* :mod:`repro.obs.trace` — a span-based JSONL tracer (nested spans with
  monotonic timestamps and tags; near-zero overhead when disabled).
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms
  (edges streamed, bank wakes, router rotations, cache hits...).
* :mod:`repro.obs.attribution` — the phase taxonomy and the fold that
  turns a trace into a per-phase time/energy table
  (``tools/trace_report.py``).

Entry points: ``repro trace <experiment>``, ``repro metrics``, the
``--trace-out PATH`` flag on ``run``/``compare``/``experiment``, and
the library API below.  The full instrumentation story is documented
in docs/observability.md.
"""

from .metrics import (
    BPG_BANK_WAKES,
    CACHE_HITS,
    CACHE_MISSES,
    CONVERGENCE_ITERATIONS,
    EDGES_STREAMED,
    EXECUTOR_EDGES,
    INTERVAL_FETCHES,
    ROUTER_ROTATIONS,
    SWEEP_POINT_RETRIES,
    VERIFY_FAILURES,
    VERIFY_ORACLE_RUNS,
    VERIFY_SHRINK_EVALS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from .trace import (
    NULL_SPAN,
    TRACE_SCHEMA,
    TraceError,
    Tracer,
    get_tracer,
    read_trace,
    set_tracer,
    validate_record,
)

# Attribution imports :mod:`repro.arch.report`, whose package is itself
# instrumented with this one — loading it eagerly here would close an
# import cycle.  Its names resolve lazily on first attribute access.
_ATTRIBUTION_NAMES = frozenset({
    "COMPONENT_PHASE", "PHASES", "Attribution", "AttributionError",
    "emit_report", "fold_records", "format_attribution",
})


def __getattr__(name: str):
    if name in _ATTRIBUTION_NAMES:
        from . import attribution

        return getattr(attribution, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Attribution",
    "AttributionError",
    "BPG_BANK_WAKES",
    "CACHE_HITS",
    "CACHE_MISSES",
    "COMPONENT_PHASE",
    "CONVERGENCE_ITERATIONS",
    "Counter",
    "EDGES_STREAMED",
    "EXECUTOR_EDGES",
    "Gauge",
    "Histogram",
    "INTERVAL_FETCHES",
    "MetricsError",
    "MetricsRegistry",
    "NULL_SPAN",
    "PHASES",
    "ROUTER_ROTATIONS",
    "SWEEP_POINT_RETRIES",
    "TRACE_SCHEMA",
    "TraceError",
    "Tracer",
    "VERIFY_FAILURES",
    "VERIFY_ORACLE_RUNS",
    "VERIFY_SHRINK_EVALS",
    "emit_report",
    "fold_records",
    "format_attribution",
    "get_metrics",
    "get_tracer",
    "read_trace",
    "set_metrics",
    "set_tracer",
    "validate_record",
]
