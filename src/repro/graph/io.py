"""Graph I/O: edge-list text files, compact binary files, and the
in-memory serialised layout of Section 3.4.

Section 3.4 lays graph data out as:

* vertex data, divided into intervals — each interval is
  ``[interval_index, vertex_count, value_0, ..., value_{k-1}]``;
* edge data, divided into blocks — each block is
  ``[src_interval, dst_interval, edge_count, s_0, d_0, s_1, d_1, ...]``.

The same layout backs the dynamic-graph store (Section 5), which appends
to a block's slack space, so it is implemented here once.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from ..errors import GraphError
from .graph import Graph, VERTEX_DTYPE
from .partition import IntervalBlockPartition

# --- edge-list text format ---------------------------------------------


def save_edge_list(graph: Graph, path: str | Path) -> None:
    """Write a graph as ``src dst [weight]`` lines (SNAP-style)."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# {graph.name}\n")
        fh.write(f"# vertices: {graph.num_vertices}\n")
        if graph.is_weighted:
            for s, d, w in zip(
                graph.src.tolist(), graph.dst.tolist(), graph.weights.tolist()
            ):
                fh.write(f"{s}\t{d}\t{w}\n")
        else:
            for s, d in zip(graph.src.tolist(), graph.dst.tolist()):
                fh.write(f"{s}\t{d}\n")


def load_edge_list(
    path: str | Path,
    num_vertices: int | None = None,
    name: str | None = None,
) -> Graph:
    """Read a ``src dst [weight]`` text file.

    Lines starting with ``#`` are comments; a ``# vertices: N`` comment
    fixes the vertex count, otherwise ``max id + 1`` is used (or the
    explicit ``num_vertices`` argument, which wins over both).
    """
    path = Path(path)
    srcs: list[int] = []
    dsts: list[int] = []
    weights: list[float] = []
    header_vertices: int | None = None
    columns: int | None = None
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.lower().startswith("vertices:"):
                    count = body.split(":", 1)[1].strip()
                    try:
                        header_vertices = int(count)
                    except ValueError:
                        raise GraphError(
                            f"{path}:{lineno}: malformed vertex-count "
                            f"header: {count!r}"
                        ) from None
                    if header_vertices < 0:
                        raise GraphError(
                            f"{path}:{lineno}: negative vertex count: "
                            f"{header_vertices}"
                        )
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"{path}:{lineno}: expected 'src dst [weight]', "
                    f"got {line!r}"
                )
            if columns is None:
                columns = len(parts)
            elif len(parts) != columns:
                raise GraphError(
                    f"{path}:{lineno}: inconsistent column count "
                    f"({len(parts)} vs {columns} on earlier lines)"
                )
            try:
                s, d = int(parts[0]), int(parts[1])
            except ValueError:
                raise GraphError(
                    f"{path}:{lineno}: vertex ids must be integers, "
                    f"got {line!r}"
                ) from None
            if s < 0 or d < 0:
                raise GraphError(
                    f"{path}:{lineno}: negative vertex id in {line!r}"
                )
            srcs.append(s)
            dsts.append(d)
            if len(parts) == 3:
                try:
                    w = float(parts[2])
                except ValueError:
                    raise GraphError(
                        f"{path}:{lineno}: malformed edge weight "
                        f"{parts[2]!r}"
                    ) from None
                if not math.isfinite(w):
                    raise GraphError(
                        f"{path}:{lineno}: edge weight must be finite, "
                        f"got {parts[2]!r}"
                    )
                weights.append(w)
    n = num_vertices
    if n is None:
        n = header_vertices
    if n is None:
        n = (max(max(srcs), max(dsts)) + 1) if srcs else 0
    return Graph.from_edges(
        n,
        list(zip(srcs, dsts)),
        weights if weights else None,
        name=name or path.stem,
    )


# --- binary format ------------------------------------------------------


def save_binary(graph: Graph, path: str | Path) -> None:
    """Write a graph to a compressed ``.npz`` file."""
    payload = {
        "num_vertices": np.int64(graph.num_vertices),
        "src": graph.src.astype(np.int32),
        "dst": graph.dst.astype(np.int32),
        "name": np.bytes_(graph.name.encode()),
    }
    if graph.is_weighted:
        payload["weights"] = graph.weights
    np.savez_compressed(Path(path), **payload)


def load_binary(path: str | Path) -> Graph:
    """Read a graph written by :func:`save_binary`."""
    with np.load(Path(path)) as data:
        weights = data["weights"] if "weights" in data else None
        return Graph(
            int(data["num_vertices"]),
            data["src"].astype(VERTEX_DTYPE),
            data["dst"].astype(VERTEX_DTYPE),
            weights,
            name=bytes(data["name"]).decode(),
        )


# --- Section 3.4 serialised layout ---------------------------------------


def serialize_interval(
    partition: IntervalBlockPartition, index: int, values: np.ndarray
) -> np.ndarray:
    """Serialise one interval: ``[index, count, value...]`` (int32 words).

    ``values`` holds the 32-bit-encoded vertex values of the *whole*
    graph; the interval's slice is copied out.
    """
    values = np.asarray(values)
    if values.shape[0] != partition.graph.num_vertices:
        raise GraphError(
            f"expected {partition.graph.num_vertices} vertex values, "
            f"got {values.shape[0]}"
        )
    lo, hi = partition.bounds[index], partition.bounds[index + 1]
    body = values[lo:hi].astype(np.int32, copy=False)
    header = np.array([index, hi - lo], dtype=np.int32)
    return np.concatenate([header, body])


def deserialize_interval(words: np.ndarray) -> tuple[int, np.ndarray]:
    """Inverse of :func:`serialize_interval`: (interval index, values)."""
    words = np.asarray(words, dtype=np.int32)
    if words.size < 2:
        raise GraphError("interval record too short")
    index, count = int(words[0]), int(words[1])
    if words.size != 2 + count:
        raise GraphError(
            f"interval record claims {count} values but carries "
            f"{words.size - 2}"
        )
    return index, words[2:]


def serialize_block(
    partition: IntervalBlockPartition, i: int, j: int
) -> np.ndarray:
    """Serialise block (i, j): ``[i, j, count, s0, d0, s1, d1, ...]``."""
    src, dst = partition.block_edges(i, j)
    header = np.array([i, j, src.size], dtype=np.int32)
    inter = np.empty(2 * src.size, dtype=np.int32)
    inter[0::2] = src
    inter[1::2] = dst
    return np.concatenate([header, inter])


def deserialize_block(
    words: np.ndarray,
) -> tuple[int, int, np.ndarray, np.ndarray]:
    """Inverse of :func:`serialize_block`: (i, j, src, dst)."""
    words = np.asarray(words, dtype=np.int32)
    if words.size < 3:
        raise GraphError("block record too short")
    i, j, count = int(words[0]), int(words[1]), int(words[2])
    if words.size != 3 + 2 * count:
        raise GraphError(
            f"block record claims {count} edges but carries "
            f"{(words.size - 3) / 2}"
        )
    body = words[3:]
    return i, j, body[0::2].astype(VERTEX_DTYPE), body[1::2].astype(VERTEX_DTYPE)


def serialize_graph(partition: IntervalBlockPartition) -> np.ndarray:
    """Serialise all blocks back-to-back, in block-major order.

    This is exactly the image written into the ReRAM edge memory during
    the one-shot preprocessing step.
    """
    p = partition.num_intervals
    parts = [serialize_block(partition, i, j) for i in range(p) for j in range(p)]
    if not parts:
        return np.empty(0, dtype=np.int32)
    return np.concatenate(parts)


def deserialize_graph(
    words: np.ndarray, num_vertices: int, name: str = "deserialized"
) -> Graph:
    """Rebuild a graph from a :func:`serialize_graph` image."""
    words = np.asarray(words, dtype=np.int32)
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    pos = 0
    while pos < words.size:
        if words.size - pos < 3:
            raise GraphError("trailing bytes do not form a block record")
        count = int(words[pos + 2])
        end = pos + 3 + 2 * count
        if end > words.size:
            raise GraphError("block record truncated")
        _, _, src, dst = deserialize_block(words[pos:end])
        srcs.append(src)
        dsts.append(dst)
        pos = end
    if srcs:
        return Graph(
            num_vertices, np.concatenate(srcs), np.concatenate(dsts), name=name
        )
    return Graph.empty(num_vertices, name=name)
