"""Interval-block (grid) partitioning of a graph (Section 2.1, Fig. 1).

Vertices are split into ``P`` contiguous *intervals* I_0..I_{P-1}; edges
are split into ``P^2`` *blocks*, where block B_{i,j} holds the edges whose
source lies in I_i and destination in I_j.  HyVE streams edges block by
block so that all random vertex accesses of a block hit the two on-chip
intervals (source and destination) only.

The partition is stored CSR-style: edges are permuted into block-major
order and ``block_ptr`` gives the offset of each block in the permuted
arrays, so slicing a block is O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..errors import PartitionError
from .graph import Graph

#: Memoised partitions, keyed on ``(graph.fingerprint(), P)``.  Building
#: a partition costs an O(E log E) argsort; every consumer (the blocked
#: executor, the scheduler's imbalance estimate, the serialisation
#: helpers) wants the same object, so builds are shared process-wide.
_PARTITION_MEMO: OrderedDict[tuple[str, int], "IntervalBlockPartition"] = (
    OrderedDict()
)

#: Upper bound on memoised partitions; beyond it the least recently used
#: entry is dropped (each entry holds O(E) permutation state).
_PARTITION_MEMO_CAPACITY = 64


def clear_partition_cache() -> None:
    """Drop every memoised partition (mainly for tests)."""
    _PARTITION_MEMO.clear()


def partition_cache_len() -> int:
    """Number of partitions currently memoised."""
    return len(_PARTITION_MEMO)


def step_counts_from_blocks(
    block_counts: np.ndarray, num_pus: int
) -> np.ndarray:
    """Per-step per-PU edge counts from a P x P block-count matrix.

    The schedule shape (Algorithm 2's round-robin data sharing) is a
    pure function of the per-block edge counts, so it can be computed
    from a histogram alone — which is what the out-of-core path does:
    per-shard histograms are additive integers, merge exactly, and feed
    this function to reproduce
    :meth:`IntervalBlockPartition.super_block_step_counts`
    bit-identically without ever materialising the partition.

    Returns an array of shape ``(P/N, P/N, N, N)`` indexed as
    ``[X, Y, step, pu]``; see
    :meth:`IntervalBlockPartition.super_block_step_counts`.
    """
    counts = np.asarray(block_counts, dtype=np.int64)
    if counts.ndim != 2 or counts.shape[0] != counts.shape[1]:
        raise PartitionError(
            f"block counts must be a square matrix, got shape {counts.shape}"
        )
    n = num_pus
    if n <= 0:
        raise PartitionError(f"need at least one PU, got {n}")
    p = counts.shape[0]
    if p % n:
        raise PartitionError(
            f"P={p} must be a multiple of N={n} for super-block scheduling"
        )
    q = p // n
    blocks = counts.reshape(q, n, q, n)  # [X, i, Y, j]
    out = np.empty((q, q, n, n), dtype=np.int64)
    pus = np.arange(n)
    for step in range(n):
        rows = (pus + step) % n
        # PU k handles local block (rows[k], k) of the super block.
        out[:, :, step, :] = blocks[:, rows, :, pus].transpose(1, 2, 0)
    return out


def interval_bounds(num_vertices: int, num_intervals: int) -> np.ndarray:
    """Start offsets of each interval, plus a final sentinel.

    Vertices are distributed as evenly as possible: the first
    ``num_vertices % P`` intervals get one extra vertex.

    Returns:
        int64 array of length ``num_intervals + 1``; interval ``i`` spans
        ``[bounds[i], bounds[i+1])``.
    """
    if num_intervals <= 0:
        raise PartitionError(f"need at least one interval, got {num_intervals}")
    base, extra = divmod(num_vertices, num_intervals)
    sizes = np.full(num_intervals, base, dtype=np.int64)
    sizes[:extra] += 1
    bounds = np.zeros(num_intervals + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def interval_of(vertices: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Map vertex ids to the interval index containing them."""
    return np.searchsorted(bounds, vertices, side="right") - 1


def _even_interval_of(
    vertices: np.ndarray, num_vertices: int, num_intervals: int
) -> np.ndarray:
    """:func:`interval_of` specialised to :func:`interval_bounds` splits.

    The even split puts ``base + 1`` vertices in the first ``extra``
    intervals and ``base`` in the rest, so the interval index is pure
    arithmetic — no binary search over the bounds.
    """
    base, extra = divmod(num_vertices, num_intervals)
    if base == 0:  # more intervals than vertices: all ids map directly
        return np.asarray(vertices, dtype=np.int64).copy()
    if extra == 0:
        return vertices // base
    cut = extra * (base + 1)
    return np.where(vertices < cut,
                    vertices // (base + 1),
                    extra + (vertices - cut) // base)


@dataclass(frozen=True)
class IntervalBlockPartition:
    """A graph partitioned into P intervals and P^2 blocks.

    Attributes:
        graph: the partitioned graph (edge order is the original order).
        num_intervals: P.
        bounds: interval start offsets (length P+1).
        order: permutation putting edges into block-major order.
        block_ptr: offsets of each block within the permuted edge arrays,
            length P^2 + 1; block (i, j) is at flat index ``i * P + j``.
    """

    graph: Graph
    num_intervals: int
    bounds: np.ndarray
    order: np.ndarray
    block_ptr: np.ndarray

    @classmethod
    def build(cls, graph: Graph, num_intervals: int) -> "IntervalBlockPartition":
        """Partition ``graph`` into ``num_intervals`` intervals.

        This is the preprocessing step of the paper (one-shot, performed
        before edges are written into the ReRAM edge memory).
        """
        if num_intervals <= 0:
            raise PartitionError(
                f"need at least one interval, got {num_intervals}"
            )
        if num_intervals > max(graph.num_vertices, 1):
            raise PartitionError(
                f"cannot split {graph.num_vertices} vertices into "
                f"{num_intervals} non-degenerate intervals"
            )
        bounds = interval_bounds(graph.num_vertices, num_intervals)
        src_iv = _even_interval_of(graph.src, graph.num_vertices,
                                   num_intervals)
        dst_iv = _even_interval_of(graph.dst, graph.num_vertices,
                                   num_intervals)
        flat = src_iv * num_intervals + dst_iv
        if num_intervals * num_intervals <= np.iinfo(np.uint16).max:
            # Radix-sortable key width: numpy's stable sort on 16-bit
            # integers is an O(E) radix pass instead of O(E log E).
            order = np.argsort(flat.astype(np.uint16), kind="stable")
        elif num_intervals <= np.iinfo(np.uint16).max + 1:
            # Block-major is lexicographic (src interval, dst interval):
            # two stable 16-bit radix passes, LSB (dst) first, give the
            # identical permutation at radix speed.
            low = np.argsort(dst_iv.astype(np.uint16), kind="stable")
            order = low[np.argsort(src_iv[low].astype(np.uint16),
                                   kind="stable")]
        else:
            order = np.argsort(flat, kind="stable")
        counts = np.bincount(flat, minlength=num_intervals * num_intervals)
        block_ptr = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=block_ptr[1:])
        return cls(graph, num_intervals, bounds, order, block_ptr)

    @classmethod
    def cached(cls, graph: Graph, num_intervals: int) -> "IntervalBlockPartition":
        """Memoised :meth:`build`, keyed on ``(fingerprint, P)``.

        Two calls for content-equal graphs and the same P return the
        *same object* — the one-shot preprocessing premise of Section
        3.4 (edges are permuted once, then streamed many times).
        """
        key = (graph.fingerprint(), int(num_intervals))
        part = _PARTITION_MEMO.get(key)
        if part is not None:
            _PARTITION_MEMO.move_to_end(key)
            return part
        part = cls.build(graph, num_intervals)
        _PARTITION_MEMO[key] = part
        while len(_PARTITION_MEMO) > _PARTITION_MEMO_CAPACITY:
            _PARTITION_MEMO.popitem(last=False)
        return part

    # --- intervals -------------------------------------------------------

    def interval_size(self, i: int) -> int:
        """Number of vertices in interval ``i``."""
        self._check_interval(i)
        return int(self.bounds[i + 1] - self.bounds[i])

    def interval_sizes(self) -> np.ndarray:
        """Vertex count of every interval."""
        return np.diff(self.bounds)

    def interval_vertices(self, i: int) -> np.ndarray:
        """Vertex ids belonging to interval ``i``."""
        self._check_interval(i)
        return np.arange(self.bounds[i], self.bounds[i + 1])

    def max_interval_size(self) -> int:
        """Largest interval (what must fit in one on-chip section)."""
        return int(self.interval_sizes().max(initial=0))

    def _check_interval(self, i: int) -> None:
        if not 0 <= i < self.num_intervals:
            raise PartitionError(
                f"interval index {i} out of range [0, {self.num_intervals})"
            )

    # --- blocks ----------------------------------------------------------

    def block_edge_count(self, i: int, j: int) -> int:
        """Number of edges in block (i, j)."""
        flat = self._flat(i, j)
        return int(self.block_ptr[flat + 1] - self.block_ptr[flat])

    def block_edges(self, i: int, j: int) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) arrays of block (i, j), in stream order."""
        flat = self._flat(i, j)
        sel = self.order[self.block_ptr[flat]:self.block_ptr[flat + 1]]
        return self.graph.src[sel], self.graph.dst[sel]

    def block_edge_indices(self, i: int, j: int) -> np.ndarray:
        """Original edge indices of block (i, j)."""
        flat = self._flat(i, j)
        return self.order[self.block_ptr[flat]:self.block_ptr[flat + 1]]

    @cached_property
    def streamed_edges(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """``(src, dst, weights)`` permuted once into block-major order.

        This is the Section 3.4 preprocessing output: the edge arrays as
        they sit in the sequential ReRAM edge memory.  Computed once per
        partition; afterwards any run of consecutive blocks is a
        contiguous O(1) slice (see :meth:`block_slice` /
        :meth:`block_row_slice`) instead of an O(edges) fancy-indexed
        gather.
        """
        g = self.graph
        src = g.src[self.order]
        dst = g.dst[self.order]
        weights = None if g.weights is None else g.weights[self.order]
        return src, dst, weights

    def block_slice(self, i: int, j: int) -> slice:
        """Slice of the block-major arrays covering block (i, j)."""
        flat = self._flat(i, j)
        return slice(int(self.block_ptr[flat]),
                     int(self.block_ptr[flat + 1]))

    def block_row_slice(self, i: int, j_start: int, j_stop: int) -> slice:
        """Slice covering the contiguous run of blocks (i, j_start..j_stop-1).

        Blocks with the same source interval are adjacent in block-major
        order, so a whole row segment of a super block is one slice.
        """
        if j_stop <= j_start:
            if j_stop < j_start:
                raise PartitionError(
                    f"empty block run: j_start={j_start} > j_stop={j_stop}"
                )
            start = int(self.block_ptr[self._flat(i, j_start)])
            return slice(start, start)
        first = self._flat(i, j_start)
        last = self._flat(i, j_stop - 1)
        return slice(int(self.block_ptr[first]),
                     int(self.block_ptr[last + 1]))

    def _flat(self, i: int, j: int) -> int:
        p = self.num_intervals
        if not (0 <= i < p and 0 <= j < p):
            raise PartitionError(
                f"block index ({i}, {j}) out of range for P={p}"
            )
        return i * p + j

    @cached_property
    def block_counts(self) -> np.ndarray:
        """P x P matrix of per-block edge counts."""
        counts = np.diff(self.block_ptr)
        return counts.reshape(self.num_intervals, self.num_intervals)

    def nonempty_blocks(self) -> int:
        """Number of blocks containing at least one edge."""
        return int(np.count_nonzero(self.block_counts))

    def occupancy(self) -> float:
        """Fraction of the P^2 blocks that are non-empty."""
        total = self.num_intervals ** 2
        return self.nonempty_blocks() / total if total else 0.0

    # --- super blocks (Section 4.2) ---------------------------------------

    def num_super_blocks(self, num_pus: int) -> int:
        """Number of N x N super blocks for ``num_pus`` processing units."""
        if num_pus <= 0:
            raise PartitionError(f"need at least one PU, got {num_pus}")
        if self.num_intervals % num_pus:
            raise PartitionError(
                f"P={self.num_intervals} must be a multiple of N={num_pus} "
                "for super-block scheduling"
            )
        return (self.num_intervals // num_pus) ** 2

    def super_block_counts(self, num_pus: int) -> np.ndarray:
        """(P/N) x (P/N) matrix of per-super-block edge counts."""
        q = self.num_intervals // max(num_pus, 1)
        self.num_super_blocks(num_pus)  # validates divisibility
        counts = self.block_counts.reshape(q, num_pus, q, num_pus)
        return counts.sum(axis=(1, 3))

    def super_block_step_counts(self, num_pus: int) -> np.ndarray:
        """Per-step per-PU edge counts under round-robin data sharing.

        Within super block (X, Y), step ``s`` lets PU ``k`` process block
        (X*N + (k + s) % N, Y*N + k).  The returned array has shape
        ``(P/N, P/N, N, N)`` indexed as [X, Y, step, pu]; its entries are
        the per-PU edge counts whose per-step maximum bounds the
        processing time (Algorithm 2's synchronisation barrier).
        """
        self.num_super_blocks(num_pus)  # validates divisibility
        return step_counts_from_blocks(self.block_counts, num_pus)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IntervalBlockPartition(P={self.num_intervals}, "
            f"graph={self.graph.name!r}, "
            f"nonempty={self.nonempty_blocks()}/{self.num_intervals ** 2})"
        )
