"""Synthetic stand-ins for the paper's evaluation datasets (Table 2).

The paper evaluates on five SNAP graphs.  Offline, we regenerate each as
an R-MAT graph that preserves the dataset's *shape*: its vertex/edge
ratio and a skew parameter tuned so that derived statistics (block
occupancy N_avg of Table 1, non-empty block counts of Equation (9))
land near the published values.  Sizes are scaled down uniformly so the
full evaluation sweep runs on a laptop; energy totals scale linearly
with size, so every *ratio* the paper reports is preserved.

========  ============  ============  =========================
dataset   paper |V|     paper |E|     scaled (this reproduction)
========  ============  ============  =========================
YT        1.16 M        2.99 M        11,600 / 29,900
WK        2.39 M        5.02 M        23,900 / 50,200
AS        1.69 M        11.1 M        16,900 / 111,000
LJ        4.85 M        69.0 M        24,250 / 345,000
TW        41.7 M        1,470 M       27,800 / 980,000
========  ============  ============  =========================
"""

from __future__ import annotations

from dataclasses import dataclass

from .generators import rmat
from .graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one evaluation dataset.

    Attributes:
        key: the two-letter tag the paper uses (YT, WK, AS, LJ, TW).
        full_name: SNAP name of the original dataset.
        paper_vertices: vertex count of the original graph.
        paper_edges: edge count of the original graph.
        num_vertices: vertex count of the scaled synthetic graph.
        num_edges: edge count of the scaled synthetic graph.
        rmat_a: R-MAT skew parameter (b = c = (1 - a) / 3).
        seed: deterministic generation seed.
    """

    key: str
    full_name: str
    paper_vertices: int
    paper_edges: int
    num_vertices: int
    num_edges: int
    rmat_a: float
    seed: int

    @property
    def scale_factor(self) -> float:
        """How much smaller the synthetic graph is than the original."""
        return self.paper_edges / self.num_edges

    def generate(self) -> Graph:
        """Generate (deterministically) the synthetic graph."""
        rest = (1.0 - self.rmat_a) / 3.0
        return rmat(
            self.num_vertices,
            self.num_edges,
            a=self.rmat_a,
            b=rest,
            c=rest,
            seed=self.seed,
            name=self.key,
        )


#: Registry of the five evaluation datasets, in the paper's order.
DATASETS: dict[str, DatasetSpec] = {
    spec.key: spec
    for spec in [
        DatasetSpec("YT", "com-youtube", 1_160_000, 2_990_000,
                    11_600, 29_900, rmat_a=0.63, seed=1),
        DatasetSpec("WK", "wiki-talk", 2_390_000, 5_020_000,
                    23_900, 50_200, rmat_a=0.60, seed=2),
        DatasetSpec("AS", "as-skitter", 1_690_000, 11_100_000,
                    16_900, 111_000, rmat_a=0.695, seed=3),
        DatasetSpec("LJ", "live-journal", 4_850_000, 69_000_000,
                    24_250, 345_000, rmat_a=0.565, seed=4),
        DatasetSpec("TW", "twitter-2010", 41_700_000, 1_470_000_000,
                    27_800, 980_000, rmat_a=0.555, seed=5),
    ]
}

#: Dataset keys in the order the paper's figures list them.
DATASET_ORDER: tuple[str, ...] = ("YT", "WK", "AS", "LJ", "TW")

_CACHE: dict[str, Graph] = {}


def load(key: str) -> Graph:
    """Load (generating and caching on first use) a dataset by key."""
    key = key.upper()
    if key not in DATASETS:
        known = ", ".join(DATASET_ORDER)
        raise KeyError(f"unknown dataset {key!r}; known datasets: {known}")
    if key not in _CACHE:
        _CACHE[key] = DATASETS[key].generate()
    return _CACHE[key]


def load_all() -> dict[str, Graph]:
    """Load every evaluation dataset, keyed by tag, in paper order."""
    return {key: load(key) for key in DATASET_ORDER}


def clear_cache() -> None:
    """Drop cached graphs (used by tests that probe determinism)."""
    _CACHE.clear()
