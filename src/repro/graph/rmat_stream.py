"""Streamed R-MAT generation: paper-scale edge streams in bounded memory.

:func:`repro.graph.generators.rmat` materialises the whole edge list
(plus rejection-loop overdraw) before returning — fine at the scaled-
down sizes the experiments default to, a dead end at the paper's real
sizes (live-journal: 69M edges, twitter-2010: 1.47G).  This module
yields the same *family* of graphs as a stream of fixed-size chunks
whose peak memory is O(chunk), independent of the total edge count;
:mod:`repro.graph.shards` writes the stream straight to disk.

Determinism contract
--------------------

The emitted edge stream is a pure function of ``(num_vertices,
num_edges, a, b, c, seed, allow_self_loops)`` and does **not** depend
on ``chunk_edges``: candidates are always drawn from the PCG64 stream
in internal blocks of the fixed size :data:`CANDIDATE_BLOCK`, filtered
by rejection, buffered, and re-cut at whatever chunk size the caller
asked for.  Generating at ``chunk_edges=1000`` and at
``chunk_edges=2**20`` therefore produces byte-identical edge streams —
and hence identical graph fingerprints — which is what lets a reduced-
scale CI run and a paper-scale bench run share one code path.

The stream deliberately does *not* reproduce
:func:`repro.graph.generators.rmat` edge-for-edge for equal seeds: the
in-memory generator sizes its rejection batches from the remaining
edge count, consuming the RNG differently.  Both draw from the same
R-MAT distribution; only the in-memory generator's output depends on
its own batching.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import GraphError
from .generators import _rmat_batch
from .graph import VERTEX_DTYPE

#: Fixed internal candidate-draw size.  Chunk-size invariance (see the
#: module docstring) requires that RNG consumption never depend on the
#: caller's ``chunk_edges``, so candidates are always drawn in blocks
#: of exactly this many edges.  Changing it changes every streamed
#: graph's content — treat it like a file-format constant.
CANDIDATE_BLOCK = 1 << 17


def rmat_stream(
    num_vertices: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | None = 0,
    chunk_edges: int = 1 << 20,
    allow_self_loops: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield an R-MAT edge stream as ``(src, dst)`` chunks.

    Every chunk holds exactly ``chunk_edges`` edges except the last,
    and the concatenation of all chunks is ``num_edges`` long.  Peak
    memory is O(``chunk_edges`` + :data:`CANDIDATE_BLOCK`) regardless
    of ``num_edges``.

    Args:
        num_vertices: vertex id space (ids are folded back into range
            by rejection, as in :func:`repro.graph.generators.rmat`).
        num_edges: total edges to emit.
        a, b, c: R-MAT quadrant probabilities; d = 1 - a - b - c.
        seed: RNG seed; the stream is deterministic in it.
        chunk_edges: edges per emitted chunk (does not affect content).
        allow_self_loops: if False, self loops are rejected.

    Yields:
        ``(src, dst)`` pairs of equal-length int64 arrays.
    """
    if num_vertices <= 0:
        raise GraphError("R-MAT needs at least one vertex")
    if num_edges < 0:
        raise GraphError("negative edge count")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0.0:
        raise GraphError(f"R-MAT probabilities must be >= 0, got d={d:.3f}")
    if chunk_edges <= 0:
        raise GraphError(f"chunk_edges must be positive, got {chunk_edges}")
    scale = max(1, int(np.ceil(np.log2(num_vertices))))
    rng = np.random.default_rng(seed)

    pending: list[tuple[np.ndarray, np.ndarray]] = []
    buffered = 0
    emitted = 0
    while emitted < num_edges:
        target = min(chunk_edges, num_edges - emitted)
        while buffered < target:
            s, t = _rmat_batch(CANDIDATE_BLOCK, scale, a, b, c, rng)
            keep = (s < num_vertices) & (t < num_vertices)
            if not allow_self_loops:
                keep &= s != t
            s, t = s[keep], t[keep]
            if s.size:
                pending.append((s, t))
                buffered += s.size
        if len(pending) == 1:
            src, dst = pending[0]
        else:
            src = np.concatenate([p[0] for p in pending])
            dst = np.concatenate([p[1] for p in pending])
        pending = []
        if src.size > target:
            pending = [(src[target:], dst[target:])]
        buffered = int(src.size) - target
        emitted += target
        yield (np.ascontiguousarray(src[:target], dtype=VERTEX_DTYPE),
               np.ascontiguousarray(dst[:target], dtype=VERTEX_DTYPE))
