"""Graph shape statistics used throughout the evaluation.

The key quantity is N_avg, the average number of edges in a *non-empty*
8x8 block of the adjacency matrix (Table 1 of the paper): GraphR maps
each such block onto an 8x8 ReRAM crossbar, so N_avg is the effective
parallelism a crossbar achieves, and the non-empty block count drives
GraphR's vertex traffic (Equation (9)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from .graph import Graph

#: GraphR's crossbar dimension; blocks of the adjacency matrix are
#: ``CROSSBAR_DIM x CROSSBAR_DIM`` vertex tiles.
CROSSBAR_DIM = 8


def fixed_block_keys(graph: Graph, block_size: int = CROSSBAR_DIM) -> np.ndarray:
    """Flat tile index of each edge for a fixed ``block_size`` tiling.

    Unlike interval-block partitioning (P chosen per machine), this tiles
    the full adjacency matrix into fixed-size square tiles, the way
    GraphR assigns edges to crossbars.
    """
    if block_size <= 0:
        raise GraphError(f"block size must be positive, got {block_size}")
    tiles_per_side = -(-graph.num_vertices // block_size)  # ceil division
    return (graph.src // block_size) * tiles_per_side + graph.dst // block_size


#: Non-empty tile counts memoised on (graph content, tile size): the
#: GraphR model recomputes N_avg for every (algorithm, dataset) run and
#: the count costs an O(E) unique pass — pure graph shape, cached.
_NONEMPTY_MEMO: dict[tuple[str, int], int] = {}
_NONEMPTY_MEMO_CAPACITY = 256


def nonempty_block_count(graph: Graph, block_size: int = CROSSBAR_DIM) -> int:
    """Number of non-empty ``block_size``-square adjacency tiles."""
    if graph.num_edges == 0:
        return 0
    key = (graph.fingerprint(), int(block_size))
    cached = _NONEMPTY_MEMO.get(key)
    if cached is not None:
        return cached
    # L2: the persistent scalar store — the O(E) unique pass runs in one
    # process and every other (sweep worker, --jobs runner) reads it.
    from ..perf.cache import get_run_cache

    count = int(get_run_cache().get_or_scalar(
        f"nonempty-blocks-{int(block_size)}", graph,
        lambda: _count_distinct(fixed_block_keys(graph, block_size)),
    ))
    if len(_NONEMPTY_MEMO) >= _NONEMPTY_MEMO_CAPACITY:
        _NONEMPTY_MEMO.clear()
    _NONEMPTY_MEMO[key] = count
    return count


def _count_distinct(keys: np.ndarray) -> int:
    """Distinct values in an integer key array.

    Sort + boundary count: ``np.unique`` routes small-ish integer arrays
    through a hash table that is an order of magnitude slower than the
    radix sort ``np.sort`` uses on integer dtypes.
    """
    if keys.size == 0:
        return 0
    ordered = np.sort(keys)
    return int(np.count_nonzero(np.diff(ordered)) + 1)


def average_edges_per_nonempty_block(
    graph: Graph, block_size: int = CROSSBAR_DIM
) -> float:
    """N_avg of Table 1: mean edges per non-empty tile."""
    blocks = nonempty_block_count(graph, block_size)
    if blocks == 0:
        return 0.0
    return graph.num_edges / blocks


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree distribution."""

    mean: float
    maximum: int
    p99: float
    zeros: int

    @classmethod
    def of(cls, degrees: np.ndarray) -> "DegreeStats":
        if degrees.size == 0:
            return cls(0.0, 0, 0.0, 0)
        return cls(
            mean=float(degrees.mean()),
            maximum=int(degrees.max()),
            p99=float(np.percentile(degrees, 99)),
            zeros=int(np.count_nonzero(degrees == 0)),
        )


@dataclass(frozen=True)
class GraphShape:
    """The shape statistics the evaluation depends on."""

    num_vertices: int
    num_edges: int
    out_degree: DegreeStats
    in_degree: DegreeStats
    navg: float
    nonempty_8x8_blocks: int

    @classmethod
    def of(cls, graph: Graph) -> "GraphShape":
        return cls(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            out_degree=DegreeStats.of(graph.out_degrees()),
            in_degree=DegreeStats.of(graph.in_degrees()),
            navg=average_edges_per_nonempty_block(graph),
            nonempty_8x8_blocks=nonempty_block_count(graph),
        )


def block_occupancy_histogram(
    graph: Graph, block_size: int = CROSSBAR_DIM
) -> np.ndarray:
    """Histogram of edges-per-non-empty-tile.

    Index k of the returned array counts tiles holding exactly k edges
    (index 0 is always zero: empty tiles are excluded).
    """
    if graph.num_edges == 0:
        return np.zeros(1, dtype=np.int64)
    keys = fixed_block_keys(graph, block_size)
    _, per_block = np.unique(keys, return_counts=True)
    return np.bincount(per_block)


def skew_gini(degrees: np.ndarray) -> float:
    """Gini coefficient of a degree distribution (0 = uniform, 1 = star).

    Used by tests to check that the synthetic datasets really are skewed
    the way natural graphs are.
    """
    degrees = np.sort(np.asarray(degrees, dtype=np.float64))
    n = degrees.size
    total = degrees.sum()
    if n == 0 or total == 0.0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * degrees).sum()) / (n * total) - (n + 1) / n)
