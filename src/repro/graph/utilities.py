"""Graph manipulation utilities for downstream users.

Helpers a practitioner needs when preparing real edge lists for the
simulator: induced subgraphs, component extraction, degree filtering
and compaction of sparse id spaces.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .graph import Graph, VERTEX_DTYPE


def induced_subgraph(graph: Graph, vertices: np.ndarray,
                     name: str | None = None) -> tuple[Graph, np.ndarray]:
    """Subgraph induced by ``vertices``, with compacted ids.

    Returns the subgraph (ids renumbered ``0..k-1`` in the order given)
    and the mapping array: ``mapping[new_id] == original_id``.
    """
    vertices = np.asarray(vertices, dtype=VERTEX_DTYPE)
    if vertices.size != np.unique(vertices).size:
        raise GraphError("vertex selection contains duplicates")
    if vertices.size and (
        vertices.min() < 0 or vertices.max() >= graph.num_vertices
    ):
        raise GraphError("vertex selection out of range")
    lookup = np.full(graph.num_vertices, -1, dtype=VERTEX_DTYPE)
    lookup[vertices] = np.arange(vertices.size, dtype=VERTEX_DTYPE)
    keep = (lookup[graph.src] >= 0) & (lookup[graph.dst] >= 0) \
        if graph.num_edges else np.empty(0, dtype=bool)
    src = lookup[graph.src[keep]]
    dst = lookup[graph.dst[keep]]
    weights = None if graph.weights is None else graph.weights[keep]
    sub = Graph(int(vertices.size), src, dst, weights,
                name=name or f"{graph.name}-sub")
    return sub, vertices


def largest_component(graph: Graph) -> tuple[Graph, np.ndarray]:
    """The largest weakly connected component, compacted.

    Uses this library's own connected-components algorithm (dogfooding
    the edge-centric executor), then induces the subgraph.
    """
    from ..algorithms.cc import ConnectedComponents
    from ..algorithms.runner import run_vectorized

    if graph.num_vertices == 0:
        return graph, np.empty(0, dtype=VERTEX_DTYPE)
    labels = run_vectorized(ConnectedComponents(), graph).values
    values, counts = np.unique(labels, return_counts=True)
    biggest = values[int(counts.argmax())]
    members = np.nonzero(labels == biggest)[0]
    return induced_subgraph(graph, members,
                            name=f"{graph.name}-lcc")


def filter_by_degree(graph: Graph, min_degree: int = 1,
                     name: str | None = None) -> tuple[Graph, np.ndarray]:
    """Drop vertices whose total (in + out) degree is below a floor."""
    if min_degree < 0:
        raise GraphError(f"minimum degree must be >= 0: {min_degree}")
    degrees = graph.out_degrees() + graph.in_degrees()
    keep = np.nonzero(degrees >= min_degree)[0]
    return induced_subgraph(graph, keep,
                            name=name or f"{graph.name}-deg{min_degree}")


def compact(graph: Graph, name: str | None = None
            ) -> tuple[Graph, np.ndarray]:
    """Remove isolated vertices, renumbering the rest densely.

    Real edge lists often have sparse id spaces; the interval-block
    partitioner balances better over a dense one.
    """
    return filter_by_degree(graph, min_degree=1,
                            name=name or f"{graph.name}-compact")


def merge(graphs: list[Graph], name: str = "merged") -> Graph:
    """Disjoint union of several graphs (ids offset per input)."""
    if not graphs:
        return Graph.empty(0, name=name)
    srcs, dsts, weight_parts = [], [], []
    weighted = all(g.is_weighted for g in graphs)
    if not weighted and any(g.is_weighted for g in graphs):
        raise GraphError("cannot merge weighted with unweighted graphs")
    offset = 0
    for g in graphs:
        srcs.append(g.src + offset)
        dsts.append(g.dst + offset)
        if weighted:
            weight_parts.append(g.weights)
        offset += g.num_vertices
    return Graph(
        offset,
        np.concatenate(srcs) if srcs else np.empty(0, dtype=VERTEX_DTYPE),
        np.concatenate(dsts) if dsts else np.empty(0, dtype=VERTEX_DTYPE),
        np.concatenate(weight_parts) if weighted else None,
        name=name,
    )
