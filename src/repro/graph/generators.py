"""Synthetic graph generators.

The paper evaluates on five SNAP graphs (Table 2) that we cannot download
in this offline reproduction.  Every result in the evaluation depends on
*shape* statistics of the graphs — degree skew, the occupancy of 8x8
adjacency-matrix blocks (Table 1), the count of non-empty blocks
(Equation (9)), interval balance — rather than on the concrete edges, so
we substitute recursive-matrix (R-MAT) graphs whose skew parameters are
tuned per dataset (see :mod:`repro.graph.datasets`).

All generators are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .graph import Graph, VERTEX_DTYPE


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def rmat(
    num_vertices: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | None = 0,
    name: str = "rmat",
    allow_self_loops: bool = True,
) -> Graph:
    """Generate an R-MAT graph (Chakrabarti et al., SDM'04).

    Each edge picks one quadrant of the adjacency matrix per recursion
    level with probabilities (a, b, c, d=1-a-b-c); higher ``a`` yields a
    heavier-skewed graph.  The vertex count is rounded *up* internally to
    the next power of two for the recursion and ids are folded back into
    ``[0, num_vertices)`` by rejection, so the returned graph has exactly
    the requested vertex and edge counts (duplicates are allowed, as in
    natural edge streams).

    Args:
        num_vertices: number of vertices of the generated graph.
        num_edges: number of (possibly duplicated) directed edges.
        a, b, c: R-MAT quadrant probabilities; d = 1 - a - b - c.
        seed: RNG seed; identical seeds give identical graphs.
        name: label stored on the graph.
        allow_self_loops: if False, self loops are re-drawn.

    Returns:
        The generated :class:`Graph`.
    """
    if num_vertices <= 0:
        raise GraphError("R-MAT needs at least one vertex")
    if num_edges < 0:
        raise GraphError("negative edge count")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0.0:
        raise GraphError(f"R-MAT probabilities must be >= 0, got d={d:.3f}")
    scale = max(1, int(np.ceil(np.log2(num_vertices))))
    rng = _rng(seed)

    src = np.empty(0, dtype=VERTEX_DTYPE)
    dst = np.empty(0, dtype=VERTEX_DTYPE)
    needed = num_edges
    # Rejection loop: draw batches until we have enough in-range edges.
    while needed > 0:
        batch = max(needed + needed // 4 + 16, 64)
        s, t = _rmat_batch(batch, scale, a, b, c, rng)
        keep = (s < num_vertices) & (t < num_vertices)
        if not allow_self_loops:
            keep &= s != t
        s, t = s[keep], t[keep]
        src = np.concatenate([src, s])
        dst = np.concatenate([dst, t])
        needed = num_edges - src.size
    return Graph(num_vertices, src[:num_edges], dst[:num_edges], name=name)


def _rmat_batch(
    count: int,
    scale: int,
    a: float,
    b: float,
    c: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``count`` R-MAT edges over a 2**scale vertex id space."""
    src = np.zeros(count, dtype=VERTEX_DTYPE)
    dst = np.zeros(count, dtype=VERTEX_DTYPE)
    ab = a + b
    abc = a + b + c
    for level in range(scale):
        r = rng.random(count)
        # Quadrant: 0 -> (0,0), 1 -> (0,1), 2 -> (1,0), 3 -> (1,1).
        right = (r >= a) & (r < ab)          # (0, 1)
        down = (r >= ab) & (r < abc)         # (1, 0)
        diag = r >= abc                      # (1, 1)
        bit = VERTEX_DTYPE(1) << (scale - 1 - level)
        src += bit * (down | diag)
        dst += bit * (right | diag)
    return src, dst


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: int | None = 0,
    name: str = "erdos-renyi",
) -> Graph:
    """Uniform random directed multigraph with the given edge count."""
    if num_vertices <= 0 and num_edges > 0:
        raise GraphError("cannot place edges in an empty vertex set")
    rng = _rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=VERTEX_DTYPE)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=VERTEX_DTYPE)
    return Graph(max(num_vertices, 0), src, dst, name=name)


def path(num_vertices: int, name: str = "path") -> Graph:
    """Directed path 0 -> 1 -> ... -> n-1."""
    if num_vertices <= 0:
        return Graph.empty(max(num_vertices, 0), name=name)
    src = np.arange(num_vertices - 1, dtype=VERTEX_DTYPE)
    return Graph(num_vertices, src, src + 1, name=name)


def cycle(num_vertices: int, name: str = "cycle") -> Graph:
    """Directed cycle over ``num_vertices`` vertices."""
    if num_vertices <= 0:
        return Graph.empty(0, name=name)
    src = np.arange(num_vertices, dtype=VERTEX_DTYPE)
    dst = (src + 1) % num_vertices
    return Graph(num_vertices, src, dst, name=name)


def star(num_leaves: int, name: str = "star") -> Graph:
    """Star: vertex 0 points at each of ``num_leaves`` leaves."""
    if num_leaves < 0:
        raise GraphError("negative leaf count")
    src = np.zeros(num_leaves, dtype=VERTEX_DTYPE)
    dst = np.arange(1, num_leaves + 1, dtype=VERTEX_DTYPE)
    return Graph(num_leaves + 1, src, dst, name=name)


def complete(num_vertices: int, name: str = "complete") -> Graph:
    """Complete directed graph without self loops."""
    if num_vertices < 0:
        raise GraphError("negative vertex count")
    idx = np.arange(num_vertices, dtype=VERTEX_DTYPE)
    src = np.repeat(idx, num_vertices)
    dst = np.tile(idx, num_vertices)
    keep = src != dst
    return Graph(num_vertices, src[keep], dst[keep], name=name)


def grid_2d(rows: int, cols: int, name: str = "grid") -> Graph:
    """2-D grid with right/down directed edges (a low-skew workload)."""
    if rows < 0 or cols < 0:
        raise GraphError("negative grid dimensions")
    n = rows * cols
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    ids = np.arange(n, dtype=VERTEX_DTYPE).reshape(rows, cols) if n else None
    if n and cols > 1:
        srcs.append(ids[:, :-1].ravel())
        dsts.append(ids[:, 1:].ravel())
    if n and rows > 1:
        srcs.append(ids[:-1, :].ravel())
        dsts.append(ids[1:, :].ravel())
    if srcs:
        return Graph(n, np.concatenate(srcs), np.concatenate(dsts), name=name)
    return Graph.empty(n, name=name)


def random_weights(
    graph: Graph,
    low: float = 1.0,
    high: float = 10.0,
    seed: int | None = 0,
) -> Graph:
    """Attach uniformly random edge weights in [low, high) to a graph."""
    if high < low:
        raise GraphError(f"weight range is empty: [{low}, {high})")
    rng = _rng(seed)
    return graph.with_weights(rng.uniform(low, high, size=graph.num_edges))
