"""Out-of-core sharded edge storage: write once, memory-map, stream.

HyVE's edge memory is written once at preprocessing time and then only
ever streamed sequentially (Section 3.4).  This module gives the
reproduction the same discipline on disk, which is what lets graphs at
the paper's *actual* scales (live-journal: 4.85M vertices / 69M edges)
run end-to-end on one box — the full edge list never has to fit in
memory, only one shard plus the O(V) value arrays.

A **shard store** is a directory holding

* ``src.i64`` / ``dst.i64`` (plus ``weights.f64`` for weighted graphs)
  — the raw little-endian edge arrays in stream order, written
  sequentially exactly once;
* ``manifest.json`` — the commit point, written last via an atomic
  rename: schema tag, graph name and sizes, the whole-graph content
  fingerprint (bit-identical to :meth:`~repro.graph.graph.Graph
  .fingerprint` because it hashes the same byte stream), and one
  record per shard (edge range, vertex id range, checksum).

Shards are contiguous edge ranges in stream order — no permutation —
so :meth:`ShardStore.as_graph` is a zero-copy ``numpy`` memmap view
and round-trips the fingerprint exactly, which keeps every existing
content-addressed cache key (runs, scalars, schedule counts) valid for
sharded graphs.  A directory without a committed manifest, a torn
manifest, or data files shorter than the manifest promises are all
rejected with :class:`~repro.errors.ShardError`.

Two executors ride on the store:

* :func:`run_sharded` — the out-of-core analogue of
  :func:`~repro.algorithms.runner.run_vectorized`: per iteration it
  streams shard slices through ``process_edges``, so peak memory is
  O(values + one shard).  Results are bit-identical for the min-based
  algorithms and within the repo's 1e-12 accumulation policy for the
  sum-based ones (same contract as ``run_blocked``).
* :func:`sharded_scheduled_counts` — whole-graph
  :class:`~repro.arch.scheduler.ScheduleCounts` from per-shard
  partials computed in parallel worker processes.  The partials are
  *integers* (edge counts and reference-partition block histograms),
  merge by exact summation, and feed the unchanged analytic pipeline,
  so the merged counts are bit-identical to the in-memory path by
  construction and land in the run cache under the same counts key.

See docs/scaling.md for the format specification, the memory-budget
model and a worked end-to-end example.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from ..errors import ShardError
from ..obs import metrics as obs_metrics
from ..obs.trace import get_tracer
from .graph import Graph, VERTEX_DTYPE
from .hash_partition import (_DEFAULT_MULTIPLIER, _coprime_multiplier,
                             imbalance_from_block_counts)
from .partition import _even_interval_of
from .rmat_stream import rmat_stream

#: Manifest schema tag; bump on any incompatible layout change.
SHARD_SCHEMA = "hyve-shards-v1"

#: Default edges per shard (4 Mi edges = 64 MiB of src+dst).
DEFAULT_SHARD_EDGES = 1 << 22

#: Bytes per read while hashing data files incrementally.
_HASH_BLOCK = 8 << 20

_MANIFEST_NAME = "manifest.json"
_SRC_NAME = "src.i64"
_DST_NAME = "dst.i64"
_WEIGHTS_NAME = "weights.f64"

_VERTEX_DTYPE_STR = np.dtype(VERTEX_DTYPE).str
_WEIGHT_DTYPE_STR = np.dtype(np.float64).str


@dataclass(frozen=True)
class ShardMeta:
    """One shard's manifest record.

    Attributes:
        index: position in the store (shards are contiguous).
        start: first edge offset (inclusive).
        stop: one past the last edge offset.
        min_vertex: smallest vertex id in the shard (-1 when empty).
        max_vertex: largest vertex id in the shard (-1 when empty).
        checksum: digest over the shard's src/dst(/weight) bytes.
    """

    index: int
    start: int
    stop: int
    min_vertex: int
    max_vertex: int
    checksum: str

    @property
    def num_edges(self) -> int:
        return self.stop - self.start


def _shard_bounds(num_edges: int, shard_edges: int) -> list[tuple[int, int]]:
    """Contiguous [start, stop) edge ranges of every shard."""
    return [(lo, min(lo + shard_edges, num_edges))
            for lo in range(0, num_edges, shard_edges)]


def _section_digests(
    path: Path,
    bounds: list[tuple[int, int]],
    itemsize: int,
    whole: "hashlib._Hash",
) -> list[bytes]:
    """Per-shard digests of one data file, feeding ``whole`` en route.

    Reads the file once, sequentially, in :data:`_HASH_BLOCK` pieces;
    ``whole`` sees the exact byte stream :meth:`Graph.fingerprint`
    would hash for this array.
    """
    digests: list[bytes] = []
    with open(path, "rb") as handle:
        for start, stop in bounds:
            h = hashlib.blake2b(digest_size=16)
            remaining = (stop - start) * itemsize
            while remaining:
                block = handle.read(min(remaining, _HASH_BLOCK))
                if not block:
                    raise ShardError(
                        f"{path}: file ends {remaining} byte(s) short of "
                        "the manifest's edge count"
                    )
                h.update(block)
                whole.update(block)
                remaining -= len(block)
            digests.append(h.digest())
        if handle.read(1):
            raise ShardError(
                f"{path}: file is longer than the manifest's edge count"
            )
    return digests


class ShardWriter:
    """Sequential, write-once author of a shard store.

    Append edge chunks in stream order (chunk boundaries need not align
    with shard boundaries), then call :meth:`finish` — which hashes the
    data files, and only then commits the manifest via an atomic
    rename.  A crash before :meth:`finish` leaves a directory without a
    manifest, which :meth:`ShardStore.open` rejects; re-running the
    writer over such a directory truncates and rewrites it.  A
    directory that already holds a *committed* manifest is refused —
    shard stores are write-once by contract.
    """

    def __init__(
        self,
        directory: str | Path,
        num_vertices: int,
        *,
        name: str = "sharded",
        shard_edges: int = DEFAULT_SHARD_EDGES,
        weighted: bool = False,
    ) -> None:
        if num_vertices < 0:
            raise ShardError(f"negative vertex count: {num_vertices}")
        if shard_edges < 1:
            raise ShardError(f"shard_edges must be >= 1, got {shard_edges}")
        self.directory = Path(directory)
        if (self.directory / _MANIFEST_NAME).exists():
            raise ShardError(
                f"{self.directory}: already holds a committed shard store "
                "(write-once: delete the directory to regenerate)"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        self.num_vertices = int(num_vertices)
        self.name = name
        self.shard_edges = int(shard_edges)
        self.weighted = bool(weighted)
        self._edges = 0
        self._finished = False
        self._min: list[int] = []
        self._max: list[int] = []
        self._src = open(self.directory / _SRC_NAME, "wb")
        self._dst = open(self.directory / _DST_NAME, "wb")
        self._weights = (open(self.directory / _WEIGHTS_NAME, "wb")
                         if weighted else None)

    # --- context manager -------------------------------------------------

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # No implicit commit: an abandoned writer leaves no manifest,
        # so the directory stays visibly uncommitted.
        self._close_data()

    def _close_data(self) -> None:
        for handle in (self._src, self._dst, self._weights):
            if handle is not None and not handle.closed:
                handle.close()

    # --- writing ---------------------------------------------------------

    def append(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Write one chunk of edges (any size, including zero)."""
        if self._finished:
            raise ShardError("writer already finished (write-once)")
        src = np.ascontiguousarray(src, dtype=VERTEX_DTYPE)
        dst = np.ascontiguousarray(dst, dtype=VERTEX_DTYPE)
        if src.ndim != 1 or src.shape != dst.shape:
            raise ShardError(
                f"src/dst must be equal-length 1-D arrays, got "
                f"{src.shape} vs {dst.shape}"
            )
        if self.weighted != (weights is not None):
            raise ShardError(
                "weighted store needs weights on every chunk"
                if self.weighted else
                "unweighted store got a weights chunk"
            )
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != src.shape:
                raise ShardError(
                    f"weights length {weights.size} != chunk edge count "
                    f"{src.size}"
                )
        if src.size:
            lo = int(min(src.min(), dst.min()))
            hi = int(max(src.max(), dst.max()))
            if lo < 0 or hi >= self.num_vertices:
                raise ShardError(
                    f"vertex ids must lie in [0, {self.num_vertices}), "
                    f"chunk has range [{lo}, {hi}]"
                )
            self._update_ranges(src, dst)
        self._src.write(src.tobytes())
        self._dst.write(dst.tobytes())
        if weights is not None:
            self._weights.write(weights.tobytes())
        self._edges += int(src.size)

    def _update_ranges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Fold a chunk's per-shard vertex ranges into the running stats."""
        e0 = self._edges
        e1 = e0 + src.size
        first = e0 // self.shard_edges
        last = (e1 - 1) // self.shard_edges
        while len(self._min) <= last:
            self._min.append(-1)
            self._max.append(-1)
        for k in range(first, last + 1):
            piece = slice(max(k * self.shard_edges, e0) - e0,
                          min((k + 1) * self.shard_edges, e1) - e0)
            lo = int(min(src[piece].min(), dst[piece].min()))
            hi = int(max(src[piece].max(), dst[piece].max()))
            self._min[k] = lo if self._min[k] < 0 else min(self._min[k], lo)
            self._max[k] = max(self._max[k], hi)

    def finish(self) -> "ShardStore":
        """Hash the data, commit the manifest, and open the store.

        The manifest is the commit point: data files are flushed and
        fsynced first, the manifest is written to a temporary file and
        atomically renamed last, so a reader either sees a complete
        store or no store at all.
        """
        if self._finished:
            raise ShardError("writer already finished (write-once)")
        self._finished = True
        for handle in (self._src, self._dst, self._weights):
            if handle is not None:
                handle.flush()
                os.fsync(handle.fileno())
        self._close_data()
        bounds = _shard_bounds(self._edges, self.shard_edges)
        tracer = get_tracer()
        with tracer.span("shard.write", graph=self.name,
                         edges=self._edges, shards=len(bounds)):
            whole = hashlib.blake2b(digest_size=16)
            whole.update(f"{self.name}|{self.num_vertices}|".encode())
            itemsize = np.dtype(VERTEX_DTYPE).itemsize
            src_digests = _section_digests(
                self.directory / _SRC_NAME, bounds, itemsize, whole)
            dst_digests = _section_digests(
                self.directory / _DST_NAME, bounds, itemsize, whole)
            weight_digests: list[bytes] | None = None
            if self.weighted:
                weight_digests = _section_digests(
                    self.directory / _WEIGHTS_NAME, bounds, 8, whole)
            shards = []
            for i, (start, stop) in enumerate(bounds):
                h = hashlib.blake2b(digest_size=16)
                h.update(src_digests[i])
                h.update(dst_digests[i])
                if weight_digests is not None:
                    h.update(weight_digests[i])
                shards.append({
                    "index": i,
                    "start": start,
                    "stop": stop,
                    "min_vertex": self._min[i] if i < len(self._min) else -1,
                    "max_vertex": self._max[i] if i < len(self._max) else -1,
                    "checksum": h.hexdigest(),
                })
            manifest = {
                "schema": SHARD_SCHEMA,
                "name": self.name,
                "num_vertices": self.num_vertices,
                "num_edges": self._edges,
                "weighted": self.weighted,
                "vertex_dtype": _VERTEX_DTYPE_STR,
                "weight_dtype": _WEIGHT_DTYPE_STR if self.weighted else None,
                "fingerprint": whole.hexdigest(),
                "shard_edges": self.shard_edges,
                "files": {
                    "src": _SRC_NAME,
                    "dst": _DST_NAME,
                    "weights": _WEIGHTS_NAME if self.weighted else None,
                },
                "shards": shards,
            }
            tmp = self.directory / (_MANIFEST_NAME + ".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.directory / _MANIFEST_NAME)
        return ShardStore.open(self.directory)


class ShardStore:
    """A committed, memory-mapped shard store (read-only).

    Construct via :meth:`open`; every access to edge data goes through
    ``numpy`` memmaps, so resident memory stays bounded by the page
    cache no matter how large the graph is.
    """

    def __init__(self, directory: Path, manifest: dict,
                 shards: list[ShardMeta]) -> None:
        self.directory = directory
        self._manifest = manifest
        self.shards = shards
        self._arrays: tuple | None = None
        self._graph: Graph | None = None

    # --- opening ---------------------------------------------------------

    @classmethod
    def open(cls, directory: str | Path) -> "ShardStore":
        """Open and validate a committed store.

        Raises :class:`ShardError` for anything short of a complete,
        self-consistent store: missing or torn manifest, wrong schema,
        non-contiguous shard ranges, or data files whose size disagrees
        with the manifest's edge count.
        """
        directory = Path(directory)
        mpath = directory / _MANIFEST_NAME
        if not mpath.is_file():
            raise ShardError(
                f"{directory}: no {_MANIFEST_NAME} — not a shard store, or "
                "an interrupted write (the manifest is committed last)"
            )
        try:
            manifest = json.loads(mpath.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ShardError(
                f"{mpath}: torn or truncated manifest ({exc})"
            ) from exc
        if not isinstance(manifest, dict):
            raise ShardError(f"{mpath}: manifest is not a JSON object")
        schema = manifest.get("schema")
        if schema != SHARD_SCHEMA:
            raise ShardError(
                f"{mpath}: unsupported schema {schema!r} "
                f"(expected {SHARD_SCHEMA!r})"
            )
        try:
            num_vertices = int(manifest["num_vertices"])
            num_edges = int(manifest["num_edges"])
            weighted = bool(manifest["weighted"])
            fingerprint = str(manifest["fingerprint"])
            shard_edges = int(manifest["shard_edges"])
            vertex_dtype = manifest["vertex_dtype"]
            raw_shards = manifest["shards"]
            manifest["name"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardError(f"{mpath}: malformed manifest ({exc})") from exc
        if vertex_dtype != _VERTEX_DTYPE_STR:
            raise ShardError(
                f"{mpath}: vertex dtype {vertex_dtype!r} does not match "
                f"this platform's {_VERTEX_DTYPE_STR!r} (stores are not "
                "portable across endianness)"
            )
        if num_vertices < 0 or num_edges < 0 or shard_edges < 1:
            raise ShardError(f"{mpath}: negative sizes in manifest")
        shards: list[ShardMeta] = []
        expected = _shard_bounds(num_edges, shard_edges)
        if not isinstance(raw_shards, list) \
                or len(raw_shards) != len(expected):
            raise ShardError(
                f"{mpath}: manifest lists "
                f"{len(raw_shards) if isinstance(raw_shards, list) else '?'} "
                f"shard(s), layout implies {len(expected)}"
            )
        for i, record in enumerate(raw_shards):
            try:
                meta = ShardMeta(
                    index=int(record["index"]),
                    start=int(record["start"]),
                    stop=int(record["stop"]),
                    min_vertex=int(record["min_vertex"]),
                    max_vertex=int(record["max_vertex"]),
                    checksum=str(record["checksum"]),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ShardError(
                    f"{mpath}: malformed shard record {i} ({exc})"
                ) from exc
            if meta.index != i or (meta.start, meta.stop) != expected[i]:
                raise ShardError(
                    f"{mpath}: shard {i} covers [{meta.start}, {meta.stop}) "
                    f"but the layout implies {list(expected[i])}"
                )
            shards.append(meta)
        itemsize = np.dtype(VERTEX_DTYPE).itemsize
        checks = [(_SRC_NAME, itemsize), (_DST_NAME, itemsize)]
        if weighted:
            checks.append((_WEIGHTS_NAME, 8))
        for fname, size in checks:
            fpath = directory / fname
            if not fpath.is_file():
                raise ShardError(f"{directory}: missing data file {fname}")
            actual = fpath.stat().st_size
            if actual != num_edges * size:
                raise ShardError(
                    f"{fpath}: truncated data file — {actual} byte(s), "
                    f"manifest implies {num_edges * size}"
                )
        return cls(directory, manifest, shards)

    # --- metadata --------------------------------------------------------

    @property
    def name(self) -> str:
        return self._manifest["name"]

    @property
    def num_vertices(self) -> int:
        return int(self._manifest["num_vertices"])

    @property
    def num_edges(self) -> int:
        return int(self._manifest["num_edges"])

    @property
    def weighted(self) -> bool:
        return bool(self._manifest["weighted"])

    @property
    def fingerprint(self) -> str:
        """Whole-graph content digest, equal to
        :meth:`Graph.fingerprint` of the materialised graph."""
        return self._manifest["fingerprint"]

    @property
    def shard_edges(self) -> int:
        return int(self._manifest["shard_edges"])

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def max_shard_edges(self) -> int:
        """Largest shard (the streaming chunk the memory budget sees)."""
        return max((s.num_edges for s in self.shards), default=0)

    def memory_budget(self, value_bytes_per_vertex: int = 8) -> dict:
        """Resident-memory model of a sharded run (docs/scaling.md).

        Streaming holds the O(V) value arrays plus one shard's edge
        slices; everything else stays on disk behind the page cache.
        """
        itemsize = np.dtype(VERTEX_DTYPE).itemsize
        per_edge = 2 * itemsize + (8 if self.weighted else 0)
        values = self.num_vertices * value_bytes_per_vertex
        shard = self.max_shard_edges * per_edge
        return {
            "values_bytes": values,
            "shard_bytes": shard,
            "resident_bytes": values + shard,
            "disk_bytes": self.num_edges * per_edge,
        }

    # --- data access -----------------------------------------------------

    def _data(self) -> tuple:
        if self._arrays is None:
            if self.num_edges == 0:
                src = np.empty(0, dtype=VERTEX_DTYPE)
                dst = np.empty(0, dtype=VERTEX_DTYPE)
                weights = (np.empty(0, dtype=np.float64)
                           if self.weighted else None)
            else:
                shape = (self.num_edges,)
                src = np.memmap(self.directory / _SRC_NAME, mode="r",
                                dtype=VERTEX_DTYPE, shape=shape)
                dst = np.memmap(self.directory / _DST_NAME, mode="r",
                                dtype=VERTEX_DTYPE, shape=shape)
                weights = None
                if self.weighted:
                    weights = np.memmap(self.directory / _WEIGHTS_NAME,
                                        mode="r", dtype=np.float64,
                                        shape=shape)
            self._arrays = (src, dst, weights)
        return self._arrays

    def shard_arrays(
        self, index: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """``(src, dst, weights)`` memmap slices of one shard."""
        if not 0 <= index < self.num_shards:
            raise ShardError(
                f"shard index {index} out of range [0, {self.num_shards})"
            )
        meta = self.shards[index]
        src, dst, weights = self._data()
        sel = slice(meta.start, meta.stop)
        return (src[sel], dst[sel],
                None if weights is None else weights[sel])

    def iter_shards(
        self,
    ) -> Iterator[tuple[ShardMeta, np.ndarray, np.ndarray,
                        np.ndarray | None]]:
        """Yield ``(meta, src, dst, weights)`` per shard, in order."""
        for meta in self.shards:
            s, d, w = self.shard_arrays(meta.index)
            yield meta, s, d, w

    def as_graph(self) -> Graph:
        """The stored graph as a zero-copy memmap-backed :class:`Graph`.

        The returned graph's arrays view the on-disk files directly, so
        building it costs one validation pass (id range checks) but no
        copies, and its memoised fingerprint is seeded from the
        manifest — the write path hashed the identical byte stream, and
        :meth:`verify` re-derives it from the data on demand.
        """
        if self._graph is None:
            src, dst, weights = self._data()
            graph = Graph(self.num_vertices, src, dst, weights,
                          name=self.name)
            object.__setattr__(graph, "_fingerprint", self.fingerprint)
            object.__setattr__(graph, "_shard_manifest",
                               str(self.directory))
            self._graph = graph
        return self._graph

    def verify(self) -> int:
        """Re-hash every data file against the manifest.

        Returns the number of shards checked; raises
        :class:`ShardError` on the first checksum or fingerprint
        mismatch (bit rot, an edited data file, a manifest pasted onto
        the wrong data).
        """
        bounds = [(s.start, s.stop) for s in self.shards]
        with get_tracer().span("shard.verify", graph=self.name,
                               shards=self.num_shards):
            whole = hashlib.blake2b(digest_size=16)
            whole.update(f"{self.name}|{self.num_vertices}|".encode())
            itemsize = np.dtype(VERTEX_DTYPE).itemsize
            src_digests = _section_digests(
                self.directory / _SRC_NAME, bounds, itemsize, whole)
            dst_digests = _section_digests(
                self.directory / _DST_NAME, bounds, itemsize, whole)
            weight_digests = None
            if self.weighted:
                weight_digests = _section_digests(
                    self.directory / _WEIGHTS_NAME, bounds, 8, whole)
            for meta in self.shards:
                h = hashlib.blake2b(digest_size=16)
                h.update(src_digests[meta.index])
                h.update(dst_digests[meta.index])
                if weight_digests is not None:
                    h.update(weight_digests[meta.index])
                if h.hexdigest() != meta.checksum:
                    raise ShardError(
                        f"{self.directory}: shard {meta.index} checksum "
                        f"mismatch — data corrupted or replaced"
                    )
            if whole.hexdigest() != self.fingerprint:
                raise ShardError(
                    f"{self.directory}: whole-graph fingerprint mismatch — "
                    "manifest does not describe these data files"
                )
        return self.num_shards

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardStore({self.name!r}, |V|={self.num_vertices}, "
                f"|E|={self.num_edges}, shards={self.num_shards})")


# --- writing convenience -----------------------------------------------------


def write_graph_shards(
    graph: Graph,
    directory: str | Path,
    *,
    shard_edges: int = DEFAULT_SHARD_EDGES,
) -> ShardStore:
    """Shard an in-memory graph to disk (round-trips the fingerprint)."""
    with ShardWriter(directory, graph.num_vertices, name=graph.name,
                     shard_edges=shard_edges,
                     weighted=graph.is_weighted) as writer:
        for lo in range(0, graph.num_edges, shard_edges):
            sel = slice(lo, min(lo + shard_edges, graph.num_edges))
            writer.append(
                graph.src[sel], graph.dst[sel],
                None if graph.weights is None else graph.weights[sel],
            )
        return writer.finish()


def write_rmat_shards(
    directory: str | Path,
    num_vertices: int,
    num_edges: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | None = 0,
    name: str = "rmat-stream",
    shard_edges: int = DEFAULT_SHARD_EDGES,
    chunk_edges: int = 1 << 20,
    allow_self_loops: bool = True,
) -> ShardStore:
    """Stream an R-MAT graph straight to a shard store.

    Combines :func:`repro.graph.rmat_stream.rmat_stream` with a
    :class:`ShardWriter`: the full edge list exists only on disk, never
    in memory.  ``chunk_edges`` affects peak memory, not content.
    """
    with ShardWriter(directory, num_vertices, name=name,
                     shard_edges=shard_edges, weighted=False) as writer:
        for src, dst in rmat_stream(num_vertices, num_edges, a, b, c,
                                    seed=seed, chunk_edges=chunk_edges,
                                    allow_self_loops=allow_self_loops):
            writer.append(src, dst)
        return writer.finish()


# --- out-of-core execution ---------------------------------------------------


def run_sharded(algorithm, store: ShardStore, *, cache: bool = False):
    """Execute ``algorithm`` by streaming the store shard by shard.

    The out-of-core analogue of
    :func:`~repro.algorithms.runner.run_vectorized`: one full edge
    sweep per iteration, dispatched as one ``process_edges`` call per
    shard, so the per-iteration temporaries (gathers, contributions)
    are O(shard) instead of O(E).  Chunking within an iteration never
    changes the answer for the min-based algorithms and stays within
    the 1e-12 accumulation policy for the sum-based ones — the same
    contract ``run_blocked`` documents — and iteration counts and
    active-source traces match ``run_vectorized`` exactly for the
    counts pipeline.

    Algorithms whose ``transform_graph`` returns a *different* graph
    (CC symmetrises, SSSP/SpMV attach weights) fall back to uniform
    slices of the transformed arrays at the store's shard width; the
    transform itself is O(E) in memory, so paper-scale out-of-core runs
    should use transform-free algorithms (PR, BFS).

    With ``cache=True`` the finished run is installed in the run cache
    under the standard ``(graph content, algorithm signature)`` key, so
    every downstream engine (``fold_many``, ``run_grid``, sweeps) can
    price paper-scale workloads without an in-memory convergence pass.
    """
    from ..algorithms.runner import AlgorithmRun
    from ..errors import ConvergenceError

    tracer = get_tracer()
    graph = store.as_graph()
    with tracer.span("shard.preprocess", graph=graph.name,
                     shards=store.num_shards):
        streamed = algorithm.transform_graph(graph)

    if streamed is graph:
        def chunks():
            for _, s, d, w in store.iter_shards():
                yield s, d, w
        chunks_per_sweep = store.num_shards
    else:
        step = max(store.max_shard_edges, 1)
        total = streamed.num_edges
        chunks_per_sweep = -(-total // step) if total else 0

        def chunks():
            for lo in range(0, total, step):
                sel = slice(lo, min(lo + step, total))
                yield (streamed.src[sel], streamed.dst[sel],
                       None if streamed.weights is None
                       else streamed.weights[sel])

    values = algorithm.initial_values(streamed)
    active = algorithm.initial_active(streamed)
    active_sources: list[int] = []
    iterations = 0
    metrics = obs_metrics.get_metrics()
    with tracer.span("shard.converge", algorithm=algorithm.name,
                     graph=streamed.name, shards=store.num_shards):
        while True:
            active_sources.append(active)
            acc = algorithm.iteration_start(values, streamed)
            for s, d, w in chunks():
                algorithm.process_edges(values, acc, s, d, w, streamed)
            metrics.counter(obs_metrics.SHARDS_STREAMED).add(
                chunks_per_sweep
            )
            with tracer.span("apply", iteration=iterations):
                result = algorithm.iteration_end(
                    values, acc, streamed, iterations
                )
            values = result.values
            active = result.active_vertices
            iterations += 1
            if result.converged:
                break
            if iterations > algorithm.max_iterations:
                raise ConvergenceError(
                    f"{algorithm.name} exceeded "
                    f"{algorithm.max_iterations} sweeps"
                )
    metrics.counter(obs_metrics.EXECUTOR_EDGES).add(
        iterations * streamed.num_edges
    )
    metrics.histogram(obs_metrics.CONVERGENCE_ITERATIONS).observe(iterations)
    run = AlgorithmRun(
        algorithm=algorithm.name,
        graph_name=streamed.name,
        values=values,
        iterations=iterations,
        num_vertices=streamed.num_vertices,
        edges_per_iteration=streamed.num_edges,
        vertex_bits=algorithm.vertex_bits,
        edge_bits=algorithm.edge_bits,
        active_sources=tuple(active_sources),
    )
    if cache:
        from ..perf.cache import get_run_cache

        get_run_cache().seed_run(algorithm, graph, run)
    return run


# --- per-shard schedule counts -----------------------------------------------


@dataclass(frozen=True)
class ShardCounts:
    """The additive integer core of one shard's schedule counts.

    Everything :class:`~repro.arch.scheduler.ScheduleCounts` derives
    from the edge *data* (rather than the run metadata) reduces to two
    integers structures, both additive across shards: the edge count
    and the reference-partition block histogram behind the imbalance
    estimate.  ``num_intervals == 0`` marks the degenerate case where
    the estimate is defined as 1.0 and no histogram is built.
    """

    shard_index: int
    edges: int
    num_intervals: int
    block_counts: np.ndarray | None


def shard_schedule_counts(
    store: ShardStore,
    shard_index: int,
    num_pus: int,
    hash_placement: bool,
) -> ShardCounts:
    """Compute one shard's :class:`ShardCounts` (pure, per-shard O(E)).

    Under hash placement the shard's vertex ids are pushed through the
    same multiplicative hash :func:`~repro.graph.hash_partition
    .hash_partition` applies to the whole graph, then binned at the
    scheduler's reference partition width — arithmetic on the ids only,
    no permutation arrays, so a worker needs just the shard slice and
    the manifest metadata.
    """
    from ..arch.scheduler import imbalance_reference_intervals

    src, dst, _ = store.shard_arrays(shard_index)
    edges = int(src.size)
    nv = store.num_vertices
    p = imbalance_reference_intervals(nv, num_pus)
    if p > nv:
        return ShardCounts(shard_index, edges, 0, None)
    if hash_placement:
        if nv >= 2 ** 31:
            raise ShardError(
                f"hashed shard histograms need num_vertices < 2^31 to "
                f"stay in int64, got {nv}"
            )
        mult = _coprime_multiplier(nv, _DEFAULT_MULTIPLIER)
        src = (src * mult) % nv
        dst = (dst * mult) % nv
    src_iv = _even_interval_of(src, nv, p)
    dst_iv = _even_interval_of(dst, nv, p)
    flat = src_iv * p + dst_iv
    counts = np.bincount(flat, minlength=p * p).astype(np.int64)
    return ShardCounts(shard_index, edges, p, counts.reshape(p, p))


def merge_shard_counts(
    parts: Sequence[ShardCounts],
) -> tuple[int, np.ndarray | None]:
    """Merge per-shard partials exactly: ``(total_edges, histogram)``.

    Integer sums only — no floats are touched until the merged
    histogram enters the same
    :func:`~repro.graph.hash_partition.imbalance_from_block_counts`
    pipeline the in-memory path uses, which is what makes the merged
    counts bit-identical rather than merely close.
    """
    total = 0
    merged: np.ndarray | None = None
    width: int | None = None
    for part in parts:
        total += part.edges
        if width is None:
            width = part.num_intervals
        elif width != part.num_intervals:
            raise ShardError(
                f"shard {part.shard_index} binned at P="
                f"{part.num_intervals}, expected P={width}"
            )
        if part.block_counts is not None:
            if merged is None:
                merged = part.block_counts.astype(np.int64, copy=True)
            else:
                merged += part.block_counts
    return total, merged


def _shard_counts_task(directory: str, shard_index: int, num_pus: int,
                       hash_placement: bool) -> ShardCounts:
    """Pool worker: open (memoised) the store and count one shard."""
    store = _WORKER_STORES.get(directory)
    if store is None:
        store = ShardStore.open(directory)
        _WORKER_STORES[directory] = store
    return shard_schedule_counts(store, shard_index, num_pus,
                                 hash_placement)


#: Worker-side store memo, keyed on directory: a pool worker mapping
#: the same files for every shard task would otherwise re-validate the
#: manifest per task.
_WORKER_STORES: dict[str, ShardStore] = {}


def sharded_scheduled_counts(
    run,
    workload,
    config,
    *,
    store: ShardStore | None = None,
    jobs: int | None = None,
):
    """Whole-graph :class:`ScheduleCounts` from per-shard partials.

    The only O(E) ingredient of the counts — the reference-partition
    block histogram behind the imbalance estimate — is computed per
    shard (in parallel worker processes when ``jobs > 1``), merged by
    exact integer summation, pushed through the identical float
    pipeline, and seeded into the scalar cache under the same key the
    in-memory path uses.  The subsequent
    :func:`~repro.perf.batch.scheduled_counts` call therefore computes
    — and caches, under the unchanged counts key — a result
    bit-identical to the in-memory path, composing with ``fold_many``
    and the run cache exactly as before.

    ``store`` defaults to the store backing ``workload.graph`` (an
    :meth:`ShardStore.as_graph` product); passing a workload whose
    graph content differs from the store is an error.
    """
    from ..arch.scheduler import seed_imbalance
    from ..perf.batch import scheduled_counts

    if store is None:
        manifest = getattr(workload.graph, "_shard_manifest", None)
        if manifest is None:
            raise ShardError(
                "workload graph is not shard-backed; pass store= explicitly"
            )
        store = ShardStore.open(manifest)
    if workload.graph.fingerprint() != store.fingerprint:
        raise ShardError(
            "workload graph content does not match the shard store "
            f"({workload.graph.fingerprint()} vs {store.fingerprint})"
        )
    n = config.num_pus
    hp = config.hash_placement
    with get_tracer().span("shard.counts", graph=store.name,
                           shards=store.num_shards, num_pus=n,
                           jobs=jobs or 1):
        indices = range(store.num_shards)
        if jobs is not None and jobs > 1 and store.num_shards > 1:
            import concurrent.futures
            from functools import partial

            task = partial(_shard_counts_task, str(store.directory),
                           num_pus=n, hash_placement=hp)
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(jobs, store.num_shards)
            ) as pool:
                parts = list(pool.map(task, indices))
        else:
            parts = [shard_schedule_counts(store, i, n, hp)
                     for i in indices]
        total, merged = merge_shard_counts(parts)
        if total != store.num_edges:
            raise ShardError(
                f"per-shard edge counts sum to {total}, manifest says "
                f"{store.num_edges}"
            )
        value = (1.0 if merged is None
                 else imbalance_from_block_counts(merged, n))
        seed_imbalance(store.as_graph(), n, hp, value)
        obs_metrics.get_metrics().counter(
            obs_metrics.SHARD_COUNTS_MERGED
        ).add(len(parts))
    return scheduled_counts(run, workload, config)


def sharded_workload(
    store: ShardStore,
    reported_vertices: int | None = None,
    reported_edges: int | None = None,
):
    """A :class:`~repro.arch.config.Workload` over the store's graph.

    At paper scale the reported sizes default to the actual sizes —
    scale factor 1.0 is the whole point of the out-of-core path.
    """
    from ..arch.config import Workload

    return Workload(
        graph=store.as_graph(),
        reported_vertices=reported_vertices,
        reported_edges=reported_edges,
    )


# --- cross-process handoff ---------------------------------------------------


@dataclass(frozen=True)
class ShardedGraphRef:
    """Picklable handle to an on-disk shard store.

    The disk-resident sibling of
    :class:`repro.perf.shm.SharedGraphRef`: pool tasks ship this tiny
    record and workers memory-map the same files (zero-copy through the
    page cache) instead of receiving a pickled edge list — and unlike
    the shared-memory path, nothing has to fit in ``/dev/shm``.
    """

    directory: str
    fingerprint: str
    graph_name: str
    num_vertices: int
    num_edges: int


def sharded_graph_ref(store: ShardStore) -> ShardedGraphRef:
    """The picklable handle for ``store``."""
    return ShardedGraphRef(
        directory=str(store.directory),
        fingerprint=store.fingerprint,
        graph_name=store.name,
        num_vertices=store.num_vertices,
        num_edges=store.num_edges,
    )


#: Worker-side attach memo: fingerprint -> (graph, store).
_ATTACHED_STORES: dict[str, tuple[Graph, ShardStore]] = {}


def attach_sharded_graph(ref: ShardedGraphRef) -> Graph:
    """Open the referenced store and return its memmap-backed graph.

    Memoised per fingerprint, mirroring
    :func:`repro.perf.shm.attach_graph`; a ref whose fingerprint does
    not match the manifest on disk is rejected (the store moved or was
    regenerated under the worker).
    """
    memo = _ATTACHED_STORES.get(ref.fingerprint)
    if memo is not None:
        return memo[0]
    with get_tracer().span("shard.attach", fingerprint=ref.fingerprint[:16],
                           edges=ref.num_edges):
        store = ShardStore.open(ref.directory)
        if store.fingerprint != ref.fingerprint:
            raise ShardError(
                f"{ref.directory}: store fingerprint "
                f"{store.fingerprint} does not match the task's ref "
                f"{ref.fingerprint}"
            )
        graph = store.as_graph()
    _ATTACHED_STORES[ref.fingerprint] = (graph, store)
    return graph
