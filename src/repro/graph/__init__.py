"""Graph substrate: containers, generators, partitioning, statistics."""

from .graph import (
    EDGE_BITS,
    VERTEX_ID_BITS,
    WEIGHTED_EDGE_BITS,
    Graph,
)
from .generators import (
    complete,
    cycle,
    erdos_renyi,
    grid_2d,
    path,
    random_weights,
    rmat,
    star,
)
from .datasets import DATASET_ORDER, DATASETS, DatasetSpec, load, load_all
from .partition import (
    IntervalBlockPartition,
    clear_partition_cache,
    interval_bounds,
    interval_of,
)
from .hash_partition import (
    HashPlacement,
    hash_partition,
    imbalance,
    imbalance_from_block_counts,
)
from .rmat_stream import rmat_stream
from .shards import (
    ShardStore,
    ShardWriter,
    ShardedGraphRef,
    attach_sharded_graph,
    run_sharded,
    sharded_graph_ref,
    sharded_scheduled_counts,
    sharded_workload,
    write_graph_shards,
    write_rmat_shards,
)
from .stats import (
    CROSSBAR_DIM,
    GraphShape,
    average_edges_per_nonempty_block,
    block_occupancy_histogram,
    nonempty_block_count,
    skew_gini,
)
from .utilities import (
    compact,
    filter_by_degree,
    induced_subgraph,
    largest_component,
    merge,
)
from . import io

__all__ = [
    "EDGE_BITS",
    "VERTEX_ID_BITS",
    "WEIGHTED_EDGE_BITS",
    "Graph",
    "complete",
    "cycle",
    "erdos_renyi",
    "grid_2d",
    "path",
    "random_weights",
    "rmat",
    "star",
    "DATASET_ORDER",
    "DATASETS",
    "DatasetSpec",
    "load",
    "load_all",
    "IntervalBlockPartition",
    "clear_partition_cache",
    "interval_bounds",
    "interval_of",
    "HashPlacement",
    "hash_partition",
    "imbalance",
    "imbalance_from_block_counts",
    "rmat_stream",
    "ShardStore",
    "ShardWriter",
    "ShardedGraphRef",
    "attach_sharded_graph",
    "run_sharded",
    "sharded_graph_ref",
    "sharded_scheduled_counts",
    "sharded_workload",
    "write_graph_shards",
    "write_rmat_shards",
    "CROSSBAR_DIM",
    "GraphShape",
    "average_edges_per_nonempty_block",
    "block_occupancy_histogram",
    "nonempty_block_count",
    "skew_gini",
    "compact",
    "filter_by_degree",
    "induced_subgraph",
    "largest_component",
    "merge",
    "io",
]
