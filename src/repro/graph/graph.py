"""Core immutable graph container used by every HyVE subsystem.

The paper's memory layout (Section 3.4) stores a graph as a flat edge
list — each edge is a (source id, destination id) pair, optionally with a
constant weight — so the container mirrors that: two parallel numpy
arrays plus an optional weight array.  All algorithms in this library are
edge-centric (Section 2.1) and consume the arrays directly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import GraphError

#: dtype used for vertex ids.  The paper assumes 32-bit indices (an edge
#: is 64 bits: two 32-bit ids); int64 is used internally for safe
#: arithmetic while serialisation remains 32-bit.
VERTEX_DTYPE = np.int64

#: Width of one vertex id in the serialised layout (Section 3.4).
VERTEX_ID_BITS = 32

#: Width of one unweighted edge (source id + destination id).
EDGE_BITS = 2 * VERTEX_ID_BITS

#: Width of one weighted edge (source id + destination id + weight).
WEIGHTED_EDGE_BITS = 3 * VERTEX_ID_BITS


@dataclass(frozen=True)
class Graph:
    """A directed graph stored as an edge list.

    Attributes:
        num_vertices: number of vertices; ids are ``0..num_vertices-1``.
        src: int64 array of source vertex ids, one per edge.
        dst: int64 array of destination vertex ids, one per edge.
        weights: optional float64 array of edge weights (same length).
        name: human-readable label used in reports.
    """

    num_vertices: int
    src: np.ndarray
    dst: np.ndarray
    weights: np.ndarray | None = None
    name: str = "graph"

    def __post_init__(self) -> None:
        src = np.ascontiguousarray(self.src, dtype=VERTEX_DTYPE)
        dst = np.ascontiguousarray(self.dst, dtype=VERTEX_DTYPE)
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        if self.weights is not None:
            weights = np.ascontiguousarray(self.weights, dtype=np.float64)
            object.__setattr__(self, "weights", weights)
        self._validate()

    def _validate(self) -> None:
        if self.num_vertices < 0:
            raise GraphError(f"negative vertex count: {self.num_vertices}")
        if self.src.ndim != 1 or self.dst.ndim != 1:
            raise GraphError("src/dst must be one-dimensional arrays")
        if self.src.shape != self.dst.shape:
            raise GraphError(
                f"src and dst lengths differ: {self.src.size} vs {self.dst.size}"
            )
        if self.weights is not None and self.weights.shape != self.src.shape:
            raise GraphError(
                f"weights length {self.weights.size} != edge count {self.src.size}"
            )
        if self.src.size:
            lo = min(self.src.min(), self.dst.min())
            hi = max(self.src.max(), self.dst.max())
            if lo < 0 or hi >= self.num_vertices:
                raise GraphError(
                    f"vertex ids must lie in [0, {self.num_vertices}), "
                    f"found range [{lo}, {hi}]"
                )

    # --- constructors ---------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[tuple[int, int]] | Sequence[tuple[int, int]],
        weights: Sequence[float] | None = None,
        name: str = "graph",
    ) -> "Graph":
        """Build a graph from an iterable of (src, dst) pairs."""
        pairs = list(edges)
        if pairs:
            arr = np.asarray(pairs, dtype=VERTEX_DTYPE)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise GraphError("edges must be (src, dst) pairs")
            src, dst = arr[:, 0], arr[:, 1]
        else:
            src = np.empty(0, dtype=VERTEX_DTYPE)
            dst = np.empty(0, dtype=VERTEX_DTYPE)
        w = None if weights is None else np.asarray(weights, dtype=np.float64)
        return cls(num_vertices, src, dst, w, name=name)

    @classmethod
    def empty(cls, num_vertices: int = 0, name: str = "empty") -> "Graph":
        """A graph with ``num_vertices`` vertices and no edges."""
        return cls.from_edges(num_vertices, [], name=name)

    # --- basic properties -----------------------------------------------

    def fingerprint(self) -> str:
        """Content digest of the graph (topology + weights + name).

        Stable across processes and independent of object identity —
        two graphs with the same edges hash the same, and a new graph
        reusing a freed object's memory address does not collide.  Used
        by the run cache; memoised because the arrays are immutable.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        h = hashlib.blake2b(digest_size=16)
        h.update(f"{self.name}|{self.num_vertices}|".encode())
        h.update(self.src.tobytes())
        h.update(self.dst.tobytes())
        if self.weights is not None:
            h.update(self.weights.tobytes())
        digest = h.hexdigest()
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    @property
    def edge_bits(self) -> int:
        """Bits occupied by one edge in the Section 3.4 layout."""
        return WEIGHTED_EDGE_BITS if self.is_weighted else EDGE_BITS

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over (src, dst) pairs.  Intended for tests/small graphs."""
        for s, d in zip(self.src.tolist(), self.dst.tolist()):
            yield s, d

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.bincount(self.src, minlength=self.num_vertices)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex."""
        return np.bincount(self.dst, minlength=self.num_vertices)

    def has_edge(self, s: int, d: int) -> bool:
        """Membership test (linear scan; for tests and small graphs)."""
        return bool(np.any((self.src == s) & (self.dst == d)))

    # --- transformations --------------------------------------------------

    def reverse(self) -> "Graph":
        """Graph with every edge direction flipped."""
        return Graph(
            self.num_vertices,
            self.dst.copy(),
            self.src.copy(),
            None if self.weights is None else self.weights.copy(),
            name=f"{self.name}-rev",
        )

    def with_weights(self, weights: np.ndarray) -> "Graph":
        """Return a copy carrying the given edge weights."""
        return Graph(self.num_vertices, self.src, self.dst,
                     np.asarray(weights, dtype=np.float64), name=self.name)

    def with_unit_weights(self) -> "Graph":
        """Return a copy whose every edge weight is 1.0 (for SSSP/SpMV)."""
        return self.with_weights(np.ones(self.num_edges))

    def relabel(self, mapping: np.ndarray, name: str | None = None) -> "Graph":
        """Apply a vertex permutation: new id of vertex v is mapping[v].

        Used by hash partitioning (Section 4.3) to balance interval sizes.
        """
        mapping = np.asarray(mapping, dtype=VERTEX_DTYPE)
        if mapping.shape != (self.num_vertices,):
            raise GraphError(
                f"mapping must have length {self.num_vertices}, "
                f"got {mapping.shape}"
            )
        if self.num_vertices and (
            np.sort(mapping) != np.arange(self.num_vertices)
        ).any():
            raise GraphError("mapping must be a permutation of vertex ids")
        if self.num_edges:
            src = mapping[self.src]
            dst = mapping[self.dst]
        else:
            src, dst = self.src, self.dst
        return Graph(self.num_vertices, src, dst, self.weights,
                     name=name or f"{self.name}-relabelled")

    def sorted_by(self, order: np.ndarray, name: str | None = None) -> "Graph":
        """Return a copy whose edges are permuted by ``order``."""
        order = np.asarray(order)
        if order.shape != (self.num_edges,):
            raise GraphError("order must index every edge exactly once")
        w = None if self.weights is None else self.weights[order]
        return Graph(self.num_vertices, self.src[order], self.dst[order], w,
                     name=name or self.name)

    def deduplicated(self) -> "Graph":
        """Remove duplicate (src, dst) pairs, keeping the first occurrence."""
        if not self.num_edges:
            return self
        keys = self.src * self.num_vertices + self.dst
        _, first = np.unique(keys, return_index=True)
        first.sort()
        w = None if self.weights is None else self.weights[first]
        return Graph(self.num_vertices, self.src[first], self.dst[first], w,
                     name=self.name)

    def without_self_loops(self) -> "Graph":
        """Remove edges whose source equals their destination."""
        keep = self.src != self.dst
        w = None if self.weights is None else self.weights[keep]
        return Graph(self.num_vertices, self.src[keep], self.dst[keep], w,
                     name=self.name)

    # --- interop ----------------------------------------------------------

    def to_networkx(self):
        """Convert to a networkx.DiGraph (reference implementations)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_vertices))
        if self.is_weighted:
            g.add_weighted_edges_from(
                zip(self.src.tolist(), self.dst.tolist(),
                    self.weights.tolist())
            )
        else:
            g.add_edges_from(zip(self.src.tolist(), self.dst.tolist()))
        return g

    def to_csr(self):
        """Convert to a scipy CSR adjacency matrix (rows = sources)."""
        from scipy.sparse import csr_matrix

        data = (
            self.weights
            if self.is_weighted
            else np.ones(self.num_edges, dtype=np.float64)
        )
        return csr_matrix(
            (data, (self.src, self.dst)),
            shape=(self.num_vertices, self.num_vertices),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        w = ", weighted" if self.is_weighted else ""
        return (
            f"Graph({self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}{w})"
        )
