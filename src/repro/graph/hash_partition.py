"""Hash-based vertex placement for workload balance (Section 4.3).

HyVE adopts the hash-based partitioning of ForeGraph/GraphH: vertex ids
are permuted by a hash so that high-degree vertices spread uniformly
across intervals instead of clustering, which balances the per-PU edge
counts within each super-block step (the synchronisation barrier of
Algorithm 2 waits for the slowest PU).

The permutation must be invertible so results can be reported against
original ids; we use a multiplicative hash modulo the vertex count with
a multiplier coprime to it, which is a bijection.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import PartitionError
from .graph import Graph, VERTEX_DTYPE
from .partition import IntervalBlockPartition, step_counts_from_blocks

#: Default multiplier: a large odd prime works for almost all sizes.
_DEFAULT_MULTIPLIER = 2_654_435_761  # Knuth's multiplicative hash constant


def _coprime_multiplier(num_vertices: int, preferred: int) -> int:
    """Smallest multiplier >= preferred coprime to ``num_vertices``."""
    m = preferred % num_vertices or 1
    while math.gcd(m, num_vertices) != 1:
        m += 1
    return m


@dataclass(frozen=True)
class HashPlacement:
    """An invertible vertex relabeling ``new = (mult * old) % n``.

    Attributes:
        num_vertices: size of the id space.
        multiplier: hash multiplier, coprime to ``num_vertices``.
    """

    num_vertices: int
    multiplier: int

    @classmethod
    def for_graph(
        cls, graph: Graph, multiplier: int = _DEFAULT_MULTIPLIER
    ) -> "HashPlacement":
        if graph.num_vertices <= 0:
            raise PartitionError("cannot hash-place an empty vertex set")
        mult = _coprime_multiplier(graph.num_vertices, multiplier)
        return cls(graph.num_vertices, mult)

    def forward(self) -> np.ndarray:
        """Permutation array: ``forward()[old] == new``."""
        ids = np.arange(self.num_vertices, dtype=VERTEX_DTYPE)
        return (ids * self.multiplier) % self.num_vertices

    def inverse(self) -> np.ndarray:
        """Permutation array mapping new ids back to original ids."""
        fwd = self.forward()
        inv = np.empty_like(fwd)
        inv[fwd] = np.arange(self.num_vertices, dtype=VERTEX_DTYPE)
        return inv

    def apply(self, graph: Graph) -> Graph:
        """Relabel ``graph`` with this placement."""
        return graph.relabel(self.forward(), name=f"{graph.name}-hashed")

    def restore(self, values: np.ndarray) -> np.ndarray:
        """Reorder per-vertex results from hashed ids to original ids."""
        values = np.asarray(values)
        if values.shape[0] != self.num_vertices:
            raise PartitionError(
                f"expected {self.num_vertices} per-vertex values, "
                f"got {values.shape[0]}"
            )
        return values[self.forward()]


#: Memoised (partition, placement) pairs keyed on the *source* graph's
#: fingerprint, so repeated hash partitions skip the O(E) relabel gather
#: and the relabelled graph's fingerprint pass entirely.
_HASH_PARTITION_MEMO: OrderedDict[
    tuple[str, int, int], tuple[IntervalBlockPartition, HashPlacement]
] = OrderedDict()
_HASH_PARTITION_MEMO_CAPACITY = 64

#: Relabelled graphs keyed on (source fingerprint, multiplier).  The
#: placement is independent of P, so a P sweep (the PU-count ablation
#: partitions one graph at six reference widths) relabels and
#: re-fingerprints once instead of per P.
_HASHED_GRAPH_MEMO: OrderedDict[
    tuple[str, int], tuple[Graph, HashPlacement]
] = OrderedDict()
_HASHED_GRAPH_MEMO_CAPACITY = 16


def hash_partition(
    graph: Graph,
    num_intervals: int,
    multiplier: int = _DEFAULT_MULTIPLIER,
) -> tuple[IntervalBlockPartition, HashPlacement]:
    """Relabel with a hash placement, then interval-block partition.

    Returns the partition of the *relabelled* graph together with the
    placement needed to map per-vertex results back.  Memoised on
    ``(graph content, P, multiplier)``: repeated calls (five algorithms
    sweeping one workload) return the same objects without re-running
    the relabel or the partition argsort.
    """
    key = (graph.fingerprint(), int(num_intervals), int(multiplier))
    hit = _HASH_PARTITION_MEMO.get(key)
    if hit is not None:
        _HASH_PARTITION_MEMO.move_to_end(key)
        return hit
    graph_key = (key[0], int(multiplier))
    hashed_hit = _HASHED_GRAPH_MEMO.get(graph_key)
    if hashed_hit is not None:
        _HASHED_GRAPH_MEMO.move_to_end(graph_key)
        hashed, placement = hashed_hit
    else:
        placement = HashPlacement.for_graph(graph, multiplier)
        hashed = placement.apply(graph)
        _HASHED_GRAPH_MEMO[graph_key] = (hashed, placement)
        while len(_HASHED_GRAPH_MEMO) > _HASHED_GRAPH_MEMO_CAPACITY:
            _HASHED_GRAPH_MEMO.popitem(last=False)
    result = (IntervalBlockPartition.cached(hashed, num_intervals), placement)
    _HASH_PARTITION_MEMO[key] = result
    while len(_HASH_PARTITION_MEMO) > _HASH_PARTITION_MEMO_CAPACITY:
        _HASH_PARTITION_MEMO.popitem(last=False)
    return result


def imbalance(partition: IntervalBlockPartition, num_pus: int) -> float:
    """Load imbalance of the super-block schedule.

    Defined as (sum over steps of the max per-PU edge count) divided by
    (sum over steps of the mean per-PU edge count); 1.0 is perfectly
    balanced, higher means PUs idle at synchronisation barriers.
    """
    partition.num_super_blocks(num_pus)  # validates divisibility
    return imbalance_from_block_counts(partition.block_counts, num_pus)


def imbalance_from_block_counts(
    block_counts: np.ndarray, num_pus: int
) -> float:
    """:func:`imbalance` computed from a P x P block-count matrix alone.

    Block counts are additive integers, so the out-of-core path
    (:mod:`repro.graph.shards`) sums per-shard histograms exactly and
    calls this — the identical float pipeline :func:`imbalance` uses —
    to get a bit-identical estimate without building the partition.
    """
    steps = step_counts_from_blocks(block_counts, num_pus)
    per_step_max = steps.max(axis=-1).astype(np.float64)
    per_step_mean = steps.mean(axis=-1)
    total_max = per_step_max.sum()
    total_mean = per_step_mean.sum()
    if total_mean == 0.0:
        return 1.0
    return float(total_max / total_mean)
