"""The general graph-processing model of Section 6.1 (Equations (1)-(6)).

The model decouples a run into operation counts and per-operation costs:

* ``N^R_e`` edges read (sequential), each triggering one local random
  vertex read pair, one local random write and one PU operation
  (Equations (3)-(4));
* ``N^R_{v,s}`` / ``N^W_{v,s}`` sequential global vertex reads/writes.

Equation (1) bounds execution time (the pipelined middle phase runs at
the slowest of its four stages); Equation (2) sums energy; Equation (6)
lower-bounds the energy-delay product via Cauchy-Schwarz — a bound the
property tests verify against the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class OperationCost:
    """Time and energy of one operation."""

    time: float
    energy: float

    def __post_init__(self) -> None:
        if self.time < 0 or self.energy < 0:
            raise ConfigError(f"operation cost must be non-negative: {self}")


@dataclass(frozen=True)
class ModelCosts:
    """Per-operation costs of the six terms in Equations (1)-(2).

    Naming follows the paper's subscripts: ``e`` edge access, ``v_s``
    sequential vertex access, ``v_r`` random vertex access, ``pu``
    processing an edge; R/W read/write.
    """

    read_edge: OperationCost            # T^R_e, E^R_e
    read_vertex_seq: OperationCost      # T^R_{v,s}, E^R_{v,s}
    write_vertex_seq: OperationCost     # T^W_{v,s}, E^W_{v,s}
    read_vertex_rand: OperationCost     # T^R_{v,r}, E^R_{v,r}
    write_vertex_rand: OperationCost    # T^W_{v,r}, E^W_{v,r}
    process: OperationCost              # T_pu, E_pu


@dataclass(frozen=True)
class ModelCounts:
    """Operation counts of one run.

    Equations (3)-(4) tie random vertex traffic to the edge count, so
    only three independent counts remain.
    """

    edge_reads: float        # N^R_e
    vertex_seq_reads: float  # N^R_{v,s}
    vertex_seq_writes: float  # N^W_{v,s}

    def __post_init__(self) -> None:
        for name in ("edge_reads", "vertex_seq_reads", "vertex_seq_writes"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")

    @property
    def vertex_rand_reads(self) -> float:
        """Equation (3): one random read per edge endpoint pair."""
        return self.edge_reads

    @property
    def vertex_rand_writes(self) -> float:
        """Equation (4): one random write per edge."""
        return self.edge_reads


def execution_time(counts: ModelCounts, costs: ModelCosts) -> float:
    """Equation (1): total execution time.

    The middle phase (steps 2-5 of Fig. 8) is pipelined; its duration is
    the edge count times the slowest stage.
    """
    pipeline_stage = max(
        costs.read_vertex_rand.time,
        costs.read_edge.time,
        costs.process.time,
        costs.write_vertex_rand.time,
    )
    return (
        counts.vertex_seq_reads * costs.read_vertex_seq.time
        + counts.edge_reads * pipeline_stage
        + counts.vertex_seq_writes * costs.write_vertex_seq.time
    )


def energy(counts: ModelCounts, costs: ModelCosts) -> float:
    """Equation (2): total (dynamic) energy."""
    return (
        counts.vertex_seq_reads * costs.read_vertex_seq.energy
        + 2.0 * counts.vertex_rand_reads * costs.read_vertex_rand.energy
        + counts.edge_reads * costs.read_edge.energy
        + counts.edge_reads * costs.process.energy
        + counts.vertex_rand_writes * costs.write_vertex_rand.energy
        + counts.vertex_seq_writes * costs.write_vertex_seq.energy
    )


def edp(counts: ModelCounts, costs: ModelCosts) -> float:
    """Equation (5): energy-delay product."""
    return execution_time(counts, costs) * energy(counts, costs)


def edp_lower_bound(counts: ModelCounts, costs: ModelCosts) -> float:
    """Equation (6): the Cauchy-Schwarz lower bound on T * E.

    Six sqrt(T_i * E_i) terms, one per (count, operation) pair, with the
    paper's coefficients: the pipelined stages contribute a quarter of
    the edge count each to the time side.
    """
    n_e = counts.edge_reads
    terms = [
        counts.vertex_seq_reads
        * math.sqrt(costs.read_vertex_seq.time * costs.read_vertex_seq.energy),
        (math.sqrt(2.0) / 2.0)
        * n_e
        * math.sqrt(costs.read_vertex_rand.time * costs.read_vertex_rand.energy),
        0.5 * n_e * math.sqrt(costs.read_edge.time * costs.read_edge.energy),
        0.5 * n_e * math.sqrt(costs.process.time * costs.process.energy),
        0.5
        * n_e
        * math.sqrt(
            costs.write_vertex_rand.time * costs.write_vertex_rand.energy
        ),
        counts.vertex_seq_writes
        * math.sqrt(
            costs.write_vertex_seq.time * costs.write_vertex_seq.energy
        ),
    ]
    return sum(terms) ** 2


# --- count constructors (Equations (7)-(9)) ---------------------------------

def hyve_counts(
    num_vertices: float,
    num_edges: float,
    num_intervals: int,
    num_pus: int,
    iterations: int = 1,
) -> ModelCounts:
    """HyVE's per-run counts: Equation (8) for source loads.

    ``N^R_{v,s} = (P / N) * N_v`` per iteration plus the destination
    loads, ``N^W_{v,s} = N_v`` (Equation (7)).
    """
    if num_intervals <= 0 or num_pus <= 0:
        raise ConfigError("P and N must be positive")
    per_iter_reads = (num_intervals / num_pus) * num_vertices
    return ModelCounts(
        edge_reads=num_edges * iterations,
        vertex_seq_reads=per_iter_reads * iterations,
        vertex_seq_writes=num_vertices * iterations,
    )


def graphr_counts(
    num_vertices: float,
    num_edges: float,
    nonempty_blocks: float,
    iterations: int = 1,
) -> ModelCounts:
    """GraphR's per-run counts: Equation (9) for source loads.

    ``N^R_{v,s} = 16 * N_{non-empty-blocks}`` per iteration (8 sources
    plus 8 destinations per 8x8 block).
    """
    if nonempty_blocks < 0:
        raise ConfigError("non-empty block count must be non-negative")
    return ModelCounts(
        edge_reads=num_edges * iterations,
        vertex_seq_reads=16.0 * nonempty_blocks * iterations,
        vertex_seq_writes=num_vertices * iterations,
    )
