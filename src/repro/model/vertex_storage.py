"""Vertex-storage comparison (Section 6.3, Figs. 10 and 11).

Vertices are read/written *sequentially* at global scope (interval
loads/stores) and *randomly* at local scope.  The global traffic volume
depends on the partitioning discipline: HyVE loads ``(P/N) * N_v``
source vertices per iteration (Equation (8)) while GraphR loads
``16 * N_nonempty`` (Equation (9)) — orders of magnitude more on sparse
graphs, because tiny 8x8 blocks cannot amortise interval loads.

Fig. 10 asks: given each architecture's traffic, is DRAM or ReRAM the
better *global* vertex memory?  (Answer: DRAM for HyVE's write-heavier
mix, ReRAM for GraphR's read-dominated one.)  Fig. 11 compares the two
architectures' total vertex-storage cost (local + global).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import run_cached
from ..arch.config import HyVEConfig, Workload, choose_num_intervals
from ..graph.stats import average_edges_per_nonempty_block
from ..memory.base import AccessKind, AccessPattern, MemoryDevice
from ..memory.dram import DDR4Chip, DRAMConfig
from ..memory.regfile import RegisterFile
from ..memory.reram import ReRAMChip, ReRAMConfig
from ..memory.sram import OnChipSRAM
from ..units import GBIT, MB
from .equations import ModelCounts, graphr_counts, hyve_counts


@dataclass(frozen=True)
class VertexTraffic:
    """Global sequential + local random vertex operation counts."""

    seq_reads: float
    seq_writes: float
    rand_reads: float
    rand_writes: float

    @classmethod
    def from_counts(cls, counts: ModelCounts) -> "VertexTraffic":
        return cls(
            seq_reads=counts.vertex_seq_reads,
            seq_writes=counts.vertex_seq_writes,
            rand_reads=2.0 * counts.vertex_rand_reads,
            rand_writes=counts.vertex_rand_writes,
        )


def architecture_traffic(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload,
    architecture: str,
    num_pus: int = 8,
    sram_bits: int = 2 * MB,
) -> VertexTraffic:
    """Vertex traffic of one run under HyVE's or GraphR's partitioning."""
    run = run_cached(algorithm, workload.graph)
    vertices = run.num_vertices * workload.vertex_scale
    edges = run.edges_per_iteration * workload.edge_scale
    if architecture == "HyVE":
        config = HyVEConfig(label="model", num_pus=num_pus,
                            sram_bits=sram_bits)
        p = choose_num_intervals(config, vertices, run.vertex_bits)
        counts = hyve_counts(vertices, edges, p, num_pus, run.iterations)
    elif architecture == "GraphR":
        streamed = algorithm.transform_graph(workload.graph)
        navg = average_edges_per_nonempty_block(streamed) or 1.0
        counts = graphr_counts(
            vertices, edges, edges / navg, run.iterations
        )
    else:
        raise ValueError(f"unknown architecture {architecture!r}")
    return VertexTraffic.from_counts(counts)


@dataclass(frozen=True)
class StorageCost:
    """Delay/energy/EDP of serving a vertex traffic mix."""

    delay: float
    energy: float

    @property
    def edp(self) -> float:
        return self.delay * self.energy


def global_cost(traffic: VertexTraffic, device: MemoryDevice,
                vertex_bits: int = 32) -> StorageCost:
    """Cost of the *global* (sequential) share on one device."""
    read = device.transfer_cost(
        AccessKind.READ, traffic.seq_reads * vertex_bits,
        AccessPattern.SEQUENTIAL,
    )
    write = device.transfer_cost(
        AccessKind.WRITE, traffic.seq_writes * vertex_bits,
        AccessPattern.SEQUENTIAL,
    )
    return StorageCost(read.latency + write.latency,
                       read.energy + write.energy)


def local_cost(traffic: VertexTraffic, device: MemoryDevice,
               vertex_bits: int = 32) -> StorageCost:
    """Cost of the *local* (random) share on SRAM or register files.

    Every globally loaded vertex is also written into the local memory
    once (the fill), so the local write count includes the sequential
    load volume — the term that punishes GraphR's tiny partitions.
    """
    words = vertex_bits / 32.0
    read = device.access_cost(AccessKind.READ, AccessPattern.RANDOM)
    write = device.access_cost(AccessKind.WRITE, AccessPattern.RANDOM)
    writes = traffic.rand_writes + traffic.seq_reads  # updates + fills
    # Local accesses issue over two ports and pipeline with processing;
    # delay counts the per-access service time across both ports.
    ports = 2.0
    delay = (
        traffic.rand_reads * words * read.latency
        + writes * words * write.latency
    ) / ports
    energy = (
        traffic.rand_reads * words * read.energy
        + writes * words * write.energy
    )
    return StorageCost(delay, energy)


# --- Fig. 10 ----------------------------------------------------------------

@dataclass(frozen=True)
class Fig10Row:
    """Normalised global-vertex-memory EDP, DRAM / ReRAM."""

    architecture: str
    dataset: str
    density_bits: int
    edp_ratio: float

    @property
    def density_gbit(self) -> int:
        return self.density_bits // GBIT


def compare_global_vertex_memory(
    algorithm: EdgeCentricAlgorithm,
    workloads: dict[str, Workload],
    densities: tuple[int, ...] = (4 * GBIT, 8 * GBIT, 16 * GBIT),
) -> list[Fig10Row]:
    """Regenerate Fig. 10 for the given workloads."""
    rows: list[Fig10Row] = []
    for arch in ("GraphR", "HyVE"):
        for name, workload in workloads.items():
            traffic = architecture_traffic(algorithm, workload, arch)
            for density in densities:
                dram = global_cost(
                    traffic, DDR4Chip(DRAMConfig(density_bits=density))
                )
                reram = global_cost(
                    traffic, ReRAMChip(ReRAMConfig(density_bits=density))
                )
                rows.append(Fig10Row(arch, name, density,
                                     dram.edp / reram.edp))
    return rows


# --- Fig. 11 ----------------------------------------------------------------

@dataclass(frozen=True)
class Fig11Row:
    """GraphR / HyVE vertex-storage ratios for one dataset.

    Mirrors the paper's figure columns: raw operation-count ratios, then
    delay/energy/EDP ratios computed once with DRAM as the global vertex
    memory for *both* architectures and once with ReRAM (the local
    memories stay each architecture's own: SRAM for HyVE, register files
    for GraphR).
    """

    dataset: str
    read_ratio: float
    write_ratio: float
    dram_delay_ratio: float
    dram_energy_ratio: float
    dram_edp_ratio: float
    reram_delay_ratio: float
    reram_energy_ratio: float
    reram_edp_ratio: float


def compare_vertex_storage(
    algorithm: EdgeCentricAlgorithm,
    workloads: dict[str, Workload],
    density_bits: int = 4 * GBIT,
    sram_bits: int = 2 * MB,
) -> list[Fig11Row]:
    """Regenerate Fig. 11: whole-vertex-storage comparison."""
    rows: list[Fig11Row] = []
    sram = OnChipSRAM(sram_bits)
    regfile = RegisterFile()
    for name, workload in workloads.items():
        hyve_traffic = architecture_traffic(algorithm, workload, "HyVE",
                                            sram_bits=sram_bits)
        graphr_traffic = architecture_traffic(algorithm, workload, "GraphR")
        hyve_local = local_cost(hyve_traffic, sram)
        graphr_local = local_cost(graphr_traffic, regfile)

        ratios = {}
        for tech, device in (
            ("dram", DDR4Chip(DRAMConfig(density_bits=density_bits))),
            ("reram", ReRAMChip(ReRAMConfig(density_bits=density_bits))),
        ):
            h_global = global_cost(hyve_traffic, device)
            g_global = global_cost(graphr_traffic, device)
            h_delay = h_global.delay + hyve_local.delay
            g_delay = g_global.delay + graphr_local.delay
            h_energy = h_global.energy + hyve_local.energy
            g_energy = g_global.energy + graphr_local.energy
            ratios[f"{tech}_delay_ratio"] = g_delay / h_delay
            ratios[f"{tech}_energy_ratio"] = g_energy / h_energy
            ratios[f"{tech}_edp_ratio"] = (
                (g_delay * g_energy) / (h_delay * h_energy)
            )

        rows.append(
            Fig11Row(
                dataset=name,
                read_ratio=(
                    (graphr_traffic.seq_reads + graphr_traffic.rand_reads)
                    / (hyve_traffic.seq_reads + hyve_traffic.rand_reads)
                ),
                write_ratio=(
                    (graphr_traffic.seq_writes + graphr_traffic.rand_writes)
                    / (hyve_traffic.seq_writes + hyve_traffic.rand_writes)
                ),
                **ratios,
            )
        )
    return rows
