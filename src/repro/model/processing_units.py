"""Processing-unit comparison (Section 6.4): CMOS vs ReRAM crossbars.

Implements Equations (10)-(16) as standalone functions and the
section's takeaway checks: CMOS circuits beat crossbars on both energy
and latency per edge, because configuring the adjacency matrix costs a
crossbar write per edge while natural graphs put only 1.2-2.4 edges in
an 8x8 block (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch import params
from ..arch.crossbar import (
    CROSSBAR_READ_ENERGY,
    CROSSBAR_READ_LATENCY,
    CROSSBAR_WRITE_ENERGY,
    CROSSBAR_WRITE_LATENCY,
    CrossbarModel,
)
from ..errors import ConfigError


def crossbar_mv_energy_per_edge(navg: float) -> float:
    """Equation (15) via the block form: (E_write + E_read) / N_avg."""
    return CrossbarModel(navg=navg).energy_per_edge("PR")


def crossbar_nmv_energy_per_edge(navg: float) -> float:
    """Equation (12): row-by-row operation plus the CMOS output op."""
    return CrossbarModel(navg=navg).energy_per_edge("BFS")


def crossbar_mv_latency_per_edge(navg: float) -> float:
    """Equation (16) for a single graph engine."""
    return CrossbarModel(navg=navg, num_groups=1).latency_per_edge("PR")


def cmos_energy_per_edge(matrix_vector: bool = True) -> float:
    """Equation (13): one CMOS operation per edge."""
    if matrix_vector:
        return params.PU_OP_ENERGY_MV
    return params.PU_OP_ENERGY_NON_MV


def cmos_latency_per_edge() -> float:
    """Pipelined CMOS initiation interval (the paper quotes the 18.783 ns
    multiplier latency, hidden by pipelining down to the SRAM cycle)."""
    from ..memory.nvsim import solve_sram
    from ..units import MB

    sram = solve_sram(2 * MB)
    return sram.read_latency * (
        params.PU_SRAM_ACCESSES_PER_EDGE / params.PU_SRAM_PORTS
    )


@dataclass(frozen=True)
class PUComparison:
    """CMOS-vs-crossbar summary for one N_avg."""

    navg: float
    cmos_energy: float
    crossbar_mv_energy: float
    crossbar_nmv_energy: float
    cmos_latency: float
    crossbar_latency: float

    @property
    def cmos_wins_energy(self) -> bool:
        return self.cmos_energy < min(
            self.crossbar_mv_energy, self.crossbar_nmv_energy
        )

    @property
    def cmos_wins_latency(self) -> bool:
        return self.cmos_latency < self.crossbar_latency


def compare_processing_units(navg: float) -> PUComparison:
    """The Section 6.4 comparison at a given block occupancy."""
    if navg <= 0:
        raise ConfigError(f"N_avg must be positive, got {navg}")
    return PUComparison(
        navg=navg,
        cmos_energy=cmos_energy_per_edge(True),
        crossbar_mv_energy=crossbar_mv_energy_per_edge(navg),
        crossbar_nmv_energy=crossbar_nmv_energy_per_edge(navg),
        cmos_latency=cmos_latency_per_edge(),
        crossbar_latency=crossbar_mv_latency_per_edge(navg),
    )


#: Constants the section quotes, exposed for reference and tests.
QUOTED = {
    "crossbar_write_energy": CROSSBAR_WRITE_ENERGY,
    "crossbar_read_energy": CROSSBAR_READ_ENERGY,
    "crossbar_write_latency": CROSSBAR_WRITE_LATENCY,
    "crossbar_read_latency": CROSSBAR_READ_LATENCY,
    "cmos_multiplier_energy": params.PU_OP_ENERGY_MV,
    "cmos_multiplier_latency": params.PU_OP_LATENCY,
}
