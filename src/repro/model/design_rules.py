"""Section 6.6's design instructions, as checkable predicates.

The paper closes its modelling section with four rules for building
graph-processing architectures on ReRAMs.  Each function below derives
one rule from the analytic model and returns whether it holds under
this reproduction's calibrated devices; :func:`design_rules` bundles
them (and the test suite asserts all four).
"""

from __future__ import annotations

from ..graph.datasets import DATASET_ORDER
from ..graph.stats import average_edges_per_nonempty_block
from .edge_storage import read_pattern_conclusions
from .preprocessing import preprocessing_speed_sweep
from .processing_units import compare_processing_units


def rule_edge_storage() -> bool:
    """Rule 1: for sequential edge reads at scale, DRAM wins latency and
    ReRAM wins energy efficiency."""
    conclusions = read_pattern_conclusions()
    return (
        conclusions["dram_faster_read"]
        and conclusions["reram_lower_read_energy"]
        and conclusions["reram_lower_read_edp"]
    )


def rule_vertex_storage() -> bool:
    """Rule 2: SRAM for local random vertex access; the DRAM/ReRAM
    choice for global vertex memory depends on the partition count
    (the read/write mix)."""
    from repro.memory.base import AccessKind, AccessPattern
    from repro.memory.dram import DDR4Chip
    from repro.memory.reram import ReRAMChip
    from repro.memory.sram import OnChipSRAM

    sram = OnChipSRAM()
    dram = DDR4Chip()
    # SRAM's random access beats main memory's on both axes.
    sram_cost = sram.access_cost(AccessKind.READ, AccessPattern.RANDOM)
    dram_cost = dram.access_cost(AccessKind.READ, AccessPattern.RANDOM)
    sram_wins_local = (
        sram_cost.energy < dram_cost.energy
        and sram_cost.latency < dram_cost.latency
    )
    # The global choice flips with the read:write ratio: write-heavy
    # mixes prefer DRAM, read-dominated mixes prefer ReRAM.
    reram = ReRAMChip()

    def edp(device, reads, writes):
        r = device.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL)
        w = device.access_cost(AccessKind.WRITE, AccessPattern.SEQUENTIAL)
        time = reads * r.latency + writes * w.latency
        energy = reads * r.energy + writes * w.energy
        return time * energy

    few_partitions = edp(dram, 3, 1) < edp(reram, 3, 1)      # DRAM wins
    many_partitions = edp(dram, 100, 1) > edp(reram, 100, 1)  # ReRAM wins
    return sram_wins_local and few_partitions and many_partitions


def rule_crossbar_parallelism() -> bool:
    """Rule 3: 8x8 crossbars achieve low parallelism on natural graphs
    (N_avg 1.2-2.4), so CMOS beats crossbar processing per edge."""
    for key in DATASET_ORDER:
        from ..graph.datasets import load

        navg = average_edges_per_nonempty_block(load(key))
        if not 1.0 <= navg <= 3.0:
            return False
        comparison = compare_processing_units(navg)
        if not (comparison.cmos_wins_energy and comparison.cmos_wins_latency):
            return False
    return True


def rule_partition_count() -> bool:
    """Rule 4: dividing graphs past ~32x32 blocks slows preprocessing
    dramatically."""
    rows = preprocessing_speed_sweep(5e6)
    speeds = {r.num_intervals: r.normalized_speed for r in rows}
    return speeds[32] > 0.85 and speeds[256] < 0.5


def design_rules() -> dict[str, bool]:
    """All four Section 6.6 rules; every value should be True."""
    return {
        "edge_storage": rule_edge_storage(),
        "vertex_storage": rule_vertex_storage(),
        "crossbar_parallelism": rule_crossbar_parallelism(),
        "partition_count": rule_partition_count(),
    }
