"""Preprocessing-overhead model (Sections 6.5 and 7.4.1; Figs. 12, 19).

Interval-block partitioning costs:

* a per-edge classification term (interval lookup, bucket append) that
  grows mildly with the block count (deeper address arithmetic, worse
  cache behaviour of the bucket table), and
* a per-nonempty-block term (allocating, addressing and emitting each
  block's header and extent in the memory map).

With few blocks the per-edge term dominates and preprocessing speed is
flat; past ~32x32 blocks the per-block term takes over and speed drops
sharply — the Fig. 12 shape.  GraphR's fixed 8x8 tiling yields
``E / N_avg`` non-empty blocks (millions), which is why its
preprocessing is ~6.7x slower than HyVE's (Fig. 19).

The module also provides a wall-clock measurement of *this library's*
real partitioner for cross-checking the model's shape.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..errors import ConfigError
from ..graph.graph import Graph
from ..graph.partition import IntervalBlockPartition

#: Model coefficients (seconds), calibrated to the Fig. 12 shape: speed
#: ~flat through 32x32 blocks, dropping steeply at >= 64x64 (the bucket
#: table stops fitting in cache and edge appends start missing), and to
#: the single-thread preprocessing throughput of Section 5
#: (~42 M edges/s).
PER_EDGE_BASE = 18e-9        # classify + append one edge, cache-resident
PER_EDGE_MISS = 60e-9        # extra per edge when the bucket table misses
CACHE_BLOCKS = 48_000        # bucket-table entries that fit in cache
PER_TABLE_ENTRY = 0.02e-6    # allocate + address one block-table entry
#: Extra per-edge cost of emitting GraphR's *dense* tile format (a
#: 128-byte crossbar image rewrite per edge instead of an 8-byte
#: append).
PER_EDGE_DENSE_FORMAT = 35e-9


def expected_nonempty_blocks(num_edges: float, num_blocks: float) -> float:
    """Expected non-empty blocks when edges spread over ``num_blocks``.

    Uses the standard occupancy expectation; exact per-graph counts are
    available from :class:`IntervalBlockPartition` when a real graph is
    at hand.
    """
    if num_blocks <= 0:
        raise ConfigError(f"block count must be positive: {num_blocks}")
    if num_edges < 0:
        raise ConfigError(f"edge count must be non-negative: {num_edges}")
    if num_edges == 0:
        return 0.0
    return num_blocks * (1.0 - math.exp(-num_edges / num_blocks))


def preprocessing_time(
    num_edges: float,
    num_blocks: float,
    nonempty_blocks: float | None = None,
    dense_format: bool = False,
) -> float:
    """Modelled wall-clock seconds of one partitioning pass.

    ``dense_format`` adds the cost of materialising each edge into a
    dense crossbar image (GraphR's storage format).
    """
    if nonempty_blocks is None:
        nonempty_blocks = expected_nonempty_blocks(num_edges, num_blocks)
    miss_rate = 1.0 - math.exp(-num_blocks / CACHE_BLOCKS)
    per_edge = PER_EDGE_BASE + PER_EDGE_MISS * miss_rate
    if dense_format:
        per_edge += PER_EDGE_DENSE_FORMAT
    # The block table is only materialised for blocks that exist:
    # allocated P^2 entries for interval-block partitioning, non-empty
    # tiles for GraphR's hash-directory tiling.
    table_entries = min(num_blocks, nonempty_blocks * 4.0 + 1.0) \
        if num_blocks > 1e9 else num_blocks
    return num_edges * per_edge + table_entries * PER_TABLE_ENTRY


@dataclass(frozen=True)
class Fig12Row:
    """Normalised preprocessing speed at one partition count."""

    dataset: str
    num_intervals: int
    num_blocks: int
    normalized_speed: float   # speed relative to the smallest P


#: The Fig. 12 sweep: P x P blocks for P = 2..256.
INTERVAL_SWEEP = (2, 4, 8, 16, 32, 64, 128, 256)


def preprocessing_speed_sweep(
    num_edges: float,
    dataset: str = "model",
    intervals: tuple[int, ...] = INTERVAL_SWEEP,
) -> list[Fig12Row]:
    """Regenerate one dataset's Fig. 12 series from the model."""
    base = preprocessing_time(num_edges, float(intervals[0]) ** 2)
    rows = []
    for p in intervals:
        t = preprocessing_time(num_edges, float(p) ** 2)
        rows.append(
            Fig12Row(
                dataset=dataset,
                num_intervals=p,
                num_blocks=p * p,
                normalized_speed=base / t,
            )
        )
    return rows


def graphr_preprocessing_time(num_vertices: float, num_edges: float,
                              navg: float) -> float:
    """GraphR's preprocessing: fixed 8x8 tiling over the whole matrix.

    Non-empty block count is ``E / N_avg`` (Table 1's statistic), and
    the address space is ``(N_v / 8)^2`` tiles.
    """
    if navg <= 0:
        raise ConfigError(f"N_avg must be positive: {navg}")
    tiles = (num_vertices / 8.0) ** 2
    return preprocessing_time(num_edges, max(tiles, 1.0),
                              nonempty_blocks=num_edges / navg,
                              dense_format=True)


def hyve_preprocessing_time(num_edges: float, num_intervals: int) -> float:
    """HyVE's preprocessing at its chosen (small) partition count."""
    return preprocessing_time(num_edges, float(num_intervals) ** 2)


def preprocessing_ratio(
    num_vertices: float,
    num_edges: float,
    navg: float,
    hyve_intervals: int,
) -> float:
    """Fig. 19: GraphR preprocessing time / HyVE preprocessing time."""
    return graphr_preprocessing_time(num_vertices, num_edges, navg) / (
        hyve_preprocessing_time(num_edges, hyve_intervals)
    )


# --- measured preprocessing (this library's real partitioner) --------------

def measure_partitioning(
    graph: Graph, num_intervals: int, repeats: int = 3
) -> float:
    """Best-of-N wall-clock seconds to interval-block partition ``graph``."""
    if repeats < 1:
        raise ConfigError(f"need at least one repeat, got {repeats}")
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        IntervalBlockPartition.build(graph, num_intervals)
        best = min(best, time.perf_counter() - start)
    return best


def measured_speed_sweep(
    graph: Graph, intervals: tuple[int, ...] = (2, 4, 8, 16, 32, 64)
) -> list[Fig12Row]:
    """Fig. 12 with this library's real partitioner (cross-check)."""
    base = measure_partitioning(graph, intervals[0])
    rows = []
    for p in intervals:
        if p > graph.num_vertices:
            break
        t = measure_partitioning(graph, p)
        rows.append(
            Fig12Row(
                dataset=graph.name,
                num_intervals=p,
                num_blocks=p * p,
                normalized_speed=base / t,
            )
        )
    return rows
