"""Edge-storage technology comparison (Section 6.2, Fig. 9).

For the sequential edge-access patterns of graph processing, compare
DRAM and ReRAM chips head-to-head on delay, energy and EDP for three
workload mixes: 100% sequential read, 100% sequential write, and a
50/50 mix, across chip densities of 4/8/16 Gb.

Fig. 9 plots ``DRAM / ReRAM`` normalised values: > 1 means ReRAM is
better on that metric; the paper's conclusion is that DRAM wins delay
while ReRAM wins energy and EDP for the read-dominated edge pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.base import AccessKind, AccessPattern
from ..memory.dram import DDR4Chip, DRAMConfig
from ..memory.reram import ReRAMChip, ReRAMConfig
from ..units import GBIT

#: The density sweep of Fig. 9 (bits per chip).
DENSITY_SWEEP = (4 * GBIT, 8 * GBIT, 16 * GBIT)

#: Workload mixes of Fig. 9: (label, read fraction).
WORKLOADS = (
    ("Sequential Read (100%)", 1.0),
    ("Sequential Write (100%)", 0.0),
    ("Sequential Read (50%) + Sequential Write (50%)", 0.5),
)


@dataclass(frozen=True)
class MixCost:
    """Per-access delay/energy of a read/write mix on one device."""

    delay: float
    energy: float

    @property
    def edp(self) -> float:
        return self.delay * self.energy


def _mix_cost(device, read_fraction: float) -> MixCost:
    read = device.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL)
    write = device.access_cost(AccessKind.WRITE, AccessPattern.SEQUENTIAL)
    delay = read_fraction * read.latency + (1 - read_fraction) * write.latency
    energy = read_fraction * read.energy + (1 - read_fraction) * write.energy
    return MixCost(delay=delay, energy=energy)


@dataclass(frozen=True)
class Fig9Row:
    """One bar group of Fig. 9: a workload mix at one density."""

    workload: str
    density_bits: int
    delay_ratio: float       # DRAM / ReRAM
    energy_ratio: float
    edp_ratio: float

    @property
    def density_gbit(self) -> int:
        return self.density_bits // GBIT


def compare_edge_storage(
    densities: tuple[int, ...] = DENSITY_SWEEP,
) -> list[Fig9Row]:
    """Regenerate Fig. 9: normalised DRAM/ReRAM per workload x density."""
    rows: list[Fig9Row] = []
    for label, read_fraction in WORKLOADS:
        for density in densities:
            dram = DDR4Chip(DRAMConfig(density_bits=density))
            reram = ReRAMChip(ReRAMConfig(density_bits=density))
            d = _mix_cost(dram, read_fraction)
            r = _mix_cost(reram, read_fraction)
            rows.append(
                Fig9Row(
                    workload=label,
                    density_bits=density,
                    delay_ratio=d.delay / r.delay,
                    energy_ratio=d.energy / r.energy,
                    edp_ratio=d.edp / r.edp,
                )
            )
    return rows


def read_pattern_conclusions(rows: list[Fig9Row] | None = None) -> dict[str, bool]:
    """The Section 6.2 takeaways, as checkable booleans."""
    rows = rows or compare_edge_storage()
    reads = [r for r in rows if "Read (100%)" in r.workload]
    writes = [r for r in rows if "Write (100%)" in r.workload]
    return {
        # DRAM is faster for sequential reads (delay ratio < 1)...
        "dram_faster_read": all(r.delay_ratio < 1.0 for r in reads),
        # ...but ReRAM wins read energy and EDP (> 1).
        "reram_lower_read_energy": all(r.energy_ratio > 1.0 for r in reads),
        "reram_lower_read_edp": all(r.edp_ratio > 1.0 for r in reads),
        # For pure writes DRAM wins everything.
        "dram_better_writes": all(
            r.delay_ratio < 1.0 and r.energy_ratio < 1.0 for r in writes
        ),
    }
