"""Fig. 14: energy-efficiency improvement from data sharing."""

from __future__ import annotations

from ..arch.config import HyVEConfig
from ..arch.machine import AcceleratorMachine
from ..memory.powergate import PowerGatingPolicy
from .common import CORE_ALGORITHM_FACTORIES, ExperimentResult, geomean, workloads

#: The paper's reported per-algorithm averages.
PAPER_IMPROVEMENT = {"BFS": 1.15, "CC": 1.47, "PR": 2.19}


def improvement(algorithm_name: str, dataset: str) -> float:
    """Sharing-on over sharing-off efficiency (power gating off in both,
    matching the Fig. 14 setup where the baseline writes vertex data
    back to global memory before each new block)."""
    algorithm = CORE_ALGORITHM_FACTORIES[algorithm_name]
    workload = workloads()[dataset]
    with_sharing = AcceleratorMachine(
        HyVEConfig(
            label="sharing",
            data_sharing=True,
            power_gating=PowerGatingPolicy(enabled=False),
        )
    ).run(algorithm(), workload).report.mteps_per_watt
    without = AcceleratorMachine(
        HyVEConfig(
            label="no-sharing",
            data_sharing=False,
            power_gating=PowerGatingPolicy(enabled=False),
        )
    ).run(algorithm(), workload).report.mteps_per_watt
    return with_sharing / without


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig14",
        title="Energy efficiency improvement by adopting data sharing",
        headers=["Algorithm"] + list(workloads()) + ["Geomean", "Paper avg"],
        notes=(
            "PR gains most: its wider vertex record (rank + out-degree) "
            "makes interval reloads the costliest"
        ),
    )
    for algo in CORE_ALGORITHM_FACTORIES:
        ratios = [improvement(algo, dataset) for dataset in workloads()]
        result.add(algo, *ratios, geomean(ratios), PAPER_IMPROVEMENT[algo])
    return result
