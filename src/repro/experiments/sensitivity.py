"""Sensitivity of the headline result to the calibrated constants.

The reproduction's calibrated constants (docs/calibration.md) carry
modelling uncertainty.  This analysis perturbs each of the most
influential ones by +/-30% and re-measures the central claim — the
acc+HyVE-opt over acc+SRAM+DRAM efficiency ratio — showing that the
paper's conclusion does not hinge on any single calibration choice.

Perturbation uses ``unittest.mock.patch`` on the module constants, so
the installed values are untouched after the run.
"""

from __future__ import annotations

from contextlib import contextmanager
from unittest import mock

from ..algorithms import PageRank
from ..arch.config import HyVEConfig, MemoryTechnology
from ..arch.machine import AcceleratorMachine
from ..memory.powergate import PowerGatingPolicy
from .common import ExperimentResult, geomean, workloads

#: (label, module path, attribute) of each perturbed constant.
PERTURBED_CONSTANTS = (
    ("SRAM leakage", "repro.memory.nvsim", "_SRAM_LEAKAGE_PER_MB"),
    ("ReRAM bank standby", "repro.memory.reram", "_BANK_STANDBY_AT_REF"),
    ("ReRAM stream factor", "repro.memory.reram", "STREAM_FACTOR"),
    ("pipeline energy/edge", "repro.arch.params", "PIPELINE_ENERGY_PER_EDGE"),
    ("PU leakage", "repro.arch.params", "PU_LEAKAGE"),
    ("controller power", "repro.arch.params", "CONTROLLER_POWER"),
)


@contextmanager
def perturbed(module_path: str, attribute: str, factor: float):
    """Temporarily scale one module-level constant."""
    import importlib

    module = importlib.import_module(module_path)
    original = getattr(module, attribute)
    with mock.patch.object(module, attribute, original * factor):
        yield


def opt_over_sd() -> float:
    """The central claim: geomean acc+HyVE-opt / acc+SRAM+DRAM (PR)."""
    opt = AcceleratorMachine(HyVEConfig(label="opt"))
    sd = AcceleratorMachine(
        HyVEConfig(
            label="sd",
            edge_memory=MemoryTechnology.DRAM,
            power_gating=PowerGatingPolicy(enabled=False),
        )
    )
    ratios = []
    for workload in workloads().values():
        a = opt.run(PageRank(), workload).report.mteps_per_watt
        b = sd.run(PageRank(), workload).report.mteps_per_watt
        ratios.append(a / b)
    return geomean(ratios)


def run(factors: tuple[float, ...] = (0.7, 1.0, 1.3)) -> ExperimentResult:
    result = ExperimentResult(
        experiment="sensitivity",
        title="Headline ratio (opt/SD, PR) under +/-30% calibration "
              "perturbations",
        headers=["Constant"] + [f"x{f:g}" for f in factors],
        notes=(
            "the ratio must stay > 1 everywhere: the conclusion is "
            "robust to each calibrated constant"
        ),
    )
    for label, module_path, attribute in PERTURBED_CONSTANTS:
        row: list = [label]
        for factor in factors:
            with perturbed(module_path, attribute, factor):
                row.append(opt_over_sd())
        result.rows.append(row)
    return result
