"""Fig. 10: DRAM/ReRAM EDP as the global vertex memory, HyVE vs GraphR."""

from __future__ import annotations

from ..algorithms import PageRank
from ..model.vertex_storage import compare_global_vertex_memory
from .common import ExperimentResult, workloads


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig10",
        title=(
            "Normalized EDP (DRAM/ReRAM) of the global vertex memory "
            "under HyVE's and GraphR's partitioning"
        ),
        headers=["Architecture", "Dataset", "Density (Gb)", "EDP ratio"],
        notes=(
            ">1: ReRAM is the better global vertex memory (GraphR's "
            "read-dominated traffic); <1: DRAM wins (HyVE's mix)"
        ),
    )
    for row in compare_global_vertex_memory(PageRank(), workloads()):
        result.add(row.architecture, row.dataset, row.density_gbit,
                   row.edp_ratio)
    return result
