"""Autotune experiment: HyVE vs GraphR as a *discovered* frontier.

Section 6 of the paper argues the hybrid hierarchy beats GraphR's
all-ReRAM design point on time, energy and EDP — but makes that case
with two hand-picked configurations.  This experiment re-derives the
claim from the design space itself: search every backend's default
space (named HyVE machines x pricing knobs, GraphR crossbar shapes,
CPU baselines) per (dataset, algorithm) cell and report what the
(time, energy, EDP) Pareto frontier actually contains.  The paper's
comparison holds exactly when the recommended machine is a HyVE
hybrid and no GraphR point survives onto the frontier.
"""

from __future__ import annotations

from ..tune import default_space, search
from .common import ALL_ALGORITHM_FACTORIES, ExperimentResult, workloads


def run(
    datasets: "list[str] | None" = None,
    algorithms: "tuple[str, ...]" = ("PR", "BFS"),
) -> ExperimentResult:
    """Search the full machine space per (dataset, algorithm) cell."""
    all_workloads = workloads()
    if datasets is None:
        datasets = list(all_workloads)
    result = ExperimentResult(
        experiment="autotune",
        title=(
            "Discovered (time, energy, EDP) Pareto frontier over the "
            "machine space (HyVE / GraphR / CPU backends)"
        ),
        headers=[
            "Dataset",
            "Algo",
            "Priced",
            "Frontier",
            "Recommended machine",
            "Time (ms)",
            "Energy (mJ)",
            "MTEPS/W",
            "GraphR on frontier",
        ],
        notes=(
            "recommended = equal-weight scalarization of the frontier; "
            "'GraphR on frontier: no' means every all-ReRAM point is "
            "dominated by a hybrid one (the Section 6 claim, "
            "rediscovered rather than asserted)"
        ),
    )
    spaces = [default_space(b) for b in ("hyve", "graphr", "cpu")]
    for dataset in datasets:
        workload = all_workloads[dataset]
        for algorithm_name in algorithms:
            factory = ALL_ALGORITHM_FACTORIES[algorithm_name]
            frontier = search(factory(), workload, spaces)
            best = frontier.best()
            graphr_survives = any(
                point.backend == "graphr" for point in frontier.points
            )
            result.add(
                dataset,
                algorithm_name,
                frontier.evaluated,
                len(frontier),
                f"{best.backend}:{best.label}",
                round(best.time * 1e3, 3),
                round(best.energy * 1e3, 3),
                round(best.mteps_per_watt, 2),
                "yes" if graphr_survives else "no",
            )
    return result
