"""Resilience ablation: energy efficiency versus fault severity.

Runs PageRank on the YT workload for each named fault profile
(``none`` → ``worn``) across three accelerator configurations
(acc+DRAM, acc+HyVE, acc+HyVE-opt) and reports the efficiency retained
relative to the ideal-device run, alongside what the resilience
machinery had to absorb (failed banks, capacity loss, extra energy).

This is the experiment behind the zero-fault invariant: the ``none``
row is produced through the *instrumented* path and must match the
uninstrumented baseline bit for bit.
"""

from __future__ import annotations

from ..arch.machine import make_machine
from ..faults import make_profile
from .common import CORE_ALGORITHM_FACTORIES, ExperimentResult, workloads

#: Accelerator configurations compared (the paper's Fig. 16 subset that
#: exercises DRAM-only, hybrid, and optimised-hybrid edge paths).
MACHINE_ORDER = ("acc+DRAM", "acc+HyVE", "acc+HyVE-opt")

#: Severity ladder, mildest first.
PROFILE_ORDER = ("none", "mild", "harsh", "worn")

#: Injector seed fixed so the table is reproducible run to run.
SEED = 2026


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="resilience",
        title="Energy efficiency under injected faults "
              "(PageRank / YT, seed fixed)",
        headers=["Profile", "Machine", "MTEPS/W", "Retained",
                 "Failed banks", "Capacity lost", "Resilience mJ",
                 "Injected"],
        notes="Retained = MTEPS/W relative to the same machine with "
              "ideal devices; the 'none' row uses the instrumented "
              "path and must match it exactly.",
    )
    factory = CORE_ALGORITHM_FACTORIES["PR"]
    workload = workloads()["YT"]

    ideal = {
        name: make_machine(name).run(factory(), workload).report
        for name in MACHINE_ORDER
    }
    for profile_name in PROFILE_ORDER:
        profile = make_profile(profile_name, seed=SEED)
        for machine_name in MACHINE_ORDER:
            machine = make_machine(machine_name, faults=profile)
            sim = machine.run(factory(), workload)
            report = sim.report
            faults = sim.faults
            result.add(
                profile_name,
                machine_name,
                report.mteps_per_watt,
                f"{report.mteps_per_watt / ideal[machine_name].mteps_per_watt * 100:.1f}%",
                faults.failed_banks if faults else 0,
                f"{faults.capacity_loss_fraction * 100:.2f}%"
                if faults else "0.00%",
                faults.resilience_energy * 1e3 if faults else 0.0,
                faults.total_injected if faults else 0,
            )
    return result
