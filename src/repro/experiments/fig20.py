"""Fig. 20: throughput of dynamic graph updates, HyVE vs GraphR."""

from __future__ import annotations

import numpy as np

from ..dynamic.throughput import compare_dynamic_throughput, modeled_update_ratio
from ..graph.graph import Graph
from .common import ExperimentResult, workloads

#: The paper's numbers: up to 46.98 M edges/s (HyVE), 8.04x over GraphR.
PAPER_RATIO = 8.04

#: Per-operation throughput is size-insensitive; large graphs are
#: subsampled so GraphR's dense per-tile directory fits in RAM.
MAX_EDGES = 120_000


def _capped(graph: Graph) -> Graph:
    if graph.num_edges <= MAX_EDGES:
        return graph
    rng = np.random.default_rng(0)
    sel = rng.choice(graph.num_edges, size=MAX_EDGES, replace=False)
    return Graph(graph.num_vertices, graph.src[sel], graph.dst[sel],
                 name=graph.name)


def run(num_requests: int = 20_000) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig20",
        title="Throughput of dynamically adding/deleting edges/vertices "
              "(single thread)",
        headers=[
            "Dataset",
            "HyVE (M edges/s)",
            "GraphR (M edges/s)",
            "Measured ratio",
            "Modeled ratio",
        ],
        notes=(
            "absolute Python throughput is interpreter-bound; the "
            "modeled ratio is data movement per update "
            f"(paper measured {PAPER_RATIO}x)"
        ),
    )
    for dataset, workload in workloads().items():
        hyve, graphr = compare_dynamic_throughput(
            _capped(workload.graph), num_requests=num_requests
        )
        result.add(
            dataset,
            hyve.million_edges_per_second,
            graphr.million_edges_per_second,
            hyve.million_edges_per_second
            / graphr.million_edges_per_second,
            modeled_update_ratio(),
        )
    return result
