"""Fig. 20: throughput of dynamic graph updates, HyVE vs GraphR."""

from __future__ import annotations

import numpy as np

from ..dynamic.throughput import compare_dynamic_throughput, modeled_update_ratio
from ..graph.graph import Graph
from .common import ExperimentResult, workloads

#: The paper's numbers: up to 46.98 M edges/s (HyVE), 8.04x over GraphR.
PAPER_RATIO = 8.04

#: Per-operation throughput is size-insensitive; large graphs are
#: subsampled so GraphR's dense per-tile directory fits in RAM.
MAX_EDGES = 120_000


#: Capped subsamples memoised on graph content: the permutation draw is
#: O(E) and identical on every invocation (fixed seed), so warm runs
#: skip it.  Bounded like the scheduler's imbalance memo.
_CAPPED_MEMO: dict[str, Graph] = {}
_CAPPED_MEMO_CAPACITY = 16


def _capped(graph: Graph) -> Graph:
    if graph.num_edges <= MAX_EDGES:
        return graph
    key = graph.fingerprint()
    cached = _CAPPED_MEMO.get(key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(0)
    sel = rng.choice(graph.num_edges, size=MAX_EDGES, replace=False)
    capped = Graph(graph.num_vertices, graph.src[sel], graph.dst[sel],
                   name=graph.name)
    if len(_CAPPED_MEMO) >= _CAPPED_MEMO_CAPACITY:
        _CAPPED_MEMO.clear()
    _CAPPED_MEMO[key] = capped
    return capped


def run(num_requests: int = 20_000) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig20",
        title="Throughput of dynamically adding/deleting edges/vertices "
              "(single thread)",
        headers=[
            "Dataset",
            "HyVE (M edges/s)",
            "GraphR (M edges/s)",
            "Measured ratio",
            "Modeled ratio",
        ],
        notes=(
            "absolute Python throughput is interpreter-bound; the "
            "modeled ratio is data movement per update "
            f"(paper measured {PAPER_RATIO}x)"
        ),
    )
    for dataset, workload in workloads().items():
        hyve, graphr = compare_dynamic_throughput(
            _capped(workload.graph), num_requests=num_requests
        )
        result.add(
            dataset,
            hyve.million_edges_per_second,
            graphr.million_edges_per_second,
            hyve.million_edges_per_second
            / graphr.million_edges_per_second,
            modeled_update_ratio(),
        )
    return result
