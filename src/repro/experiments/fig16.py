"""Fig. 16: energy efficiency across all machine configurations."""

from __future__ import annotations

from ..arch.cpu import CPU_DRAM, CPU_DRAM_OPT, CPUMachine
from ..arch.machine import make_machine
from .common import CORE_ALGORITHM_FACTORIES, ExperimentResult, geomean, workloads

#: Machine labels in the figure's legend order.
MACHINE_ORDER = (
    "CPU+DRAM",
    "CPU+DRAM-opt",
    "acc+DRAM",
    "acc+ReRAM",
    "acc+SRAM+DRAM",
    "acc+HyVE",
    "acc+HyVE-opt",
)

#: The paper's average improvement of acc+HyVE-opt over each baseline.
PAPER_OPT_RATIOS = {
    "CPU+DRAM": 145.71,
    "acc+DRAM": 5.90,
    "acc+ReRAM": 4.54,
    "acc+SRAM+DRAM": 2.00,
}


def build_machine(name: str):
    if name == "CPU+DRAM":
        return CPUMachine(CPU_DRAM)
    if name == "CPU+DRAM-opt":
        return CPUMachine(CPU_DRAM_OPT)
    return make_machine(name)


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig16",
        title="Energy efficiency (MTEPS/W) comparison between HyVE and "
              "other configurations",
        headers=["Algorithm", "Dataset"] + list(MACHINE_ORDER),
    )
    from ..perf.batch import run_grid

    machines = {name: build_machine(name) for name in MACHINE_ORDER}
    # The five accelerator columns of a row share one convergence and
    # (per counts key) one schedule expansion: price them as a grid.
    acc_names = [n for n in MACHINE_ORDER if not n.startswith("CPU")]
    acc_configs = [machines[n].config for n in acc_names]
    for algo_name, factory in CORE_ALGORITHM_FACTORIES.items():
        for dataset, workload in workloads().items():
            row: list = [algo_name, dataset]
            grid = run_grid(factory(), workload, acc_configs)
            batched = {n: r.report for n, r in zip(acc_names, grid)}
            for name in MACHINE_ORDER:
                report = batched.get(name)
                if report is None:
                    report = machines[name].run(factory(), workload).report
                row.append(report.mteps_per_watt)
            result.rows.append(row)
    return result


def opt_ratios(result: ExperimentResult | None = None) -> dict[str, float]:
    """Geomean improvement of acc+HyVE-opt over each other machine."""
    result = result or run()
    opt = result.column("acc+HyVE-opt")
    ratios = {}
    for name in MACHINE_ORDER[:-1]:
        other = result.column(name)
        ratios[name] = geomean([a / b for a, b in zip(opt, other)])
    return ratios
