"""Fig. 21: overall GraphR vs HyVE — delay, energy and EDP ratios."""

from __future__ import annotations

from ..arch.graphr import GraphRMachine, run_many
from ..arch.machine import make_machine
from ..obs.trace import get_tracer
from ..perf.batch import run_grid
from .common import ALL_ALGORITHM_FACTORIES, ExperimentResult, geomean, workloads

#: The paper's averages: 5.12x faster, 2.83x less energy, 17.63x EDP.
PAPER = {"delay": 5.12, "energy": 2.83, "edp": 17.63}


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig21",
        title="Performance comparison between GraphR and HyVE "
              "(GraphR/HyVE)",
        headers=["Algorithm", "Dataset", "Delay", "Energy", "EDP"],
        notes=(
            "writing each block's edges into a crossbar before the "
            "analog operation is what costs GraphR its advantage"
        ),
    )
    graphr = GraphRMachine()
    hyve = make_machine("acc+HyVE-opt")
    # The full (algorithm x dataset) grid, priced simulate-once /
    # price-many on both machines: GraphR through its counts-key + fold
    # path, HyVE through scheduled_counts/fold_many — each cell
    # bit-identical to the serial machine.run() calls this loop used to
    # make.
    cells = [
        (algo_name, factory(), dataset, workload)
        for algo_name, factory in ALL_ALGORITHM_FACTORIES.items()
        for dataset, workload in workloads().items()
    ]
    with get_tracer().span("fig21.fold", cells=len(cells)):
        graphr_results = run_many(
            graphr, [(algo, wl) for _, algo, _, wl in cells]
        )
        hyve_reports = [
            run_grid(algo, wl, [hyve.config])[0].report
            for _, algo, _, wl in cells
        ]
    for (algo_name, _, dataset, _), g_res, h in zip(
        cells, graphr_results, hyve_reports
    ):
        g = g_res.report
        result.add(
            algo_name,
            dataset,
            g.time / h.time,
            g.total_energy / h.total_energy,
            g.edp / h.edp,
        )
    return result


def averages(result: ExperimentResult | None = None) -> dict[str, float]:
    """Geomean ratios across all (algorithm, dataset) pairs."""
    result = result or run()
    return {
        "delay": geomean(result.column("Delay")),
        "energy": geomean(result.column("Energy")),
        "edp": geomean(result.column("EDP")),
    }
