"""Fig. 21: overall GraphR vs HyVE — delay, energy and EDP ratios."""

from __future__ import annotations

from ..arch.graphr import GraphRMachine
from ..arch.machine import make_machine
from .common import ALL_ALGORITHM_FACTORIES, ExperimentResult, geomean, workloads

#: The paper's averages: 5.12x faster, 2.83x less energy, 17.63x EDP.
PAPER = {"delay": 5.12, "energy": 2.83, "edp": 17.63}


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig21",
        title="Performance comparison between GraphR and HyVE "
              "(GraphR/HyVE)",
        headers=["Algorithm", "Dataset", "Delay", "Energy", "EDP"],
        notes=(
            "writing each block's edges into a crossbar before the "
            "analog operation is what costs GraphR its advantage"
        ),
    )
    graphr = GraphRMachine()
    hyve = make_machine("acc+HyVE-opt")
    for algo_name, factory in ALL_ALGORITHM_FACTORIES.items():
        for dataset, workload in workloads().items():
            g = graphr.run(factory(), workload).report
            h = hyve.run(factory(), workload).report
            result.add(
                algo_name,
                dataset,
                g.time / h.time,
                g.total_energy / h.total_energy,
                g.edp / h.edp,
            )
    return result


def averages(result: ExperimentResult | None = None) -> dict[str, float]:
    """Geomean ratios across all (algorithm, dataset) pairs."""
    result = result or run()
    return {
        "delay": geomean(result.column("Delay")),
        "energy": geomean(result.column("Energy")),
        "edp": geomean(result.column("EDP")),
    }
