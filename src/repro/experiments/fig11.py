"""Fig. 11: GraphR/HyVE whole-vertex-storage comparison."""

from __future__ import annotations

from ..algorithms import PageRank
from ..model.vertex_storage import compare_vertex_storage
from .common import ExperimentResult, workloads


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig11",
        title=(
            "Vertex storage comparison GraphR/HyVE: operation counts and "
            "delay/energy/EDP with DRAM or ReRAM global memory"
        ),
        headers=[
            "Dataset",
            "Read count",
            "Write count",
            "DRAM delay",
            "DRAM energy",
            "DRAM EDP",
            "ReRAM delay",
            "ReRAM energy",
            "ReRAM EDP",
        ],
        notes=(
            ">1 means HyVE's SRAM+interval scheme beats GraphR's "
            "register-file+8x8-block scheme"
        ),
    )
    for row in compare_vertex_storage(PageRank(), workloads()):
        result.add(
            row.dataset,
            row.read_ratio,
            row.write_ratio,
            row.dram_delay_ratio,
            row.dram_energy_ratio,
            row.dram_edp_ratio,
            row.reram_delay_ratio,
            row.reram_energy_ratio,
            row.reram_edp_ratio,
        )
    return result
