"""Ablation studies of HyVE's design choices (beyond the paper's figures).

DESIGN.md calls out three decisions worth ablating:

* **Sub-bank vs bank interleaving** — bank interleaving keeps every bank
  active, defeating BPG entirely (Section 3.1's argument for sub-bank
  interleaving).
* **BPG idle-timeout** — too short risks thrashing on irregular streams,
  too long leaves banks burning standby power.
* **Processing-unit count N** — the super block is N x N; more PUs share
  more intervals but synchronise more often and need more SRAM.
"""

from __future__ import annotations


from ..algorithms import BFS, ConnectedComponents, PageRank
from ..algorithms.runner import run_cached
from ..algorithms.vertex_centric import run_vertex_centric_cached
from ..arch.config import HyVEConfig
from ..arch.machine import AcceleratorMachine
from ..memory.powergate import PowerGatingPolicy
from ..memory.reram import ReRAMConfig
from ..units import US
from .common import ExperimentResult, workloads


def run_execution_model() -> ExperimentResult:
    """Edge-centric vs vertex-centric edge-memory traffic (Section 2.1).

    Vertex-centric examines only the frontier's out-edges (a large
    saving on traversals) but turns the edge stream into random CSR-row
    accesses; the edge-memory energy comparison below prices both on
    the ReRAM edge memory and shows why HyVE streams sequentially.
    """
    from ..memory.base import AccessKind, AccessPattern
    from ..memory.reram import ReRAMChip

    result = ExperimentResult(
        experiment="ablation_execution_model",
        title="Edge-centric vs vertex-centric edge traffic and "
              "edge-memory energy",
        headers=[
            "Algorithm",
            "Dataset",
            "Edges examined (VC/EC)",
            "Edge-memory energy (VC/EC)",
        ],
        notes=(
            "vertex-centric saves traversal edges but pays the random "
            "ReRAM access premium per CSR row"
        ),
    )
    chip = ReRAMChip()
    seq = chip.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL)
    rnd = chip.access_cost(AccessKind.READ, AccessPattern.RANDOM)
    for name, factory in (("BFS", BFS), ("CC", ConnectedComponents),
                          ("PR", PageRank)):
        for dataset, workload in workloads().items():
            ec = run_cached(factory(), workload.graph)
            vc = run_vertex_centric_cached(factory(), workload.graph)
            edge_ratio = vc.edges_examined / max(ec.total_edges, 1)
            # Edge-centric: one sequential 512-bit access per 8 edges.
            ec_energy = ec.total_edges * ec.edge_bits / 512 * seq.energy
            # Vertex-centric: one random access per active vertex's CSR
            # row (row rarely exceeds one 512-bit line) amortised over
            # its edges.
            vc_energy = vc.vertices_scanned * rnd.energy + (
                max(vc.edges_examined - vc.vertices_scanned, 0)
                * ec.edge_bits / 512 * seq.energy
            )
            result.add(name, dataset, edge_ratio, vc_energy / ec_energy)
    return result


def run_interleaving() -> ExperimentResult:
    """Sub-bank vs bank interleaving of the edge memory (PR)."""
    result = ExperimentResult(
        experiment="ablation_interleaving",
        title="Edge-memory interleaving: sub-bank (HyVE) vs bank",
        headers=["Dataset", "Sub-bank MTEPS/W", "Bank MTEPS/W",
                 "Improvement"],
        notes="bank interleaving keeps all banks awake: BPG cannot gate",
    )
    subbank = AcceleratorMachine(HyVEConfig(label="subbank"))
    bank = AcceleratorMachine(
        HyVEConfig(
            label="bank",
            reram=ReRAMConfig(subbank_interleaving=False),
        )
    )
    for dataset, workload in workloads().items():
        a = subbank.run(PageRank(), workload).report.mteps_per_watt
        b = bank.run(PageRank(), workload).report.mteps_per_watt
        result.add(dataset, a, b, a / b)
    return result


def run_bpg_timeout(
    timeouts_us: tuple[float, ...] = (0.1, 0.5, 1.0, 5.0, 20.0, 100.0),
) -> ExperimentResult:
    """BPG idle-timeout sweep (PR)."""
    result = ExperimentResult(
        experiment="ablation_bpg_timeout",
        title="BPG idle-timeout sweep (MTEPS/W, PR)",
        headers=["Dataset"] + [f"{t:g} us" for t in timeouts_us],
        notes="longer timeouts keep more banks powered after their use",
    )
    from ..arch.sweep import sweep_axis

    def make_config(t: float) -> HyVEConfig:
        return HyVEConfig(
            label=f"bpg-{t}",
            power_gating=PowerGatingPolicy(idle_timeout=t * US),
        )

    # The timeout only changes pricing, so all points share one
    # schedule-counts expansion per workload (simulate once).
    for dataset, workload in workloads().items():
        result.add(
            dataset,
            *[
                r.report.mteps_per_watt
                for r in sweep_axis(
                    timeouts_us, make_config, PageRank, workload
                )
            ],
        )
    return result


def run_placement() -> ExperimentResult:
    """Hash-based vs natural vertex placement (Section 4.3).

    Natural (index-order) placement lets community structure pile edges
    onto some PUs; hash placement spreads them, shrinking the per-step
    synchronisation imbalance and the execution time.
    """
    result = ExperimentResult(
        experiment="ablation_placement",
        title="Vertex placement: hash-based (HyVE) vs natural order (PR)",
        headers=[
            "Dataset",
            "Hash imbalance",
            "Natural imbalance",
            "Hash MTEPS/W",
            "Natural MTEPS/W",
        ],
        notes="imbalance = max-PU over mean-PU edges per step (1 = ideal)",
    )
    hashed_machine = AcceleratorMachine(HyVEConfig(label="hash"))
    natural_machine = AcceleratorMachine(
        HyVEConfig(label="natural", hash_placement=False)
    )
    for dataset, workload in workloads().items():
        hashed_counts = hashed_machine.run_counts(PageRank(), workload)
        natural_counts = natural_machine.run_counts(PageRank(), workload)
        result.add(
            dataset,
            hashed_counts.imbalance,
            natural_counts.imbalance,
            hashed_machine.run(PageRank(), workload).report.mteps_per_watt,
            natural_machine.run(PageRank(), workload).report.mteps_per_watt,
        )
    return result


def run_init_cost() -> ExperimentResult:
    """One-shot initialisation vs execution (the Section 3.1 claim).

    "Limited write bandwidth of ReRAM will not cause an obvious delay
    since the data write only occurs during initialization."
    """
    from ..arch.initialization import init_vs_execution

    result = ExperimentResult(
        experiment="ablation_init_cost",
        title="One-shot memory-image write vs execution (PR)",
        headers=[
            "Dataset",
            "Write time (ms)",
            "Execution time (ms)",
            "Write / execution",
            "Write energy share",
        ],
        notes=(
            "the ReRAM write penalty is paid once and amortises over "
            "every subsequent run"
        ),
    )
    for dataset, workload in workloads().items():
        ratios = init_vs_execution(PageRank(), workload)
        result.add(
            dataset,
            ratios["init_write_time_s"] * 1e3,
            ratios["execution_time_s"] * 1e3,
            ratios["write_over_execution"],
            ratios["write_energy_over_execution"],
        )
    return result


def run_density(
    densities_gbit: tuple[int, ...] = (4, 8, 16),
) -> ExperimentResult:
    """Chip-density sweep: denser chips, longer lines, more refresh (PR)."""
    from ..memory.dram import DRAMConfig
    from ..units import GBIT

    result = ExperimentResult(
        experiment="ablation_density",
        title="Chip density sweep (MTEPS/W, PR)",
        headers=["Dataset"] + [f"{d} Gb" for d in densities_gbit],
        notes=(
            "denser chips trade per-access energy and refresh power for "
            "fewer chips; HyVE's efficiency is density-robust"
        ),
    )
    from ..arch.sweep import sweep_axis

    def make_config(d: int) -> HyVEConfig:
        return HyVEConfig(
            label=f"d{d}",
            reram=ReRAMConfig(density_bits=d * GBIT),
            dram=DRAMConfig(density_bits=d * GBIT),
        )

    # Density is a pure pricing knob: one counts expansion per workload
    # prices every density in a single vectorized fold.
    for dataset, workload in workloads().items():
        result.add(
            dataset,
            *[
                r.report.mteps_per_watt
                for r in sweep_axis(
                    densities_gbit, make_config, PageRank, workload
                )
            ],
        )
    return result


def run_pu_count(
    counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
) -> ExperimentResult:
    """Processing-unit count sweep (PR)."""
    result = ExperimentResult(
        experiment="ablation_pu_count",
        title="Processing-unit count sweep (MTEPS/W, PR)",
        headers=["Dataset"] + [f"N={n}" for n in counts],
        notes=(
            "more PUs shrink per-iteration interval loads (P/N) but add "
            "SRAM banks, leakage and synchronisation"
        ),
    )
    from ..arch.sweep import sweep_axis

    def make_config(n: int) -> HyVEConfig:
        return HyVEConfig(label=f"n{n}", num_pus=n)

    # Each N is its own counts key (N appears in Equations (7)-(8)),
    # but the shared convergence and counts memo still apply.
    for dataset, workload in workloads().items():
        result.add(
            dataset,
            *[
                r.report.mteps_per_watt
                for r in sweep_axis(counts, make_config, PageRank, workload)
            ],
        )
    return result
