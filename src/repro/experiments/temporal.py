"""Temporal pricing of an evolving graph (streaming infrastructure).

Not a paper figure — the streaming companion to the Fig. 20 dynamic
throughput study.  The journal version of HyVE evolves the graph
continuously; this experiment drives the whole streaming stack end to
end at CI-friendly scale:

* an append-only :class:`~repro.dynamic.stream.UpdateLog` is replayed
  through a bounded-staleness :class:`~repro.dynamic.stream.StreamEngine`
  while interleaved queries pin the incremental values to from-scratch
  rebuilds (exact for BFS/CC, 1e-12 for PR);
* the same log becomes a :class:`~repro.dynamic.temporal.TemporalGraph`,
  and a handful of snapshots are priced on the accelerator machine —
  the second pricing of each instant must be a run-cache *hit*, because
  ``snapshot_at(t).fingerprint()`` is a pure function of the log prefix;
* the per-snapshot reports fold into one width-weighted energy
  attribution via :func:`~repro.arch.machine.fold_time_slices`;
* a quick update-heavy vs read-heavy
  :func:`~repro.dynamic.stream.measure_stream` run reports sustained
  updates/second (the committed full-scale numbers live in
  BENCH_10.json via ``tools/bench.py --scenario stream``).
"""

from __future__ import annotations

import time

import numpy as np

from ..algorithms import make_algorithm
from ..algorithms.runner import run_vectorized
from ..arch.machine import fold_time_slices, make_machine
from ..dynamic.stream import (READ_HEAVY, UPDATE_HEAVY, StreamEngine,
                              generate_update_log, measure_stream)
from ..dynamic.temporal import TimeSlice
from ..graph.generators import rmat
from ..perf.cache import get_run_cache, temporary_run_cache
from .common import ExperimentResult

NUM_VERTICES = 2_000
NUM_EDGES = 16_000
NUM_UPDATES = 4_000
DELETE_FRACTION = 0.25
NUM_SLICES = 5
MACHINE = "acc+HyVE"
PRICED_ALGORITHM = "pr"


def run(
    num_vertices: int = NUM_VERTICES,
    num_edges: int = NUM_EDGES,
    num_updates: int = NUM_UPDATES,
    num_slices: int = NUM_SLICES,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="temporal",
        title="Time-sliced pricing over a streamed evolving graph",
        headers=["Stage", "Window", "Edges", "Energy (J)", "Check"],
        notes=(
            f"R-MAT |V|={num_vertices} |E|={num_edges} + {num_updates} "
            f"updates ({DELETE_FRACTION:.0%} deletes); snapshots priced "
            f"on {MACHINE} with {PRICED_ALGORITHM.upper()}, folded by "
            "interval width (fold_time_slices); incremental values "
            "pinned to from-scratch rebuilds at every query point"
        ),
    )
    base = rmat(num_vertices, num_edges, seed=10, name="temporal-base")
    log = generate_update_log(base, num_updates, seed=10,
                              delete_fraction=DELETE_FRACTION,
                              name="temporal-stream")
    events = log.to_arrays()

    with temporary_run_cache(""):
        # --- streamed ingest with interleaved conformance queries ----
        engine = StreamEngine(log.num_vertices, k=64, name=log.name)
        points = np.linspace(0, len(log), 4)[1:].astype(int).tolist()
        start = time.perf_counter()
        done = 0
        conforming = True
        for prefix in points:
            engine.ingest(events[done:prefix])
            done = prefix
            snapshot = engine.snapshot()
            for name in engine.algorithms:
                rebuilt = run_vectorized(make_algorithm(name),
                                         snapshot).values
                got = engine.query(name)
                ok = (np.allclose(got, rebuilt, rtol=1e-12, atol=1e-12)
                      if name == "pr" else np.array_equal(got, rebuilt))
                conforming = conforming and ok
        elapsed = time.perf_counter() - start
        result.add(
            "stream ingest",
            f"t0..t{engine.logical_time}",
            engine.num_edges,
            0.0,
            f"incremental==rebuild: {conforming} "
            f"({engine.stats.rebuilds} rebuilds, "
            f"{engine.stats.incremental_refreshes} incremental, "
            f"{len(log) / elapsed:,.0f} ev/s)",
        )

        # --- time-sliced pricing through the run cache ---------------
        temporal = log.temporal()
        horizon = engine.logical_time + 1
        bounds = np.linspace(0, horizon, num_slices + 1).astype(int)
        machine = make_machine(MACHINE)
        algorithm = make_algorithm(PRICED_ALGORITHM)
        slices = []
        hits = 0
        for lo, hi in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
            snapshot = temporal.snapshot_at(lo)
            report = machine.run(algorithm, snapshot).report
            before = get_run_cache().stats.memory_hits
            machine.run(algorithm, temporal.snapshot_at(lo))
            hits += get_run_cache().stats.memory_hits > before
            slices.append(TimeSlice(lo, hi, report))
            result.add(
                f"slice {PRICED_ALGORITHM}",
                f"[t{lo},t{hi})",
                snapshot.num_edges,
                report.total_energy,
                "cache-hit" if hits else "cache-MISS",
            )
        folded = fold_time_slices(slices)
        result.add(
            "folded total",
            f"[t0,t{horizon})",
            "-",
            folded.total_energy,
            f"repriced snapshots hit cache: {hits}/{num_slices}",
        )

    # --- sustained throughput under the two canonical mixes ----------
    for mix in (UPDATE_HEAVY, READ_HEAVY):
        bench = measure_stream(log, mix)
        result.add(
            f"stream bench ({mix.name})",
            f"{bench.num_updates} ev / {bench.num_queries} q",
            "-",
            0.0,
            f"{bench.updates_per_second:,.0f} up/s, "
            f"{bench.speedup_vs_serial:.2f}x vs serial rebuild",
        )
    return result
