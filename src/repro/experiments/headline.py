"""The paper's headline claims, reproduced in one table.

Gathers every banner number of the abstract/introduction — the 86.17%
memory-energy reduction, the 1.60x/1.53x optimisation gains, the 5.90x
and two-orders-of-magnitude efficiency improvements, the 2.83x GraphR
advantage and the dynamic-update throughput — next to this
reproduction's measured values.  README.md's summary table is this
driver's output.
"""

from __future__ import annotations

from . import fig14, fig15, fig16, fig17, fig19, fig21
from .common import ExperimentResult, geomean
from ..dynamic.throughput import modeled_update_ratio


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="headline",
        title="Headline claims: paper vs reproduction",
        headers=["Claim", "Paper", "Reproduced"],
        notes="see EXPERIMENTS.md for the per-figure detail",
    )

    ratios = fig16.opt_ratios()
    result.add("acc+HyVE-opt vs acc+DRAM", "5.90x",
               f"{ratios['acc+DRAM']:.2f}x")
    result.add("acc+HyVE-opt vs acc+ReRAM", "4.54x",
               f"{ratios['acc+ReRAM']:.2f}x")
    result.add("acc+HyVE-opt vs acc+SRAM+DRAM", "2.00x",
               f"{ratios['acc+SRAM+DRAM']:.2f}x")
    result.add("acc+HyVE-opt vs CPU+DRAM", "145.71x",
               f"{ratios['CPU+DRAM']:.1f}x")

    sharing = fig14.run()
    per_algo = {row[0]: row[6] for row in sharing.rows}
    result.add(
        "data sharing gain (BFS/CC/PR)",
        "1.15/1.47/2.19x",
        f"{per_algo['BFS']:.2f}/{per_algo['CC']:.2f}/{per_algo['PR']:.2f}x",
    )
    result.add(
        "data sharing gain (average)",
        "1.60x",
        f"{geomean(list(per_algo.values())):.2f}x",
    )

    gating = fig15.run()
    gating_ratios = [r for row in gating.rows for r in row[1:6]]
    result.add("bank power-gating gain", "1.53x",
               f"{geomean(gating_ratios):.2f}x")

    reductions = fig17.memory_reduction()
    result.add("memory energy cut vs SD (HyVE)", "57.57%",
               f"{reductions['HyVE']:.1f}%")
    result.add("memory energy cut vs SD (opt)", "86.17%",
               f"{reductions['opt']:.1f}%")

    graphr = fig21.averages()
    result.add("GraphR/HyVE delay", "5.12x", f"{graphr['delay']:.2f}x")
    result.add("GraphR/HyVE energy", "2.83x", f"{graphr['energy']:.2f}x")
    result.add("GraphR/HyVE EDP", "17.63x", f"{graphr['edp']:.2f}x")

    preprocessing = fig19.run()
    values = preprocessing.column("GraphR/HyVE")
    result.add("GraphR/HyVE preprocessing time", "6.73x",
               f"{sum(values) / len(values):.2f}x")

    result.add("dynamic update advantage", "8.04x",
               f"{modeled_update_ratio():.2f}x (modeled)")
    return result
