"""Fig. 13: energy efficiency with 1/2/3-bit ReRAM cells (SLC vs MLC)."""

from __future__ import annotations

from ..arch.config import HyVEConfig
from ..arch.machine import AcceleratorMachine
from ..memory.nvsim import ReRAMCellParams
from ..memory.reram import ReRAMConfig
from .common import ExperimentResult, workloads

CELL_BITS = (1, 2, 3)


def efficiency(dataset: str, cell_bits: int) -> float:
    """MTEPS/W of the optimised HyVE running PR with the given cell."""
    from ..algorithms import PageRank

    config = HyVEConfig(
        label=f"hyve-{cell_bits}bit",
        reram=ReRAMConfig(cell=ReRAMCellParams(cell_bits=cell_bits)),
    )
    machine = AcceleratorMachine(config)
    return machine.run(
        PageRank(), workloads()[dataset]
    ).report.mteps_per_watt


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig13",
        title="Energy efficiency (MTEPS/W) using different ReRAM cells",
        headers=["Dataset"] + [f"{b} bit(s)" for b in CELL_BITS],
        notes=(
            "MLC parallel sensing needs 2^b - 1 reference comparisons, "
            "so SLC wins despite the density advantage (Section 7.2.1)"
        ),
    )
    for key in workloads():
        result.add(key, *[efficiency(key, b) for b in CELL_BITS])
    return result
