"""Fig. 18: absolute performance — execution time SD / HyVE."""

from __future__ import annotations

from ..arch.config import HyVEConfig, MemoryTechnology
from ..arch.machine import AcceleratorMachine
from ..memory.powergate import PowerGatingPolicy
from .common import CORE_ALGORITHM_FACTORIES, ExperimentResult, geomean, workloads

#: The paper's per-algorithm geometric-mean slowdowns (1.9/2.5/15.1%).
PAPER_SLOWDOWN_PCT = {"BFS": 1.9, "CC": 2.5, "PR": 15.1}


def time_ratio(algorithm_name: str, dataset: str) -> float:
    """Execution time of acc+SRAM+DRAM over acc+HyVE (< 1: HyVE slower)."""
    factory = CORE_ALGORITHM_FACTORIES[algorithm_name]
    workload = workloads()[dataset]
    sd = AcceleratorMachine(
        HyVEConfig(
            label="SD",
            edge_memory=MemoryTechnology.DRAM,
            power_gating=PowerGatingPolicy(enabled=False),
        )
    ).run(factory(), workload).report.time
    hyve = AcceleratorMachine(
        HyVEConfig(label="HyVE", power_gating=PowerGatingPolicy(enabled=False))
    ).run(factory(), workload).report.time
    return sd / hyve


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig18",
        title="Execution time comparison between SD and HyVE (SD/HyVE)",
        headers=["Algorithm"] + list(workloads())
        + ["Geomean", "Slowdown %", "Paper slowdown %"],
        notes=(
            "HyVE's ReRAM streams slightly slower than DRAM, so the "
            "ratio sits just below 1; the energy win costs a few percent "
            "of performance"
        ),
    )
    for algo in CORE_ALGORITHM_FACTORIES:
        ratios = [time_ratio(algo, dataset) for dataset in workloads()]
        mean = geomean(ratios)
        result.add(
            algo,
            *ratios,
            mean,
            100.0 * (1.0 / mean - 1.0),
            PAPER_SLOWDOWN_PCT[algo],
        )
    return result
