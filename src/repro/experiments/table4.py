"""Table 4: energy efficiency (MTEPS/W) as SRAM capacity varies.

Sixteen configurations per (algorithm, dataset): SRAM size in
{2, 4, 8, 16} MB crossed with {power gating on/off} x {sharing on/off}.
The reproduced sweet-spot behaviour: larger SRAM cuts interval
scheduling traffic but pays leakage and slower/larger accesses; data
sharing shifts the sweet spot to smaller SRAM.
"""

from __future__ import annotations

from ..arch.config import HyVEConfig
from ..arch.machine import AcceleratorMachine
from ..memory.powergate import PowerGatingPolicy
from ..units import MB
from .common import CORE_ALGORITHM_FACTORIES, ExperimentResult, workloads

#: SRAM capacities of the sweep (per PU).
SRAM_MB = (2, 4, 8, 16)

#: Configuration groups, in the table's column order.
GROUPS = (
    ("w/o PG, w/o sharing", False, False),
    ("w/o PG, w/ sharing", False, True),
    ("w/ PG, w/o sharing", True, False),
    ("w/ PG, w/ sharing", True, True),
)


def efficiency(
    algorithm_name: str,
    dataset: str,
    sram_mb: int,
    power_gating: bool,
    sharing: bool,
) -> float:
    """MTEPS/W of one Table 4 cell."""
    config = HyVEConfig(
        label=f"hyve-{sram_mb}MB",
        sram_bits=sram_mb * MB,
        data_sharing=sharing,
        power_gating=PowerGatingPolicy(enabled=power_gating),
    )
    machine = AcceleratorMachine(config)
    algorithm = CORE_ALGORITHM_FACTORIES[algorithm_name]()
    workload = workloads()[dataset]
    return machine.run(algorithm, workload).report.mteps_per_watt


def run(sram_mb: tuple[int, ...] = SRAM_MB) -> ExperimentResult:
    headers = ["Algo", "Dataset"]
    for group, _, _ in GROUPS:
        for size in sram_mb:
            headers.append(f"{group} {size}MB")
    result = ExperimentResult(
        experiment="table4",
        title="Energy efficiency varying SRAM sizes (MTEPS/W)",
        headers=headers,
    )
    for algo in CORE_ALGORITHM_FACTORIES:
        for dataset in workloads():
            row: list = [algo, dataset]
            for _, pg, sharing in GROUPS:
                for size in sram_mb:
                    row.append(efficiency(algo, dataset, size, pg, sharing))
            result.rows.append(row)
    return result


def sweet_spots(result: ExperimentResult | None = None) -> dict[str, int]:
    """Most efficient SRAM size per configuration group (MB), by the
    count of (algo, dataset) cells it wins."""
    result = result or run()
    spots: dict[str, int] = {}
    for group, _, _ in GROUPS:
        wins = {size: 0 for size in SRAM_MB}
        cols = {
            size: result.headers.index(f"{group} {size}MB")
            for size in SRAM_MB
        }
        for row in result.rows:
            best = max(SRAM_MB, key=lambda size: row[cols[size]])
            wins[best] += 1
        spots[group] = max(wins, key=wins.get)
    return spots
