"""Out-of-core execution check: sharded results equal in-memory results.

Not a paper figure — an infrastructure experiment for the scaling path
(docs/scaling.md).  At a CI-friendly scale with live-journal's
edge/vertex ratio it streams an R-MAT graph straight to an on-disk
shard store, runs the three core algorithms out of core, derives the
schedule counts from per-shard partials, and reports every identity the
paper-scale path relies on:

* the shard round trip preserves the graph fingerprint;
* streamed convergence matches ``run_vectorized`` (exactly for the
  min-based algorithms, within the 1e-12 accumulation policy for PR);
* merged per-shard :class:`~repro.arch.scheduler.ScheduleCounts` are
  bit-identical to the whole-graph computation.

The table doubles as a micro-benchmark (edges/second per stage); the
full-scale numbers live in BENCH_8.json via ``tools/bench.py
--scenario outofcore``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from ..algorithms.runner import run_vectorized
from ..arch.config import NAMED_CONFIGS, Workload
from ..arch.scheduler import clear_imbalance_cache
from ..graph.shards import (run_sharded, sharded_scheduled_counts,
                            sharded_workload, write_rmat_shards)
from ..perf.batch import scheduled_counts
from ..perf.cache import temporary_run_cache
from .common import CORE_ALGORITHM_FACTORIES, ExperimentResult

#: live-journal's shape at ~1/160 scale; ratio 14.2 edges per vertex.
NUM_VERTICES = 30_000
NUM_EDGES = 426_000
SHARD_EDGES = 1 << 16


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="outofcore",
        title="Out-of-core sharded execution vs in-memory (identity check)",
        headers=["Stage", "Edges/s", "Iters", "Identical"],
        notes=(
            f"R-MAT |V|={NUM_VERTICES} |E|={NUM_EDGES} "
            f"(live-journal ratio), {SHARD_EDGES} edges/shard; "
            "PR values within 1e-12 (accumulation order), counts and "
            "min-based values bit-identical"
        ),
    )
    with tempfile.TemporaryDirectory(prefix="repro-outofcore-") as tmp:
        start = time.perf_counter()
        store = write_rmat_shards(
            Path(tmp) / "store", NUM_VERTICES, NUM_EDGES,
            seed=8, shard_edges=SHARD_EDGES,
        )
        elapsed = time.perf_counter() - start
        graph = store.as_graph()
        # Force a from-bytes fingerprint for the in-memory baseline so
        # the round-trip identity below is a real check, not a replay
        # of the manifest's seeded digest.
        from ..graph.graph import Graph

        baseline = Graph(
            graph.num_vertices, np.array(graph.src), np.array(graph.dst),
            None if graph.weights is None else np.array(graph.weights),
            name=graph.name,
        )
        roundtrip_ok = baseline.fingerprint() == store.fingerprint
        result.add("stream+shard", NUM_EDGES / elapsed, "-",
                   f"fingerprint={roundtrip_ok}")

        for label, factory in CORE_ALGORITHM_FACTORIES.items():
            reference = run_vectorized(factory(), baseline)
            start = time.perf_counter()
            with temporary_run_cache():
                streamed = run_sharded(factory(), store)
            elapsed = time.perf_counter() - start
            exact = (streamed.iterations == reference.iterations
                     and np.array_equal(streamed.values, reference.values))
            close = exact or (
                streamed.iterations == reference.iterations
                and np.allclose(streamed.values, reference.values,
                                rtol=1e-12, atol=0.0)
            )
            tag = "exact" if exact else ("1e-12" if close else "MISMATCH")
            result.add(f"{label} sharded",
                       streamed.iterations * store.num_edges / elapsed,
                       streamed.iterations, tag)

        config = NAMED_CONFIGS["acc+HyVE"]()
        run_pr = run_vectorized(CORE_ALGORITHM_FACTORIES["PR"](), baseline)
        with temporary_run_cache():
            clear_imbalance_cache()
            whole = scheduled_counts(run_pr, Workload(graph=baseline), config)
        start = time.perf_counter()
        with temporary_run_cache():
            clear_imbalance_cache()
            merged = sharded_scheduled_counts(
                run_pr, sharded_workload(store), config,
            )
        elapsed = time.perf_counter() - start
        result.add("counts merge", store.num_edges / elapsed, "-",
                   f"bit-identical={merged == whole}")
    return result
