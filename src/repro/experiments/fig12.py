"""Fig. 12: normalised preprocessing speed as the block count grows."""

from __future__ import annotations

from ..model.preprocessing import (
    INTERVAL_SWEEP,
    measured_speed_sweep,
    preprocessing_speed_sweep,
)
from .common import ExperimentResult, workloads


def run(include_measured: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig12",
        title="Normalized preprocessing speed vs number of blocks",
        headers=["Dataset", "Source"]
        + [f"{p}x{p}" for p in INTERVAL_SWEEP],
        notes=(
            "speed relative to the 2x2 partition; drops sharply past "
            "32x32 blocks when the bucket table stops fitting in cache"
        ),
    )
    for key, workload in workloads().items():
        edges = workload.reported_edges or workload.graph.num_edges
        modeled = preprocessing_speed_sweep(float(edges), key)
        result.rows.append(
            [key, "model"] + [row.normalized_speed for row in modeled]
        )
        if include_measured:
            measured = measured_speed_sweep(
                workload.graph, intervals=INTERVAL_SWEEP
            )
            speeds: list = [row.normalized_speed for row in measured]
            speeds += ["-"] * (len(INTERVAL_SWEEP) - len(speeds))
            result.rows.append([key, "measured"] + speeds)
    return result
