"""Table 1: average edges per non-empty 8x8 block (N_avg)."""

from __future__ import annotations

from ..graph.stats import average_edges_per_nonempty_block
from .common import ExperimentResult, workloads

#: The paper's published values, for side-by-side reporting.
PAPER_NAVG = {"YT": 1.44, "WK": 1.23, "AS": 2.38, "LJ": 1.49, "TW": 1.73}


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="table1",
        title="Average number of edges in non-empty 8x8 blocks",
        headers=["Dataset", "N_avg (measured)", "N_avg (paper)"],
        notes=(
            "measured on the synthetic R-MAT stand-ins, whose skew is "
            "tuned to reproduce the published block occupancy"
        ),
    )
    for key, workload in workloads().items():
        navg = average_edges_per_nonempty_block(workload.graph)
        result.add(key, navg, PAPER_NAVG[key])
    return result
