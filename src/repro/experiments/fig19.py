"""Fig. 19: preprocessing time ratio, GraphR / HyVE."""

from __future__ import annotations

from ..arch.config import HyVEConfig, choose_num_intervals
from ..graph.stats import average_edges_per_nonempty_block
from ..model.preprocessing import preprocessing_ratio
from .common import ExperimentResult, workloads

#: The paper's average speedup.
PAPER_AVERAGE = 6.73


def ratio(dataset: str) -> float:
    workload = workloads()[dataset]
    vertices = workload.reported_vertices or workload.graph.num_vertices
    edges = workload.reported_edges or workload.graph.num_edges
    navg = average_edges_per_nonempty_block(workload.graph) or 1.0
    # HyVE partitions at the P its 2 MB-per-PU configuration chooses for
    # 32-bit vertex values.
    p = choose_num_intervals(HyVEConfig(label="pre"), float(vertices), 32)
    return preprocessing_ratio(float(vertices), float(edges), navg, p)


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig19",
        title="Preprocessing time comparison (GraphR/HyVE)",
        headers=["Dataset", "GraphR/HyVE", "Paper avg"],
        notes=(
            "GraphR tiles the whole adjacency matrix into 8x8 blocks "
            "(E/N_avg non-empty blocks), blowing the bucket table far "
            "out of cache"
        ),
    )
    for dataset in workloads():
        result.add(dataset, ratio(dataset), PAPER_AVERAGE)
    return result
