"""Table 3: ReRAM bank power under different configurations."""

from __future__ import annotations

from ..memory.nvsim import table3
from .common import ExperimentResult


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="table3",
        title="Power consumption under different bank configurations",
        headers=["Target", "Output bits", "Energy (pJ)", "Period (ps)",
                 "Power/bit (mW/bit)"],
        notes=(
            "energy-optimised 512-bit output minimises power per bit and "
            "is the design point used for the edge memory"
        ),
    )
    for row in table3():
        result.add(
            f"{row['target']}-optimized",
            row["output_bits"],
            row["energy_pj"],
            row["period_ps"],
            row["mw_per_bit"],
        )
    return result
