"""Experiment drivers: one module per table/figure of the evaluation."""

import concurrent.futures
import traceback

from ..errors import ConfigError

from . import (
    ablations,
    autotune,
    headline,
    outofcore,
    resilience,
    sensitivity,
    temporal,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
    table1,
    table2,
    table3,
    table4,
)
from .common import (
    ALL_ALGORITHM_FACTORIES,
    CORE_ALGORITHM_FACTORIES,
    ExperimentResult,
    RESULTS_DIR,
    workloads,
)

#: Every experiment driver, keyed by id, in the paper's order.
ALL_EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "table3": table3.run,
    "fig13": fig13.run,
    "table4": table4.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "fig19": fig19.run,
    "fig20": fig20.run,
    "fig21": fig21.run,
    "ablation_interleaving": ablations.run_interleaving,
    "ablation_bpg_timeout": ablations.run_bpg_timeout,
    "ablation_pu_count": ablations.run_pu_count,
    "ablation_execution_model": ablations.run_execution_model,
    "ablation_density": ablations.run_density,
    "ablation_init_cost": ablations.run_init_cost,
    "ablation_placement": ablations.run_placement,
    "headline": headline.run,
    "autotune": autotune.run,
    "sensitivity": sensitivity.run,
    "resilience": resilience.run,
    "outofcore": outofcore.run,
    "temporal": temporal.run,
}


def _failure_result(name: str, exc: BaseException) -> ExperimentResult:
    tail = traceback.format_exception_only(type(exc), exc)[-1].strip()
    return ExperimentResult(
        experiment=name,
        title=f"FAILED: {name}",
        headers=["Error"],
        rows=[[tail]],
        notes="experiment raised; remaining experiments ran",
    )


def _run_experiment_worker(name: str) -> ExperimentResult:
    """Process-pool worker: run one experiment by id (no saving).

    Module-level so it pickles; results come back to the parent, which
    saves them in the canonical experiment order.  Workers share the
    on-disk run cache, so convergence runs computed by one worker are
    disk hits for the others.
    """
    return ALL_EXPERIMENTS[name]()


def run_selected(
    names: list[str] | None = None,
    save: bool = True,
    isolate_errors: bool = False,
    jobs: int = 1,
) -> dict[str, ExperimentResult]:
    """Run a subset of experiments (all of them when ``names`` is None).

    ``jobs`` above 1 fans the drivers out over a
    ``ProcessPoolExecutor``; results are collected, saved, and returned
    in the canonical experiment order regardless of completion order,
    so saved text/CSV artifacts are identical to a serial run.  With
    ``isolate_errors`` a driver that raises does not abort the batch:
    its slot holds a structured failure table (single "Error" column
    carrying the traceback tail) and the remaining experiments still
    run.
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1: {jobs}")
    if names is None:
        names = list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        raise ConfigError(
            f"unknown experiment(s) {unknown}; "
            f"valid: {sorted(ALL_EXPERIMENTS)}"
        )

    out: dict[str, ExperimentResult] = {}
    if jobs > 1 and len(names) > 1:
        # Generate the evaluation datasets in the parent and publish
        # their graphs to shared memory: forked workers inherit them
        # directly, and any other start method attaches the shared
        # segments instead of regenerating all five synthetic graphs.
        from .common import attach_workloads, share_workloads

        manifest = share_workloads()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(names)),
            initializer=attach_workloads, initargs=(manifest,),
        ) as pool:
            futures = {
                name: pool.submit(_run_experiment_worker, name)
                for name in names
            }
            for name in names:
                try:
                    out[name] = futures[name].result()
                except Exception as exc:
                    if not isolate_errors:
                        raise
                    out[name] = _failure_result(name, exc)
    else:
        for name in names:
            try:
                out[name] = ALL_EXPERIMENTS[name]()
            except Exception as exc:
                if not isolate_errors:
                    raise
                out[name] = _failure_result(name, exc)
    if save:
        for result in out.values():
            result.save()
            result.save_csv()
    return out


def run_all(
    save: bool = True, isolate_errors: bool = False, jobs: int = 1
) -> dict[str, ExperimentResult]:
    """Run every experiment; optionally save text + CSV under results/.

    A thin wrapper over :func:`run_selected` with ``names=None``; see
    there for the ``jobs`` and ``isolate_errors`` semantics.
    """
    return run_selected(None, save=save, isolate_errors=isolate_errors,
                        jobs=jobs)


__all__ = [
    "ALL_ALGORITHM_FACTORIES",
    "ALL_EXPERIMENTS",
    "CORE_ALGORITHM_FACTORIES",
    "ExperimentResult",
    "RESULTS_DIR",
    "run_all",
    "run_selected",
    "workloads",
]
