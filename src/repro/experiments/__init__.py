"""Experiment drivers: one module per table/figure of the evaluation."""

import traceback

from . import (
    ablations,
    headline,
    resilience,
    sensitivity,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
    table1,
    table2,
    table3,
    table4,
)
from .common import (
    ALL_ALGORITHM_FACTORIES,
    CORE_ALGORITHM_FACTORIES,
    ExperimentResult,
    RESULTS_DIR,
    workloads,
)

#: Every experiment driver, keyed by id, in the paper's order.
ALL_EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "table3": table3.run,
    "fig13": fig13.run,
    "table4": table4.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "fig16": fig16.run,
    "fig17": fig17.run,
    "fig18": fig18.run,
    "fig19": fig19.run,
    "fig20": fig20.run,
    "fig21": fig21.run,
    "ablation_interleaving": ablations.run_interleaving,
    "ablation_bpg_timeout": ablations.run_bpg_timeout,
    "ablation_pu_count": ablations.run_pu_count,
    "ablation_execution_model": ablations.run_execution_model,
    "ablation_density": ablations.run_density,
    "ablation_init_cost": ablations.run_init_cost,
    "ablation_placement": ablations.run_placement,
    "headline": headline.run,
    "sensitivity": sensitivity.run,
    "resilience": resilience.run,
}


def run_all(
    save: bool = True, isolate_errors: bool = False
) -> dict[str, ExperimentResult]:
    """Run every experiment; optionally save text + CSV under results/.

    With ``isolate_errors`` a driver that raises does not abort the
    batch: its slot holds a structured failure table (single "Error"
    column carrying the traceback tail) and the remaining experiments
    still run.
    """
    out: dict[str, ExperimentResult] = {}
    for name, runner in ALL_EXPERIMENTS.items():
        try:
            result = runner()
        except Exception as exc:
            if not isolate_errors:
                raise
            tail = traceback.format_exception_only(type(exc), exc)[-1].strip()
            result = ExperimentResult(
                experiment=name,
                title=f"FAILED: {name}",
                headers=["Error"],
                rows=[[tail]],
                notes="experiment raised; remaining experiments ran",
            )
        if save:
            result.save()
            result.save_csv()
        out[name] = result
    return out


__all__ = [
    "ALL_ALGORITHM_FACTORIES",
    "ALL_EXPERIMENTS",
    "CORE_ALGORITHM_FACTORIES",
    "ExperimentResult",
    "RESULTS_DIR",
    "run_all",
    "workloads",
]
