"""Fig. 15: energy-efficiency improvement from bank-level power gating."""

from __future__ import annotations

from ..arch.config import HyVEConfig
from ..arch.machine import AcceleratorMachine
from ..memory.powergate import PowerGatingPolicy
from .common import CORE_ALGORITHM_FACTORIES, ExperimentResult, geomean, workloads

#: The paper's overall average improvement.
PAPER_AVERAGE = 1.53


def improvement(algorithm_name: str, dataset: str) -> float:
    """PG-on over PG-off efficiency (acc+HyVE-opt vs acc+HyVE)."""
    algorithm = CORE_ALGORITHM_FACTORIES[algorithm_name]
    workload = workloads()[dataset]
    with_pg = AcceleratorMachine(
        HyVEConfig(label="pg")
    ).run(algorithm(), workload).report.mteps_per_watt
    without = AcceleratorMachine(
        HyVEConfig(label="no-pg", power_gating=PowerGatingPolicy(enabled=False))
    ).run(algorithm(), workload).report.mteps_per_watt
    return with_pg / without


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig15",
        title="Energy efficiency improvement by adopting power-gating",
        headers=["Algorithm"] + list(workloads()) + ["Geomean"],
        notes=f"paper average: {PAPER_AVERAGE}x",
    )
    for algo in CORE_ALGORITHM_FACTORIES:
        ratios = [improvement(algo, dataset) for dataset in workloads()]
        result.add(algo, *ratios, geomean(ratios))
    return result
