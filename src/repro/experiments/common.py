"""Shared infrastructure for the per-figure experiment drivers.

Every driver returns an :class:`ExperimentResult` — a titled table of
rows that prints exactly the series the paper's figure/table reports —
so the benchmark harness, the examples and EXPERIMENTS.md all consume
one representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..algorithms import BFS, ConnectedComponents, PageRank, SSSP, SpMV
from ..arch.config import Workload
from ..graph.datasets import DATASET_ORDER

#: Default directory where benchmark drivers drop their tables.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"


@dataclass
class ExperimentResult:
    """A reproduced table or figure, as printable rows.

    Attributes:
        experiment: short id ("fig16", "table3"...).
        title: what the paper's caption says.
        headers: column names.
        rows: row values (mixed str/float; floats are formatted on
            output).
        notes: reproduction caveats worth printing with the data.
    """

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def add(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"{self.experiment}: row has {len(values)} values for "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def column(self, header: str) -> list[Any]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def format(self) -> str:
        """Render an aligned text table."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1000:
                    return f"{value:,.0f}"
                if abs(value) >= 10:
                    return f"{value:.1f}"
                return f"{value:.3g}"
            return str(value)

        table = [self.headers] + [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(row[col]) for row in table)
            for col in range(len(self.headers))
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        for i, row in enumerate(table):
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
            if i == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def save(self, directory: Path | str = RESULTS_DIR) -> Path:
        """Write the formatted table under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment}.txt"
        path.write_text(self.format() + "\n")
        return path

    def to_csv(self) -> str:
        """Render as CSV (for spreadsheets and plotting pipelines)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def save_csv(self, directory: Path | str = RESULTS_DIR) -> Path:
        """Write the CSV rendering under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment}.csv"
        path.write_text(self.to_csv())
        return path

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured Markdown table."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.4g}"
            return str(value)

        lines = [
            "| " + " | ".join(self.headers) + " |",
            "|" + "|".join("---" for _ in self.headers) + "|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
        return "\n".join(lines)


# --- cached workloads and algorithm factories --------------------------------

_WORKLOADS: dict[str, Workload] = {}


def workloads() -> dict[str, Workload]:
    """The five evaluation workloads, cached, in paper order."""
    if not _WORKLOADS:
        for key in DATASET_ORDER:
            _WORKLOADS[key] = Workload.from_dataset(key)
    return dict(_WORKLOADS)


def share_workloads() -> dict[str, object]:
    """Publish every evaluation workload's graph to shared memory.

    Returns the picklable per-dataset payloads
    (:class:`repro.perf.shm.SharedWorkloadRef`, or the workload itself
    where sharing is unavailable) for use as pool-initializer args —
    see :func:`attach_workloads`.
    """
    from ..perf.shm import share_workload

    return {key: share_workload(wl) for key, wl in workloads().items()}


def attach_workloads(manifest: dict[str, object]) -> None:
    """Pool-worker initializer: pre-fill the workload cache.

    Workers forked from a prewarmed parent already inherit the cache
    (copy-on-write, never written) and keep it; under any other start
    method — or in a respawned pool — the worker attaches each
    dataset's graph from the shared segments instead of regenerating
    all five synthetic graphs.
    """
    from ..perf.shm import resolve_workload

    if _WORKLOADS:
        return
    for key, payload in manifest.items():
        _WORKLOADS[key] = resolve_workload(payload)


#: Factories for the three main evaluation algorithms (Figs. 13-18).
CORE_ALGORITHM_FACTORIES: dict[str, Callable] = {
    "BFS": BFS,
    "CC": ConnectedComponents,
    "PR": PageRank,
}

#: Factories for the five GraphR-comparison algorithms (Fig. 21).
ALL_ALGORITHM_FACTORIES: dict[str, Callable] = {
    "BFS": BFS,
    "CC": ConnectedComponents,
    "PR": PageRank,
    "SSSP": SSSP,
    "SpMV": SpMV,
}


def geomean(values: list[float]) -> float:
    """Geometric mean of positive values."""
    from ..arch.report import geomean as _geomean

    return _geomean(values)
