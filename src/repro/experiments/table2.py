"""Table 2: the evaluation datasets (paper sizes and synthetic stand-ins)."""

from __future__ import annotations

from ..graph.datasets import DATASET_ORDER, DATASETS
from .common import ExperimentResult


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="table2",
        title="Graph datasets used in evaluation",
        headers=[
            "Dataset",
            "Paper |V|",
            "Paper |E|",
            "Synthetic |V|",
            "Synthetic |E|",
            "Scale",
            "R-MAT a",
        ],
        notes="results are reported at paper scale via linear extrapolation",
    )
    for key in DATASET_ORDER:
        spec = DATASETS[key]
        result.add(
            f"{key} ({spec.full_name})",
            spec.paper_vertices,
            spec.paper_edges,
            spec.num_vertices,
            spec.num_edges,
            f"{spec.scale_factor:.0f}x",
            spec.rmat_a,
        )
    return result
