"""Fig. 17: energy-consumption breakdown (edge/vertex memory vs logic)."""

from __future__ import annotations

from ..arch.config import HyVEConfig, MemoryTechnology
from ..memory.powergate import PowerGatingPolicy
from .common import CORE_ALGORITHM_FACTORIES, ExperimentResult, workloads

#: The three configurations of the figure.
def configurations() -> dict[str, HyVEConfig]:
    return {
        "SD": HyVEConfig(
            label="acc+SRAM+DRAM",
            edge_memory=MemoryTechnology.DRAM,
            power_gating=PowerGatingPolicy(enabled=False),
        ),
        "HyVE": HyVEConfig(
            label="acc+HyVE",
            power_gating=PowerGatingPolicy(enabled=False),
        ),
        "opt": HyVEConfig(label="acc+HyVE-opt"),
    }


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig17",
        title="Energy consumption breakdown",
        headers=[
            "Config",
            "Algorithm",
            "Dataset",
            "Edge Memory %",
            "Vertex Memory %",
            "Other logic %",
            "Memory total %",
        ],
        notes=(
            "the drop in edge-memory energy from SD to HyVE/opt is the "
            "main source of the overall savings"
        ),
    )
    from ..perf.batch import run_grid

    configs = configurations()
    names = list(configs)
    # Price all three configurations of one (algorithm, dataset) cell
    # as a grid (SD and HyVE/opt group into two counts keys), then emit
    # rows in the figure's config-major order.
    reports: dict[tuple[str, str, str], object] = {}
    for algo_name, factory in CORE_ALGORITHM_FACTORIES.items():
        for dataset, workload in workloads().items():
            grid = run_grid(
                factory(), workload, [configs[n] for n in names]
            )
            for n, r in zip(names, grid):
                reports[(n, algo_name, dataset)] = r.report
    for config_name in names:
        for algo_name in CORE_ALGORITHM_FACTORIES:
            for dataset in workloads():
                report = reports[(config_name, algo_name, dataset)]
                shares = report.breakdown()
                result.add(
                    config_name,
                    algo_name,
                    dataset,
                    100.0 * shares["Edge Memory"],
                    100.0 * shares["Vertex Memory"],
                    100.0 * shares["Other logic units"],
                    100.0 * (report.memory_energy / report.total_energy),
                )
    return result


def memory_reduction() -> dict[str, float]:
    """Average memory-energy reduction of HyVE and opt vs SD (%).

    The paper reports 57.57% (HyVE) and 86.17% (opt).
    """
    from ..perf.batch import run_grid

    configs = configurations()
    names = list(configs)
    sums = {k: 0.0 for k in configs}
    for factory in CORE_ALGORITHM_FACTORIES.values():
        for workload in workloads().values():
            grid = run_grid(
                factory(), workload, [configs[n] for n in names]
            )
            for k, r in zip(names, grid):
                sums[k] += r.report.memory_energy
    return {
        "HyVE": 100.0 * (1.0 - sums["HyVE"] / sums["SD"]),
        "opt": 100.0 * (1.0 - sums["opt"] / sums["SD"]),
    }
