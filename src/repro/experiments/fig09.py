"""Fig. 9: normalised DRAM/ReRAM delay, energy and EDP per access mix."""

from __future__ import annotations

from ..model.edge_storage import compare_edge_storage
from .common import ExperimentResult


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig09",
        title=(
            "Normalized performance (DRAM/ReRAM) for sequential access "
            "mixes, 4-16 Gb chips"
        ),
        headers=["Workload", "Density (Gb)", "Delay", "Energy", "EDP"],
        notes=">1 means ReRAM is better on that metric",
    )
    for row in compare_edge_storage():
        result.add(
            row.workload,
            row.density_gbit,
            row.delay_ratio,
            row.energy_ratio,
            row.edp_ratio,
        )
    return result
