"""Exception hierarchy for the HyVE reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Malformed graph data (out-of-range vertex ids, negative counts...)."""


class PartitionError(ReproError):
    """Invalid partitioning request (e.g. zero intervals)."""


class ConfigError(ReproError):
    """Invalid architecture or device configuration."""


class MemoryModelError(ReproError):
    """Device model cannot satisfy the requested operating point."""


class DynamicGraphError(ReproError):
    """Invalid dynamic-graph update (unknown edge, deleted vertex...)."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its iteration cap."""


class FaultError(ReproError):
    """An injected fault could not be absorbed by the resilience
    mechanisms (e.g. every edge-memory bank failed)."""


class SweepPointError(ReproError):
    """One design-space point failed to evaluate (timeout, device-model
    error...); carries the underlying cause as ``__cause__``."""


class VerificationError(ReproError):
    """A differential-conformance oracle found a mismatch between two
    execution paths that promise identical results (see
    :mod:`repro.verify`), or a repro file could not be replayed."""


class ShardError(ReproError):
    """An on-disk shard store cannot be written or trusted — a second
    write into a write-once directory, a torn or truncated manifest,
    data files whose sizes disagree with the manifest, or a checksum /
    fingerprint mismatch (see :mod:`repro.graph.shards`)."""


class StoreError(ReproError):
    """The durable result store (:mod:`repro.perf.store`) cannot satisfy
    a request — unopenable database, schema mismatch, invalid budget."""


class StreamError(ReproError):
    """Invalid streaming-update usage — a malformed ``hyve-updates-v1``
    log (bad schema tag, non-monotonic timestamps, out-of-range vertex
    ids), a delete with no matching open edge, or a query for an
    algorithm the stream engine was not asked to maintain (see
    :mod:`repro.dynamic.stream`)."""


class ChaosError(ReproError):
    """Invalid infrastructure-chaos configuration (rates outside [0, 1],
    unknown profile name; see :mod:`repro.faults.chaos`)."""
