"""HyVE: Hybrid Vertex-Edge memory hierarchy for energy-efficient graph
processing — a full reproduction of the DATE'18 / IEEE TC'19 paper.

The library is organised bottom-up:

* :mod:`repro.graph` — graph containers, R-MAT generators, interval-block
  partitioning, hash placement, shape statistics.
* :mod:`repro.memory` — calibrated device models (ReRAM via NVSim-lite,
  DDR4, SRAM, register files) and bank-level power gating.
* :mod:`repro.algorithms` — edge-centric PR/BFS/CC/SSSP/SpMV and the
  executor that yields traces.
* :mod:`repro.arch` — the HyVE machine, accelerator baselines, CPU
  baselines and the GraphR machine.
* :mod:`repro.model` — the Section 6 analytic model.
* :mod:`repro.dynamic` — evolving-graph support (Section 5).
* :mod:`repro.experiments` — drivers regenerating every table and figure.

Quickstart::

    from repro import Graph, HyVEConfig, AcceleratorMachine, PageRank

    graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    machine = AcceleratorMachine(HyVEConfig())
    result = machine.run(PageRank(), graph)
    print(result.report.summary())
"""

from . import algorithms, arch, core, dynamic, experiments, graph, memory, model
from .algorithms import (
    BFS,
    ConnectedComponents,
    EdgeCentricAlgorithm,
    PageRank,
    SSSP,
    SpMV,
    make_algorithm,
    run_blocked,
    run_vectorized,
)
from .arch import (
    AcceleratorMachine,
    CPUMachine,
    EnergyReport,
    GraphRMachine,
    HyVEConfig,
    SimulationResult,
    Workload,
    make_machine,
)
from .dynamic import DynamicGraphStore
from .errors import (
    ConfigError,
    ConvergenceError,
    DynamicGraphError,
    GraphError,
    MemoryModelError,
    PartitionError,
    ReproError,
)
from .graph import Graph, IntervalBlockPartition, load, load_all, rmat

__version__ = "1.0.0"

__all__ = [
    "algorithms",
    "arch",
    "core",
    "dynamic",
    "experiments",
    "graph",
    "memory",
    "model",
    "BFS",
    "ConnectedComponents",
    "EdgeCentricAlgorithm",
    "PageRank",
    "SSSP",
    "SpMV",
    "make_algorithm",
    "run_blocked",
    "run_vectorized",
    "AcceleratorMachine",
    "CPUMachine",
    "EnergyReport",
    "GraphRMachine",
    "HyVEConfig",
    "SimulationResult",
    "Workload",
    "make_machine",
    "DynamicGraphStore",
    "ConfigError",
    "ConvergenceError",
    "DynamicGraphError",
    "GraphError",
    "MemoryModelError",
    "PartitionError",
    "ReproError",
    "Graph",
    "IntervalBlockPartition",
    "load",
    "load_all",
    "rmat",
]
