"""Workload and machine configuration (Section 3 + Section 7.1 setup).

Two scale-related concepts live here:

* :class:`Workload` pairs a (possibly scaled-down synthetic) graph with
  the *reported* size of the dataset it stands in for.  Algorithms run
  on the synthetic graph (iteration counts, block statistics); traffic
  and energy are extrapolated linearly to the reported size, so the
  machine models operate at the paper's scale with nominal device
  capacities (2-16 MB SRAM, 4-16 Gb chips).
* :class:`HyVEConfig` fixes the machine: 8 PUs, per-PU on-chip SRAM, the
  memory technology of each level, data sharing, power gating.
  :func:`choose_num_intervals` derives the partition count P the way
  the paper does ("different partition numbers are used to fit into the
  SRAM"): the smallest multiple of N such that a source and a
  destination interval fit in each PU's scratchpad.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from ..graph.datasets import DATASETS
from ..graph.graph import Graph
from ..memory.dram import DRAMConfig
from ..memory.powergate import PowerGatingPolicy
from ..memory.reram import ReRAMConfig
from ..units import MB


@dataclass(frozen=True)
class Workload:
    """A graph plus the scale at which results are reported.

    ``reported_vertices``/``reported_edges`` default to the graph's own
    size (scale factor 1); dataset workloads report at the paper's
    original size.
    """

    graph: Graph
    reported_vertices: int | None = None
    reported_edges: int | None = None

    def __post_init__(self) -> None:
        if self.reported_vertices is not None and self.reported_vertices <= 0:
            raise ConfigError("reported vertex count must be positive")
        if self.reported_edges is not None and self.reported_edges <= 0:
            raise ConfigError("reported edge count must be positive")

    @classmethod
    def from_dataset(cls, key: str) -> "Workload":
        from ..graph.datasets import load

        spec = DATASETS[key.upper()]
        return cls(
            graph=load(key),
            reported_vertices=spec.paper_vertices,
            reported_edges=spec.paper_edges,
        )

    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def vertex_scale(self) -> float:
        """Multiplier from synthetic to reported vertex counts."""
        if self.reported_vertices is None or self.graph.num_vertices == 0:
            return 1.0
        return self.reported_vertices / self.graph.num_vertices

    @property
    def edge_scale(self) -> float:
        """Multiplier from synthetic to reported edge counts."""
        if self.reported_edges is None or self.graph.num_edges == 0:
            return 1.0
        return self.reported_edges / self.graph.num_edges


class MemoryTechnology:
    """String constants for level technologies."""

    RERAM = "reram"
    DRAM = "dram"
    SRAM = "sram"
    NONE = "none"


@dataclass(frozen=True)
class HyVEConfig:
    """Full machine configuration.

    The default values reproduce the paper's optimised design
    (acc+HyVE-opt): 8 PUs, 2 MB SRAM per PU, ReRAM edge memory with
    sub-bank interleaving and BPG, DRAM off-chip vertex memory, data
    sharing on.
    """

    label: str = "acc+HyVE-opt"
    num_pus: int = 8
    sram_bits: int = 2 * MB                    # per-PU scratchpad
    onchip_vertex: str = MemoryTechnology.SRAM  # "sram" or "none"
    edge_memory: str = MemoryTechnology.RERAM   # "reram" or "dram"
    offchip_vertex: str = MemoryTechnology.DRAM
    data_sharing: bool = True
    power_gating: PowerGatingPolicy = field(
        default_factory=PowerGatingPolicy
    )
    reram: ReRAMConfig = field(default_factory=ReRAMConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    #: Memory-level parallelism assumed when PUs bypass the scratchpad
    #: and issue random requests straight at main memory (acc+DRAM,
    #: acc+ReRAM baselines).
    random_access_mlp: int = 8
    #: Row-buffer/region hit rate of those direct vertex accesses: the
    #: schedule still confines them to the active interval region, so a
    #: large fraction hits open rows.
    region_hit_rate: float = 0.85
    #: Explicit partition count override (None: derived from the SRAM
    #: capacity).  Must be a positive multiple of ``num_pus``.
    num_intervals: int | None = None
    #: Hash-based vertex placement (ForeGraph/GraphH, Section 4.3):
    #: balances per-PU edge counts within each super-block step.
    hash_placement: bool = True

    def __post_init__(self) -> None:
        if self.num_pus <= 0:
            raise ConfigError(f"need at least one PU, got {self.num_pus}")
        if self.sram_bits <= 0:
            raise ConfigError(f"SRAM capacity must be positive: {self.sram_bits}")
        if self.edge_memory not in (MemoryTechnology.RERAM,
                                    MemoryTechnology.DRAM):
            raise ConfigError(f"unsupported edge memory {self.edge_memory!r}")
        if self.offchip_vertex not in (MemoryTechnology.RERAM,
                                       MemoryTechnology.DRAM):
            raise ConfigError(
                f"unsupported off-chip vertex memory {self.offchip_vertex!r}"
            )
        if self.onchip_vertex not in (MemoryTechnology.SRAM,
                                      MemoryTechnology.NONE):
            raise ConfigError(
                f"unsupported on-chip vertex memory {self.onchip_vertex!r}"
            )
        if self.data_sharing and self.onchip_vertex == MemoryTechnology.NONE:
            raise ConfigError(
                "data sharing requires an on-chip vertex memory"
            )
        if not 0.0 <= self.region_hit_rate <= 1.0:
            raise ConfigError(
                f"region hit rate must be in [0, 1]: {self.region_hit_rate}"
            )
        if self.num_intervals is not None:
            if self.num_intervals <= 0 or self.num_intervals % self.num_pus:
                raise ConfigError(
                    f"num_intervals ({self.num_intervals}) must be a "
                    f"positive multiple of num_pus ({self.num_pus})"
                )

    @property
    def has_onchip(self) -> bool:
        return self.onchip_vertex == MemoryTechnology.SRAM

    def renamed(self, label: str) -> "HyVEConfig":
        return replace(self, label=label)


def choose_num_intervals(
    config: HyVEConfig, num_vertices: float, vertex_bits: int
) -> int:
    """Partition count P for a graph of ``num_vertices`` (reported scale).

    Each PU's scratchpad holds one source and one destination interval
    (plus two header words each, negligible), so
    ``2 * ceil(Nv / P) * vertex_bits <= sram_bits``.  P is rounded up to
    a multiple of N (super-block scheduling) and is at least N.
    """
    if num_vertices <= 0:
        raise ConfigError(f"vertex count must be positive: {num_vertices}")
    if vertex_bits <= 0:
        raise ConfigError(f"vertex width must be positive: {vertex_bits}")
    n = config.num_pus
    if config.num_intervals is not None:
        return config.num_intervals
    if not config.has_onchip:
        # No scratchpad: partitioning only sequences the stream.
        return n
    min_p = math.ceil(2.0 * num_vertices * vertex_bits / config.sram_bits)
    p = max(n, math.ceil(min_p / n) * n)
    return p


# --- named configurations of the evaluation (Fig. 16) -----------------------

def config_hyve_opt() -> HyVEConfig:
    """acc+HyVE-opt: hybrid hierarchy + data sharing + power gating."""
    return HyVEConfig()


def config_hyve() -> HyVEConfig:
    """acc+HyVE: hybrid hierarchy, no power gating.

    Fig. 16's accelerator configurations all use the same data
    scheduling ("The data scheduling in these four configurations is
    the same"), so data sharing stays on; acc+HyVE-opt adds the
    BPG scheme on top.  The sharing ablation of Fig. 14 builds its own
    explicit configurations instead of using these names.
    """
    return HyVEConfig(
        label="acc+HyVE",
        power_gating=PowerGatingPolicy(enabled=False),
    )


def config_sram_dram() -> HyVEConfig:
    """acc+SRAM+DRAM (SD): conventional hierarchy, edges in DRAM."""
    return HyVEConfig(
        label="acc+SRAM+DRAM",
        edge_memory=MemoryTechnology.DRAM,
        power_gating=PowerGatingPolicy(enabled=False),
    )


def config_dram_only() -> HyVEConfig:
    """acc+DRAM: no scratchpad, vertices randomly accessed in DRAM."""
    return HyVEConfig(
        label="acc+DRAM",
        onchip_vertex=MemoryTechnology.NONE,
        edge_memory=MemoryTechnology.DRAM,
        offchip_vertex=MemoryTechnology.DRAM,
        data_sharing=False,
        power_gating=PowerGatingPolicy(enabled=False),
    )


def config_reram_only() -> HyVEConfig:
    """acc+ReRAM: DRAM naively swapped for ReRAM everywhere."""
    return HyVEConfig(
        label="acc+ReRAM",
        onchip_vertex=MemoryTechnology.NONE,
        edge_memory=MemoryTechnology.RERAM,
        offchip_vertex=MemoryTechnology.RERAM,
        data_sharing=False,
        power_gating=PowerGatingPolicy(enabled=False),
    )


NAMED_CONFIGS = {
    "acc+HyVE-opt": config_hyve_opt,
    "acc+HyVE": config_hyve,
    "acc+SRAM+DRAM": config_sram_dram,
    "acc+DRAM": config_dram_only,
    "acc+ReRAM": config_reram_only,
}
