"""Generic design-space sweep helper.

One call evaluates a machine configuration axis against a workload —
the workhorse of architecture exploration (the Table 4 / Figs. 13
methodology, exposed as API)::

    from repro.arch.sweep import sweep
    points = sweep("sram_bits", [2 * MB, 4 * MB, 8 * MB],
                   PageRank, Workload.from_dataset("LJ"))
    best = max(points, key=lambda p: p.report.mteps_per_watt)
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Sequence

from ..algorithms.base import EdgeCentricAlgorithm
from ..errors import ConfigError
from ..graph.graph import Graph
from .config import HyVEConfig, Workload
from .machine import AcceleratorMachine
from .report import EnergyReport


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration."""

    field: str
    value: Any
    config: HyVEConfig
    report: EnergyReport

    @property
    def mteps_per_watt(self) -> float:
        return self.report.mteps_per_watt


def sweep(
    field: str,
    values: Sequence[Any],
    algorithm_factory: Callable[[], EdgeCentricAlgorithm],
    workload: Workload | Graph,
    base_config: HyVEConfig | None = None,
) -> list[SweepPoint]:
    """Evaluate one config field across ``values``.

    ``field`` must be a top-level :class:`HyVEConfig` field (e.g.
    ``sram_bits``, ``num_pus``, ``data_sharing``, ``edge_memory``);
    device-level axes are swept by passing prepared ``ReRAMConfig`` /
    ``DRAMConfig`` values for the ``reram`` / ``dram`` fields.
    """
    base_config = base_config or HyVEConfig()
    valid = {f.name for f in fields(HyVEConfig)}
    if field not in valid:
        raise ConfigError(
            f"unknown HyVEConfig field {field!r}; valid: {sorted(valid)}"
        )
    if not values:
        raise ConfigError("sweep needs at least one value")
    if isinstance(workload, Graph):
        workload = Workload(workload)

    points: list[SweepPoint] = []
    for value in values:
        config = replace(base_config, **{field: value,
                                         "label": f"{field}={value}"})
        report = AcceleratorMachine(config).run(
            algorithm_factory(), workload
        ).report
        points.append(SweepPoint(field, value, config, report))
    return points


def best_point(points: list[SweepPoint]) -> SweepPoint:
    """The most energy-efficient point of a sweep."""
    if not points:
        raise ConfigError("empty sweep")
    return max(points, key=lambda p: p.report.mteps_per_watt)


def pareto_front(points: list[SweepPoint]) -> list[SweepPoint]:
    """Points not dominated on (energy, time) — lower is better on both."""
    front: list[SweepPoint] = []
    for candidate in points:
        dominated = any(
            other.report.total_energy <= candidate.report.total_energy
            and other.report.time <= candidate.report.time
            and (
                other.report.total_energy < candidate.report.total_energy
                or other.report.time < candidate.report.time
            )
            for other in points
        )
        if not dominated:
            front.append(candidate)
    return front
