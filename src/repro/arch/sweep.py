"""Generic design-space sweep helper.

One call evaluates a machine configuration axis against a workload —
the workhorse of architecture exploration (the Table 4 / Figs. 13
methodology, exposed as API)::

    from repro.arch.sweep import sweep
    points = sweep("sram_bits", [2 * MB, 4 * MB, 8 * MB],
                   PageRank, Workload.from_dataset("LJ"))
    best = max(points, key=lambda p: p.report.mteps_per_watt)

Long sweeps are robust by policy (:class:`SweepPolicy`): each point can
be bounded by a wall-clock timeout, retried with exponential backoff,
isolated so one failing configuration yields a structured
:class:`SweepPoint` carrying the error instead of killing the sweep,
and checkpointed to a JSONL file so an interrupted sweep resumes
without re-evaluating finished points.

Parallel sweeps are additionally *supervised*: a worker process dying
(OOM kill, segfault, chaos injection) breaks the whole
``ProcessPoolExecutor``, so the parent detects the break, respawns the
pool, re-dispatches only the points whose results were lost (charging
each a lost attempt), and after :data:`MAX_POOL_FAILURES` consecutive
pool deaths degrades to in-parent serial evaluation — a sweep finishes
with structured results no matter how workers die.  See
docs/robustness.md for the supervision policy.
"""

from __future__ import annotations

import concurrent.futures
import json
import time
import warnings
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Callable, Sequence

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import AlgorithmRun, run_cached
from ..errors import ConfigError, SweepPointError
from ..graph.graph import Graph
from ..obs import metrics as obs_metrics
from ..obs.trace import get_tracer
from ..perf.shm import resolve_workload, share_workload
from .config import HyVEConfig, Workload
from .machine import AcceleratorMachine, fold_many
from .report import EnergyReport

#: Consecutive broken-pool events a parallel sweep absorbs by
#: respawning before it gives up on process isolation and finishes the
#: remaining points serially in the parent.
MAX_POOL_FAILURES = 2


@dataclass(frozen=True)
class SweepPolicy:
    """Robustness knobs for :func:`sweep`.

    Attributes:
        timeout: wall-clock budget (seconds) for one evaluation attempt;
            ``None`` means unbounded.  A timed-out attempt counts as a
            failure (and is retried if retries remain).
        retries: extra attempts after the first failure of a point.
        backoff: sleep before retry ``k`` is ``backoff * 2**(k - 1)``
            seconds — transient failures (memory pressure, flaky I/O)
            get breathing room without stalling a healthy sweep.
        isolate_errors: when True, a point whose every attempt failed
            becomes a structured failed :class:`SweepPoint` (``report``
            is None, ``error`` holds the message) and the sweep
            continues; when False the :class:`SweepPointError` (with the
            underlying cause chained) propagates.
        checkpoint_path: JSONL file recording each finished point.  A
            sweep started with an existing checkpoint reuses every
            successful point recorded there (keyed on the swept field
            and ``repr(value)``) and only evaluates the rest; failed
            points are re-attempted on resume.
        max_workers: process fan-out.  1 (the default) evaluates points
            serially in-process; above 1 the points are distributed over
            a ``ProcessPoolExecutor``.  Results keep the order of
            ``values`` exactly, per-point timeout/retry/isolation apply
            inside each worker, the checkpoint is appended by the parent
            in deterministic order, and the workers warm the shared
            on-disk run cache (:mod:`repro.perf.cache`) as they go.
            The pool is supervised: a dying worker triggers a respawn
            and re-dispatch of only the lost points, degrading to
            serial evaluation after :data:`MAX_POOL_FAILURES` broken
            pools.  Requires a picklable ``algorithm_factory`` (a
            class or a module-level function, not a lambda).
        batch: evaluate the serial path simulate-once / price-many: the
            pending points are grouped by shared schedule-counts key
            (:class:`BatchPlan`) and each group is priced by one
            vectorized :func:`repro.arch.machine.fold_many` call,
            bit-identical per point to the plain loop.  Batching only
            engages when it cannot change semantics — no per-point
            timeout, no fault profile, serial evaluation — and any
            batch failure falls back to the per-point path (with its
            full retry/backoff/isolation behaviour).  Set False to
            force the plain per-point loop.
    """

    timeout: float | None = None
    retries: int = 0
    backoff: float = 0.1
    isolate_errors: bool = False
    checkpoint_path: str | Path | None = None
    max_workers: int = 1
    batch: bool = True

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(f"timeout must be positive: {self.timeout}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0: {self.retries}")
        if self.backoff < 0:
            raise ConfigError(f"backoff must be >= 0: {self.backoff}")
        if self.max_workers < 1:
            raise ConfigError(
                f"max_workers must be >= 1: {self.max_workers}"
            )


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration.

    ``report`` is ``None`` for a point that failed under an
    error-isolating policy; ``error`` then carries the final failure
    message and ``attempts`` how many tries were spent.
    """

    field: str
    value: Any
    config: HyVEConfig | None
    report: EnergyReport | None
    error: str | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.report is not None

    @property
    def mteps_per_watt(self) -> float:
        if self.report is None:
            raise SweepPointError(
                f"point {self.field}={self.value!r} failed: {self.error}"
            )
        return self.report.mteps_per_watt

    @property
    def metrics(self) -> dict:
        """Deterministic per-point metrics (CSV / checkpoint columns).

        Derived from the evaluated report, never from process state, so
        a parallel sweep renders byte-identically to a serial one.
        """
        out = {"retries": max(self.attempts - 1, 0)}
        if self.report is not None:
            out["iterations"] = self.report.iterations
            out["edges_streamed"] = self.report.edges_traversed
        return out


def _point_key(field: str, value: Any) -> str:
    return f"{field}={value!r}"


def _load_checkpoint(path: Path) -> dict[str, dict]:
    """Read a JSONL checkpoint; later lines win for the same key.

    A process killed mid-append (SIGKILL, power loss) leaves exactly
    one truncated *trailing* line — recognisable because the append
    never reached its terminating newline.  That one shape is tolerated
    with a warning: the point it described is simply re-evaluated.
    Anything else — corruption before the tail, or a complete
    (newline-terminated) line that does not parse — cannot come from a
    torn append and raises :class:`ConfigError`.
    """
    entries: dict[str, dict] = {}
    if not path.exists():
        return entries
    text = path.read_text(encoding="utf-8")
    torn_tail = bool(text) and not text.endswith("\n")
    numbered = [(lineno, line.strip())
                for lineno, line in enumerate(text.splitlines(), start=1)]
    numbered = [(lineno, line) for lineno, line in numbered if line]
    last_lineno = numbered[-1][0] if numbered else None
    for lineno, line in numbered:
        try:
            record = json.loads(line)
            entries[record["key"]] = record
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            if lineno == last_lineno and torn_tail:
                warnings.warn(
                    f"{path}:{lineno}: dropping truncated trailing "
                    f"checkpoint line (torn append; the point will be "
                    f"re-evaluated): {exc}",
                    stacklevel=2,
                )
                continue
            raise ConfigError(
                f"{path}:{lineno}: corrupt sweep checkpoint line "
                f"({exc})"
            ) from exc
    return entries


def _append_checkpoint(path: Path, record: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")
        fh.flush()


def _evaluate_once(
    config: HyVEConfig,
    algorithm_factory: Callable[[], EdgeCentricAlgorithm],
    workload: Workload,
    faults,
    timeout: float | None,
    executor: concurrent.futures.ThreadPoolExecutor | None = None,
) -> EnergyReport:
    """One evaluation attempt, optionally bounded by a timeout.

    The timeout runs the model on a worker thread (from the per-point
    ``executor``) and abandons it on expiry — the orphaned thread
    finishes in the background (the model is pure compute with no side
    effects), but the sweep moves on.
    """
    def run() -> EnergyReport:
        return AcceleratorMachine(config, faults=faults).run(
            algorithm_factory(), workload
        ).report

    if timeout is None:
        return run()
    future = executor.submit(run)
    try:
        return future.result(timeout=timeout)
    except concurrent.futures.TimeoutError:
        future.cancel()
        raise SweepPointError(
            f"evaluation exceeded {timeout:g}s timeout"
        ) from None


def _evaluate_point(
    config: HyVEConfig,
    algorithm_factory: Callable[[], EdgeCentricAlgorithm],
    workload: Workload,
    faults,
    policy: SweepPolicy,
    first_error: BaseException | None = None,
) -> tuple[EnergyReport | None, str | None, int]:
    """Retry loop around one point: (report, error, attempts spent).

    ``first_error`` records a failure that already consumed this
    point's first attempt before the loop (the batch planner's shared
    convergence failing); the loop then starts directly at the first
    *retry*, with its usual backoff and retry accounting.
    """
    from ..faults.chaos import get_chaos

    chaos = get_chaos()
    if chaos is not None:
        # Only ever fires in a pool worker (PID-guarded): the sweep
        # supervisor and serial sweeps are never killed.
        chaos.maybe_kill_worker()
    last_error: BaseException | None = first_error
    attempts = 1 if first_error is not None else 0
    tracer = get_tracer()
    executor: concurrent.futures.ThreadPoolExecutor | None = None
    if policy.timeout is not None:
        # One pool per point, sized so every retry gets a fresh thread
        # even while earlier timed-out attempts still occupy theirs:
        # an orphaned attempt finishes in the background while the
        # sweep moves on.
        executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=policy.retries + 1
        )
    try:
        for attempt in range(attempts, policy.retries + 1):
            if attempt > 0:
                obs_metrics.get_metrics().counter(
                    obs_metrics.SWEEP_POINT_RETRIES
                ).add()
                if policy.backoff > 0:
                    time.sleep(policy.backoff * 2 ** (attempt - 1))
            attempts += 1
            try:
                with tracer.span("sweep_point", label=config.label,
                                 attempt=attempts):
                    report = _evaluate_once(config, algorithm_factory,
                                            workload, faults,
                                            policy.timeout, executor)
                return report, None, attempts
            except Exception as exc:  # isolated per point by design
                last_error = exc
    finally:
        if executor is not None:
            executor.shutdown(wait=False)
    message = f"{type(last_error).__name__}: {last_error}"
    if policy.isolate_errors:
        return None, message, attempts
    raise SweepPointError(
        f"sweep point {config.label!r} failed after "
        f"{attempts} attempt(s): {message}"
    ) from last_error


def _evaluate_point_task(
    config: HyVEConfig,
    algorithm_factory: Callable[[], EdgeCentricAlgorithm],
    workload_payload,
    faults,
    policy: SweepPolicy,
) -> tuple[EnergyReport | None, str | None, int]:
    """Pool-worker entry: resolve the workload payload, then evaluate.

    ``workload_payload`` is whatever :func:`repro.perf.shm.share_workload`
    produced in the parent — a :class:`~repro.perf.shm.SharedWorkloadRef`
    (workers attach to the published graph segments, memoised per
    fingerprint, instead of unpickling the edge arrays per task) or the
    plain workload when shared memory was unavailable.  Shard-backed
    workloads (:func:`repro.graph.shards.sharded_workload`) arrive the
    same way: their ref carries a shard-store directory and workers
    memory-map the files instead of attaching segments, so paper-scale
    sweeps fan out without the edge list ever crossing a pipe.
    """
    return _evaluate_point(
        config, algorithm_factory, resolve_workload(workload_payload),
        faults, policy,
    )


def _evaluate_parallel(
    slots: Sequence["SweepPoint | HyVEConfig"],
    pending: Sequence[int],
    algorithm_factory: Callable[[], EdgeCentricAlgorithm],
    workload: Workload,
    faults,
    policy: SweepPolicy,
    outcomes: dict[int, tuple[EnergyReport | None, str | None, int]],
) -> None:
    """Dispatch pending points over a supervised process pool.

    A dying worker (OOM kill, segfault, chaos) poisons the whole
    ``ProcessPoolExecutor`` — every outstanding future raises
    :class:`BrokenProcessPool`.  The supervisor harvests whatever
    results completed before the break, respawns the pool, and
    re-dispatches only the lost points, charging each one lost attempt
    so ``SweepPoint.attempts`` reflects the real cost.  After
    :data:`MAX_POOL_FAILURES` consecutive broken pools it stops
    trusting process isolation and evaluates the remainder serially in
    the parent, which cannot be killed by a worker fault.
    """
    # Workers always isolate; the parent re-raises in deterministic
    # order in pass 3, so strict sweeps fail on the same point they
    # would have serially.  Each worker process shares the on-disk run
    # cache, warming it for the others.
    worker_policy = replace(policy, isolate_errors=True,
                            checkpoint_path=None, max_workers=1)
    # Publish the workload's graph once; every task then ships a tiny
    # ref instead of a pickled edge list.  The segments stay owned by
    # the parent, so they survive pool respawns, and ``share_workload``
    # falls back to the plain workload when shared memory is missing.
    workload_payload = share_workload(workload)
    metrics = obs_metrics.get_metrics()
    remaining = list(pending)
    lost_attempts = {idx: 0 for idx in remaining}
    pool_failures = 0
    while remaining:
        if pool_failures >= MAX_POOL_FAILURES:
            metrics.counter(obs_metrics.SWEEP_SERIAL_FALLBACKS).add(1)
            for idx in remaining:
                report, error, attempts = _evaluate_point(
                    slots[idx], algorithm_factory, workload, faults,
                    worker_policy,
                )
                outcomes[idx] = (report, error,
                                 attempts + lost_attempts[idx])
            return
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(policy.max_workers, len(remaining))
        )
        lost: list[int] = []
        try:
            try:
                futures = {
                    idx: pool.submit(
                        _evaluate_point_task, slots[idx],
                        algorithm_factory, workload_payload, faults,
                        worker_policy,
                    )
                    for idx in remaining
                }
            except BrokenProcessPool:
                # The pool broke during dispatch: everything not yet
                # submitted (and everything submitted) is lost.
                lost = list(remaining)
            else:
                for idx in remaining:
                    try:
                        outcomes[idx] = futures[idx].result()
                    except BrokenProcessPool:
                        # This point's worker died (or the pool was
                        # already broken when its turn came).  Keep
                        # harvesting: futures that completed before the
                        # break still hold real results.
                        lost.append(idx)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if not lost:
            break
        pool_failures += 1
        for idx in lost:
            lost_attempts[idx] += 1
        if pool_failures < MAX_POOL_FAILURES:
            metrics.counter(obs_metrics.SWEEP_POOL_RESPAWNS).add(1)
        remaining = lost
    for idx in pending:
        if lost_attempts[idx] and idx in outcomes:
            report, error, attempts = outcomes[idx]
            outcomes[idx] = (report, error,
                             attempts + lost_attempts[idx])


def _batchable(policy: SweepPolicy, faults) -> bool:
    """Whether the serial path may evaluate simulate-once / price-many.

    Batching must be invisible: a per-point timeout bounds each
    evaluation's wall clock individually, and a fault profile perturbs
    devices per machine — both force the plain per-point loop.
    """
    return (
        policy.batch
        and policy.timeout is None
        and (faults is None or faults.is_zero)
    )


@dataclass(frozen=True)
class BatchPlan:
    """Pending sweep points grouped by shared schedule-counts key.

    Built once per serial sweep: the algorithm converges once
    (``run``), then each group — configurations whose
    :func:`repro.perf.batch.counts_cache_key` matches — shares one
    Equations (3)-(8) expansion and is priced by a single vectorized
    :func:`repro.arch.machine.fold_many` pass.  Any group that fails to
    batch is re-priced point by point with the full retry/backoff/
    isolation loop, so the observable results (reports, attempt counts,
    error messages, checkpoint records) match the plain loop exactly.
    """

    run: AlgorithmRun
    groups: tuple[tuple[int, ...], ...]

    @classmethod
    def build(
        cls,
        run: AlgorithmRun,
        workload: Workload,
        configs_by_index: Sequence[tuple[int, HyVEConfig]],
    ) -> "BatchPlan":
        from ..perf.batch import counts_cache_key

        groups: dict[str, list[int]] = {}
        for idx, config in configs_by_index:
            groups.setdefault(
                counts_cache_key(run, workload, config), []
            ).append(idx)
        return cls(
            run=run,
            groups=tuple(tuple(g) for g in groups.values()),
        )

    def evaluate(
        self,
        slots: Sequence["SweepPoint | HyVEConfig"],
        workload: Workload,
        algorithm_factory: Callable[[], EdgeCentricAlgorithm],
        faults,
        policy: SweepPolicy,
        outcomes: dict[int, tuple[EnergyReport | None, str | None, int]],
    ) -> None:
        from ..perf.batch import scheduled_counts

        tracer = get_tracer()
        for group in self.groups:
            configs = [slots[idx] for idx in group]
            try:
                with tracer.span("sweep_batch", points=len(group)):
                    counts = scheduled_counts(
                        self.run, workload, configs[0]
                    )
                    reports = fold_many(
                        self.run, counts, workload, configs
                    )
            except Exception:
                # The batched fold rejected the group; price its
                # points individually (full retry semantics).
                for idx in group:
                    outcomes[idx] = _evaluate_point(
                        slots[idx], algorithm_factory, workload,
                        faults, replace(policy, isolate_errors=True),
                    )
                continue
            for idx, report in zip(group, reports):
                outcomes[idx] = (report, None, 1)


def sweep(
    field: str,
    values: Sequence[Any],
    algorithm_factory: Callable[[], EdgeCentricAlgorithm],
    workload: Workload | Graph,
    base_config: HyVEConfig | None = None,
    policy: SweepPolicy | None = None,
    faults=None,
) -> list[SweepPoint]:
    """Evaluate one config field across ``values``.

    ``field`` must be a top-level :class:`HyVEConfig` field (e.g.
    ``sram_bits``, ``num_pus``, ``data_sharing``, ``edge_memory``);
    device-level axes are swept by passing prepared ``ReRAMConfig`` /
    ``DRAMConfig`` values for the ``reram`` / ``dram`` fields.

    ``policy`` governs per-point timeout/retry/error isolation and
    checkpoint/resume; the default policy is strict (no timeout, no
    retries, first failure propagates), matching a plain loop.
    ``faults`` optionally threads a :class:`repro.faults.FaultProfile`
    into every evaluated machine.
    """
    base_config = base_config or HyVEConfig()
    policy = policy or SweepPolicy()
    valid = {f.name for f in fields(HyVEConfig)}
    if field not in valid:
        raise ConfigError(
            f"unknown HyVEConfig field {field!r}; valid: {sorted(valid)}"
        )
    if not values:
        raise ConfigError("sweep needs at least one value")
    if isinstance(workload, Graph):
        workload = Workload(workload)

    checkpoint: dict[str, dict] = {}
    checkpoint_path: Path | None = None
    if policy.checkpoint_path is not None:
        checkpoint_path = Path(policy.checkpoint_path)
        checkpoint = _load_checkpoint(checkpoint_path)

    # Pass 1 — plan: construct configs, resolve checkpoint reuse, and
    # collect the points that actually need evaluating.  ``slots`` holds
    # one entry per value, either a finished SweepPoint or a config
    # pending evaluation; result order therefore always matches
    # ``values`` exactly, serial or parallel.
    slots: list[SweepPoint | HyVEConfig] = []
    pending: list[int] = []
    for value in values:
        key = _point_key(field, value)
        try:
            config = replace(base_config, **{field: value,
                                             "label": f"{field}={value}"})
        except Exception as exc:
            # An invalid value fails at config construction, before any
            # evaluation; isolate it the same way as an evaluation error.
            if not policy.isolate_errors:
                raise SweepPointError(
                    f"sweep value {field}={value!r} rejected: {exc}"
                ) from exc
            error = f"{type(exc).__name__}: {exc}"
            slots.append(SweepPoint(field, value, None, None,
                                    error=error, attempts=0))
            if checkpoint_path is not None:
                _append_checkpoint(checkpoint_path, {
                    "key": key, "field": field, "value_repr": repr(value),
                    "report": None, "error": error, "attempts": 0,
                    "metrics": {"retries": 0},
                })
            continue
        cached = checkpoint.get(key)
        if cached is not None and cached.get("report") is not None:
            slots.append(SweepPoint(
                field, value, config,
                EnergyReport.from_dict(cached["report"]),
                attempts=int(cached.get("attempts", 1)),
            ))
            continue
        pending.append(len(slots))
        slots.append(config)

    # Pass 2 — evaluate pending points, serially or over a process pool.
    outcomes: dict[int, tuple[EnergyReport | None, str | None, int]] = {}
    if policy.max_workers > 1 and len(pending) > 1:
        _evaluate_parallel(slots, pending, algorithm_factory, workload,
                           faults, policy, outcomes)
    else:
        plan: BatchPlan | None = None
        batch_error: BaseException | None = None
        if pending and _batchable(policy, faults):
            try:
                run = run_cached(algorithm_factory(), workload.graph)
            except Exception as exc:
                # The shared convergence is exactly the work the first
                # pending point's first attempt would have done; charge
                # the failure to that point's retry budget below.
                batch_error = exc
            else:
                try:
                    plan = BatchPlan.build(
                        run, workload,
                        [(idx, slots[idx]) for idx in pending],
                    )
                except Exception:
                    plan = None  # un-batchable shape: plain loop
        if plan is not None:
            plan.evaluate(slots, workload, algorithm_factory, faults,
                          policy, outcomes)
        else:
            for n, idx in enumerate(pending):
                outcomes[idx] = _evaluate_point(
                    slots[idx], algorithm_factory, workload, faults,
                    replace(policy, isolate_errors=True),
                    first_error=batch_error if n == 0 else None,
                )

    # Pass 3 — assemble points in value order, appending the checkpoint
    # and enforcing strict-mode propagation deterministically.
    points: list[SweepPoint] = []
    for i, (value, slot) in enumerate(zip(values, slots)):
        if isinstance(slot, SweepPoint):
            points.append(slot)
            continue
        config = slot
        report, error, attempts = outcomes[i]
        if error is not None and not policy.isolate_errors:
            raise SweepPointError(
                f"sweep point {config.label!r} failed after "
                f"{attempts} attempt(s): {error}"
            )
        point = SweepPoint(field, value, config, report,
                           error=error, attempts=attempts)
        points.append(point)
        if checkpoint_path is not None:
            _append_checkpoint(checkpoint_path, {
                "key": _point_key(field, value),
                "field": field,
                "value_repr": repr(value),
                "report": report.to_dict() if report else None,
                "error": error,
                "attempts": attempts,
                "metrics": point.metrics,
            })
    return points


def sweep_axis(
    values: Sequence[Any],
    make_config: Callable[[Any], HyVEConfig],
    algorithm_factory: Callable[[], EdgeCentricAlgorithm],
    workload: Workload | Graph,
    faults=None,
):
    """Price one axis of prepared configurations simulate-once.

    The cacti-style component-sweep idiom shared by the figure drivers
    and the autotuner: map each axis value to a full
    :class:`HyVEConfig` with ``make_config`` and price the whole axis
    through :func:`repro.perf.batch.run_grid` (converge once, expand
    each distinct counts key once, fold each group vectorized).
    Returns one :class:`~repro.arch.machine.SimulationResult` per
    value, in order, bit-identical to a serial ``run()`` loop.

    Unlike :func:`sweep` this takes a config *constructor*, so axes
    that live inside nested device dataclasses (densities, BPG
    timeouts, cell bits) sweep without hand-building the grid at every
    call site.
    """
    from ..perf.batch import run_grid

    return run_grid(
        algorithm_factory(),
        workload,
        [make_config(value) for value in values],
        faults=faults,
    )


def points_to_csv(points: list[SweepPoint]) -> str:
    """Render a sweep as CSV (one row per point, in sweep order).

    Failed points appear with empty metric columns and the error
    message in the ``error`` column, so a parallel sweep and a serial
    sweep over the same values render byte-identically.
    """
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "field", "value", "label", "energy_j", "time_s",
        "mteps_per_watt", "iterations", "edges_streamed", "retries",
        "attempts", "error",
    ])
    for point in points:
        m = point.metrics
        if point.report is None:
            writer.writerow([
                point.field, repr(point.value),
                point.config.label if point.config else "",
                "", "", "", "", "", m["retries"],
                point.attempts, point.error or "",
            ])
        else:
            writer.writerow([
                point.field, repr(point.value), point.config.label,
                repr(point.report.total_energy), repr(point.report.time),
                repr(point.report.mteps_per_watt),
                m["iterations"], repr(m["edges_streamed"]), m["retries"],
                point.attempts, "",
            ])
    return buffer.getvalue()


def successful_points(points: list[SweepPoint]) -> list[SweepPoint]:
    """The subset of points that evaluated cleanly."""
    return [p for p in points if p.ok]


def best_point(points: list[SweepPoint]) -> SweepPoint:
    """The most energy-efficient successful point of a sweep."""
    candidates = successful_points(points)
    if not candidates:
        raise ConfigError("empty sweep")
    return max(candidates, key=lambda p: p.report.mteps_per_watt)


def pareto_front(points: list[SweepPoint]) -> list[SweepPoint]:
    """Points not dominated on (energy, time) — lower is better on both."""
    candidates = successful_points(points)
    front: list[SweepPoint] = []
    for candidate in candidates:
        dominated = any(
            other.report.total_energy <= candidate.report.total_energy
            and other.report.time <= candidate.report.time
            and (
                other.report.total_energy < candidate.report.total_energy
                or other.report.time < candidate.report.time
            )
            for other in candidates
        )
        if not dominated:
            front.append(candidate)
    return front
