"""The accelerator machine model: folds schedule counts into time/energy.

This is the reproduction of the paper's cycle-level simulator at
trace granularity (see DESIGN.md): the algorithm really runs (producing
iteration counts and results), the schedule expands into exact access
counts (Equations (3)-(8)), and this module prices those counts with the
device models and integrates background power over the modelled
execution time — the decomposition of Fig. 8 / Equations (1)-(2).

One machine class covers every accelerator configuration of Fig. 16
(acc+DRAM, acc+ReRAM, acc+SRAM+DRAM, acc+HyVE, acc+HyVE-opt): the
configuration selects the technology at each level and the two
optimisations; the folding logic is shared.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import AlgorithmRun, run_cached
from ..errors import ConfigError
from ..faults.injector import FaultInjector
from ..faults.profile import FaultProfile
from ..faults.resilience import (
    BankSparingPlan,
    FaultReport,
    WRITE_RETRY_BOUND,
    expected_write_rounds,
    write_give_up_probability,
)
from ..graph.graph import Graph
from ..memory.base import AccessCost, AccessKind, AccessPattern, MemoryDevice
from ..memory.dram import DDR4Chip
from ..memory.ecc import SECDEDDevice, secded_factor, secded_logic_energy
from ..memory.powergate import BankPowerGating, GatingReport
from ..memory.reram import ReRAMChip
from ..memory.sram import OnChipSRAM
from ..obs import metrics as obs_metrics
from ..obs.trace import get_tracer
from . import params, report as rpt
from .config import HyVEConfig, MemoryTechnology, Workload
from .processing_unit import ProcessingUnitModel
from .report import EnergyReport
from .router import RouterModel
from .scheduler import ScheduleCounts

#: Slack factor sizing the memory footprint (30% reserve, Section 5).
FOOTPRINT_SLACK = 1.3

#: The edge memory needs the full 512-bit streaming channel, which on a
#: commodity organisation spans a rank of x64 chips; its background
#: power therefore scales with the full rank even for small datasets.
#: The vertex memory has far lower bandwidth demands ("much smaller
#: capacity... static power is not the main optimization target",
#: Section 3.2) and is provisioned per capacity only.
MIN_EDGE_CHIPS_PER_RANK = 8
MIN_VERTEX_CHIPS = 1


@dataclass(frozen=True)
class SimulationResult:
    """Report plus the algorithm's actual output values.

    ``faults`` carries the injected-fault tally when the machine was
    built with a non-zero :class:`FaultProfile`; it is ``None`` on the
    (bit-identical) ideal-device path.
    """

    report: EnergyReport
    run: AlgorithmRun
    faults: FaultReport | None = None

    @property
    def values(self):
        return self.run.values


class AcceleratorMachine:
    """A graph-processing accelerator with a configurable hierarchy.

    ``faults`` selects a fault profile (see :mod:`repro.faults`); with
    ``None`` or an all-zero profile the machine is exactly the paper's
    ideal-device model — every report is bit-identical to a machine
    built without the argument.
    """

    def __init__(
        self,
        config: HyVEConfig | None = None,
        faults: FaultProfile | None = None,
    ) -> None:
        self.config = config or HyVEConfig()
        self.faults = faults

    @property
    def label(self) -> str:
        return self.config.label

    # --- device construction ------------------------------------------------

    def _edge_device(self, footprint_bits: float) -> tuple[MemoryDevice, int]:
        cfg = self.config
        if cfg.edge_memory == MemoryTechnology.RERAM:
            device: MemoryDevice = ReRAMChip(cfg.reram)
            density = cfg.reram.density_bits
        else:
            device = DDR4Chip(cfg.dram)
            density = cfg.dram.density_bits
        chips = max(MIN_EDGE_CHIPS_PER_RANK,
                    math.ceil(footprint_bits / density))
        return device, chips

    def _vertex_device(self, footprint_bits: float) -> tuple[MemoryDevice, int]:
        cfg = self.config
        if cfg.offchip_vertex == MemoryTechnology.RERAM:
            device: MemoryDevice = ReRAMChip(cfg.reram)
            density = cfg.reram.density_bits
        else:
            device = DDR4Chip(cfg.dram)
            density = cfg.dram.density_bits
        chips = max(MIN_VERTEX_CHIPS,
                    math.ceil(footprint_bits / density))
        return device, chips

    # --- main entry ---------------------------------------------------------

    def run(
        self,
        algorithm: EdgeCentricAlgorithm,
        workload: Workload | Graph,
    ) -> SimulationResult:
        """Execute ``algorithm`` and model the machine's time and energy."""
        if isinstance(workload, Graph):
            workload = Workload(workload)
        tracer = get_tracer()
        with tracer.span(
            "machine.run",
            machine=self.config.label,
            algorithm=algorithm.name,
            graph=workload.name,
        ):
            with tracer.span("algorithm.converge", algorithm=algorithm.name):
                run = run_cached(algorithm, workload.graph)
            with tracer.span("schedule.counts"):
                # Memoized in the two-level run cache (simulate once /
                # price many); bit-identical to ScheduleCounts.compute.
                from ..perf.batch import scheduled_counts

                counts = scheduled_counts(run, workload, self.config)
            with tracer.span("fold"):
                report, fault_report = self._fold(run, counts, workload)
        return SimulationResult(report=report, run=run, faults=fault_report)

    def run_counts(
        self,
        algorithm: EdgeCentricAlgorithm,
        workload: Workload | Graph,
    ) -> ScheduleCounts:
        """Expose the schedule counts (for tests and the analytic model)."""
        if isinstance(workload, Graph):
            workload = Workload(workload)
        run = run_cached(algorithm, workload.graph)
        return ScheduleCounts.compute(run, workload, self.config)

    # --- folding -------------------------------------------------------------

    def _fold(
        self,
        run: AlgorithmRun,
        counts: ScheduleCounts,
        workload: Workload,
    ) -> tuple[EnergyReport, FaultReport | None]:
        cfg = self.config
        edge_footprint = (
            counts.edges_total / counts.iterations
        ) * counts.edge_bits * FOOTPRINT_SLACK
        vertex_footprint = counts.vertices * counts.vertex_bits * FOOTPRINT_SLACK

        edge_dev, edge_chips = self._edge_device(edge_footprint)
        vertex_dev, vertex_chips = self._vertex_device(vertex_footprint)

        # --- fault injection & resilience provisioning --------------------
        # Every fault effect below is guarded on a non-zero profile; with
        # faults disabled this whole section is skipped and the fold is
        # bit-identical to the ideal-device model.
        profile = self.faults
        fault_active = profile is not None and not profile.is_zero
        injector: FaultInjector | None = None
        fault_report: FaultReport | None = None
        sparing: BankSparingPlan | None = None
        raw_edge_dev, raw_vertex_dev = edge_dev, vertex_dev
        sram_ecc = 1.0
        write_rounds = 1.0
        if fault_active:
            injector = FaultInjector(
                profile,
                tag=f"{cfg.label}|{run.algorithm}|{workload.name}",
            )
            fault_report = FaultReport(profile)
            word_stats = injector.stuck_word_stats()
            fault_report.corrected_word_fraction = (
                word_stats.correctable_fraction
            )
            fault_report.remapped_word_fraction = (
                word_stats.uncorrectable_fraction
            )
            reram_faulty = (
                profile.effective_stuck_rate > 0
                or profile.bank_failure_rate > 0
            )
            if cfg.edge_memory == MemoryTechnology.RERAM:
                failed = injector.sample_failed_banks(
                    edge_chips * cfg.reram.num_banks
                )
                sparing, edge_chips = BankSparingPlan.build(
                    footprint_bits=edge_footprint,
                    chips=edge_chips,
                    banks_per_chip=cfg.reram.num_banks,
                    bank_capacity_bits=cfg.reram.bank_capacity_bits,
                    density_bits=cfg.reram.density_bits,
                    failed_banks=failed,
                    bad_word_fraction=word_stats.uncorrectable_fraction,
                )
                fault_report.failed_banks = failed
                fault_report.spare_chips = sparing.spare_chips
                fault_report.capacity_loss_fraction = (
                    sparing.capacity_loss_fraction
                )
                fault_report.stuck_cells = injector.sample_stuck_cells(
                    edge_chips * cfg.reram.density_bits
                )
            if (cfg.edge_memory == MemoryTechnology.RERAM and reram_faulty) or (
                cfg.edge_memory == MemoryTechnology.DRAM
                and profile.dram_upset_rate > 0
            ):
                edge_dev = SECDEDDevice(edge_dev)
            if (
                cfg.offchip_vertex == MemoryTechnology.RERAM and reram_faulty
            ) or (
                cfg.offchip_vertex == MemoryTechnology.DRAM
                and profile.dram_upset_rate > 0
            ):
                vertex_dev = SECDEDDevice(vertex_dev)
            if cfg.has_onchip and profile.sram_upset_rate > 0:
                sram_ecc = secded_factor()
            if profile.reram_write_fail_rate > 0:
                write_rounds = expected_write_rounds(
                    profile.reram_write_fail_rate, WRITE_RETRY_BOUND
                )
                fault_report.expected_write_rounds = write_rounds
                fault_report.write_give_up_probability = (
                    write_give_up_probability(
                        profile.reram_write_fail_rate, WRITE_RETRY_BOUND
                    )
                )

        sram = OnChipSRAM(cfg.sram_bits) if cfg.has_onchip else None
        pu = ProcessingUnitModel(
            sram_cycle=(
                sram.point.read_latency
                if sram is not None
                else edge_dev.access_cost(
                    AccessKind.READ, AccessPattern.RANDOM
                ).latency / cfg.random_access_mlp
            )
        )
        router = RouterModel(cfg.num_pus)

        report = EnergyReport(
            machine=cfg.label,
            algorithm=run.algorithm,
            graph=workload.name,
            edges_traversed=counts.edges_total,
            iterations=counts.iterations,
            time=0.0,
        )

        # --- dynamic energy and busy times --------------------------------
        edge_stream = edge_dev.transfer_cost(
            AccessKind.READ, counts.edge_stream_bits, AccessPattern.SEQUENTIAL
        )
        seek_unit = edge_dev.access_cost(AccessKind.READ, AccessPattern.RANDOM)
        seq_unit = edge_dev.access_cost(
            AccessKind.READ, AccessPattern.SEQUENTIAL
        )
        seek_extra_latency = counts.block_seeks * max(
            0.0, seek_unit.latency - seq_unit.latency
        )
        report.add(rpt.EDGE_MEMORY, edge_stream.energy)

        load = vertex_dev.transfer_cost(
            AccessKind.READ, counts.offchip_load_bits, AccessPattern.SEQUENTIAL
        )
        store = vertex_dev.transfer_cost(
            AccessKind.WRITE, counts.offchip_store_bits,
            AccessPattern.SEQUENTIAL,
        )
        # Machines without a scratchpad follow the same interval
        # schedule, so their "random" vertex accesses land inside the
        # active interval region: they hit open rows at region_hit_rate
        # and move only a narrow burst (one 64-bit beat-pair), not the
        # full 512-bit streaming access.
        hit = cfg.region_hit_rate
        rnd_read = _narrow_random_cost(vertex_dev, AccessKind.READ, hit)
        rnd_write = _narrow_random_cost(vertex_dev, AccessKind.WRITE, hit)
        # Write-verify retries multiply every ReRAM vertex write's energy
        # and latency by the expected program-round count.
        if write_rounds != 1.0 and cfg.offchip_vertex == MemoryTechnology.RERAM:
            store = AccessCost(
                store.latency * write_rounds, store.energy * write_rounds
            )
            rnd_write = AccessCost(
                rnd_write.latency * write_rounds,
                rnd_write.energy * write_rounds,
            )
        report.add(
            rpt.OFFCHIP_VERTEX,
            load.energy
            + store.energy
            + counts.random_read_ops * rnd_read.energy
            + counts.random_write_ops * rnd_write.energy,
        )

        resil_energy = 0.0
        if fault_report is not None:
            if edge_dev is not raw_edge_dev:
                resil_energy += (
                    edge_stream.energy
                    - raw_edge_dev.transfer_cost(
                        AccessKind.READ,
                        counts.edge_stream_bits,
                        AccessPattern.SEQUENTIAL,
                    ).energy
                )
            if vertex_dev is not raw_vertex_dev or (
                write_rounds != 1.0
                and cfg.offchip_vertex == MemoryTechnology.RERAM
            ):
                base_load = raw_vertex_dev.transfer_cost(
                    AccessKind.READ,
                    counts.offchip_load_bits,
                    AccessPattern.SEQUENTIAL,
                )
                base_store = raw_vertex_dev.transfer_cost(
                    AccessKind.WRITE,
                    counts.offchip_store_bits,
                    AccessPattern.SEQUENTIAL,
                )
                base_rnd_read = _narrow_random_cost(
                    raw_vertex_dev, AccessKind.READ, hit
                )
                base_rnd_write = _narrow_random_cost(
                    raw_vertex_dev, AccessKind.WRITE, hit
                )
                resil_energy += (
                    (load.energy - base_load.energy)
                    + (store.energy - base_store.energy)
                    + counts.random_read_ops
                    * (rnd_read.energy - base_rnd_read.energy)
                    + counts.random_write_ops
                    * (rnd_write.energy - base_rnd_write.energy)
                )

        if sram is not None:
            read_unit = sram.access_cost(AccessKind.READ, AccessPattern.RANDOM)
            write_unit = sram.access_cost(
                AccessKind.WRITE, AccessPattern.RANDOM
            )
            onchip_energy = (
                (counts.onchip_read_bits / sram.access_bits) * read_unit.energy
                + (counts.onchip_write_bits / sram.access_bits)
                * write_unit.energy
            )
            if sram_ecc != 1.0:
                onchip_extra = onchip_energy * (
                    sram_ecc - 1.0
                ) + secded_logic_energy(
                    counts.onchip_read_bits + counts.onchip_write_bits
                )
                onchip_energy += onchip_extra
                resil_energy += onchip_extra
            report.add(rpt.ONCHIP_VERTEX, onchip_energy)

        report.add(
            rpt.PROCESSING,
            counts.pu_ops
            * (pu.op_energy(run.algorithm) + params.PIPELINE_ENERGY_PER_EDGE),
        )
        report.add(
            rpt.ROUTER,
            router.transfer_energy(counts.router_words)
            + router.reroute_energy(counts.reroute_events),
        )
        requests = (
            counts.edge_stream_bits / edge_dev.access_bits
            + counts.offchip_bits / vertex_dev.access_bits
            + counts.random_read_ops
            + counts.random_write_ops
        )
        report.add(
            rpt.CONTROLLER, requests * params.CONTROLLER_REQUEST_ENERGY
        )

        # --- time ------------------------------------------------------------
        t_stream = edge_stream.latency + seek_extra_latency
        t_proc = (
            counts.pu_ops
            * pu.initiation_interval
            * counts.imbalance
            / cfg.num_pus
        )
        t_random_vertex = 0.0
        if counts.random_read_ops or counts.random_write_ops:
            t_random_vertex = (
                counts.random_read_ops * rnd_read.latency
                + counts.random_write_ops * rnd_write.latency
            ) / min(cfg.random_access_mlp, cfg.num_pus)
        t_step_overheads = counts.steps_total * (
            params.SYNC_LATENCY + pu.pipeline_fill()
        )
        if cfg.data_sharing:
            t_step_overheads += router.fill_latency(counts.steps_total)
        t_processing_phase = (
            max(t_stream, t_proc, t_random_vertex) + t_step_overheads
        )
        t_schedule = load.latency + store.latency

        duration = t_processing_phase + t_schedule

        # --- power gating (edge memory only, Section 4.1) -------------------
        gating = GatingReport(0.0, 0, 0.0, 0.0)
        if (
            cfg.edge_memory == MemoryTechnology.RERAM
            and cfg.power_gating.enabled
        ):
            gater = BankPowerGating(cfg.power_gating)
            total_banks = edge_chips * cfg.reram.num_banks
            active = (
                1 if cfg.reram.subbank_interleaving else cfg.reram.num_banks
            )
            gating = gater.plan(
                num_banks=total_banks,
                active_banks=active,
                streamed_bits=counts.edge_stream_bits,
                bank_capacity_bits=cfg.reram.bank_capacity_bits,
                duration=duration,
                failed_banks=sparing.failed_banks if sparing else 0,
                transition_factor=(
                    sparing.transition_factor if sparing else 1.0
                ),
            )
            duration += gating.overhead_time
            report.add(rpt.EDGE_MEMORY, gating.overhead_energy)

        report.time = duration

        # --- background energy ------------------------------------------------
        report.add(
            rpt.EDGE_MEMORY_BG,
            edge_chips
            * edge_dev.background_energy(duration, gating.gated_fraction),
        )
        report.add(
            rpt.OFFCHIP_VERTEX_BG,
            vertex_chips * vertex_dev.background_energy(duration),
        )
        if sram is not None:
            sram_bg = cfg.num_pus * sram.background_energy(duration)
            if sram_ecc != 1.0:
                resil_energy += sram_bg * (sram_ecc - 1.0)
                sram_bg *= sram_ecc
            report.add(rpt.ONCHIP_VERTEX_BG, sram_bg)
        logic_power = (
            cfg.num_pus * pu.leakage_power
            + router.leakage_power
            + params.CONTROLLER_POWER
        )
        report.add(rpt.LOGIC_BG, logic_power * duration)

        # --- injected-fault accounting -------------------------------------
        if fault_report is not None and injector is not None:
            if edge_dev is not raw_edge_dev:
                resil_energy += edge_chips * (
                    edge_dev.background_energy(duration, gating.gated_fraction)
                    - raw_edge_dev.background_energy(
                        duration, gating.gated_fraction
                    )
                )
            if vertex_dev is not raw_vertex_dev:
                resil_energy += vertex_chips * (
                    vertex_dev.background_energy(duration)
                    - raw_vertex_dev.background_energy(duration)
                )
            if sparing is not None and sparing.spare_chips:
                resil_energy += sparing.spare_chips * (
                    raw_edge_dev.background_energy(
                        duration, gating.gated_fraction
                    )
                )
            dram_bits = 0.0
            if cfg.offchip_vertex == MemoryTechnology.DRAM:
                dram_bits += counts.offchip_bits
            if cfg.edge_memory == MemoryTechnology.DRAM:
                dram_bits += counts.edge_stream_bits
            flips = injector.sample_transient_flips(
                dram_bits, profile.dram_upset_rate
            )
            uncorrectable = injector.uncorrectable_flip_count(
                dram_bits, profile.dram_upset_rate
            )
            if sram is not None:
                sram_bits = counts.onchip_read_bits + counts.onchip_write_bits
                flips += injector.sample_transient_flips(
                    sram_bits, profile.sram_upset_rate
                )
                uncorrectable += injector.uncorrectable_flip_count(
                    sram_bits, profile.sram_upset_rate
                )
            fault_report.transient_flips_corrected = flips
            fault_report.transient_flips_uncorrectable = uncorrectable
            fault_report.add_energy(resil_energy)

        # --- observability ---------------------------------------------------
        metrics = obs_metrics.get_metrics()
        metrics.counter(obs_metrics.EDGES_STREAMED).add(counts.edges_total)
        metrics.counter(obs_metrics.BPG_BANK_WAKES).add(gating.transitions)
        metrics.counter(obs_metrics.ROUTER_ROTATIONS).add(
            counts.reroute_events
        )
        tracer = get_tracer()
        if tracer.enabled:
            # The processing phase is the max of three overlapped
            # services; attribute it to whichever dominated, so phase
            # times sum exactly to the report's modelled time.
            from ..obs.attribution import emit_report

            phase_times = {p: 0.0 for p in
                           ("stream", "process", "schedule", "gating")}
            if t_stream >= t_proc and t_stream >= t_random_vertex:
                phase_times["stream"] += t_stream
            elif t_proc >= t_random_vertex:
                phase_times["process"] += t_proc
            else:
                phase_times["schedule"] += t_random_vertex
            phase_times["process"] += t_step_overheads
            phase_times["schedule"] += t_schedule
            phase_times["gating"] += gating.overhead_time
            emit_report(
                tracer, report, phase_times,
                detail={
                    "t_stream": t_stream,
                    "t_compute": t_proc,
                    "t_random_vertex": t_random_vertex,
                    "t_step_overheads": t_step_overheads,
                    "bank_wake_transitions": gating.transitions,
                },
            )
        return report, fault_report


def _narrow_random_cost(
    device: MemoryDevice,
    kind: AccessKind,
    hit_rate: float,
    burst_bits: int = 64,
) -> "AccessCost":
    """Cost of one narrow random access at a given row-hit rate.

    A hit pays only the data-movement share of a sequential access,
    scaled to the narrow burst; a miss additionally pays the full
    activation premium (random cost minus the unused wide burst).
    """
    from ..memory.base import AccessCost, AccessPattern

    seq = device.access_cost(kind, AccessPattern.SEQUENTIAL)
    rnd = device.access_cost(kind, AccessPattern.RANDOM)
    narrow = burst_bits / device.access_bits
    hit_energy = seq.energy * narrow
    activation_premium = max(0.0, rnd.energy - seq.energy)
    miss_energy = hit_energy + activation_premium
    return AccessCost(
        latency=hit_rate * seq.latency + (1.0 - hit_rate) * rnd.latency,
        energy=hit_rate * hit_energy + (1.0 - hit_rate) * miss_energy,
    )


# --- batched folding (simulate once, price many) ---------------------------

#: Shared, memoized device instances for the batch fold, each paired
#: with its unit-cost table (the access costs the gather loop needs,
#: precomputed once per technology point).  Device models are pure cost
#: functions of their frozen configs (stats helpers are never called on
#: this path), so instances can be shared; ReRAM construction in
#: particular runs an NVSim-lite solve worth caching.
_DEVICE_MEMO: OrderedDict = OrderedDict()
_SRAM_MEMO: OrderedDict = OrderedDict()
_DEVICE_MEMO_CAP = 64


def _device_cost_table(device: MemoryDevice) -> tuple[float, ...]:
    """(sr_lat, sr_en, sw_lat, sw_en, rr_lat, rr_en, rw_lat, rw_en,
    access_bits) — every unit cost the batch gather can ask of a
    device, evaluated once when the device enters the memo."""
    sr = device.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL)
    sw = device.access_cost(AccessKind.WRITE, AccessPattern.SEQUENTIAL)
    rr = device.access_cost(AccessKind.READ, AccessPattern.RANDOM)
    rw = device.access_cost(AccessKind.WRITE, AccessPattern.RANDOM)
    return (sr.latency, sr.energy, sw.latency, sw.energy,
            rr.latency, rr.energy, rw.latency, rw.energy,
            float(device.access_bits))


def _shared_device(
    tech: str, config: HyVEConfig
) -> tuple[MemoryDevice, tuple[float, ...]]:
    if tech == MemoryTechnology.RERAM:
        key = ("reram", config.reram)
    else:
        key = ("dram", config.dram)
    entry = _DEVICE_MEMO.get(key)
    if entry is None:
        device = (
            ReRAMChip(config.reram)
            if tech == MemoryTechnology.RERAM
            else DDR4Chip(config.dram)
        )
        entry = (device, _device_cost_table(device))
        _DEVICE_MEMO[key] = entry
        if len(_DEVICE_MEMO) > _DEVICE_MEMO_CAP:
            _DEVICE_MEMO.popitem(last=False)
    else:
        _DEVICE_MEMO.move_to_end(key)
    return entry


def _shared_sram(
    capacity_bits: int,
) -> tuple[OnChipSRAM, tuple[float, ...]]:
    """(sram, (cycle, read_energy, write_energy, access_bits))."""
    entry = _SRAM_MEMO.get(capacity_bits)
    if entry is None:
        sram = OnChipSRAM(capacity_bits)
        read = sram.access_cost(AccessKind.READ, AccessPattern.RANDOM)
        write = sram.access_cost(AccessKind.WRITE, AccessPattern.RANDOM)
        entry = (sram, (sram.point.read_latency, read.energy,
                        write.energy, float(sram.access_bits)))
        _SRAM_MEMO[capacity_bits] = entry
        if len(_SRAM_MEMO) > _DEVICE_MEMO_CAP:
            _SRAM_MEMO.popitem(last=False)
    else:
        _SRAM_MEMO.move_to_end(capacity_bits)
    return entry


def _check_grid_config(
    config: HyVEConfig, head: HyVEConfig, counts: ScheduleCounts
) -> None:
    """Reject a config whose schedule would differ from ``counts``.

    Every mismatched knob is collected before raising, so a tuner
    debugging a wide grid sees the whole shape of the problem in one
    :class:`ConfigError` instead of peeling mismatches off one by one.
    """
    from .config import choose_num_intervals

    problems: list[str] = []
    if config.num_pus != counts.num_pus:
        problems.append(
            f"num_pus={config.num_pus}, counts expect {counts.num_pus}"
        )
    p = choose_num_intervals(config, counts.vertices, counts.vertex_bits)
    if p != counts.num_intervals:
        problems.append(
            f"partitions into {p} intervals, counts expect "
            f"{counts.num_intervals}"
        )
    for flag in ("has_onchip", "data_sharing", "hash_placement"):
        if getattr(config, flag) != getattr(head, flag):
            problems.append(
                f"{flag}={getattr(config, flag)} differs from the "
                f"grid's {getattr(head, flag)}"
            )
    if problems:
        raise ConfigError(
            f"fold_many: config {config.label!r} does not share the "
            f"grid's schedule — " + "; ".join(problems)
            + "; group configs by counts key first"
        )


def fold_many(
    run: AlgorithmRun,
    counts: ScheduleCounts,
    workload: Workload,
    configs: list[HyVEConfig],
) -> list[EnergyReport]:
    """Price one :class:`ScheduleCounts` against a grid of configs.

    The vectorized counterpart of the ideal-device (no fault profile)
    ``_fold``: per-config unit costs are gathered from memoized device
    models, the dynamic-energy and busy-time terms are evaluated as
    NumPy float64 array passes that mirror the scalar fold expression
    for expression (same operands, same association, same IEEE-754
    operations), and the per-config tail (BPG planning, background
    integration, report assembly) replays the scalar order exactly —
    so element ``i`` is bit-identical to
    ``AcceleratorMachine(configs[i]).run(...).report``.

    Every config must share the schedule described by ``counts``
    (grouping by :func:`repro.perf.batch.counts_cache_key` guarantees
    this); mismatches raise :class:`ConfigError`.
    """
    if not configs:
        return []
    head = configs[0]
    for config in configs:
        _check_grid_config(config, head, counts)
    onchip = head.has_onchip
    tracer = get_tracer()
    metrics = obs_metrics.get_metrics()
    metrics.counter(obs_metrics.FOLD_MANY_CONFIGS).add(len(configs))
    with tracer.span(
        "fold_many",
        algorithm=run.algorithm,
        graph=workload.name,
        configs=len(configs),
    ):
        return _fold_many_impl(run, counts, workload, configs, onchip)


def _fold_many_impl(
    run: AlgorithmRun,
    counts: ScheduleCounts,
    workload: Workload,
    configs: list[HyVEConfig],
    onchip: bool,
) -> list[EnergyReport]:
    edge_footprint = (
        counts.edges_total / counts.iterations
    ) * counts.edge_bits * FOOTPRINT_SLACK
    vertex_footprint = counts.vertices * counts.vertex_bits * FOOTPRINT_SLACK

    # --- gather: per-config devices and unit costs (memoized) ----------
    edge_devs: list[MemoryDevice] = []
    vertex_devs: list[MemoryDevice] = []
    srams: list[OnChipSRAM] = []
    edge_chips: list[int] = []
    vertex_chips: list[int] = []
    gather: dict[str, list[float]] = {
        name: []
        for name in (
            "e_sr_lat", "e_sr_en", "e_rr_lat", "e_rr_en", "e_abits",
            "v_sr_lat", "v_sr_en", "v_sw_lat", "v_sw_en",
            "v_rr_lat", "v_rr_en", "v_rw_lat", "v_rw_en", "v_abits",
            "hit", "mlp", "ii", "s_r_en", "s_w_en", "s_abits",
        )
    }
    op_energy = 0.0
    pipeline_fill = 0.0
    for cfg in configs:
        edge_dev, e_costs = _shared_device(cfg.edge_memory, cfg)
        vertex_dev, v_costs = _shared_device(cfg.offchip_vertex, cfg)
        edge_devs.append(edge_dev)
        vertex_devs.append(vertex_dev)
        density = (
            cfg.reram.density_bits
            if cfg.edge_memory == MemoryTechnology.RERAM
            else cfg.dram.density_bits
        )
        edge_chips.append(
            max(MIN_EDGE_CHIPS_PER_RANK,
                math.ceil(edge_footprint / density))
        )
        density = (
            cfg.reram.density_bits
            if cfg.offchip_vertex == MemoryTechnology.RERAM
            else cfg.dram.density_bits
        )
        vertex_chips.append(
            max(MIN_VERTEX_CHIPS, math.ceil(vertex_footprint / density))
        )
        if onchip:
            sram, s_costs = _shared_sram(cfg.sram_bits)
            srams.append(sram)
            sram_cycle, s_r_en, s_w_en, s_abits = s_costs
        else:
            sram_cycle = e_costs[4] / cfg.random_access_mlp  # rnd-read lat
            s_r_en = s_w_en = 0.0
            s_abits = 1.0
        pu = ProcessingUnitModel(sram_cycle=sram_cycle)
        op_energy = pu.op_energy(run.algorithm)
        pipeline_fill = pu.pipeline_fill()
        g = gather
        g["e_sr_lat"].append(e_costs[0])
        g["e_sr_en"].append(e_costs[1])
        g["e_rr_lat"].append(e_costs[4])
        g["e_rr_en"].append(e_costs[5])
        g["e_abits"].append(e_costs[8])
        g["v_sr_lat"].append(v_costs[0])
        g["v_sr_en"].append(v_costs[1])
        g["v_sw_lat"].append(v_costs[2])
        g["v_sw_en"].append(v_costs[3])
        g["v_rr_lat"].append(v_costs[4])
        g["v_rr_en"].append(v_costs[5])
        g["v_rw_lat"].append(v_costs[6])
        g["v_rw_en"].append(v_costs[7])
        g["v_abits"].append(v_costs[8])
        g["hit"].append(cfg.region_hit_rate)
        g["mlp"].append(float(min(cfg.random_access_mlp, cfg.num_pus)))
        g["ii"].append(pu.initiation_interval)
        g["s_r_en"].append(s_r_en)
        g["s_w_en"].append(s_w_en)
        g["s_abits"].append(s_abits)
    a = {name: np.asarray(vals, dtype=np.float64)
         for name, vals in gather.items()}

    # --- vector passes: dynamic energy and busy time -------------------
    # Each expression mirrors the scalar fold's operand order exactly.
    e_accesses = counts.edge_stream_bits / a["e_abits"]
    edge_stream_en = a["e_sr_en"] * e_accesses
    edge_stream_lat = a["e_sr_lat"] * e_accesses
    seek_extra = counts.block_seeks * np.maximum(
        0.0, a["e_rr_lat"] - a["e_sr_lat"]
    )

    load_acc = counts.offchip_load_bits / a["v_abits"]
    load_en = a["v_sr_en"] * load_acc
    load_lat = a["v_sr_lat"] * load_acc
    store_acc = counts.offchip_store_bits / a["v_abits"]
    store_en = a["v_sw_en"] * store_acc
    store_lat = a["v_sw_lat"] * store_acc

    # _narrow_random_cost, vectorized (64-bit burst).
    narrow = 64.0 / a["v_abits"]
    hit = a["hit"]
    hit_en_r = a["v_sr_en"] * narrow
    miss_en_r = hit_en_r + np.maximum(0.0, a["v_rr_en"] - a["v_sr_en"])
    rnd_r_lat = hit * a["v_sr_lat"] + (1.0 - hit) * a["v_rr_lat"]
    rnd_r_en = hit * hit_en_r + (1.0 - hit) * miss_en_r
    hit_en_w = a["v_sw_en"] * narrow
    miss_en_w = hit_en_w + np.maximum(0.0, a["v_rw_en"] - a["v_sw_en"])
    rnd_w_lat = hit * a["v_sw_lat"] + (1.0 - hit) * a["v_rw_lat"]
    rnd_w_en = hit * hit_en_w + (1.0 - hit) * miss_en_w

    offchip_en = (
        load_en
        + store_en
        + counts.random_read_ops * rnd_r_en
        + counts.random_write_ops * rnd_w_en
    )
    if onchip:
        onchip_en = (
            (counts.onchip_read_bits / a["s_abits"]) * a["s_r_en"]
            + (counts.onchip_write_bits / a["s_abits"]) * a["s_w_en"]
        )
    else:
        onchip_en = np.zeros(len(configs))

    processing_en = counts.pu_ops * (
        op_energy + params.PIPELINE_ENERGY_PER_EDGE
    )
    router = RouterModel(counts.num_pus)
    router_en = router.transfer_energy(
        counts.router_words
    ) + router.reroute_energy(counts.reroute_events)
    requests = (
        e_accesses
        + counts.offchip_bits / a["v_abits"]
        + counts.random_read_ops
        + counts.random_write_ops
    )
    controller_en = requests * params.CONTROLLER_REQUEST_ENERGY

    t_stream = edge_stream_lat + seek_extra
    t_proc = counts.pu_ops * a["ii"] * counts.imbalance / counts.num_pus
    if counts.random_read_ops or counts.random_write_ops:
        t_random = (
            counts.random_read_ops * rnd_r_lat
            + counts.random_write_ops * rnd_w_lat
        ) / a["mlp"]
    else:
        t_random = np.zeros(len(configs))
    t_step = counts.steps_total * (params.SYNC_LATENCY + pipeline_fill)
    if configs[0].data_sharing:
        t_step += router.fill_latency(counts.steps_total)
    t_processing_phase = (
        np.maximum(np.maximum(t_stream, t_proc), t_random) + t_step
    )
    t_schedule = load_lat + store_lat
    duration0 = t_processing_phase + t_schedule

    logic_power = (
        counts.num_pus * params.PU_LEAKAGE
        + router.leakage_power
        + params.CONTROLLER_POWER
    )

    # --- tail: per-config gating, background, report assembly ----------
    # Inherently per element (dict insertion order, BPG branch); every
    # value is narrowed to a Python float so reports round-trip through
    # repr()/JSON exactly like the scalar path's.
    reports: list[EnergyReport] = []
    metrics = obs_metrics.get_metrics()
    edges_streamed = metrics.counter(obs_metrics.EDGES_STREAMED)
    bank_wakes = metrics.counter(obs_metrics.BPG_BANK_WAKES)
    rotations = metrics.counter(obs_metrics.ROUTER_ROTATIONS)
    tracer = get_tracer()
    for i, cfg in enumerate(configs):
        report = EnergyReport(
            machine=cfg.label,
            algorithm=run.algorithm,
            graph=workload.name,
            edges_traversed=counts.edges_total,
            iterations=counts.iterations,
            time=0.0,
        )
        report.add(rpt.EDGE_MEMORY, float(edge_stream_en[i]))
        report.add(rpt.OFFCHIP_VERTEX, float(offchip_en[i]))
        if onchip:
            report.add(rpt.ONCHIP_VERTEX, float(onchip_en[i]))
        report.add(rpt.PROCESSING, processing_en)
        report.add(rpt.ROUTER, router_en)
        report.add(rpt.CONTROLLER, float(controller_en[i]))

        duration = float(duration0[i])
        gating = GatingReport(0.0, 0, 0.0, 0.0)
        if (
            cfg.edge_memory == MemoryTechnology.RERAM
            and cfg.power_gating.enabled
        ):
            gater = BankPowerGating(cfg.power_gating)
            gating = gater.plan(
                num_banks=edge_chips[i] * cfg.reram.num_banks,
                active_banks=(
                    1 if cfg.reram.subbank_interleaving
                    else cfg.reram.num_banks
                ),
                streamed_bits=counts.edge_stream_bits,
                bank_capacity_bits=cfg.reram.bank_capacity_bits,
                duration=duration,
            )
            duration += gating.overhead_time
            report.add(rpt.EDGE_MEMORY, gating.overhead_energy)
        report.time = duration

        report.add(
            rpt.EDGE_MEMORY_BG,
            edge_chips[i]
            * edge_devs[i].background_energy(
                duration, gating.gated_fraction
            ),
        )
        report.add(
            rpt.OFFCHIP_VERTEX_BG,
            vertex_chips[i] * vertex_devs[i].background_energy(duration),
        )
        if onchip:
            report.add(
                rpt.ONCHIP_VERTEX_BG,
                cfg.num_pus * srams[i].background_energy(duration),
            )
        report.add(rpt.LOGIC_BG, logic_power * duration)

        edges_streamed.add(counts.edges_total)
        bank_wakes.add(gating.transitions)
        rotations.add(counts.reroute_events)
        if tracer.enabled:
            from ..obs.attribution import emit_report

            ts, tp, trv = (
                float(t_stream[i]), float(t_proc[i]), float(t_random[i])
            )
            phase_times = {p: 0.0 for p in
                           ("stream", "process", "schedule", "gating")}
            if ts >= tp and ts >= trv:
                phase_times["stream"] += ts
            elif tp >= trv:
                phase_times["process"] += tp
            else:
                phase_times["schedule"] += trv
            phase_times["process"] += float(t_step)
            phase_times["schedule"] += float(t_schedule[i])
            phase_times["gating"] += gating.overhead_time
            emit_report(
                tracer, report, phase_times,
                detail={
                    "t_stream": ts,
                    "t_compute": tp,
                    "t_random_vertex": trv,
                    "t_step_overheads": float(t_step),
                    "bank_wake_transitions": gating.transitions,
                },
            )
        reports.append(report)
    return reports


def make_machine(
    name: str, faults: FaultProfile | None = None
) -> AcceleratorMachine:
    """Instantiate an accelerator machine by its Fig. 16 label."""
    from .config import NAMED_CONFIGS

    if name not in NAMED_CONFIGS:
        known = ", ".join(NAMED_CONFIGS)
        raise ConfigError(f"unknown machine {name!r}; known: {known}")
    return AcceleratorMachine(NAMED_CONFIGS[name](), faults=faults)


def fold_time_slices(slices) -> EnergyReport:
    """Time-sliced energy attribution over an evolving graph.

    ``slices`` is a sequence of ``(start, end, report)`` spans — e.g.
    :class:`repro.dynamic.temporal.TimeSlice` — where ``report`` priced
    the snapshot alive over the half-open logical interval
    ``[start, end)``.  Each span contributes its per-run quantities
    weighted by its width in logical ticks (a snapshot that stayed
    live three times as long is attributed three times the energy and
    busy time), and the weighted spans add into one aggregate
    :class:`EnergyReport` labelled with the covered window.

    Spans must be non-empty, share one machine and algorithm, and be
    sorted and non-overlapping; violations raise
    :class:`ConfigError`.
    """
    spans = [
        (s.start, s.end, s.report) if hasattr(s, "report") else tuple(s)
        for s in slices
    ]
    if not spans:
        raise ConfigError("fold_time_slices needs at least one slice")
    prev_end = None
    for start, end, _ in spans:
        if end <= start:
            raise ConfigError(f"empty time slice [{start}, {end})")
        if prev_end is not None and start < prev_end:
            raise ConfigError(
                f"time slices overlap at t={start} (previous span ends "
                f"at {prev_end})"
            )
        prev_end = end
    head = spans[0][2]
    total = EnergyReport(
        machine=head.machine,
        algorithm=head.algorithm,
        graph=f"{head.graph}[t{spans[0][0]}:t{spans[-1][1]}]",
        edges_traversed=0.0,
        iterations=0,
        time=0.0,
    )
    for start, end, report in spans:
        if (report.machine, report.algorithm) != (head.machine,
                                                  head.algorithm):
            raise ConfigError(
                f"cannot fold {report.machine}/{report.algorithm} into "
                f"{head.machine}/{head.algorithm} time slices"
            )
        width = end - start
        total.edges_traversed += width * report.edges_traversed
        total.iterations += width * report.iterations
        total.time += width * report.time
        for component, joules in report.energy.items():
            total.add(component, width * joules)
    return total
