"""Global modeling constants for the architecture simulators.

Everything that is neither a device operating point (those live in
:mod:`repro.memory`) nor a paper-quoted constant is collected here so
calibration happens in one place.  Each constant documents its source:
*paper* (quoted directly), *derived* (computed from paper numbers) or
*calibrated* (chosen so that the reproduced trends match the paper's
reported ratios).
"""

from __future__ import annotations

from ..units import MW, NS, PJ

# --- processing units (Section 6.4) ---------------------------------------

#: Energy of one edge update on a CMOS processing unit.  Paper: 3.7 pJ
#: for a 32-bit float multiplier [34].
PU_OP_ENERGY_MV = 3.7 * PJ

#: Energy of one comparison-style edge update (BFS/CC/SSSP traversal).
#: Calibrated: a 32-bit compare-and-select datapath is several times
#: cheaper than a float multiply at the same node.
PU_OP_ENERGY_NON_MV = 1.2 * PJ

#: Unpipelined latency of one CMOS edge operation.  Paper: 18.783 ns for
#: a 32-bit float multiplier [35]; pipelining hides all but the
#: initiation interval.
PU_OP_LATENCY = 18.783 * NS

#: Pipeline initiation interval of one PU: one edge per on-chip SRAM
#: round (the PU is scratchpad-bound, Section 4.2 quotes ~1.5 ns SRAM
#: cycles).  Expressed as SRAM accesses per edge over the port count.
PU_SRAM_ACCESSES_PER_EDGE = 3  # read src + read dst + write dst
PU_SRAM_PORTS = 2

#: Leakage of one processing unit and its pipeline/control logic
#: (calibrated to the Fig. 17 logic share).
PU_LEAKAGE = 12.0 * MW

#: Accelerator pipeline energy per edge beyond the arithmetic operation:
#: address generation, edge decoding, queues, control (calibrated to the
#: Fig. 17 logic share; the paper's "other logic units" bucket is the
#: full ForeGraph-style pipeline, not just the ALU).
PIPELINE_ENERGY_PER_EDGE = 45.0 * PJ

# --- router (Section 4.2) ---------------------------------------------------

#: Energy to move one 32-bit word across the pipelined N-to-N router
#: (calibrated to on-chip interconnect energy at 22 nm).
ROUTER_HOP_ENERGY_PER_WORD = 0.8 * PJ

#: Control energy of one rerouting event (Algorithm 2's "Rerouting").
ROUTER_REROUTE_ENERGY = 10.0 * PJ

#: Pipeline-fill latency charged once per super-block step: the paper
#: quotes ~10 ns remote-interval access latency, hidden after fill.
ROUTER_FILL_LATENCY = 10.0 * NS

#: Router leakage (N x N crossbar of 32-bit links).
ROUTER_LEAKAGE = 1.0 * MW

# --- controller & misc logic -----------------------------------------------

#: Hybrid memory controller + bus background power (calibrated).
CONTROLLER_POWER = 40.0 * MW

#: Controller energy per memory request issued (address mapping, queue).
CONTROLLER_REQUEST_ENERGY = 1.0 * PJ

#: Synchronisation overhead per super-block step (barrier across PUs).
SYNC_LATENCY = 20.0 * NS

# --- edge memory streaming ---------------------------------------------------

#: Every block in the stream starts with one full-latency array access
#: (the block's first row is a fresh address after a seek).
BLOCK_SEEK_PENALTY = True
