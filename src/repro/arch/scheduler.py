"""Schedule counting: from an algorithm run to exact access counts.

This module turns one :class:`~repro.algorithms.runner.AlgorithmRun`
plus a machine configuration into the access counts of Equations
(3), (4), (7) and (8):

* every edge is read once per iteration (sequential, edge memory);
* per edge, the source and destination are read and the destination
  written in the on-chip vertex memory (N^R_{v,r} = N^W_{v,r} = N^R_e);
* per iteration, destination intervals are loaded and stored once
  (N^W_{v,s} = N_v) while source intervals are loaded (P/N) * N_v times
  with data sharing (Equation (8)) and P * N_v times without (each block
  reloads its source interval from off-chip memory);
* machines without a scratchpad issue the per-edge vertex traffic as
  *random* accesses straight at main memory.

Counts are computed at the workload's reported scale (see
:class:`~repro.arch.config.Workload`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..algorithms.runner import AlgorithmRun
from ..errors import ConfigError
from ..graph.hash_partition import hash_partition, imbalance
from ..obs import metrics as obs_metrics
from ..obs.trace import get_tracer
from .config import HyVEConfig, Workload, choose_num_intervals

#: Partition size used to estimate PU load imbalance.  The exact P of a
#: paper-scale run can exceed the synthetic graph's usable resolution;
#: imbalance is a weak function of P under hash placement, so a
#: reference partition is used (documented model approximation).
_IMBALANCE_REFERENCE_MULTIPLE = 8

#: In-process imbalance memo, LRU-bounded: a long-lived sweep process
#: touching many graphs must not grow it without limit (disk-level
#: reuse stays in the run cache's scalar store).
_IMBALANCE_CACHE: OrderedDict[tuple[str, int, bool], float] = OrderedDict()
_IMBALANCE_CACHE_CAP = 128


def _imbalance_remember(key: tuple[str, int, bool], value: float) -> None:
    _IMBALANCE_CACHE[key] = value
    _IMBALANCE_CACHE.move_to_end(key)
    while len(_IMBALANCE_CACHE) > _IMBALANCE_CACHE_CAP:
        _IMBALANCE_CACHE.popitem(last=False)
    obs_metrics.get_metrics().gauge(
        obs_metrics.IMBALANCE_CACHE_SIZE
    ).set(len(_IMBALANCE_CACHE))


def clear_imbalance_cache() -> None:
    """Drop the in-process imbalance memo (tests and identity oracles
    that must prove two paths compute — not recall — the same value)."""
    _IMBALANCE_CACHE.clear()


def imbalance_reference_intervals(num_vertices: int, num_pus: int) -> int:
    """The reference partition width P the imbalance estimate uses.

    Exposed so the out-of-core path (:mod:`repro.graph.shards`) can
    build its per-shard block histograms at exactly the P that
    :func:`estimate_imbalance` would partition at — a prerequisite for
    bit-identical merged counts.  A returned P larger than
    ``num_vertices`` means the estimate degenerates to 1.0 (no
    partition is built).
    """
    p = num_pus * _IMBALANCE_REFERENCE_MULTIPLE
    while p > max(num_vertices, 1):
        p //= 2
    return max(p - (p % num_pus), num_pus)


def seed_imbalance(graph, num_pus: int, hash_placement: bool,
                   value: float) -> float:
    """Install a precomputed imbalance estimate for ``graph``.

    The sharded counts path computes the estimate from per-shard block
    histograms merged exactly; seeding the scalar cache under the same
    key lets the subsequent :meth:`ScheduleCounts.compute` hit it, so
    the merged result is bit-identical to the in-memory path without a
    second O(E) pass over the edge list.  Returns the value actually
    cached — an existing entry wins, mirroring ``get_or_scalar``.
    """
    from ..perf.cache import get_run_cache

    stored = get_run_cache().get_or_scalar(
        f"imbalance-n{num_pus}-hash{int(hash_placement)}", graph,
        lambda: value,
    )
    _imbalance_remember(
        (graph.fingerprint(), num_pus, hash_placement), stored
    )
    return stored


def estimate_imbalance(run: AlgorithmRun, workload: Workload,
                       num_pus: int, hash_placement: bool = True) -> float:
    """Per-step load imbalance of the super-block schedule (>= 1).

    ``hash_placement=False`` models natural (index-order) placement,
    where community structure concentrates edges on some PUs.

    Imbalance is a function of the graph's structure only, so the memo
    keys on the graph content digest — five algorithms on one workload
    share a single estimate instead of recomputing it each.
    """
    graph = workload.graph
    key = (graph.fingerprint(), num_pus, hash_placement)
    hit = _IMBALANCE_CACHE.get(key)
    if hit is not None:
        _IMBALANCE_CACHE.move_to_end(key)
        return hit

    def compute() -> float:
        # The streamed graph may differ (CC symmetrises); imbalance of
        # the base graph is an adequate proxy and avoids a second
        # partition.
        with get_tracer().span("estimate_imbalance", graph=graph.name,
                               num_pus=num_pus,
                               hash_placement=hash_placement):
            return _compute_imbalance(graph, num_pus, hash_placement)

    from ..perf.cache import get_run_cache

    value = get_run_cache().get_or_scalar(
        f"imbalance-n{num_pus}-hash{int(hash_placement)}", graph, compute
    )
    _imbalance_remember(key, value)
    return value


def _compute_imbalance(graph, num_pus: int, hash_placement: bool) -> float:
    p = imbalance_reference_intervals(graph.num_vertices, num_pus)
    if p > graph.num_vertices:
        return 1.0
    if hash_placement:
        part, _ = hash_partition(graph, p)
        return imbalance(part, num_pus)
    from ..graph.partition import IntervalBlockPartition

    # Routed through the process-wide partition memo: the blocked
    # executor or another experiment asking for the same
    # (fingerprint, P) reuses this build.
    part = IntervalBlockPartition.cached(graph, p)
    return imbalance(part, num_pus)


@dataclass(frozen=True)
class ScheduleCounts:
    """Access counts for one full run, at reported scale.

    All ``*_bits`` fields are totals over the whole execution.
    """

    iterations: int
    num_pus: int
    num_intervals: int
    edges_total: float                 # N^R_e summed over iterations
    vertices: float                    # N_v at reported scale
    edge_bits: int
    vertex_bits: int

    # Edge memory (sequential stream).
    edge_stream_bits: float
    block_seeks: float                 # one per block per iteration

    # On-chip vertex memory (random, absorbed by SRAM when present).
    onchip_read_bits: float
    onchip_write_bits: float

    # Off-chip vertex memory: interval scheduling (sequential).
    offchip_load_bits: float
    offchip_store_bits: float

    # Main-memory random vertex traffic (machines without scratchpad).
    random_read_ops: float
    random_write_ops: float

    # Router (data sharing).
    router_words: float
    reroute_events: float

    # Control.
    steps_total: float                 # synchronisation barriers
    pu_ops: float
    imbalance: float

    @classmethod
    def compute(
        cls,
        run: AlgorithmRun,
        workload: Workload,
        config: HyVEConfig,
    ) -> "ScheduleCounts":
        edge_scale = workload.edge_scale
        vertex_scale = workload.vertex_scale
        edges_per_iter = run.edges_per_iteration * edge_scale
        vertices = run.num_vertices * vertex_scale
        iters = run.iterations
        if iters <= 0:
            raise ConfigError(f"run reports no iterations: {run}")

        n = config.num_pus
        p = choose_num_intervals(config, vertices, run.vertex_bits)
        edges_total = edges_per_iter * iters
        edge_stream_bits = edges_total * run.edge_bits
        blocks_per_iter = float(p) * float(p)
        steps_per_iter = (p / n) ** 2 * n

        if config.has_onchip:
            # The PU datapath moves one 32-bit operand per vertex access
            # (source value, destination value, updated value); wider
            # vertex records (PR's rank + out-degree) cost extra only in
            # the interval transfers below.
            onchip_read_bits = 2.0 * edges_total * 32
            onchip_write_bits = edges_total * 32
            src_loads = (p / n if config.data_sharing else float(p))
            # Active-interval scheduling: an interval is (re)loaded only
            # if it holds at least one vertex whose value changed in the
            # previous iteration.  BFS/SSSP touch few intervals early.
            activity = _interval_activity(run, p)
            offchip_load_bits = (
                (src_loads + 1.0) * vertices * run.vertex_bits * activity
            )
            offchip_store_bits = vertices * run.vertex_bits * activity
            random_read_ops = 0.0
            random_write_ops = 0.0
        else:
            onchip_read_bits = 0.0
            onchip_write_bits = 0.0
            offchip_load_bits = 0.0
            offchip_store_bits = 0.0
            random_read_ops = 2.0 * edges_total
            random_write_ops = edges_total

        if config.data_sharing:
            router_words = (
                edges_total * (n - 1) / n * (run.vertex_bits / 32.0)
            )
            reroute_events = steps_per_iter * iters * n
        else:
            router_words = 0.0
            reroute_events = 0.0

        return cls(
            iterations=iters,
            num_pus=n,
            num_intervals=p,
            edges_total=edges_total,
            vertices=vertices,
            edge_bits=run.edge_bits,
            vertex_bits=run.vertex_bits,
            edge_stream_bits=edge_stream_bits,
            block_seeks=blocks_per_iter * iters,
            onchip_read_bits=onchip_read_bits,
            onchip_write_bits=onchip_write_bits,
            offchip_load_bits=offchip_load_bits,
            offchip_store_bits=offchip_store_bits,
            random_read_ops=random_read_ops,
            random_write_ops=random_write_ops,
            router_words=router_words,
            reroute_events=reroute_events,
            steps_total=steps_per_iter * iters,
            pu_ops=edges_total,
            imbalance=estimate_imbalance(
                run, workload, n, config.hash_placement
            ),
        )

    @property
    def offchip_bits(self) -> float:
        return self.offchip_load_bits + self.offchip_store_bits


def _interval_activity(run: AlgorithmRun, num_intervals: int) -> float:
    """Sum over iterations of the fraction of intervals with an active
    source (hash placement spreads active vertices uniformly).

    Equals ``iterations`` for algorithms where every vertex stays active
    (PR, SpMV) and much less for point-initialised traversals.
    """
    if not run.active_sources:
        return float(run.iterations)
    n_v = max(run.num_vertices, 1)
    per_interval = n_v / num_intervals
    total = 0.0
    for active in run.active_sources:
        frac = min(max(active, 0), n_v) / n_v
        total += 1.0 - (1.0 - frac) ** per_interval
    return total
