"""Empirical validation of the schedule model.

:class:`~repro.arch.scheduler.ScheduleCounts` derives access counts
*analytically* from Equations (3)-(8) plus the active-interval
approximation.  This module walks the **concrete** schedule of
Algorithm 2 — block by block, step by step, interval load by interval
load — while counting every access, so the analytic model can be checked
against a ground-truth measurement (the tests do exactly that).

The concrete scheduling rules mirrored here:

* every edge of every block is streamed once per iteration;
* per edge: two on-chip reads (source, destination) and one write;
* a *source* interval is loaded only if it contains at least one vertex
  whose value changed entering the iteration (active-interval
  scheduling); with data sharing it is loaded once per (x, y) group of
  N, without sharing once per block that streams from it;
* a *destination* interval is loaded/stored once per super-block column
  if any of its incoming blocks has an active source interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.base import EdgeCentricAlgorithm
from ..errors import ConvergenceError
from ..graph.graph import Graph
from ..graph.partition import IntervalBlockPartition


@dataclass(frozen=True)
class MeasuredSchedule:
    """Ground-truth access counts from a concrete Algorithm-2 walk.

    All counts are totals over the full run, in operations (not bits),
    at the synthetic graph's own scale.
    """

    iterations: int
    edge_reads: int                 # edges streamed
    onchip_reads: int               # per-edge source + destination reads
    onchip_writes: int              # per-edge destination writes
    pu_ops: int
    steps: int                      # synchronisation barriers
    src_vertices_loaded: int        # vertices moved on-chip (source)
    dst_vertices_loaded: int        # vertices moved on-chip (destination)
    dst_vertices_stored: int        # vertices written back
    values: np.ndarray


def measure_schedule(
    algorithm: EdgeCentricAlgorithm,
    graph: Graph,
    num_intervals: int,
    num_pus: int,
    data_sharing: bool = True,
) -> MeasuredSchedule:
    """Execute Algorithm 2 concretely, counting every access."""
    streamed = algorithm.transform_graph(graph)
    partition = IntervalBlockPartition.cached(streamed, num_intervals)
    q = num_intervals // num_pus
    partition.num_super_blocks(num_pus)  # validates divisibility
    sizes = partition.interval_sizes()

    values = algorithm.initial_values(streamed)
    # "Changed entering the iteration": initially the point-initialised
    # vertices (BFS root) or everything (PR/CC).
    changed = np.zeros(streamed.num_vertices, dtype=bool)
    initial_active = algorithm.initial_active(streamed)
    if initial_active >= streamed.num_vertices:
        changed[:] = True
    else:
        # Point initialisation: mark the vertices whose value differs
        # from the bulk (e.g. the BFS root's 0 among sentinels).
        bulk = np.bincount(
            np.unique(values, return_inverse=True)[1]
        ).argmax()
        uniques = np.unique(values)
        changed = values != uniques[bulk]

    edge_reads = onchip_reads = onchip_writes = pu_ops = steps = 0
    src_loaded = dst_loaded = dst_stored = 0
    iterations = 0

    while True:
        interval_active = np.array([
            bool(changed[partition.bounds[i]:partition.bounds[i + 1]].any())
            for i in range(num_intervals)
        ])

        nonempty = partition.block_counts > 0
        acc = algorithm.iteration_start(values, streamed)
        for y in range(q):
            dst_ids = [y * num_pus + k for k in range(num_pus)]
            # A destination interval participates this iteration if any
            # of its non-empty incoming blocks has an active source.
            dst_needed = [
                bool((interval_active & nonempty[:, j]).any())
                for j in dst_ids
            ]
            for j, needed in zip(dst_ids, dst_needed):
                if needed:
                    dst_loaded += int(sizes[j])
            for x in range(q):
                src_ids = [x * num_pus + k for k in range(num_pus)]
                if data_sharing:
                    # N intervals loaded once, shared via the router.
                    for i in src_ids:
                        if interval_active[i]:
                            src_loaded += int(sizes[i])
                for step in range(num_pus):
                    for pu in range(num_pus):
                        i = x * num_pus + (pu + step) % num_pus
                        j = y * num_pus + pu
                        if not data_sharing and interval_active[i]:
                            # Reload the source interval per block.
                            src_loaded += int(sizes[i])
                        idx = partition.block_edge_indices(i, j)
                        edges = int(idx.size)
                        edge_reads += edges
                        onchip_reads += 2 * edges
                        onchip_writes += edges
                        pu_ops += edges
                        if edges:
                            w = (
                                streamed.weights[idx]
                                if streamed.weights is not None
                                else None
                            )
                            algorithm.process_edges(
                                values, acc,
                                streamed.src[idx], streamed.dst[idx],
                                w, streamed,
                            )
                    steps += 1
            for j, needed in zip(dst_ids, dst_needed):
                if needed:
                    dst_stored += int(sizes[j])

        result = algorithm.iteration_end(values, acc, streamed, iterations)
        changed = _changed_mask(values, result.values)
        values = result.values
        iterations += 1
        if result.converged:
            break
        if iterations > algorithm.max_iterations:
            raise ConvergenceError(
                f"{algorithm.name} exceeded {algorithm.max_iterations} sweeps"
            )

    return MeasuredSchedule(
        iterations=iterations,
        edge_reads=edge_reads,
        onchip_reads=onchip_reads,
        onchip_writes=onchip_writes,
        pu_ops=pu_ops,
        steps=steps,
        src_vertices_loaded=src_loaded,
        dst_vertices_loaded=dst_loaded,
        dst_vertices_stored=dst_stored,
        values=values,
    )


def _changed_mask(prev: np.ndarray, new: np.ndarray) -> np.ndarray:
    if prev.dtype.kind == "f" or new.dtype.kind == "f":
        with np.errstate(invalid="ignore"):
            same = np.isclose(prev, new, rtol=0.0, atol=0.0, equal_nan=True)
        return ~same
    return prev != new
