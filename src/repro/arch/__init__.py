"""Architecture models: HyVE, accelerator baselines, CPU, GraphR."""

from . import params
from .config import (
    HyVEConfig,
    MemoryTechnology,
    NAMED_CONFIGS,
    Workload,
    choose_num_intervals,
    config_dram_only,
    config_hyve,
    config_hyve_opt,
    config_reram_only,
    config_sram_dram,
)
from .area import MachineArea, machine_area
from .crossbar import CrossbarModel
from .cpu import CPU_DRAM, CPU_DRAM_OPT, CPUMachine, CPUModel
from .graphr import GraphRConfig, GraphRMachine
from .initialization import (
    InitializationCost,
    init_vs_execution,
    initialization_cost,
)
from .machine import AcceleratorMachine, SimulationResult, make_machine
from .phases import Phase, PhaseKind, phase_profile, schedule_phases
from .power import PowerProfile, PowerSample, power_profile
from .processing_unit import ProcessingUnitModel
from .validation import MeasuredSchedule, measure_schedule
from .report import (
    BREAKDOWN_BUCKETS,
    EnergyReport,
    efficiency_ratio,
    geomean,
)
from .router import RouterModel
from .scheduler import ScheduleCounts, estimate_imbalance
from .sweep import (SweepPoint, SweepPolicy, best_point, pareto_front,
                    points_to_csv, successful_points, sweep)

__all__ = [
    "params",
    "HyVEConfig",
    "MemoryTechnology",
    "NAMED_CONFIGS",
    "Workload",
    "choose_num_intervals",
    "config_dram_only",
    "config_hyve",
    "config_hyve_opt",
    "config_reram_only",
    "config_sram_dram",
    "MachineArea",
    "machine_area",
    "CrossbarModel",
    "CPU_DRAM",
    "CPU_DRAM_OPT",
    "CPUMachine",
    "CPUModel",
    "GraphRConfig",
    "GraphRMachine",
    "InitializationCost",
    "init_vs_execution",
    "initialization_cost",
    "AcceleratorMachine",
    "SimulationResult",
    "make_machine",
    "Phase",
    "PhaseKind",
    "phase_profile",
    "schedule_phases",
    "PowerProfile",
    "PowerSample",
    "power_profile",
    "ProcessingUnitModel",
    "MeasuredSchedule",
    "measure_schedule",
    "BREAKDOWN_BUCKETS",
    "EnergyReport",
    "efficiency_ratio",
    "geomean",
    "RouterModel",
    "ScheduleCounts",
    "estimate_imbalance",
    "SweepPoint",
    "SweepPolicy",
    "best_point",
    "pareto_front",
    "points_to_csv",
    "successful_points",
    "sweep",
]
