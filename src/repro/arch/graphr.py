"""GraphR machine model (the prior ReRAM graph accelerator, Section 6).

GraphR [19] differs from HyVE on every level of the hierarchy:

* **Compute**: ReRAM crossbars process edges; every edge is written into
  a crossbar before the block's (single) analog operation — the heavy
  overhead HyVE's analysis identifies.
* **Local vertex storage**: register files, which force 8x8 blocks and
  hence tiny partitions.
* **Global storage**: ReRAM main memory; vertex loads follow Equation
  (9): 16 vertices per non-empty block, so traffic scales with the
  non-empty block count rather than with P/N like HyVE.

The machine exposes the same ``run`` interface as
:class:`~repro.arch.machine.AcceleratorMachine` so every figure driver
treats it uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import run_cached, transform_cached
from ..graph.graph import Graph
from ..graph.stats import average_edges_per_nonempty_block
from ..memory.base import AccessKind, AccessPattern
from ..memory.regfile import RegisterFile
from ..memory.reram import ReRAMChip, ReRAMConfig
from . import params, report as rpt
from .config import Workload
from .crossbar import CrossbarModel
from .machine import FOOTPRINT_SLACK, SimulationResult
from .report import EnergyReport


@dataclass(frozen=True)
class GraphRConfig:
    """GraphR machine parameters."""

    label: str = "GraphR"
    num_crossbar_groups: int = 8
    reram: ReRAMConfig = field(default_factory=ReRAMConfig)
    #: Register-file capacity: 8 + 8 vertices of 32 bits per group.
    regfile_bits: int = 16 * 32


class GraphRMachine:
    """Trace-driven model of GraphR built from Section 6's equations."""

    def __init__(self, config: GraphRConfig | None = None) -> None:
        self.config = config or GraphRConfig()

    @property
    def label(self) -> str:
        return self.config.label

    def run(
        self,
        algorithm: EdgeCentricAlgorithm,
        workload: Workload | Graph,
    ) -> SimulationResult:
        if isinstance(workload, Graph):
            workload = Workload(workload)
        run = run_cached(algorithm, workload.graph)
        streamed = transform_cached(algorithm, workload.graph)

        edge_scale = workload.edge_scale
        vertex_scale = workload.vertex_scale
        edges_per_iter = run.edges_per_iteration * edge_scale
        vertices = run.num_vertices * vertex_scale
        iters = run.iterations
        edges_total = edges_per_iter * iters

        # Graph shape statistics at reported scale: N_avg is scale
        # invariant (Table 1); the non-empty block count follows from it.
        navg = average_edges_per_nonempty_block(streamed)
        if navg <= 0:
            navg = 1.0
        nonempty_blocks = edges_per_iter / navg

        crossbar = CrossbarModel(
            navg=navg,
            num_groups=self.config.num_crossbar_groups,
        )
        global_mem = ReRAMChip(self.config.reram)
        regfile = RegisterFile(
            self.config.regfile_bits * self.config.num_crossbar_groups
        )

        report = EnergyReport(
            machine=self.config.label,
            algorithm=run.algorithm,
            graph=workload.name,
            edges_traversed=edges_total,
            iterations=iters,
            time=0.0,
        )

        # --- edge storage: stream the edge list once per iteration ------
        edge_stream_bits = edges_total * run.edge_bits
        stream = global_mem.transfer_cost(
            AccessKind.READ, edge_stream_bits, AccessPattern.SEQUENTIAL
        )
        report.add(rpt.EDGE_MEMORY, stream.energy)

        # --- global vertex traffic (Equations (7) and (9)) ----------------
        loads_per_iter = 16.0 * nonempty_blocks          # N^R_{v,s}
        stores_per_iter = vertices                        # N^W_{v,s}
        load_bits = loads_per_iter * run.vertex_bits * iters
        store_bits = stores_per_iter * run.vertex_bits * iters
        load = global_mem.transfer_cost(
            AccessKind.READ, load_bits, AccessPattern.SEQUENTIAL
        )
        store = global_mem.transfer_cost(
            AccessKind.WRITE, store_bits, AccessPattern.SEQUENTIAL
        )
        report.add(rpt.OFFCHIP_VERTEX, load.energy + store.energy)

        # --- local vertex traffic: register files --------------------------
        rf_read = regfile.access_cost(AccessKind.READ, AccessPattern.RANDOM)
        rf_write = regfile.access_cost(AccessKind.WRITE, AccessPattern.RANDOM)
        words_per_vertex = run.vertex_bits / 32.0
        rf_energy = (
            2.0 * edges_total * words_per_vertex * rf_read.energy
            + edges_total * words_per_vertex * rf_write.energy
            + (load_bits + store_bits) / 32.0 * rf_write.energy
        )
        report.add(rpt.ONCHIP_VERTEX, rf_energy)

        # --- crossbar processing (Equations (11), (12), (15)) --------------
        report.add(
            rpt.PROCESSING,
            edges_total * crossbar.energy_per_edge(run.algorithm),
        )
        requests = (
            edge_stream_bits / global_mem.access_bits
            + (load_bits + store_bits) / global_mem.access_bits
        )
        report.add(rpt.CONTROLLER,
                   requests * params.CONTROLLER_REQUEST_ENERGY)

        # --- time (Equation (16) dominates) ---------------------------------
        # Crossbar processing, edge streaming and vertex transfers are
        # pipelined across GEs; the slowest stage bounds the run.
        t_crossbar = edges_total * crossbar.latency_per_edge(run.algorithm)
        t_stream = stream.latency
        t_vertex = load.latency + store.latency
        duration = max(t_crossbar, t_stream, t_vertex)
        report.time = duration

        # --- background -------------------------------------------------------
        footprint = (
            edges_per_iter * run.edge_bits
            + vertices * run.vertex_bits
        ) * FOOTPRINT_SLACK
        chips = max(1, math.ceil(footprint / self.config.reram.density_bits))
        # GraphR has no BPG: random-ish block order defeats it.
        report.add(rpt.EDGE_MEMORY_BG,
                   chips * global_mem.background_energy(duration))
        report.add(rpt.ONCHIP_VERTEX_BG,
                   regfile.standby_power * duration)
        logic_power = params.CONTROLLER_POWER + params.ROUTER_LEAKAGE
        report.add(rpt.LOGIC_BG, logic_power * duration)
        return SimulationResult(report=report, run=run)
