"""GraphR machine model (the prior ReRAM graph accelerator, Section 6).

GraphR [19] differs from HyVE on every level of the hierarchy:

* **Compute**: ReRAM crossbars process edges; every edge is written into
  a crossbar before the block's (single) analog operation — the heavy
  overhead HyVE's analysis identifies.
* **Local vertex storage**: register files, which force 8x8 blocks and
  hence tiny partitions.
* **Global storage**: ReRAM main memory; vertex loads follow Equation
  (9): 16 vertices per non-empty block, so traffic scales with the
  non-empty block count rather than with P/N like HyVE.

The machine exposes the same ``run`` interface as
:class:`~repro.arch.machine.AcceleratorMachine` so every figure driver
treats it uniformly.  Like the HyVE machine (PR 4), evaluation factors
as simulate-once / price-many: :meth:`GraphRMachine.scheduled_counts`
memoizes the Section 6 traffic quantities on a content key, and
:func:`graphr_fold_many` prices a whole (algorithm x dataset) grid of
counts records in vectorized array passes — bit-identical per cell to
:meth:`GraphRMachine.run`.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

import numpy as np

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import AlgorithmRun, run_cached, transform_cached
from ..graph.graph import Graph
from ..graph.stats import average_edges_per_nonempty_block
from ..memory.base import AccessKind, AccessPattern
from ..memory.regfile import RegisterFile
from ..memory.reram import ReRAMChip, ReRAMConfig
from ..obs import metrics as obs_metrics
from ..obs.trace import get_tracer
from . import params, report as rpt
from .config import Workload
from .crossbar import CrossbarModel
from .machine import (
    FOOTPRINT_SLACK,
    SimulationResult,
    _DEVICE_MEMO,
    _DEVICE_MEMO_CAP,
    _device_cost_table,
)
from .report import EnergyReport


@dataclass(frozen=True)
class GraphRConfig:
    """GraphR machine parameters."""

    label: str = "GraphR"
    num_crossbar_groups: int = 8
    reram: ReRAMConfig = field(default_factory=ReRAMConfig)
    #: Register-file capacity: 8 + 8 vertices of 32 bits per group.
    regfile_bits: int = 16 * 32


@dataclass(frozen=True)
class GraphRCounts:
    """The Section 6 traffic quantities, at reported scale.

    Everything the GraphR pricing needs and nothing device-specific:
    device knobs (ReRAM density, crossbar-group count) only change the
    *fold*, so a grid over them — or a fresh process pricing the same
    cell — shares one counts record.
    """

    iterations: int
    edges_per_iter: float
    vertices: float
    #: N_avg clamped to >= 1 (Table 1); ``nonempty_blocks`` follows.
    navg: float
    vertex_bits: int
    edge_bits: int

    @property
    def edges_total(self) -> float:
        return self.edges_per_iter * self.iterations

    @property
    def nonempty_blocks(self) -> float:
        return self.edges_per_iter / self.navg


#: Fields of :class:`GraphRCounts` declared ``int`` (JSON round-trip).
_GRAPHR_COUNTS_INT_FIELDS = frozenset(
    {"iterations", "vertex_bits", "edge_bits"}
)


def _shared_reram(config: ReRAMConfig) -> tuple[ReRAMChip, tuple[float, ...]]:
    """Memoized ReRAM chip + unit-cost table (shares the machine memo).

    The key shape matches :func:`repro.arch.machine._shared_device`, so
    GraphR and the HyVE fold share one NVSim-lite solve for the default
    ReRAM operating point.
    """
    key = ("reram", config)
    entry = _DEVICE_MEMO.get(key)
    if entry is None:
        device = ReRAMChip(config)
        entry = (device, _device_cost_table(device))
        _DEVICE_MEMO[key] = entry
        if len(_DEVICE_MEMO) > _DEVICE_MEMO_CAP:
            _DEVICE_MEMO.popitem(last=False)
    else:
        _DEVICE_MEMO.move_to_end(key)
    return entry


class GraphRMachine:
    """Trace-driven model of GraphR built from Section 6's equations."""

    def __init__(self, config: GraphRConfig | None = None) -> None:
        self.config = config or GraphRConfig()

    @property
    def label(self) -> str:
        return self.config.label

    # --- counts (simulate once) -----------------------------------------

    def counts_key(self, run: AlgorithmRun, workload: Workload) -> str:
        """Content key under which this cell's counts are shared.

        Graph content, run structure and reported scale only — no
        device knobs — mirroring
        :func:`repro.perf.batch.counts_cache_key`.
        """
        from ..perf.batch import _run_digest

        return "|".join(
            (
                "graphr",
                workload.graph.fingerprint(),
                _run_digest(run),
                f"vs{workload.vertex_scale!r}",
                f"es{workload.edge_scale!r}",
            )
        )

    def _compute_counts(
        self,
        algorithm: EdgeCentricAlgorithm,
        run: AlgorithmRun,
        workload: Workload,
    ) -> GraphRCounts:
        streamed = transform_cached(algorithm, workload.graph)
        # Graph shape statistics at reported scale: N_avg is scale
        # invariant (Table 1); the non-empty block count follows from it.
        navg = average_edges_per_nonempty_block(streamed)
        if navg <= 0:
            navg = 1.0
        return GraphRCounts(
            iterations=run.iterations,
            edges_per_iter=run.edges_per_iteration * workload.edge_scale,
            vertices=run.num_vertices * workload.vertex_scale,
            navg=navg,
            vertex_bits=run.vertex_bits,
            edge_bits=run.edge_bits,
        )

    def scheduled_counts(
        self,
        algorithm: EdgeCentricAlgorithm,
        run: AlgorithmRun,
        workload: Workload,
    ) -> GraphRCounts:
        """Memoized :meth:`_compute_counts` (two-level run cache).

        JSON round-trips every field exactly, so a cache hit folds
        bit-identically to a fresh computation.
        """
        from ..perf.cache import get_run_cache

        key = self.counts_key(run, workload)

        def compute() -> dict:
            return dataclasses.asdict(
                self._compute_counts(algorithm, run, workload)
            )

        record = get_run_cache().get_or_counts(key, compute)
        kwargs = {}
        for f in dataclasses.fields(GraphRCounts):
            value = record[f.name]
            kwargs[f.name] = (
                int(value)
                if f.name in _GRAPHR_COUNTS_INT_FIELDS
                else float(value)
            )
        return GraphRCounts(**kwargs)

    # --- main entry -----------------------------------------------------

    def run(
        self,
        algorithm: EdgeCentricAlgorithm,
        workload: Workload | Graph,
    ) -> SimulationResult:
        if isinstance(workload, Graph):
            workload = Workload(workload)
        run = run_cached(algorithm, workload.graph)
        counts = self.scheduled_counts(algorithm, run, workload)
        report = self._fold(run, counts, workload)
        return SimulationResult(report=report, run=run)

    # --- folding (price many) -------------------------------------------

    def _fold(
        self,
        run: AlgorithmRun,
        counts: GraphRCounts,
        workload: Workload,
    ) -> EnergyReport:
        edges_per_iter = counts.edges_per_iter
        vertices = counts.vertices
        iters = counts.iterations
        edges_total = counts.edges_total
        navg = counts.navg
        nonempty_blocks = counts.nonempty_blocks

        crossbar = CrossbarModel(
            navg=navg,
            num_groups=self.config.num_crossbar_groups,
        )
        global_mem, _ = _shared_reram(self.config.reram)
        regfile = RegisterFile(
            self.config.regfile_bits * self.config.num_crossbar_groups
        )

        report = EnergyReport(
            machine=self.config.label,
            algorithm=run.algorithm,
            graph=workload.name,
            edges_traversed=edges_total,
            iterations=iters,
            time=0.0,
        )

        # --- edge storage: stream the edge list once per iteration ------
        edge_stream_bits = edges_total * counts.edge_bits
        stream = global_mem.transfer_cost(
            AccessKind.READ, edge_stream_bits, AccessPattern.SEQUENTIAL
        )
        report.add(rpt.EDGE_MEMORY, stream.energy)

        # --- global vertex traffic (Equations (7) and (9)) ----------------
        loads_per_iter = 16.0 * nonempty_blocks          # N^R_{v,s}
        stores_per_iter = vertices                        # N^W_{v,s}
        load_bits = loads_per_iter * counts.vertex_bits * iters
        store_bits = stores_per_iter * counts.vertex_bits * iters
        load = global_mem.transfer_cost(
            AccessKind.READ, load_bits, AccessPattern.SEQUENTIAL
        )
        store = global_mem.transfer_cost(
            AccessKind.WRITE, store_bits, AccessPattern.SEQUENTIAL
        )
        report.add(rpt.OFFCHIP_VERTEX, load.energy + store.energy)

        # --- local vertex traffic: register files --------------------------
        rf_read = regfile.access_cost(AccessKind.READ, AccessPattern.RANDOM)
        rf_write = regfile.access_cost(AccessKind.WRITE, AccessPattern.RANDOM)
        words_per_vertex = counts.vertex_bits / 32.0
        rf_energy = (
            2.0 * edges_total * words_per_vertex * rf_read.energy
            + edges_total * words_per_vertex * rf_write.energy
            + (load_bits + store_bits) / 32.0 * rf_write.energy
        )
        report.add(rpt.ONCHIP_VERTEX, rf_energy)

        # --- crossbar processing (Equations (11), (12), (15)) --------------
        report.add(
            rpt.PROCESSING,
            edges_total * crossbar.energy_per_edge(run.algorithm),
        )
        requests = (
            edge_stream_bits / global_mem.access_bits
            + (load_bits + store_bits) / global_mem.access_bits
        )
        report.add(rpt.CONTROLLER,
                   requests * params.CONTROLLER_REQUEST_ENERGY)

        # --- time (Equation (16) dominates) ---------------------------------
        # Crossbar processing, edge streaming and vertex transfers are
        # pipelined across GEs; the slowest stage bounds the run.
        t_crossbar = edges_total * crossbar.latency_per_edge(run.algorithm)
        t_stream = stream.latency
        t_vertex = load.latency + store.latency
        duration = max(t_crossbar, t_stream, t_vertex)
        report.time = duration

        # --- background -------------------------------------------------------
        footprint = (
            edges_per_iter * counts.edge_bits
            + vertices * counts.vertex_bits
        ) * FOOTPRINT_SLACK
        chips = max(1, math.ceil(footprint / self.config.reram.density_bits))
        # GraphR has no BPG: random-ish block order defeats it.
        report.add(rpt.EDGE_MEMORY_BG,
                   chips * global_mem.background_energy(duration))
        report.add(rpt.ONCHIP_VERTEX_BG,
                   regfile.standby_power * duration)
        logic_power = params.CONTROLLER_POWER + params.ROUTER_LEAKAGE
        report.add(rpt.LOGIC_BG, logic_power * duration)
        return report


def graphr_fold_many(
    machine: GraphRMachine,
    cells: "list[tuple[AlgorithmRun, GraphRCounts, Workload]]",
) -> list[EnergyReport]:
    """Price many (algorithm x dataset) cells on one GraphR config.

    The vectorized counterpart of :meth:`GraphRMachine._fold`: the
    dynamic-energy and time terms are evaluated as NumPy float64 array
    passes mirroring the scalar fold expression for expression (same
    operands, same association), and the per-cell tail (crossbar
    occupancy, background integration, report assembly) replays the
    scalar order exactly — so element ``i`` is bit-identical to
    ``machine._fold(*cells[i])``.
    """
    if not cells:
        return []
    cfg = machine.config
    metrics = obs_metrics.get_metrics()
    metrics.counter(obs_metrics.GRAPHR_FOLD_CONFIGS).add(len(cells))
    global_mem, costs = _shared_reram(cfg.reram)
    (sr_lat, sr_en, sw_lat, sw_en, _, _, _, _, abits) = costs
    regfile = RegisterFile(cfg.regfile_bits * cfg.num_crossbar_groups)
    rf_read = regfile.access_cost(AccessKind.READ, AccessPattern.RANDOM)
    rf_write = regfile.access_cost(AccessKind.WRITE, AccessPattern.RANDOM)

    edges_total = np.asarray(
        [c.edges_total for _, c, _ in cells], dtype=np.float64
    )
    edge_bits = np.asarray(
        [c.edge_bits for _, c, _ in cells], dtype=np.float64
    )
    vertex_bits = np.asarray(
        [c.vertex_bits for _, c, _ in cells], dtype=np.float64
    )
    iters = np.asarray(
        [c.iterations for _, c, _ in cells], dtype=np.float64
    )
    vertices = np.asarray(
        [c.vertices for _, c, _ in cells], dtype=np.float64
    )
    nonempty = np.asarray(
        [c.nonempty_blocks for _, c, _ in cells], dtype=np.float64
    )

    # --- vector passes (operand order mirrors the scalar fold) ----------
    edge_stream_bits = edges_total * edge_bits
    stream_acc = edge_stream_bits / abits
    stream_en = sr_en * stream_acc
    stream_lat = sr_lat * stream_acc

    load_bits = (16.0 * nonempty) * vertex_bits * iters
    store_bits = vertices * vertex_bits * iters
    load_acc = load_bits / abits
    store_acc = store_bits / abits
    load_en = sr_en * load_acc
    load_lat = sr_lat * load_acc
    store_en = sw_en * store_acc
    store_lat = sw_lat * store_acc
    offchip_en = load_en + store_en

    words_per_vertex = vertex_bits / 32.0
    rf_energy = (
        2.0 * edges_total * words_per_vertex * rf_read.energy
        + edges_total * words_per_vertex * rf_write.energy
        + (load_bits + store_bits) / 32.0 * rf_write.energy
    )

    requests = (
        edge_stream_bits / global_mem.access_bits
        + (load_bits + store_bits) / global_mem.access_bits
    )
    controller_en = requests * params.CONTROLLER_REQUEST_ENERGY

    t_vertex = load_lat + store_lat
    logic_power = params.CONTROLLER_POWER + params.ROUTER_LEAKAGE

    # --- tail: per-cell crossbar terms and report assembly --------------
    # The crossbar occupancy ``1 - (7/8) ** navg`` stays scalar so the
    # Python ``**`` of the scalar fold is replayed exactly.
    reports: list[EnergyReport] = []
    for i, (run, counts, workload) in enumerate(cells):
        crossbar = CrossbarModel(
            navg=counts.navg, num_groups=cfg.num_crossbar_groups
        )
        report = EnergyReport(
            machine=cfg.label,
            algorithm=run.algorithm,
            graph=workload.name,
            edges_traversed=counts.edges_total,
            iterations=counts.iterations,
            time=0.0,
        )
        report.add(rpt.EDGE_MEMORY, float(stream_en[i]))
        report.add(rpt.OFFCHIP_VERTEX, float(offchip_en[i]))
        report.add(rpt.ONCHIP_VERTEX, float(rf_energy[i]))
        report.add(
            rpt.PROCESSING,
            counts.edges_total * crossbar.energy_per_edge(run.algorithm),
        )
        report.add(rpt.CONTROLLER, float(controller_en[i]))

        t_crossbar = counts.edges_total * crossbar.latency_per_edge(
            run.algorithm
        )
        duration = max(t_crossbar, float(stream_lat[i]), float(t_vertex[i]))
        report.time = duration

        footprint = (
            counts.edges_per_iter * counts.edge_bits
            + counts.vertices * counts.vertex_bits
        ) * FOOTPRINT_SLACK
        chips = max(1, math.ceil(footprint / cfg.reram.density_bits))
        report.add(rpt.EDGE_MEMORY_BG,
                   chips * global_mem.background_energy(duration))
        report.add(rpt.ONCHIP_VERTEX_BG,
                   regfile.standby_power * duration)
        report.add(rpt.LOGIC_BG, logic_power * duration)
        reports.append(report)
    return reports


def run_many(
    machine: GraphRMachine,
    jobs: "list[tuple[EdgeCentricAlgorithm, Workload | Graph]]",
) -> list[SimulationResult]:
    """Batched :meth:`GraphRMachine.run` over many (algorithm, workload)
    cells: converge each (run cache), expand each counts record (counts
    cache), then price the whole grid with one :func:`graphr_fold_many`
    pass.  Bit-identical per cell to a loop of ``machine.run`` calls.
    """
    tracer = get_tracer()
    cells: list[tuple[AlgorithmRun, GraphRCounts, Workload]] = []
    with tracer.span("graphr.counts", cells=len(jobs)):
        for algorithm, workload in jobs:
            if isinstance(workload, Graph):
                workload = Workload(workload)
            run = run_cached(algorithm, workload.graph)
            counts = machine.scheduled_counts(algorithm, run, workload)
            cells.append((run, counts, workload))
    reports = graphr_fold_many(machine, cells)
    return [
        SimulationResult(report=report, run=run)
        for report, (run, _, _) in zip(reports, cells)
    ]
