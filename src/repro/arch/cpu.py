"""CPU baseline machines (Section 7.1: NXgraph-in-memory and Galois).

The paper measures two software baselines with Intel PCM on a hexa-core
i7 at 3.3 GHz.  Offline we substitute a throughput/power model: a CPU
machine is characterised by its aggregate traversal throughput (edges/s
across all threads, per algorithm class) and its package+DRAM power.
The numbers are calibrated so the CPU-to-accelerator efficiency gap
matches the two-orders-of-magnitude anchor the paper reports; they are
deliberately simple and fully visible here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import run_cached
from ..errors import ConfigError
from ..graph.graph import Graph
from .config import Workload
from .machine import SimulationResult
from .report import EnergyReport, OFFCHIP_VERTEX, OFFCHIP_VERTEX_BG, PROCESSING


@dataclass(frozen=True)
class CPUModel:
    """Throughput/power description of one software baseline.

    Attributes:
        label: Fig. 16 label.
        throughput_meps: aggregate millions of traversed edges per
            second (8 threads).
        package_power: CPU package power under load (W).
        dram_power: DRAM subsystem power under load (W).
        dram_energy_fraction: share of dynamic work attributed to memory
            (>= 60% for PageRank per [22]).
    """

    label: str
    throughput_meps: float
    package_power: float
    dram_power: float
    dram_energy_fraction: float = 0.65

    def __post_init__(self) -> None:
        if self.throughput_meps <= 0:
            raise ConfigError("throughput must be positive")
        if self.package_power <= 0 or self.dram_power < 0:
            raise ConfigError("powers must be positive")
        if not 0.0 <= self.dram_energy_fraction <= 1.0:
            raise ConfigError("dram fraction must be in [0, 1]")


#: NXgraph-like in-memory system on the hexa-core i7 (8 threads).  The
#: throughput anchor is calibrated so the accelerator-vs-CPU efficiency
#: gap reproduces the paper's two-orders-of-magnitude headline.
CPU_DRAM = CPUModel(
    label="CPU+DRAM",
    throughput_meps=1200.0,
    package_power=65.0,
    dram_power=12.0,
)

#: Galois (state-of-the-art in-memory), ~1.4x faster at similar power.
CPU_DRAM_OPT = CPUModel(
    label="CPU+DRAM-opt",
    throughput_meps=1650.0,
    package_power=65.0,
    dram_power=12.0,
)


class CPUMachine:
    """Software baseline exposing the same ``run`` interface."""

    def __init__(self, model: CPUModel = CPU_DRAM) -> None:
        self.model = model

    @property
    def label(self) -> str:
        return self.model.label

    def run(
        self,
        algorithm: EdgeCentricAlgorithm,
        workload: Workload | Graph,
    ) -> SimulationResult:
        if isinstance(workload, Graph):
            workload = Workload(workload)
        run = run_cached(algorithm, workload.graph)
        edges_total = run.total_edges * workload.edge_scale
        time = edges_total / (self.model.throughput_meps * 1e6)
        total_energy = time * (
            self.model.package_power + self.model.dram_power
        )
        dram_share = self.model.dram_energy_fraction
        report = EnergyReport(
            machine=self.model.label,
            algorithm=run.algorithm,
            graph=workload.name,
            edges_traversed=edges_total,
            iterations=run.iterations,
            time=time,
        )
        # Attribute energy to memory vs compute per the measured split.
        report.add(OFFCHIP_VERTEX, total_energy * dram_share * 0.5)
        report.add(OFFCHIP_VERTEX_BG, total_energy * dram_share * 0.5)
        report.add(PROCESSING, total_energy * (1.0 - dram_share))
        return SimulationResult(report=report, run=run)
