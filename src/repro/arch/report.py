"""Energy/time reports produced by the machine models.

A report tallies per-component energy (dynamic and background split per
component), the modelled execution time, and the work done — enough to
regenerate every figure of the evaluation: MTEPS/W (Fig. 16, Table 4),
breakdown buckets (Fig. 17), execution-time ratios (Fig. 18) and EDP
(Fig. 21).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..units import edp, mteps_per_watt

#: Component keys.  "Vertex memory" in Fig. 17 covers both the on-chip
#: scratchpad and the off-chip vertex memory.
EDGE_MEMORY = "edge_memory"
EDGE_MEMORY_BG = "edge_memory_background"
OFFCHIP_VERTEX = "offchip_vertex"
OFFCHIP_VERTEX_BG = "offchip_vertex_background"
ONCHIP_VERTEX = "onchip_vertex"
ONCHIP_VERTEX_BG = "onchip_vertex_background"
PROCESSING = "processing_units"
ROUTER = "router"
CONTROLLER = "controller"
LOGIC_BG = "logic_background"

ALL_COMPONENTS = (
    EDGE_MEMORY,
    EDGE_MEMORY_BG,
    OFFCHIP_VERTEX,
    OFFCHIP_VERTEX_BG,
    ONCHIP_VERTEX,
    ONCHIP_VERTEX_BG,
    PROCESSING,
    ROUTER,
    CONTROLLER,
    LOGIC_BG,
)

#: Fig. 17 buckets.
BREAKDOWN_BUCKETS = {
    "Edge Memory": (EDGE_MEMORY, EDGE_MEMORY_BG),
    "Vertex Memory": (
        OFFCHIP_VERTEX,
        OFFCHIP_VERTEX_BG,
        ONCHIP_VERTEX,
        ONCHIP_VERTEX_BG,
    ),
    "Other logic units": (PROCESSING, ROUTER, CONTROLLER, LOGIC_BG),
}


@dataclass
class EnergyReport:
    """Outcome of simulating one (machine, algorithm, graph) run.

    Attributes:
        machine: machine configuration label (e.g. "acc+HyVE-opt").
        algorithm: algorithm tag ("PR", "BFS"...).
        graph: graph name.
        edges_traversed: total edges processed (iterations x edges), at
            the workload's reported scale.
        iterations: full edge sweeps executed.
        time: modelled execution time in seconds.
        energy: per-component energy in joules.
    """

    machine: str
    algorithm: str
    graph: str
    edges_traversed: float
    iterations: int
    time: float
    energy: dict[str, float] = field(default_factory=dict)

    def add(self, component: str, joules: float) -> None:
        if component not in ALL_COMPONENTS:
            raise ConfigError(f"unknown energy component {component!r}")
        if joules < 0:
            raise ConfigError(
                f"negative energy for {component}: {joules}"
            )
        self.energy[component] = self.energy.get(component, 0.0) + joules

    # --- totals -----------------------------------------------------------

    @property
    def total_energy(self) -> float:
        return sum(self.energy.values())

    @property
    def memory_energy(self) -> float:
        """Energy of the whole memory system (Fig. 17 memory share)."""
        logic = BREAKDOWN_BUCKETS["Other logic units"]
        return sum(v for k, v in self.energy.items() if k not in logic)

    @property
    def logic_energy(self) -> float:
        logic = BREAKDOWN_BUCKETS["Other logic units"]
        return sum(v for k, v in self.energy.items() if k in logic)

    @property
    def mteps_per_watt(self) -> float:
        """The paper's headline efficiency metric."""
        return mteps_per_watt(self.edges_traversed, self.time,
                              self.total_energy)

    @property
    def mteps(self) -> float:
        """Raw throughput in millions of traversed edges per second."""
        if self.time <= 0:
            raise ConfigError(f"non-positive execution time: {self.time}")
        return self.edges_traversed / self.time / 1e6

    @property
    def edp(self) -> float:
        """Energy-delay product (Equation (5))."""
        return edp(self.time, self.total_energy)

    # --- breakdowns ---------------------------------------------------------

    def breakdown(self) -> dict[str, float]:
        """Fig. 17 buckets as fractions of total energy."""
        total = self.total_energy
        if total <= 0:
            raise ConfigError("cannot break down a zero-energy report")
        out: dict[str, float] = {}
        for bucket, components in BREAKDOWN_BUCKETS.items():
            out[bucket] = sum(
                self.energy.get(c, 0.0) for c in components
            ) / total
        return out

    def component_fraction(self, component: str) -> float:
        total = self.total_energy
        return self.energy.get(component, 0.0) / total if total else 0.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.machine} / {self.algorithm} / {self.graph}: "
            f"{self.mteps_per_watt:.0f} MTEPS/W, "
            f"{self.total_energy * 1e3:.3f} mJ, {self.time * 1e3:.3f} ms, "
            f"{self.iterations} iters"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable view of the report (for tooling)."""
        return {
            "machine": self.machine,
            "algorithm": self.algorithm,
            "graph": self.graph,
            "edges_traversed": self.edges_traversed,
            "iterations": self.iterations,
            "time_s": self.time,
            "energy_j": dict(self.energy),
            "total_energy_j": self.total_energy,
            "mteps_per_watt": self.mteps_per_watt,
            "mteps": self.mteps,
            "edp_js": self.edp,
            "breakdown": self.breakdown(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyReport":
        """Rebuild a report from :meth:`to_dict` output.

        Derived quantities (totals, breakdowns) are recomputed, not
        trusted; the sweep checkpoint/resume machinery relies on a
        round-trip being lossless for the stored fields.
        """
        try:
            energy = data["energy_j"]
            if not isinstance(energy, dict):
                raise ConfigError(
                    f"energy_j must be a component map: {type(energy).__name__}"
                )
            unknown = set(energy) - set(ALL_COMPONENTS)
            if unknown:
                raise ConfigError(
                    f"unknown energy components in report dict: {sorted(unknown)}"
                )
            return cls(
                machine=data["machine"],
                algorithm=data["algorithm"],
                graph=data["graph"],
                edges_traversed=float(data["edges_traversed"]),
                iterations=int(data["iterations"]),
                time=float(data["time_s"]),
                energy={k: float(v) for k, v in energy.items()},
            )
        except KeyError as exc:
            raise ConfigError(f"report dict missing field {exc}") from exc


def efficiency_ratio(a: EnergyReport, b: EnergyReport) -> float:
    """MTEPS/W of ``a`` over ``b`` (how many times more efficient a is)."""
    return a.mteps_per_watt / b.mteps_per_watt


def geomean(values: list[float]) -> float:
    """Geometric mean (the paper's averaging for ratios)."""
    if not values:
        raise ConfigError("geomean of an empty list")
    if any(v <= 0 for v in values):
        raise ConfigError("geomean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
