"""Pipelined N-to-N router for source-interval sharing (Section 4.2).

During a super-block step, each PU reads its source vertices from
another PU's source section through the router; because source data is
read-only during a step there are no hazards and the router can be fully
pipelined — throughput is unaffected and only a fill latency per step
remains (the paper bounds remote access at ~5-10 SRAM cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from . import params


@dataclass(frozen=True)
class RouterModel:
    """Energy/latency model of the data-sharing router."""

    num_ports: int

    def __post_init__(self) -> None:
        if self.num_ports <= 0:
            raise ConfigError(
                f"router needs at least one port, got {self.num_ports}"
            )

    def transfer_energy(self, words: float) -> float:
        """Energy to move ``words`` 32-bit words between PUs."""
        if words < 0:
            raise ConfigError(f"negative word count: {words}")
        return words * params.ROUTER_HOP_ENERGY_PER_WORD

    def reroute_energy(self, events: float) -> float:
        """Control energy of ``events`` rerouting operations."""
        if events < 0:
            raise ConfigError(f"negative event count: {events}")
        return events * params.ROUTER_REROUTE_ENERGY

    def fill_latency(self, steps: float) -> float:
        """Pipeline-fill latency across ``steps`` super-block steps."""
        if steps < 0:
            raise ConfigError(f"negative step count: {steps}")
        return steps * params.ROUTER_FILL_LATENCY

    @property
    def leakage_power(self) -> float:
        return params.ROUTER_LEAKAGE
