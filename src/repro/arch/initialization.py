"""One-shot initialisation cost: writing the graph into the memories.

Section 3.1: "During the algorithm initialization, the edge data go
through a one-shot preprocessing step and are written into the memory...
Limited write bandwidth of ReRAM will not cause an obvious delay since
the data write only occurs during initialization."  This module
quantifies that claim: the time and energy to write the serialised
block image (Section 3.4, including the 30% dynamic-graph slack
headers) into the edge memory and the interval image into the vertex
memory, with writes interleaved across the provisioned chips.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import run_cached
from ..errors import ConfigError
from ..graph.graph import Graph
from ..memory.base import AccessKind, AccessPattern
from ..model.preprocessing import hyve_preprocessing_time
from .config import HyVEConfig, Workload, choose_num_intervals
from .machine import FOOTPRINT_SLACK, AcceleratorMachine


@dataclass(frozen=True)
class InitializationCost:
    """Cost of the one-shot preprocessing + memory-image write.

    Attributes:
        partition_time: host-side interval-block partitioning (s),
            from the calibrated preprocessing model.
        edge_write_bits: serialised edge image size (bits, with slack).
        vertex_write_bits: serialised vertex image size.
        write_time: time to stream both images into the memories (s),
            writes interleaved across chips.
        write_energy: energy of those writes (J).
    """

    partition_time: float
    edge_write_bits: float
    vertex_write_bits: float
    write_time: float
    write_energy: float

    @property
    def total_time(self) -> float:
        return self.partition_time + self.write_time


def initialization_cost(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload | Graph,
    config: HyVEConfig | None = None,
) -> InitializationCost:
    """Model the one-shot initialisation for one workload."""
    if isinstance(workload, Graph):
        workload = Workload(workload)
    config = config or HyVEConfig()
    machine = AcceleratorMachine(config)
    run = run_cached(algorithm, workload.graph)

    edges = run.edges_per_iteration * workload.edge_scale
    vertices = run.num_vertices * workload.vertex_scale
    edge_bits = edges * run.edge_bits * FOOTPRINT_SLACK
    vertex_bits = vertices * run.vertex_bits * FOOTPRINT_SLACK

    edge_dev, edge_chips = machine._edge_device(edge_bits)
    vertex_dev, vertex_chips = machine._vertex_device(vertex_bits)

    edge_write = edge_dev.transfer_cost(
        AccessKind.WRITE, edge_bits, AccessPattern.SEQUENTIAL
    )
    vertex_write = vertex_dev.transfer_cost(
        AccessKind.WRITE, vertex_bits, AccessPattern.SEQUENTIAL
    )
    # Writes stream into all chips of the rank in parallel.
    write_time = (
        edge_write.latency / edge_chips
        + vertex_write.latency / vertex_chips
    )
    p = choose_num_intervals(config, max(vertices, 1.0), run.vertex_bits)
    return InitializationCost(
        partition_time=hyve_preprocessing_time(edges, p),
        edge_write_bits=edge_bits,
        vertex_write_bits=vertex_bits,
        write_time=write_time,
        write_energy=edge_write.energy + vertex_write.energy,
    )


def init_vs_execution(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload | Graph,
    config: HyVEConfig | None = None,
) -> dict[str, float]:
    """Compare the one-shot initialisation with one full execution.

    Returns the ratios the Section 3.1 claim rests on: the write time
    as a fraction of the execution time and of the per-iteration time.
    """
    if isinstance(workload, Graph):
        workload = Workload(workload)
    config = config or HyVEConfig()
    init = initialization_cost(algorithm, workload, config)
    report = AcceleratorMachine(config).run(algorithm, workload).report
    if report.time <= 0:
        raise ConfigError("execution time must be positive")
    per_iteration = report.time / report.iterations
    return {
        "init_write_time_s": init.write_time,
        "execution_time_s": report.time,
        "write_over_execution": init.write_time / report.time,
        "write_over_iteration": init.write_time / per_iteration,
        "write_energy_over_execution": (
            init.write_energy / report.total_energy
        ),
        "partition_time_s": init.partition_time,
    }
