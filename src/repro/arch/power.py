"""Power-over-time profile derived from the phase timeline.

Combines the Section 4.3 phase schedule with the device models to
estimate instantaneous power per phase: each phase's dynamic energy
(from its data volume) over its duration, plus the background power of
everything that is awake during it.  This is the view in which
bank-level power gating is visible directly — the edge-memory standby
term disappears from every phase except the streaming ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import run_cached
from ..errors import ConfigError
from ..graph.graph import Graph
from ..memory.base import AccessKind, AccessPattern
from ..memory.dram import DDR4Chip
from ..memory.reram import ReRAMChip
from ..memory.sram import OnChipSRAM
from . import params
from .config import HyVEConfig, MemoryTechnology, Workload
from .machine import FOOTPRINT_SLACK, MIN_EDGE_CHIPS_PER_RANK
from .phases import Phase, PhaseKind, schedule_phases


@dataclass(frozen=True)
class PowerSample:
    """Estimated power during one phase."""

    phase: Phase
    dynamic_power: float
    background_power: float

    @property
    def total_power(self) -> float:
        return self.dynamic_power + self.background_power


@dataclass(frozen=True)
class PowerProfile:
    """A run's power trace with summary statistics."""

    samples: tuple[PowerSample, ...]

    @property
    def duration(self) -> float:
        return sum(s.phase.duration for s in self.samples)

    @property
    def average_power(self) -> float:
        if self.duration <= 0:
            raise ConfigError("profile has zero duration")
        energy = sum(s.total_power * s.phase.duration for s in self.samples)
        return energy / self.duration

    @property
    def peak_power(self) -> float:
        return max(s.total_power for s in self.samples)

    def by_kind(self) -> dict[str, float]:
        """Time-weighted average power per phase kind."""
        sums: dict[str, float] = {}
        times: dict[str, float] = {}
        for s in self.samples:
            key = s.phase.kind.value
            sums[key] = sums.get(key, 0.0) + s.total_power * s.phase.duration
            times[key] = times.get(key, 0.0) + s.phase.duration
        return {k: sums[k] / times[k] for k in sums if times[k] > 0}


def power_profile(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload | Graph,
    config: HyVEConfig | None = None,
    iterations: int = 1,
) -> PowerProfile:
    """Estimate the power trace of ``iterations`` of the schedule."""
    if isinstance(workload, Graph):
        workload = Workload(workload)
    config = config or HyVEConfig()
    phases = schedule_phases(algorithm, workload, config, iterations)
    run = run_cached(algorithm, workload.graph)

    edge_dev = (
        ReRAMChip(config.reram)
        if config.edge_memory == MemoryTechnology.RERAM
        else DDR4Chip(config.dram)
    )
    vertex_dev = (
        DDR4Chip(config.dram)
        if config.offchip_vertex == MemoryTechnology.DRAM
        else ReRAMChip(config.reram)
    )
    sram = OnChipSRAM(config.sram_bits)
    edge_footprint = (
        workload.graph.num_edges * workload.edge_scale * run.edge_bits
        * FOOTPRINT_SLACK
    )
    density = (
        config.reram.density_bits
        if config.edge_memory == MemoryTechnology.RERAM
        else config.dram.density_bits
    )
    edge_chips = max(MIN_EDGE_CHIPS_PER_RANK,
                     math.ceil(edge_footprint / density))

    gating_on = (
        config.power_gating.enabled
        and config.edge_memory == MemoryTechnology.RERAM
        and config.reram.subbank_interleaving
    )
    edge_awake = edge_chips * edge_dev.standby_power
    edge_gated = (
        edge_chips * edge_dev.gated_power
        + edge_dev.standby_power / edge_dev.num_banks  # the active bank
        if gating_on
        else edge_awake
    )
    always_on = (
        vertex_dev.standby_power
        + config.num_pus * sram.standby_power
        + config.num_pus * params.PU_LEAKAGE
        + params.ROUTER_LEAKAGE
        + params.CONTROLLER_POWER
    )

    edge_seq = edge_dev.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL)
    vertex_read = vertex_dev.access_cost(
        AccessKind.READ, AccessPattern.SEQUENTIAL
    )
    vertex_write = vertex_dev.access_cost(
        AccessKind.WRITE, AccessPattern.SEQUENTIAL
    )
    sram_read = sram.access_cost(AccessKind.READ, AccessPattern.RANDOM)
    sram_write = sram.access_cost(AccessKind.WRITE, AccessPattern.RANDOM)

    samples: list[PowerSample] = []
    for phase in phases:
        background = always_on + (
            edge_gated if phase.kind is not PhaseKind.PROCESSING
            else edge_awake
        )
        energy = 0.0
        if phase.kind is PhaseKind.LOADING:
            energy = (
                phase.data_bits / vertex_dev.access_bits * vertex_read.energy
                + phase.data_bits / 32.0 * sram_write.energy
            )
        elif phase.kind is PhaseKind.UPDATING:
            energy = (
                phase.data_bits / vertex_dev.access_bits
                * vertex_write.energy
                + phase.data_bits / 32.0 * sram_read.energy
            )
        elif phase.kind is PhaseKind.PROCESSING:
            edges = phase.data_bits / run.edge_bits
            energy = (
                phase.data_bits / edge_dev.access_bits * edge_seq.energy
                + edges * (2 * sram_read.energy + sram_write.energy)
                + edges * (
                    params.PU_OP_ENERGY_MV
                    if run.algorithm in ("PR", "SpMV")
                    else params.PU_OP_ENERGY_NON_MV
                )
                + edges * params.PIPELINE_ENERGY_PER_EDGE
            )
        elif phase.kind is PhaseKind.REROUTING:
            energy = config.num_pus * params.ROUTER_REROUTE_ENERGY
        dynamic = energy / phase.duration if phase.duration > 0 else 0.0
        samples.append(PowerSample(phase, dynamic, background))
    return PowerProfile(samples=tuple(samples))
