"""CMOS processing-unit model (Sections 4.2, 6.4).

A PU is a pipelined datapath that consumes one edge per initiation
interval: read the source value, read the destination value, update,
write back.  The initiation interval is scratchpad-bound — three SRAM
accesses per edge over two ports — and the 18.783 ns multiplier latency
is hidden by pipelining except for a fill charge per block step.

Matrix-vector style algorithms (PR, SpMV) use the float-multiplier
energy the paper quotes (3.7 pJ); traversal algorithms (BFS, CC, SSSP)
use a cheaper compare-select datapath.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from . import params

#: Algorithms whose per-edge update is a multiply-accumulate.
_MV_ALGORITHMS = frozenset({"PR", "SpMV"})


@dataclass(frozen=True)
class ProcessingUnitModel:
    """Per-edge time/energy of one CMOS processing unit.

    Attributes:
        sram_cycle: access cycle of the attached on-chip vertex memory
            (s); bounds the initiation interval.  Machines without an
            on-chip scratchpad pass the main-memory-bound interval
            instead.
    """

    sram_cycle: float

    def __post_init__(self) -> None:
        if self.sram_cycle <= 0:
            raise ConfigError(
                f"SRAM cycle must be positive, got {self.sram_cycle}"
            )

    @property
    def initiation_interval(self) -> float:
        """Seconds between successive edges entering the pipeline."""
        per_edge_accesses = (
            params.PU_SRAM_ACCESSES_PER_EDGE / params.PU_SRAM_PORTS
        )
        return self.sram_cycle * per_edge_accesses

    def op_energy(self, algorithm: str) -> float:
        """Energy of one edge update for the given algorithm tag."""
        if algorithm in _MV_ALGORITHMS:
            return params.PU_OP_ENERGY_MV
        return params.PU_OP_ENERGY_NON_MV

    def pipeline_fill(self) -> float:
        """Latency charged once per block step (pipeline drain/fill)."""
        return params.PU_OP_LATENCY

    @property
    def leakage_power(self) -> float:
        return params.PU_LEAKAGE
