"""Machine-level silicon-area report.

Aggregates the per-memory area estimates (`repro.memory.area`) over a
machine configuration and workload: the accelerator die (scratchpads,
PUs, router) and the memory system (edge + vertex chips), including the
bank power-gate overhead the paper argues is negligible (Section 4.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import run_cached
from ..graph.graph import Graph
from ..memory.area import AreaEstimate, memory_area
from .config import HyVEConfig, MemoryTechnology, Workload
from .machine import FOOTPRINT_SLACK, MIN_EDGE_CHIPS_PER_RANK

#: Area of one CMOS processing unit at 22 nm (pipeline + float unit),
#: and of the N-to-N router per port pair — small next to the SRAM.
PU_AREA_MM2 = 0.15
ROUTER_PORT_AREA_MM2 = 0.02


@dataclass(frozen=True)
class MachineArea:
    """Area report for one (machine, workload) pair."""

    onchip_sram: AreaEstimate
    edge_memory: AreaEstimate
    vertex_memory: AreaEstimate
    pu_area_mm2: float
    router_area_mm2: float
    edge_chips: int
    vertex_chips: int

    @property
    def accelerator_die_mm2(self) -> float:
        """The accelerator chip: scratchpads + PUs + router."""
        return (
            self.onchip_sram.total_mm2
            + self.pu_area_mm2
            + self.router_area_mm2
        )

    @property
    def memory_system_mm2(self) -> float:
        return self.edge_memory.total_mm2 + self.vertex_memory.total_mm2

    @property
    def power_gate_overhead(self) -> float:
        """Gate area as a fraction of the edge memory (Section 4.1)."""
        total = self.edge_memory.total_m2
        if total <= 0:
            return 0.0
        return self.edge_memory.power_gate_area_m2 / total


def machine_area(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload | Graph,
    config: HyVEConfig | None = None,
) -> MachineArea:
    """Estimate silicon area for one configuration and workload."""
    if isinstance(workload, Graph):
        workload = Workload(workload)
    config = config or HyVEConfig()
    run = run_cached(algorithm, workload.graph)

    edge_bits = (
        run.edges_per_iteration * workload.edge_scale * run.edge_bits
        * FOOTPRINT_SLACK
    )
    vertex_bits = (
        run.num_vertices * workload.vertex_scale * run.vertex_bits
        * FOOTPRINT_SLACK
    )

    edge_tech = config.edge_memory
    vertex_tech = config.offchip_vertex
    edge_density = (
        config.reram.density_bits
        if edge_tech == MemoryTechnology.RERAM
        else config.dram.density_bits
    )
    vertex_density = (
        config.reram.density_bits
        if vertex_tech == MemoryTechnology.RERAM
        else config.dram.density_bits
    )
    edge_chips = max(MIN_EDGE_CHIPS_PER_RANK,
                     math.ceil(edge_bits / edge_density))
    vertex_chips = max(1, math.ceil(vertex_bits / vertex_density))

    gated_banks = (
        edge_chips * config.reram.num_banks
        if edge_tech == MemoryTechnology.RERAM
        and config.power_gating.enabled
        else 0
    )
    edge_area = memory_area(
        edge_tech,
        edge_chips * edge_density,
        cell_bits=(
            config.reram.cell.cell_bits
            if edge_tech == MemoryTechnology.RERAM
            else 1
        ),
        power_gated_banks=gated_banks,
    )
    vertex_area = memory_area(vertex_tech, vertex_chips * vertex_density)
    sram_bits = config.sram_bits * config.num_pus if config.has_onchip else 0
    sram_area = memory_area("sram", max(sram_bits, 1))

    return MachineArea(
        onchip_sram=sram_area,
        edge_memory=edge_area,
        vertex_memory=vertex_area,
        pu_area_mm2=config.num_pus * PU_AREA_MM2,
        router_area_mm2=config.num_pus * ROUTER_PORT_AREA_MM2,
        edge_chips=edge_chips,
        vertex_chips=vertex_chips,
    )
