"""Explicit phase schedule of Algorithm 2 (Section 4.3's working flow).

The overall working flow consists of six phase kinds — **Loading**,
**Assigning**, **Rerouting**, **Processing**, **Synchronizing**,
**Updating** — executed in the nested super-block order of Algorithm 2.
This module materialises that schedule as a timeline of
:class:`Phase` records with modelled durations and data volumes, giving
a Gantt-level view of where time goes (the coarse machine model in
:mod:`repro.arch.machine` integrates the same quantities in aggregate).

The timeline is the *serialised* view: processing steps appear one
after another, so the total phase time upper-bounds the pipelined
machine-model time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..algorithms.base import EdgeCentricAlgorithm
from ..algorithms.runner import run_cached, transform_cached
from ..errors import ConfigError
from ..graph.graph import Graph
from ..graph.hash_partition import hash_partition
from ..memory.base import AccessKind, AccessPattern
from ..memory.dram import DDR4Chip
from ..memory.reram import ReRAMChip
from ..memory.sram import OnChipSRAM
from . import params
from .config import HyVEConfig, MemoryTechnology, Workload
from .processing_unit import ProcessingUnitModel


class PhaseKind(enum.Enum):
    """The six phases of Section 4.3."""

    LOADING = "Loading"
    ASSIGNING = "Assigning"
    REROUTING = "Rerouting"
    PROCESSING = "Processing"
    SYNCHRONIZING = "Synchronizing"
    UPDATING = "Updating"


@dataclass(frozen=True)
class Phase:
    """One scheduled phase instance.

    Attributes:
        kind: which of the six phases.
        start: timeline offset (s) at which the phase begins.
        duration: modelled duration (s).
        detail: human-readable description (intervals/blocks involved).
        data_bits: bits moved (loading/updating) or streamed
            (processing); 0 for control phases.
    """

    kind: PhaseKind
    start: float
    duration: float
    detail: str
    data_bits: float = 0.0

    @property
    def end(self) -> float:
        return self.start + self.duration


def schedule_phases(
    algorithm: EdgeCentricAlgorithm,
    workload: Workload | Graph,
    config: HyVEConfig | None = None,
    iterations: int = 1,
) -> list[Phase]:
    """Materialise the Algorithm-2 phase timeline for ``iterations``.

    Uses the synthetic graph's own block statistics (not the reported
    scale): the timeline is a structural view, not an energy total.
    """
    if isinstance(workload, Graph):
        workload = Workload(workload)
    config = config or HyVEConfig()
    if not config.has_onchip:
        raise ConfigError("the phase schedule requires an on-chip memory")
    if iterations < 1:
        raise ConfigError(f"need at least one iteration: {iterations}")

    run = run_cached(algorithm, workload.graph)
    streamed = transform_cached(algorithm, workload.graph)
    n = config.num_pus
    p = _partition_count(config, streamed, run.vertex_bits, n)
    partition, _ = hash_partition(streamed, p)
    sizes = partition.interval_sizes()
    q = p // n

    # Device costs.
    vertex_dev = (
        DDR4Chip(config.dram)
        if config.offchip_vertex == MemoryTechnology.DRAM
        else ReRAMChip(config.reram)
    )
    edge_dev = (
        ReRAMChip(config.reram)
        if config.edge_memory == MemoryTechnology.RERAM
        else DDR4Chip(config.dram)
    )
    sram = OnChipSRAM(config.sram_bits)
    pu = ProcessingUnitModel(sram_cycle=sram.point.read_latency)
    seq_read = vertex_dev.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL)
    seq_write = vertex_dev.access_cost(
        AccessKind.WRITE, AccessPattern.SEQUENTIAL
    )
    edge_seq = edge_dev.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL)

    def interval_load_time(vertex_count: float) -> float:
        bits = vertex_count * run.vertex_bits
        return bits / vertex_dev.access_bits * seq_read.latency

    def interval_store_time(vertex_count: float) -> float:
        bits = vertex_count * run.vertex_bits
        return bits / vertex_dev.access_bits * seq_write.latency

    steps = partition.super_block_step_counts(n)  # [X, Y, step, pu]

    phases: list[Phase] = []
    now = 0.0

    def emit(kind: PhaseKind, duration: float, detail: str,
             bits: float = 0.0) -> None:
        nonlocal now
        phases.append(Phase(kind, now, duration, detail, bits))
        now += duration

    for it in range(iterations):
        for y in range(q):
            dst_ids = list(range(y * n, (y + 1) * n))
            dst_vertices = float(sizes[dst_ids].sum())
            for x in range(q):
                src_ids = list(range(x * n, (x + 1) * n))
                src_vertices = float(sizes[src_ids].sum())
                emit(
                    PhaseKind.LOADING,
                    interval_load_time(src_vertices),
                    f"it{it} SB({x},{y}): load source intervals {src_ids}",
                    src_vertices * run.vertex_bits,
                )
                if x == 0:
                    emit(
                        PhaseKind.LOADING,
                        interval_load_time(dst_vertices),
                        f"it{it} SB({x},{y}): load destination intervals "
                        f"{dst_ids}",
                        dst_vertices * run.vertex_bits,
                    )
                emit(
                    PhaseKind.ASSIGNING,
                    params.SYNC_LATENCY,
                    f"it{it} SB({x},{y}): assign destinations to PUs",
                )
                for step in range(n):
                    if config.data_sharing:
                        emit(
                            PhaseKind.REROUTING,
                            params.ROUTER_FILL_LATENCY,
                            f"it{it} SB({x},{y}) step {step}: re-route "
                            "source connections",
                        )
                    max_edges = int(steps[x, y, step].max())
                    stream_time = (
                        max_edges * run.edge_bits / edge_dev.access_bits
                        * edge_seq.latency
                    )
                    compute_time = (
                        max_edges * pu.initiation_interval
                        + pu.pipeline_fill()
                    )
                    emit(
                        PhaseKind.PROCESSING,
                        max(stream_time, compute_time),
                        f"it{it} SB({x},{y}) step {step}: "
                        f"{int(steps[x, y, step].sum())} edges "
                        f"(slowest PU: {max_edges})",
                        float(steps[x, y, step].sum()) * run.edge_bits,
                    )
                    emit(
                        PhaseKind.SYNCHRONIZING,
                        params.SYNC_LATENCY,
                        f"it{it} SB({x},{y}) step {step}: barrier",
                    )
                if x == q - 1:
                    emit(
                        PhaseKind.UPDATING,
                        interval_store_time(dst_vertices),
                        f"it{it} SB({x},{y}): write back destination "
                        f"intervals {dst_ids}",
                        dst_vertices * run.vertex_bits,
                    )
    return phases


def phase_profile(phases: list[Phase]) -> dict[str, float]:
    """Total time per phase kind (the Gantt summary)."""
    totals = {kind.value: 0.0 for kind in PhaseKind}
    for phase in phases:
        totals[phase.kind.value] += phase.duration
    return totals


def _partition_count(config: HyVEConfig, graph: Graph, vertex_bits: int,
                     num_pus: int) -> int:
    from .config import choose_num_intervals

    p = choose_num_intervals(
        config, max(graph.num_vertices, 1), vertex_bits
    )
    # Clamp to the synthetic graph's resolution.
    while p > max(graph.num_vertices, num_pus):
        p //= 2
    return max(p - (p % num_pus), num_pus)
