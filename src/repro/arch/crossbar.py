"""ReRAM crossbar processing-unit model (GraphR's compute fabric).

GraphR maps each non-empty 8x8 block of the adjacency matrix onto a
graph engine (GE): a group of four 8x8 crossbars with 4-bit cells that
together hold 16-bit edge values.  Processing a block means *writing*
the block's edges into the GE (configuring the adjacency matrix) and
then performing the analog operation: one matrix-vector read for
PR/SpMV, or eight row-by-row reads plus a CMOS output operation for
traversal algorithms (Equations (10)-(16)).

Device constants are GraphR's published numbers (Section 7.4.3): read
29.31 ns / 1.08 pJ, write 50.88 ns / 3.91 nJ.  The write figure is the
cost of configuring a GE for one block — the interpretation under which
the paper's bottom line (2.83x energy vs HyVE) is self-consistent with
its Table 4 absolute efficiencies; the per-edge write cost is therefore
``E_cb / N_avg`` exactly as Equation (10) prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import NJ, NS, PJ
from . import params

#: GraphR's published ReRAM crossbar operation costs.
CROSSBAR_READ_LATENCY = 29.31 * NS
CROSSBAR_WRITE_LATENCY = 50.88 * NS
CROSSBAR_READ_ENERGY = 1.08 * PJ
CROSSBAR_WRITE_ENERGY = 3.91 * NJ   # configure one GE for one block

#: Crossbars ganged in one GE for 16-bit values with 4-bit cells.
CROSSBARS_PER_GROUP = 4

#: Row-by-row selection for non-matrix-vector algorithms: the analog
#: operation is performed 8 times (Equation (12)).
NON_MV_ROW_FACTOR = 8

#: Algorithms computed as analog matrix-vector products.
MV_ALGORITHMS = frozenset({"PR", "SpMV"})

#: Issue interval of pipelined row-by-row reads within one GE.
ROW_PIPELINE_CYCLE = 2.0 * NS


@dataclass(frozen=True)
class CrossbarModel:
    """Per-edge cost of processing on ReRAM crossbar graph engines.

    Attributes:
        navg: average edges per non-empty 8x8 block (Table 1) — the
            effective parallelism inside a crossbar, and the number of
            edges one GE configuration is amortised over.
        num_groups: GEs operating in parallel across blocks.
    """

    navg: float
    num_groups: int = 8

    def __post_init__(self) -> None:
        if self.navg <= 0:
            raise ConfigError(f"N_avg must be positive, got {self.navg}")
        if self.num_groups <= 0:
            raise ConfigError("need at least one crossbar group")

    @property
    def occupied_row_fraction(self) -> float:
        """Expected fraction of a block's 8 rows that hold any edge.

        Only occupied rows must be programmed (empty rows stay in the
        default high-resistance state); with N_avg edges thrown over 8
        rows, the expectation is ``1 - (7/8) ** N_avg`` per row.
        """
        return 1.0 - (7.0 / 8.0) ** self.navg

    def block_energy(self, algorithm: str) -> float:
        """E_cb of Equation (14): configure + operate one block."""
        reads = (
            CROSSBARS_PER_GROUP * CROSSBAR_READ_ENERGY
        )
        if algorithm not in MV_ALGORITHMS:
            reads *= NON_MV_ROW_FACTOR
        return CROSSBAR_WRITE_ENERGY * self.occupied_row_fraction + reads

    def energy_per_edge(self, algorithm: str) -> float:
        """Equations (10)-(12): equivalent per-edge energy.

        The block configuration is amortised over the N_avg edges the
        block actually holds — only 1.2-2.4 on natural graphs (Table 1),
        which is exactly why crossbar processing loses to CMOS.
        """
        energy = self.block_energy(algorithm) / self.navg
        if algorithm not in MV_ALGORITHMS:
            energy += params.PU_OP_ENERGY_NON_MV  # CMOS op at the port
        return energy

    def block_latency(self, algorithm: str) -> float:
        """Time to configure and operate one block in one GE.

        Row-by-row selection (non-MV algorithms) pipelines inside the
        GE: after the first full-latency read, subsequent row reads
        issue every array cycle.
        """
        reads = CROSSBAR_READ_LATENCY
        if algorithm not in MV_ALGORITHMS:
            reads += (NON_MV_ROW_FACTOR - 1) * ROW_PIPELINE_CYCLE
        return (
            CROSSBAR_WRITE_LATENCY * self.occupied_row_fraction * 8.0
            / CROSSBARS_PER_GROUP
            + reads
        )

    def latency_per_edge(self, algorithm: str) -> float:
        """Equation (16), amortised over N_avg and parallel GEs."""
        return self.block_latency(algorithm) / self.navg / self.num_groups

    @property
    def parallelism(self) -> float:
        """Edges genuinely processed in parallel inside one crossbar."""
        return self.navg
