"""The paper's primary contribution, in one namespace.

``repro.core`` gathers the pieces that *are* HyVE — the hybrid
vertex-edge hierarchy, its two optimisations and its scheduling — as a
stable import surface.  Everything here is re-exported from the
implementing subpackages (`repro.arch`, `repro.memory`), which also
hold the substrates and baselines; see DESIGN.md for the full map.

    from repro.core import HyVE, HyVEConfig, PowerGatingPolicy

    machine = HyVE()                     # acc+HyVE-opt by default
    result = machine.run(algorithm, workload)
"""

from ..arch.config import (
    HyVEConfig,
    Workload,
    choose_num_intervals,
    config_hyve,
    config_hyve_opt,
)
from ..arch.machine import AcceleratorMachine, SimulationResult
from ..arch.phases import PhaseKind, schedule_phases
from ..arch.report import EnergyReport
from ..arch.router import RouterModel
from ..arch.scheduler import ScheduleCounts
from ..memory.controller import HybridMemoryController, MemoryMap
from ..memory.powergate import BankPowerGating, PowerGatingPolicy
from ..memory.reram import ReRAMChip, ReRAMConfig

#: The HyVE machine itself: an :class:`AcceleratorMachine` whose default
#: configuration is the paper's optimised design point.
HyVE = AcceleratorMachine

__all__ = [
    "HyVE",
    "HyVEConfig",
    "Workload",
    "choose_num_intervals",
    "config_hyve",
    "config_hyve_opt",
    "AcceleratorMachine",
    "SimulationResult",
    "PhaseKind",
    "schedule_phases",
    "EnergyReport",
    "RouterModel",
    "ScheduleCounts",
    "HybridMemoryController",
    "MemoryMap",
    "BankPowerGating",
    "PowerGatingPolicy",
    "ReRAMChip",
    "ReRAMConfig",
]
