"""ReRAM main-memory chip model (Section 3.1, Fig. 3).

A chip is a grid of banks, each bank a grid of mats (crossbars).  HyVE's
edge memory uses *sub-bank* interleaving — mats within one bank are
interleaved for bandwidth — instead of bank interleaving, so that at any
time only one bank is busy and the rest can be power-gated (Section 4.1).

Per-access costs come from the NVSim-lite solver (calibrated to the
paper's Table 3); this class adds chip-level organisation: density
scaling, bank bookkeeping, random-access penalties, and standby power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..units import GBIT, MW, NS, PJ
from .base import (
    AccessCost,
    AccessKind,
    AccessPattern,
    DeviceTimings,
    MemoryDevice,
)
from .nvsim import NvSimLite, OptimizationTarget, ReRAMCellParams

#: Additional latency of a *random* ReRAM array read (full address
#: decode + wordline charge), matching GraphR's quoted 29.31 ns array
#: read latency.
RANDOM_READ_LATENCY = 29.31 * NS

#: Reference density for scaling laws.
_REFERENCE_DENSITY = 4 * GBIT

#: Peripheral standby power of one bank at the reference density; grows
#: with the square root of bank capacity (longer global lines, larger
#: decoders).  ReRAM cells themselves leak nothing (nonvolatile).
_BANK_STANDBY_AT_REF = 3.5 * MW

#: Residual leakage of a power-gated bank relative to its standby power.
_GATED_RESIDUAL = 0.02

#: The energy-optimised sense path cannot issue a new access every array
#: period: low-power sensing integrates across more than one cycle,
#: limiting streaming throughput.  Effective sequential-read cycle =
#: array period x this factor.  Calibrated so DRAM keeps its sequential
#: *latency* edge over ReRAM (Fig. 9) while ReRAM keeps the energy edge,
#: and so HyVE shows the paper's small slowdown vs acc+SRAM+DRAM
#: (Fig. 18).
STREAM_FACTOR = 2.2


@dataclass(frozen=True)
class ReRAMConfig:
    """Chip-level ReRAM configuration.

    Attributes:
        density_bits: chip capacity (the paper sweeps 4/8/16 Gb).
        num_banks: banks per chip (each independently power-gateable).
        output_bits: bank output width (Table 3 sweeps 64..512).
        target: NVSim optimisation direction.
        cell: cell parameters (bits per cell, set energy...).
        subbank_interleaving: HyVE's scheme — interleave mats within a
            bank; when False, classic bank interleaving keeps
            ``num_banks`` banks active and defeats power gating.
        write_verify_rounds: set-and-verify programming rounds.
    """

    density_bits: int = 4 * GBIT
    num_banks: int = 8
    output_bits: int = 512
    target: OptimizationTarget = OptimizationTarget.ENERGY
    cell: ReRAMCellParams = field(default_factory=ReRAMCellParams)
    subbank_interleaving: bool = True
    write_verify_rounds: int = 3

    def __post_init__(self) -> None:
        if self.density_bits <= 0:
            raise ConfigError(f"density must be positive: {self.density_bits}")
        if self.num_banks <= 0:
            raise ConfigError(f"need at least one bank: {self.num_banks}")

    @property
    def bank_capacity_bits(self) -> int:
        return self.density_bits // self.num_banks


class ReRAMChip(MemoryDevice):
    """A ReRAM chip assembled from NVSim-lite bank operating points."""

    def __init__(self, config: ReRAMConfig | None = None) -> None:
        super().__init__()
        self.config = config or ReRAMConfig()
        solver = NvSimLite(
            self.config.cell,
            write_verify_rounds=self.config.write_verify_rounds,
        )
        self.point = solver.solve(self.config.output_bits, self.config.target)
        self.access_bits = self.config.output_bits
        # Larger chips have longer global wires; scale access energy
        # gently with density (NVSim shows a sub-linear trend).
        self._density_energy_scale = (
            self.config.density_bits / _REFERENCE_DENSITY
        ) ** 0.15
        bank_scale = (
            self.config.bank_capacity_bits
            / (_REFERENCE_DENSITY / ReRAMConfig().num_banks)
        ) ** 0.5
        self._bank_standby = _BANK_STANDBY_AT_REF * bank_scale
        self.standby_power = self._bank_standby * self.config.num_banks
        self.gated_power = self.standby_power * _GATED_RESIDUAL

    # --- derived properties ----------------------------------------------

    @property
    def num_banks(self) -> int:
        return self.config.num_banks

    @property
    def bank_standby_power(self) -> float:
        """Standby power of a single (un-gated) bank."""
        return self._bank_standby

    @property
    def active_banks(self) -> int:
        """Banks kept busy by a sequential stream.

        Sub-bank interleaving (HyVE) keeps one bank active; classic bank
        interleaving keeps all of them active.
        """
        return 1 if self.config.subbank_interleaving else self.config.num_banks

    def timings(self) -> DeviceTimings:
        """Flat operating point (for the Section 6 analytic model)."""
        seq_read = self.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL)
        seq_write = self.access_cost(AccessKind.WRITE, AccessPattern.SEQUENTIAL)
        rnd_read = self.access_cost(AccessKind.READ, AccessPattern.RANDOM)
        rnd_write = self.access_cost(AccessKind.WRITE, AccessPattern.RANDOM)
        return DeviceTimings(
            access_bits=self.access_bits,
            read_energy=seq_read.energy,
            write_energy=seq_write.energy,
            read_latency=seq_read.latency,
            write_latency=seq_write.latency,
            random_read_latency=rnd_read.latency,
            random_write_latency=rnd_write.latency,
            random_read_energy=rnd_read.energy,
            random_write_energy=rnd_write.energy,
            standby_power=self.standby_power,
            gated_power=self.gated_power,
        )

    # --- cost model --------------------------------------------------------

    def access_cost(
        self, kind: AccessKind, pattern: AccessPattern
    ) -> AccessCost:
        scale = self._density_energy_scale
        if kind is AccessKind.READ:
            energy = self.point.read_energy * scale
            if pattern is AccessPattern.SEQUENTIAL:
                return AccessCost(self.point.read_period * STREAM_FACTOR, energy)
            return AccessCost(RANDOM_READ_LATENCY, energy + 2.0 * PJ)
        energy = self.point.write_energy * scale
        if pattern is AccessPattern.SEQUENTIAL:
            return AccessCost(self.point.write_latency, energy)
        return AccessCost(
            self.point.write_latency + RANDOM_READ_LATENCY / 2.0,
            energy + 2.0 * PJ,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReRAMChip({self.config.density_bits // GBIT} Gb, "
            f"{self.config.num_banks} banks, "
            f"{self.config.output_bits}-bit out, "
            f"{self.config.cell.cell_bits}-bit cells, "
            f"{self.config.target.value}-optimised)"
        )
