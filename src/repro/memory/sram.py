"""On-chip SRAM vertex memory (Section 3.2).

The on-chip vertex memory absorbs all fine-grained random vertex traffic;
SRAM serves random and sequential accesses at the same cost, which is
exactly why HyVE places it in front of the off-chip vertex memory.
Operating points come from the CACTI-substitute in
:mod:`repro.memory.nvsim` (anchored to the paper's quoted 2 MB values).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import MB
from .base import AccessCost, AccessKind, AccessPattern, MemoryDevice
from .nvsim import SRAMOperatingPoint, solve_sram


class OnChipSRAM(MemoryDevice):
    """SRAM scratchpad with 32-bit word access."""

    def __init__(self, capacity_bits: int = 2 * MB) -> None:
        super().__init__()
        if capacity_bits <= 0:
            raise ConfigError(f"capacity must be positive: {capacity_bits}")
        self.capacity_bits = capacity_bits
        self.point: SRAMOperatingPoint = solve_sram(capacity_bits)
        self.access_bits = 32
        self.standby_power = self.point.leakage_power
        # SRAM state-retentive sleep saves most but not all leakage; the
        # vertex memory is never idle long enough to gate in practice.
        self.gated_power = self.point.leakage_power * 0.25

    def access_cost(
        self, kind: AccessKind, pattern: AccessPattern
    ) -> AccessCost:
        # SRAM cost is pattern-independent.
        del pattern
        if kind is AccessKind.READ:
            return AccessCost(self.point.read_latency, self.point.read_energy)
        return AccessCost(self.point.write_latency, self.point.write_energy)

    @property
    def capacity_mb(self) -> float:
        return self.capacity_bits / MB

    def fits(self, bits: float) -> bool:
        """Whether ``bits`` of data fit in this scratchpad."""
        return bits <= self.capacity_bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OnChipSRAM({self.capacity_mb:g} MB)"
