"""Register-file model (GraphR's local vertex storage, Section 6.3).

GraphR keeps the 8+8 vertices of the active crossbar block in register
files, which are far faster and cheaper per access than SRAM — but force
tiny partitions and hence orders of magnitude more global vertex
traffic.  The per-access numbers are the ones quoted in the paper
(11.976 ps / 1.227 pJ read, 10.563 ps / 1.209 pJ write for 32 bits).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import KB, MW, PJ, PS
from .base import AccessCost, AccessKind, AccessPattern, MemoryDevice

READ_ENERGY = 1.227 * PJ
READ_LATENCY = 11.976 * PS
WRITE_ENERGY = 1.209 * PJ
WRITE_LATENCY = 10.563 * PS

#: Leakage per kilobyte of register file at 22 nm.
_LEAKAGE_PER_KB = 0.1 * MW


class RegisterFile(MemoryDevice):
    """Small register file with 32-bit ports."""

    def __init__(self, capacity_bits: int = 1 * KB) -> None:
        super().__init__()
        if capacity_bits <= 0:
            raise ConfigError(f"capacity must be positive: {capacity_bits}")
        self.capacity_bits = capacity_bits
        self.access_bits = 32
        self.standby_power = _LEAKAGE_PER_KB * (capacity_bits / KB)
        self.gated_power = 0.0

    def access_cost(
        self, kind: AccessKind, pattern: AccessPattern
    ) -> AccessCost:
        del pattern  # register files are pattern-insensitive
        if kind is AccessKind.READ:
            return AccessCost(READ_LATENCY, READ_ENERGY)
        return AccessCost(WRITE_LATENCY, WRITE_ENERGY)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegisterFile({self.capacity_bits} b)"
