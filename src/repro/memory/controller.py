"""HyVE hybrid memory controller: address mapping and layout (Section 3.3/3.4).

The controller is the abstraction layer between accelerator logic and
the three memories.  Its lasting state is the *memory map*: where each
interval lives in the vertex memories and where each block lives in the
edge memory, including the per-block slack space that makes dynamic
edge insertion O(1) (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..graph.graph import VERTEX_ID_BITS
from ..graph.partition import IntervalBlockPartition
from ..obs import metrics as obs_metrics
from ..obs.trace import get_tracer

#: Words of metadata that prefix a serialised block: source interval
#: index, destination interval index, edge count (Section 3.4).
BLOCK_HEADER_WORDS = 3

#: Words of metadata that prefix a serialised interval: interval index
#: and vertex count.
INTERVAL_HEADER_WORDS = 2

#: Default slack reserved per block for dynamic edge insertion ("e.g.,
#: 30% of a block size", Section 5).
DEFAULT_BLOCK_SLACK = 0.30

#: Default slack reserved per interval for dynamic vertex insertion.
DEFAULT_INTERVAL_SLACK = 0.30


@dataclass(frozen=True)
class Extent:
    """A contiguous region of a memory: [offset, offset + capacity) words,
    of which the first ``used`` words hold live data."""

    offset: int
    capacity: int
    used: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.capacity < 0 or not 0 <= self.used <= self.capacity:
            raise ConfigError(f"malformed extent: {self}")

    @property
    def free(self) -> int:
        return self.capacity - self.used


@dataclass(frozen=True)
class MemoryMap:
    """Physical layout of a partitioned graph.

    Offsets and sizes are in 32-bit words, matching the Section 3.4
    serialisation where every field (index, count, vertex id, value) is
    one word.

    Attributes:
        num_intervals: P.
        block_extents: P*P extents in block-major order, each sized
            ``header + 2 * edges * (1 + slack)``.
        interval_extents: P extents, each sized
            ``header + vertices * (1 + slack)``.
        edge_words: total edge-memory footprint in words.
        vertex_words: total vertex-memory footprint in words.
    """

    num_intervals: int
    block_extents: tuple[Extent, ...]
    interval_extents: tuple[Extent, ...]
    edge_words: int
    vertex_words: int

    @classmethod
    def build(
        cls,
        partition: IntervalBlockPartition,
        block_slack: float = DEFAULT_BLOCK_SLACK,
        interval_slack: float = DEFAULT_INTERVAL_SLACK,
    ) -> "MemoryMap":
        if block_slack < 0 or interval_slack < 0:
            raise ConfigError("slack fractions must be non-negative")
        p = partition.num_intervals
        counts = partition.block_counts.ravel()
        block_extents: list[Extent] = []
        offset = 0
        for edges in counts.tolist():
            used = BLOCK_HEADER_WORDS + 2 * edges
            capacity = BLOCK_HEADER_WORDS + 2 * int(
                np.ceil(edges * (1.0 + block_slack))
            )
            # Even empty blocks reserve a minimal landing pad so a first
            # dynamic insertion needs no relocation.
            capacity = max(capacity, BLOCK_HEADER_WORDS + 2 * 4)
            block_extents.append(Extent(offset, capacity, used))
            offset += capacity
        edge_words = offset

        interval_extents: list[Extent] = []
        offset = 0
        for size in partition.interval_sizes().tolist():
            used = INTERVAL_HEADER_WORDS + size
            capacity = INTERVAL_HEADER_WORDS + int(
                np.ceil(size * (1.0 + interval_slack))
            )
            capacity = max(capacity, INTERVAL_HEADER_WORDS + 4)
            interval_extents.append(Extent(offset, capacity, used))
            offset += capacity
        vertex_words = offset

        return cls(
            num_intervals=p,
            block_extents=tuple(block_extents),
            interval_extents=tuple(interval_extents),
            edge_words=edge_words,
            vertex_words=vertex_words,
        )

    def block_extent(self, i: int, j: int) -> Extent:
        p = self.num_intervals
        if not (0 <= i < p and 0 <= j < p):
            raise ConfigError(f"block ({i}, {j}) out of range for P={p}")
        return self.block_extents[i * p + j]

    def interval_extent(self, i: int) -> Extent:
        if not 0 <= i < self.num_intervals:
            raise ConfigError(
                f"interval {i} out of range for P={self.num_intervals}"
            )
        return self.interval_extents[i]

    @property
    def edge_bits(self) -> int:
        return self.edge_words * VERTEX_ID_BITS

    @property
    def vertex_bits(self) -> int:
        return self.vertex_words * VERTEX_ID_BITS

    def slack_ratio(self) -> float:
        """Overall fraction of edge-memory capacity that is slack."""
        used = sum(e.used for e in self.block_extents)
        if self.edge_words == 0:
            return 0.0
        return 1.0 - used / self.edge_words


class HybridMemoryController:
    """Address-mapping front end of HyVE (Fig. 4).

    Translates (interval | block) identifiers into extents, tracks which
    intervals are resident on-chip, and reports when a requested edge
    stream requires a vertex-scheduling stall (the condition the real
    controller raises while replacing intervals).
    """

    def __init__(self, memory_map: MemoryMap) -> None:
        self.map = memory_map
        self._resident_src: set[int] = set()
        self._resident_dst: set[int] = set()

    # --- residency -------------------------------------------------------

    @property
    def resident_source_intervals(self) -> frozenset[int]:
        return frozenset(self._resident_src)

    @property
    def resident_destination_intervals(self) -> frozenset[int]:
        return frozenset(self._resident_dst)

    def load_source_intervals(self, intervals: list[int]) -> list[int]:
        """Mark intervals resident; return the ones actually fetched."""
        fetched = [i for i in intervals if i not in self._resident_src]
        for i in intervals:
            self.map.interval_extent(i)  # validates
        self._resident_src = set(intervals)
        self._observe_fetch("source", fetched)
        return fetched

    def load_destination_intervals(self, intervals: list[int]) -> list[int]:
        fetched = [i for i in intervals if i not in self._resident_dst]
        for i in intervals:
            self.map.interval_extent(i)
        self._resident_dst = set(intervals)
        self._observe_fetch("destination", fetched)
        return fetched

    def _observe_fetch(self, role: str, fetched: list[int]) -> None:
        if fetched:
            obs_metrics.get_metrics().counter(
                obs_metrics.INTERVAL_FETCHES
            ).add(len(fetched))
        tracer = get_tracer()
        if tracer.enabled and fetched:
            tracer.event("interval_fetch", role=role, count=len(fetched),
                         intervals=fetched)

    def needs_scheduling(self, block: tuple[int, int]) -> bool:
        """True if streaming ``block`` requires replacing an interval."""
        i, j = block
        return i not in self._resident_src or j not in self._resident_dst

    # --- address translation ----------------------------------------------

    def edge_stream_extent(self, i: int, j: int) -> Extent:
        """Where block (i, j)'s edges live in edge memory."""
        return self.map.block_extent(i, j)

    def vertex_extent(self, i: int) -> Extent:
        """Where interval ``i``'s vertex data lives in vertex memory."""
        return self.map.interval_extent(i)
