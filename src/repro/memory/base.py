"""Base abstractions shared by all memory device models.

Each device model is a *cost model*: it answers "what does one access of
``bits`` bits cost in time and energy, sequential or random?" and "how
much background power does the device burn in each power state?".  The
architecture simulators issue abstract accesses against these models and
integrate background power over the modelled execution time.

Dynamic energy is accounted per access; static (leakage, refresh) energy
is accounted by the machine model because it depends on the execution
time and the power-gating schedule, which only the machine knows.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import MemoryModelError


class AccessKind(enum.Enum):
    """Direction of a memory access."""

    READ = "read"
    WRITE = "write"


class AccessPattern(enum.Enum):
    """Spatial locality of an access stream.

    Sequential accesses stream through consecutive addresses (row-buffer
    hits in DRAM, same-mat bursts in ReRAM); random accesses pay the full
    array-activation cost every time.
    """

    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass(frozen=True)
class AccessCost:
    """Cost of one access: ``latency`` seconds and ``energy`` joules."""

    latency: float
    energy: float

    def __post_init__(self) -> None:
        if self.latency < 0.0 or self.energy < 0.0:
            raise MemoryModelError(
                f"access cost must be non-negative, got {self}"
            )

    def scaled(self, count: float) -> "AccessCost":
        """Cost of ``count`` back-to-back accesses of this kind."""
        return AccessCost(self.latency * count, self.energy * count)


@dataclass
class MemoryStats:
    """Running totals of traffic served by one device instance."""

    reads: int = 0
    writes: int = 0
    read_bits: int = 0
    write_bits: int = 0
    dynamic_energy: float = 0.0
    busy_time: float = 0.0

    def record(self, kind: AccessKind, bits: int, cost: AccessCost,
               count: int = 1) -> None:
        if kind is AccessKind.READ:
            self.reads += count
            self.read_bits += bits * count
        else:
            self.writes += count
            self.write_bits += bits * count
        self.dynamic_energy += cost.energy * count
        self.busy_time += cost.latency * count

    def merged(self, other: "MemoryStats") -> "MemoryStats":
        return MemoryStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            read_bits=self.read_bits + other.read_bits,
            write_bits=self.write_bits + other.write_bits,
            dynamic_energy=self.dynamic_energy + other.dynamic_energy,
            busy_time=self.busy_time + other.busy_time,
        )


class MemoryDevice:
    """Interface of every device model.

    Subclasses define :meth:`access_cost` (per native-width access) and
    the background power attributes; this base provides bulk-transfer
    helpers and stats bookkeeping.
    """

    #: Native access width in bits; bulk transfers are split into
    #: ceil(bits / access_bits) native accesses.
    access_bits: int = 512

    #: Background power (W) while the device is powered and idle/active.
    standby_power: float = 0.0

    #: Residual background power (W) while power-gated (0 if the device
    #: cannot be gated; ReRAM banks gate to ~0 thanks to nonvolatility).
    gated_power: float = 0.0

    def __init__(self) -> None:
        self.stats = MemoryStats()

    # --- cost interface -------------------------------------------------

    def access_cost(
        self, kind: AccessKind, pattern: AccessPattern
    ) -> AccessCost:
        """Cost of one native-width access."""
        raise NotImplementedError

    def transfer_cost(
        self, kind: AccessKind, bits: float, pattern: AccessPattern
    ) -> AccessCost:
        """Cost of moving ``bits`` bits as back-to-back native accesses.

        ``bits`` may be fractional when a caller amortises shared traffic
        across work items; the access count is rounded up only when the
        transfer is indivisible (bits for a single request), so bulk
        streaming uses the exact ratio.
        """
        if bits < 0:
            raise MemoryModelError(f"negative transfer size: {bits}")
        accesses = bits / self.access_bits
        if pattern is AccessPattern.RANDOM:
            # A random request cannot use a partial burst.
            accesses = math.ceil(accesses) if bits else 0
        return self.access_cost(kind, pattern).scaled(accesses)

    # --- stats-recording helpers -----------------------------------------

    def read(self, bits: float, pattern: AccessPattern, count: int = 1
             ) -> AccessCost:
        """Record ``count`` reads of ``bits`` bits each; return unit cost."""
        cost = self.transfer_cost(AccessKind.READ, bits, pattern)
        self.stats.record(AccessKind.READ, int(bits), cost, count)
        return cost

    def write(self, bits: float, pattern: AccessPattern, count: int = 1
              ) -> AccessCost:
        """Record ``count`` writes of ``bits`` bits each; return unit cost."""
        cost = self.transfer_cost(AccessKind.WRITE, bits, pattern)
        self.stats.record(AccessKind.WRITE, int(bits), cost, count)
        return cost

    # --- background -------------------------------------------------------

    def background_energy(self, duration: float,
                          gated_fraction: float = 0.0) -> float:
        """Static energy over ``duration`` seconds.

        ``gated_fraction`` is the time-weighted fraction of the device's
        capacity that was power-gated (0 = fully on, 1 = fully gated).
        """
        if duration < 0.0:
            raise MemoryModelError(f"negative duration: {duration}")
        if not 0.0 <= gated_fraction <= 1.0:
            raise MemoryModelError(
                f"gated fraction must be in [0, 1], got {gated_fraction}"
            )
        on = self.standby_power * (1.0 - gated_fraction)
        off = self.gated_power * gated_fraction
        return (on + off) * duration

    def reset_stats(self) -> None:
        self.stats = MemoryStats()


@dataclass(frozen=True)
class DeviceTimings:
    """Flat description of a device's operating point.

    This is what the NVSim-lite solver emits and what the analytic model
    of Section 6 consumes directly (without instantiating devices).
    """

    access_bits: int
    read_energy: float
    write_energy: float
    read_latency: float
    write_latency: float
    random_read_latency: float = 0.0
    random_write_latency: float = 0.0
    random_read_energy: float = 0.0
    random_write_energy: float = 0.0
    standby_power: float = 0.0
    gated_power: float = 0.0

    def __post_init__(self) -> None:
        if self.access_bits <= 0:
            raise MemoryModelError(
                f"access width must be positive, got {self.access_bits}"
            )
        for name in ("read_energy", "write_energy", "read_latency",
                     "write_latency", "standby_power", "gated_power"):
            if getattr(self, name) < 0:
                raise MemoryModelError(f"{name} must be non-negative")

    def energy_per_bit(self, kind: AccessKind = AccessKind.READ) -> float:
        e = self.read_energy if kind is AccessKind.READ else self.write_energy
        return e / self.access_bits


class TimingsDevice(MemoryDevice):
    """A memory device fully described by a :class:`DeviceTimings`."""

    def __init__(self, timings: DeviceTimings) -> None:
        super().__init__()
        self.timings = timings
        self.access_bits = timings.access_bits
        self.standby_power = timings.standby_power
        self.gated_power = timings.gated_power

    def access_cost(
        self, kind: AccessKind, pattern: AccessPattern
    ) -> AccessCost:
        t = self.timings
        if pattern is AccessPattern.SEQUENTIAL:
            if kind is AccessKind.READ:
                return AccessCost(t.read_latency, t.read_energy)
            return AccessCost(t.write_latency, t.write_energy)
        if kind is AccessKind.READ:
            return AccessCost(
                t.random_read_latency or t.read_latency,
                t.random_read_energy or t.read_energy,
            )
        return AccessCost(
            t.random_write_latency or t.write_latency,
            t.random_write_energy or t.write_energy,
        )
