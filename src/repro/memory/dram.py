"""DDR4 DRAM chip model (Micron power-calculator style, Section 7.1).

The paper derives DRAM power from the Micron System Power Calculator
with a default DDR4 configuration at speed grade -093 (DDR4-2133).  We
reimplement the calculator's current-based method: dynamic energy per
operation comes from IDD current deltas times VDD times the operation
window, and background power from the standby currents plus the refresh
duty cycle — the term that grows with density and that ReRAM avoids
entirely (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import GBIT, NS, PJ, US
from .base import (
    AccessCost,
    AccessKind,
    AccessPattern,
    DeviceTimings,
    MemoryDevice,
)

#: Milliamp/ns datasheet values for a DDR4-2133 (-093 speed grade) part.
#: Currents are in amps, times in seconds.
@dataclass(frozen=True)
class DDR4Currents:
    vdd: float = 1.2
    idd0: float = 0.058      # activate-precharge
    idd2n: float = 0.034     # precharge standby
    idd3n: float = 0.044     # active standby
    idd4r: float = 0.140     # burst read
    idd4w: float = 0.130     # burst write
    idd5b: float = 0.190     # burst refresh


@dataclass(frozen=True)
class DDR4Timings:
    """DDR4-2133 analog of the JEDEC timing set (speed grade -093)."""

    tck: float = 0.937 * NS
    trcd: float = 14.06 * NS
    tcl: float = 14.06 * NS
    trp: float = 14.06 * NS
    tras: float = 33.0 * NS
    trefi: float = 7.8 * US
    #: tRFC by density (ns); refresh takes longer on denser chips.
    trfc_by_density_ns = {4: 260.0, 8: 350.0, 16: 550.0}

    @property
    def trc(self) -> float:
        return self.tras + self.trp

    def trfc(self, density_gbit: float) -> float:
        table = self.trfc_by_density_ns
        key = min(table, key=lambda d: abs(d - density_gbit))
        return table[key] * NS


@dataclass(frozen=True)
class DRAMConfig:
    """DDR4 chip configuration.

    ``row_bits`` is the page size: a sequential stream re-activates a row
    only every ``row_bits / access_bits`` accesses, so activation energy
    is amortised across row hits.
    """

    density_bits: int = 4 * GBIT
    access_bits: int = 512
    row_bits: int = 8 * 1024
    currents: DDR4Currents = DDR4Currents()
    timings: DDR4Timings = DDR4Timings()

    def __post_init__(self) -> None:
        if self.density_bits <= 0:
            raise ConfigError(f"density must be positive: {self.density_bits}")
        if self.row_bits < self.access_bits:
            raise ConfigError(
                f"row ({self.row_bits} b) smaller than one access "
                f"({self.access_bits} b)"
            )


_REFERENCE_DENSITY = 4 * GBIT


class DDR4Chip(MemoryDevice):
    """Current-based DDR4 model exposing the common device interface."""

    def __init__(self, config: DRAMConfig | None = None) -> None:
        super().__init__()
        self.config = config or DRAMConfig()
        self.access_bits = self.config.access_bits
        c, t = self.config.currents, self.config.timings

        # One burst moves access_bits in (access_bits / 64) beats at two
        # beats per clock over a 64-bit channel.
        beats = self.config.access_bits / 64.0
        self._burst_time = (beats / 2.0) * t.tck

        self._read_burst_energy = (
            (c.idd4r - c.idd3n) * c.vdd * self._burst_time
            + self.config.access_bits * 0.5 * PJ  # I/O + termination
        )
        self._write_burst_energy = (
            (c.idd4w - c.idd3n) * c.vdd * self._burst_time
            + self.config.access_bits * 0.5 * PJ
        )
        # Micron-style activate/precharge energy: IDD0 over tRC minus the
        # background already accounted in standby.
        self._act_pre_energy = (
            c.idd0 * t.trc - (c.idd3n * t.tras + c.idd2n * t.trp)
        ) * c.vdd
        self._row_hits_per_row = self.config.row_bits / self.config.access_bits

        density_gbit = self.config.density_bits / GBIT
        scale = (self.config.density_bits / _REFERENCE_DENSITY) ** 0.1
        self._read_burst_energy *= scale
        self._write_burst_energy *= scale
        self._act_pre_energy *= scale

        refresh_power = (
            (t.trfc(density_gbit) / t.trefi) * (c.idd5b - c.idd2n) * c.vdd
        )
        # Chips in an operating rank sit in active standby (IDD3N) while
        # the device serves a stream.
        standby = c.idd3n * c.vdd * (
            1.0 + 0.15 * max(0.0, (density_gbit / 4.0) - 1.0) ** 0.5
        )
        self.standby_power = standby + refresh_power
        self.refresh_power = refresh_power
        # DRAM is volatile: gating a bank loses its contents, so the
        # model offers no power-gated state (gated == powered).
        self.gated_power = self.standby_power

    def access_cost(
        self, kind: AccessKind, pattern: AccessPattern
    ) -> AccessCost:
        t = self.config.timings
        burst_energy = (
            self._read_burst_energy
            if kind is AccessKind.READ
            else self._write_burst_energy
        )
        if pattern is AccessPattern.SEQUENTIAL:
            # Row activations amortised over row-buffer hits.
            energy = burst_energy + self._act_pre_energy / self._row_hits_per_row
            return AccessCost(self._burst_time, energy)
        # Random: full activate + column access + precharge each time.
        latency = t.trcd + t.tcl + self._burst_time
        return AccessCost(latency, burst_energy + self._act_pre_energy)

    def timings(self) -> DeviceTimings:
        """Flat operating point (for the Section 6 analytic model)."""
        seq_r = self.access_cost(AccessKind.READ, AccessPattern.SEQUENTIAL)
        seq_w = self.access_cost(AccessKind.WRITE, AccessPattern.SEQUENTIAL)
        rnd_r = self.access_cost(AccessKind.READ, AccessPattern.RANDOM)
        rnd_w = self.access_cost(AccessKind.WRITE, AccessPattern.RANDOM)
        return DeviceTimings(
            access_bits=self.access_bits,
            read_energy=seq_r.energy,
            write_energy=seq_w.energy,
            read_latency=seq_r.latency,
            write_latency=seq_w.latency,
            random_read_latency=rnd_r.latency,
            random_write_latency=rnd_w.latency,
            random_read_energy=rnd_r.energy,
            random_write_energy=rnd_w.energy,
            standby_power=self.standby_power,
            gated_power=self.gated_power,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DDR4Chip({self.config.density_bits // GBIT} Gb, "
            f"{self.access_bits}-bit bursts)"
        )
