"""SECDED ECC folded into a device's per-access cost.

A (72, 64) Hamming single-error-correct / double-error-detect code
protects each 64-bit data word with 8 check bits.  Wrapping a device in
:class:`SECDEDDevice` folds the protection into every access:

* 12.5% more bits move per access (check bits share the burst), so
  per-access energy *and* latency scale by 72/64;
* a small encode/decode logic energy is paid per protected word;
* check bits occupy storage, so background (standby/refresh) power
  scales by the same 72/64 capacity factor.

The wrapper preserves the inner device's data-facing ``access_bits`` —
callers keep counting data bits; the overhead is priced, not exposed.
"""

from __future__ import annotations

from .base import AccessCost, AccessKind, AccessPattern, MemoryDevice
from ..units import PJ

#: Data bits protected by one SECDED code word.
SECDED_DATA_BITS = 64

#: Check bits per protected data word: (72, 64) Hamming + parity.
SECDED_CHECK_BITS = 8

#: Energy of encoding + decoding one SECDED word (XOR trees; tiny next
#: to a memory access).
SECDED_LOGIC_ENERGY_PER_WORD = 0.05 * PJ


def secded_factor() -> float:
    """Traffic/capacity multiplier of SECDED: (64 + 8) / 64."""
    return (SECDED_DATA_BITS + SECDED_CHECK_BITS) / SECDED_DATA_BITS


def secded_logic_energy(bits: float) -> float:
    """Encode/decode energy for ``bits`` protected data bits."""
    return (bits / SECDED_DATA_BITS) * SECDED_LOGIC_ENERGY_PER_WORD


class SECDEDDevice(MemoryDevice):
    """A memory device with SECDED protection on every access."""

    def __init__(self, inner: MemoryDevice) -> None:
        super().__init__()
        self.inner = inner
        factor = secded_factor()
        self.access_bits = inner.access_bits
        self.standby_power = inner.standby_power * factor
        self.gated_power = inner.gated_power * factor

    def access_cost(
        self, kind: AccessKind, pattern: AccessPattern
    ) -> AccessCost:
        base = self.inner.access_cost(kind, pattern)
        factor = secded_factor()
        return AccessCost(
            latency=base.latency * factor,
            energy=base.energy * factor
            + secded_logic_energy(self.access_bits),
        )

    def __getattr__(self, name: str):
        # Forward device-specific attributes (e.g. ReRAM bank metadata,
        # SRAM operating points) to the wrapped device.
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SECDEDDevice({self.inner!r})"
