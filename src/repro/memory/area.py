"""Silicon-area estimates for the memory devices (22 nm process).

The paper quotes the SRAM cell at 146 F^2 with a 1.31 F access
transistor (Section 7.1) and notes that ReRAM "improves the area
efficiency because the refresh mechanism is no longer necessary" and
that one power gate per bank incurs "little overhead... or low area
penalty" (Section 4.1).  This module turns those statements into
numbers: cell-level F^2 footprints scaled by the feature size, with an
array-efficiency factor for the periphery and an explicit power-gate
term, so machine-level area comparisons can be made.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Feature size of the evaluation's process node (Section 7.1).
FEATURE_SIZE_M = 22e-9

#: Cell footprints in F^2 (standard figures; SRAM is the paper's).
SRAM_CELL_F2 = 146.0          # quoted in Section 7.1
DRAM_CELL_F2 = 6.0            # 1T1C commodity DRAM
RERAM_CELL_F2 = 4.0           # 1T1R/crosspoint ReRAM — the density win

#: Fraction of the die the cell array occupies (the rest is decoders,
#: sense amplifiers, I/O).  ReRAM's simpler periphery (no refresh
#: machinery) buys it a higher efficiency.
ARRAY_EFFICIENCY = {
    "sram": 0.65,
    "dram": 0.55,
    "reram": 0.60,
}

#: One power gate (header/footer) per bank costs ~2% of the bank's
#: area — the "low area penalty" of Section 4.1.
POWER_GATE_BANK_OVERHEAD = 0.02


@dataclass(frozen=True)
class AreaEstimate:
    """Area of one memory instance."""

    technology: str
    capacity_bits: float
    cell_area_m2: float
    periphery_area_m2: float
    power_gate_area_m2: float

    @property
    def total_m2(self) -> float:
        return (
            self.cell_area_m2
            + self.periphery_area_m2
            + self.power_gate_area_m2
        )

    @property
    def total_mm2(self) -> float:
        return self.total_m2 * 1e6

    @property
    def bits_per_mm2(self) -> float:
        if self.total_m2 <= 0:
            raise ConfigError("zero-area estimate")
        return self.capacity_bits / self.total_mm2


def memory_area(
    technology: str,
    capacity_bits: float,
    cell_bits: int = 1,
    power_gated_banks: int = 0,
    feature_size_m: float = FEATURE_SIZE_M,
) -> AreaEstimate:
    """Estimate the die area of a memory of ``capacity_bits``.

    Args:
        technology: "sram", "dram" or "reram".
        capacity_bits: usable storage.
        cell_bits: bits per cell (ReRAM MLC stores more per cell).
        power_gated_banks: banks equipped with a BPG gate.
        feature_size_m: process feature size (default 22 nm).
    """
    technology = technology.lower()
    if technology not in ARRAY_EFFICIENCY:
        raise ConfigError(f"unknown memory technology {technology!r}")
    if capacity_bits < 0:
        raise ConfigError(f"negative capacity: {capacity_bits}")
    if cell_bits < 1:
        raise ConfigError(f"cell must store at least one bit: {cell_bits}")
    if cell_bits > 1 and technology != "reram":
        raise ConfigError("multi-level cells are a ReRAM feature here")

    cell_f2 = {
        "sram": SRAM_CELL_F2,
        "dram": DRAM_CELL_F2,
        "reram": RERAM_CELL_F2,
    }[technology]
    f2 = feature_size_m ** 2
    cells = capacity_bits / cell_bits
    cell_area = cells * cell_f2 * f2
    efficiency = ARRAY_EFFICIENCY[technology]
    periphery = cell_area * (1.0 - efficiency) / efficiency
    bank_area = (
        (cell_area + periphery) / power_gated_banks
        if power_gated_banks
        else 0.0
    )
    gate_area = power_gated_banks * bank_area * POWER_GATE_BANK_OVERHEAD
    return AreaEstimate(
        technology=technology,
        capacity_bits=capacity_bits,
        cell_area_m2=cell_area,
        periphery_area_m2=periphery,
        power_gate_area_m2=gate_area,
    )


def density_ratio(a: str, b: str) -> float:
    """Bits/mm^2 of technology ``a`` over technology ``b`` (1 Gb each)."""
    one_gbit = 2.0 ** 30
    return (
        memory_area(a, one_gbit).bits_per_mm2
        / memory_area(b, one_gbit).bits_per_mm2
    )
