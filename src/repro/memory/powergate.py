"""Bank-level power gating (BPG) for the nonvolatile edge memory
(Section 4.1, Fig. 6).

The three classic power-gating limitations and how HyVE's setting voids
them:

1. *State must be saved* — ReRAM is nonvolatile, nothing to save.
2. *Transition overhead* — the edge stream is strictly sequential, so a
   bank-boundary crossing (the only wake event) is predictable and rare:
   one per ``bank_capacity`` bits streamed.
3. *Power-gate area* — one gate per bank (not per mat) because sub-bank
   interleaving keeps exactly one bank active.

The controller also re-gates an active bank that receives no command for
``idle_timeout``; the model charges that window at full bank power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from ..units import NJ, NS, US


@dataclass(frozen=True)
class PowerGatingPolicy:
    """BPG controller parameters.

    Attributes:
        enabled: whether BPG is applied at all.
        idle_timeout: time a bank stays powered after its last command.
        wake_latency: time to un-gate a bank (virtual-VDD ramp).
        wake_energy: energy of one gate transition (header/footer switch
            plus virtual-rail recharge).
    """

    enabled: bool = True
    idle_timeout: float = 1.0 * US
    wake_latency: float = 50.0 * NS
    wake_energy: float = 0.5 * NJ

    def __post_init__(self) -> None:
        if self.idle_timeout < 0 or self.wake_latency < 0 or self.wake_energy < 0:
            raise ConfigError(f"power-gating parameters must be >= 0: {self}")


@dataclass(frozen=True)
class GatingReport:
    """Outcome of applying BPG to one execution.

    Attributes:
        gated_fraction: time-weighted fraction of the chip's banks that
            were power-gated (feeds ``background_energy``).
        transitions: number of gate wake events.
        overhead_energy: total transition energy (J).
        overhead_time: total transition latency serialised into the
            stream (s); tiny because transitions are rare and the
            controller wakes the next bank ahead of the stream.
    """

    gated_fraction: float
    transitions: int
    overhead_energy: float
    overhead_time: float


class BankPowerGating:
    """Applies a :class:`PowerGatingPolicy` to a sequential edge stream."""

    def __init__(self, policy: PowerGatingPolicy | None = None) -> None:
        self.policy = policy or PowerGatingPolicy()

    def plan(
        self,
        num_banks: int,
        active_banks: int,
        streamed_bits: float,
        bank_capacity_bits: float,
        duration: float,
        failed_banks: int = 0,
        transition_factor: float = 1.0,
    ) -> GatingReport:
        """Plan gating for a run that streams ``streamed_bits`` overall.

        Args:
            num_banks: banks in the chip.
            active_banks: banks a stream keeps busy simultaneously (1
                with sub-bank interleaving, ``num_banks`` with bank
                interleaving — which defeats gating entirely).
            streamed_bits: total bits read over the whole execution.
            bank_capacity_bits: capacity of one bank.
            duration: modelled execution time (s).
            failed_banks: banks spared out by the fault-remap layer;
                they are electrically isolated (counted as gated) but
                shrink the pool the stream rotates through.
            transition_factor: multiplier on wake transitions from
                remap detours (see ``faults.resilience``); 1.0 when no
                sparing is active.

        Returns:
            A :class:`GatingReport`; with gating disabled (or all banks
            active) the report is all-zeros.
        """
        if num_banks <= 0 or active_banks <= 0:
            raise ConfigError("bank counts must be positive")
        if active_banks > num_banks:
            raise ConfigError(
                f"{active_banks} active banks > {num_banks} total"
            )
        if streamed_bits < 0 or duration < 0:
            raise ConfigError("streamed bits and duration must be >= 0")
        if not 0 <= failed_banks < num_banks:
            raise ConfigError(
                f"failed banks must lie in [0, {num_banks}): {failed_banks}"
            )
        if transition_factor < 1.0:
            raise ConfigError(
                f"transition factor must be >= 1: {transition_factor}"
            )
        healthy_banks = num_banks - failed_banks
        if not self.policy.enabled or active_banks >= healthy_banks:
            return GatingReport(0.0, 0, 0.0, 0.0)

        # One wake per bank-boundary crossing of the sequential stream;
        # remap detours (spared banks) add crossings.
        if bank_capacity_bits <= 0:
            raise ConfigError("bank capacity must be positive")
        transitions = int(math.ceil(streamed_bits / bank_capacity_bits))
        transitions = max(transitions, 1) if streamed_bits > 0 else 0
        transitions = int(math.ceil(transitions * transition_factor))

        # Idle-timeout keeps the previous bank powered a little longer
        # after each crossing; express that as extra average-active banks.
        if duration > 0:
            timeout_share = min(
                float(healthy_banks - active_banks),
                transitions * self.policy.idle_timeout / duration,
            )
        else:
            timeout_share = 0.0
        avg_active = min(float(healthy_banks), active_banks + timeout_share)
        gated_fraction = (num_banks - avg_active) / num_banks

        overhead_energy = transitions * self.policy.wake_energy
        # The controller pre-wakes the next bank while the current one
        # still streams; only a small fraction of the wake latency leaks
        # into the critical path.
        overhead_time = transitions * self.policy.wake_latency * 0.1
        return GatingReport(
            gated_fraction=gated_fraction,
            transitions=transitions,
            overhead_energy=overhead_energy,
            overhead_time=overhead_time,
        )
