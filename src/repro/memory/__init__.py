"""Memory device models: ReRAM, DRAM, SRAM, register files, power gating."""

from .area import (
    AreaEstimate,
    FEATURE_SIZE_M,
    POWER_GATE_BANK_OVERHEAD,
    density_ratio,
    memory_area,
)
from .base import (
    AccessCost,
    AccessKind,
    AccessPattern,
    DeviceTimings,
    MemoryDevice,
    MemoryStats,
    TimingsDevice,
)
from .nvsim import (
    BankOperatingPoint,
    NvSimLite,
    OptimizationTarget,
    ReRAMCellParams,
    SRAMOperatingPoint,
    TABLE3_CALIBRATION,
    best_energy_point,
    solve_sram,
    table3,
)
from .ecc import (
    SECDED_CHECK_BITS,
    SECDED_DATA_BITS,
    SECDEDDevice,
    secded_factor,
    secded_logic_energy,
)
from .reram import RANDOM_READ_LATENCY, ReRAMChip, ReRAMConfig
from .dram import DDR4Chip, DDR4Currents, DDR4Timings, DRAMConfig
from .sram import OnChipSRAM
from .regfile import RegisterFile
from .powergate import BankPowerGating, GatingReport, PowerGatingPolicy
from .controller import (
    BLOCK_HEADER_WORDS,
    DEFAULT_BLOCK_SLACK,
    DEFAULT_INTERVAL_SLACK,
    Extent,
    HybridMemoryController,
    INTERVAL_HEADER_WORDS,
    MemoryMap,
)

__all__ = [
    "AreaEstimate",
    "FEATURE_SIZE_M",
    "POWER_GATE_BANK_OVERHEAD",
    "density_ratio",
    "memory_area",
    "AccessCost",
    "AccessKind",
    "AccessPattern",
    "DeviceTimings",
    "MemoryDevice",
    "MemoryStats",
    "TimingsDevice",
    "BankOperatingPoint",
    "NvSimLite",
    "OptimizationTarget",
    "ReRAMCellParams",
    "SRAMOperatingPoint",
    "TABLE3_CALIBRATION",
    "best_energy_point",
    "solve_sram",
    "table3",
    "SECDED_CHECK_BITS",
    "SECDED_DATA_BITS",
    "SECDEDDevice",
    "secded_factor",
    "secded_logic_energy",
    "RANDOM_READ_LATENCY",
    "ReRAMChip",
    "ReRAMConfig",
    "DDR4Chip",
    "DDR4Currents",
    "DDR4Timings",
    "DRAMConfig",
    "OnChipSRAM",
    "RegisterFile",
    "BankPowerGating",
    "GatingReport",
    "PowerGatingPolicy",
    "BLOCK_HEADER_WORDS",
    "DEFAULT_BLOCK_SLACK",
    "DEFAULT_INTERVAL_SLACK",
    "Extent",
    "HybridMemoryController",
    "INTERVAL_HEADER_WORDS",
    "MemoryMap",
]
