"""NVSim-lite: analytic array-level energy/latency model for ReRAM and SRAM.

The paper derives its ReRAM and SRAM operating points from NVSim [37]
(and CACTI for the on-chip SRAM), which we cannot run offline.  This
module substitutes a calibrated analytic model:

* The eight published ReRAM bank operating points (Table 3: energy- and
  latency-optimised designs at 64/128/256/512-bit output) are embedded
  as an exact calibration table, so every downstream experiment consumes
  the very numbers the paper used.
* Off-table queries (MLC cells per the parallel-sensing scheme of [41],
  other widths, writes) are answered by a component model — decoder +
  sense amplifiers + cell read/set + I/O — whose coefficients are fitted
  to the calibration table and to the paper's quoted cell parameters
  (0.4 V read voltage, 0.16 uW read power, 10 ns set pulse, 0.6 pJ set
  energy, 100 kOhm/10 MOhm resistance states).
* SRAM points are anchored to the paper's quoted 2 MB values (23.84 pJ /
  960.03 ps read, 24.74 pJ / 557.089 ps write; 1.071 ns cycle at 2 MB,
  1.808 ns at 4 MB) with power-law capacity scaling fitted to that pair.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import MemoryModelError
from ..units import MB, MW, NS, PJ, PS, UW


class OptimizationTarget(enum.Enum):
    """NVSim optimisation directions compared in Section 7.2.2."""

    ENERGY = "energy"
    LATENCY = "latency"


@dataclass(frozen=True)
class ReRAMCellParams:
    """ReRAM cell parameters (defaults are the paper's, Section 7.1)."""

    read_voltage: float = 0.4            # V
    set_voltage: float = 0.7             # V
    read_power: float = 0.16 * UW        # W while sensing one cell
    set_pulse: float = 10 * NS           # s per set pulse
    set_energy: float = 0.6 * PJ         # J per cell set
    on_resistance: float = 100e3         # Ohm at read voltage
    off_resistance: float = 10e6         # Ohm at read voltage
    cell_bits: int = 1                   # 1 = SLC, >1 = MLC

    def __post_init__(self) -> None:
        if self.cell_bits < 1:
            raise MemoryModelError(
                f"cell must store at least one bit, got {self.cell_bits}"
            )
        if self.off_resistance <= self.on_resistance:
            raise MemoryModelError(
                "off resistance must exceed on resistance "
                f"({self.off_resistance} <= {self.on_resistance})"
            )

    @property
    def resistance_ratio(self) -> float:
        return self.off_resistance / self.on_resistance

    @property
    def sense_levels(self) -> int:
        """Reference levels a parallel-sensing MLC read compares against."""
        return (1 << self.cell_bits) - 1


#: Table 3 of the paper: (target, output bits) -> (energy J, period s)
#: for one SLC ReRAM bank access.
TABLE3_CALIBRATION: dict[tuple[OptimizationTarget, int], tuple[float, float]] = {
    (OptimizationTarget.ENERGY, 64): (20.13 * PJ, 1221 * PS),
    (OptimizationTarget.ENERGY, 128): (33.87 * PJ, 1983 * PS),
    (OptimizationTarget.ENERGY, 256): (57.31 * PJ, 1983 * PS),
    (OptimizationTarget.ENERGY, 512): (102.07 * PJ, 1983 * PS),
    (OptimizationTarget.LATENCY, 64): (381.47 * PJ, 653 * PS),
    (OptimizationTarget.LATENCY, 128): (378.57 * PJ, 590 * PS),
    (OptimizationTarget.LATENCY, 256): (382.37 * PJ, 590 * PS),
    (OptimizationTarget.LATENCY, 512): (660.23 * PJ, 527 * PS),
}

# Component coefficients fitted to the calibration table (SLC).  The
# energy-optimised design uses slow low-swing sensing; the
# latency-optimised one burns a large fixed peripheral cost for speed.
_FIT = {
    OptimizationTarget.ENERGY: {
        "decoder_energy": 8.42 * PJ,      # fixed per access
        "sense_energy": 0.14 * PJ,        # per sensed cell (SLC)
        "io_energy": 0.0429 * PJ,         # per output bit
        "period": 1983 * PS,
        "narrow_period": 1221 * PS,       # <= 64-bit outputs
    },
    OptimizationTarget.LATENCY: {
        "decoder_energy": 375.0 * PJ,
        "sense_energy": 0.02 * PJ,
        "io_energy": 0.01 * PJ,
        # Outputs beyond 256 bits activate extra subarrays, each adding
        # a large share of the fast peripheral energy (the 512-bit jump
        # in Table 3).
        "subarray_bits": 256,
        "subarray_energy_factor": 0.76,
        "period": 590 * PS,
        "narrow_period": 653 * PS,
    },
}

#: Extra latency per additional MLC sense level beyond SLC's single one,
#: as a fraction of the base period (finer voltage margins slow sensing).
_MLC_PERIOD_PENALTY = 0.15


@dataclass(frozen=True)
class BankOperatingPoint:
    """One ReRAM bank design point produced by the solver."""

    target: OptimizationTarget
    output_bits: int
    cell_bits: int
    read_energy: float        # J per bank access
    read_period: float        # s per bank access (streaming cycle)
    write_energy: float       # J per bank access
    write_latency: float      # s per bank access
    calibrated: bool          # True if taken verbatim from Table 3

    @property
    def read_power_per_bit(self) -> float:
        """The mW/bit figure of merit Table 3 reports."""
        return (self.read_energy / self.read_period) / self.output_bits

    def mw_per_bit(self) -> float:
        return self.read_power_per_bit / MW


class NvSimLite:
    """Analytic solver for ReRAM bank operating points.

    ``write_verify_rounds`` models set-and-verify programming: each round
    costs one set pulse of latency and one set energy per written cell.
    """

    def __init__(
        self,
        cell: ReRAMCellParams | None = None,
        write_verify_rounds: int = 3,
    ) -> None:
        if write_verify_rounds < 1:
            raise MemoryModelError(
                f"write needs at least one pulse, got {write_verify_rounds}"
            )
        self.cell = cell or ReRAMCellParams()
        self.write_verify_rounds = write_verify_rounds

    def solve(
        self,
        output_bits: int,
        target: OptimizationTarget = OptimizationTarget.ENERGY,
    ) -> BankOperatingPoint:
        """Solve for one bank access of ``output_bits`` bits."""
        if output_bits <= 0:
            raise MemoryModelError(
                f"output width must be positive, got {output_bits}"
            )
        key = (target, output_bits)
        calibrated = self.cell.cell_bits == 1 and key in TABLE3_CALIBRATION
        if calibrated:
            read_energy, period = TABLE3_CALIBRATION[key]
        else:
            read_energy, period = self._analytic_read(output_bits, target)
        write_energy, write_latency = self._write(output_bits, target)
        return BankOperatingPoint(
            target=target,
            output_bits=output_bits,
            cell_bits=self.cell.cell_bits,
            read_energy=read_energy,
            read_period=period,
            write_energy=write_energy,
            write_latency=write_latency,
            calibrated=calibrated,
        )

    def _analytic_read(
        self, output_bits: int, target: OptimizationTarget
    ) -> tuple[float, float]:
        fit = _FIT[target]
        cells = -(-output_bits // self.cell.cell_bits)  # ceil
        # Parallel MLC sensing replicates the reference comparison
        # (2^b - 1 levels) in every sense amplifier [41].
        sense = fit["sense_energy"] * self.cell.sense_levels
        decoder = fit["decoder_energy"]
        if "subarray_bits" in fit:
            extra_subarrays = max(
                0, -(-output_bits // fit["subarray_bits"]) - 1
            )
            decoder *= 1.0 + fit["subarray_energy_factor"] * extra_subarrays
        energy = decoder + cells * sense + output_bits * fit["io_energy"]
        period = fit["narrow_period"] if output_bits <= 64 else fit["period"]
        period *= 1.0 + _MLC_PERIOD_PENALTY * (self.cell.sense_levels - 1)
        return energy, period

    def _write(
        self, output_bits: int, target: OptimizationTarget
    ) -> tuple[float, float]:
        fit = _FIT[target]
        cells = -(-output_bits // self.cell.cell_bits)  # ceil
        energy = (
            fit["decoder_energy"]
            + cells * self.cell.set_energy * self.write_verify_rounds
            + output_bits * fit["io_energy"]
        )
        latency = self.cell.set_pulse * self.write_verify_rounds
        return energy, latency


def table3() -> list[dict[str, float | str | int]]:
    """Regenerate Table 3 rows: energy (pJ), period (ps), power/bit (mW).

    Rows are ordered as in the paper: energy-optimised 64..512 bits, then
    latency-optimised 64..512 bits.
    """
    solver = NvSimLite()
    rows: list[dict[str, float | str | int]] = []
    for target in (OptimizationTarget.ENERGY, OptimizationTarget.LATENCY):
        for bits in (64, 128, 256, 512):
            point = solver.solve(bits, target)
            rows.append({
                "target": target.value,
                "output_bits": bits,
                "energy_pj": point.read_energy / PJ,
                "period_ps": point.read_period / PS,
                "mw_per_bit": point.mw_per_bit(),
            })
    return rows


def best_energy_point() -> BankOperatingPoint:
    """The operating point the paper selects (Section 7.2.2).

    The energy-optimised 512-bit design minimises power per bit
    (0.10 mW/bit) and is used for the edge memory in all later
    experiments.
    """
    return NvSimLite().solve(512, OptimizationTarget.ENERGY)


# --- SRAM model (CACTI substitute) ---------------------------------------

#: Anchor: the paper's 2 MB SRAM operating point for 32-bit accesses.
_SRAM_ANCHOR_CAPACITY = 2 * MB
_SRAM_ANCHOR = {
    "read_energy": 23.84 * PJ,
    "read_latency": 960.03 * PS,
    "write_energy": 24.74 * PJ,
    "write_latency": 557.089 * PS,
}
#: Cycle-time anchors the paper quotes: 1.071 ns at 2 MB, 1.808 ns at
#: 4 MB -> latency scales as capacity ** log2(1.808 / 1.071).
_SRAM_LATENCY_EXPONENT = math.log2(1.808 / 1.071)
#: Energy grows roughly with wire length ~ sqrt(area) ~ sqrt(capacity).
_SRAM_ENERGY_EXPONENT = 0.5
#: Leakage at 22 nm, linear in capacity.
_SRAM_LEAKAGE_PER_MB = 8 * MW


@dataclass(frozen=True)
class SRAMOperatingPoint:
    """SRAM design point for 32-bit word accesses."""

    capacity_bits: int
    read_energy: float
    read_latency: float
    write_energy: float
    write_latency: float
    leakage_power: float

    @property
    def capacity_mb(self) -> float:
        return self.capacity_bits / MB


def solve_sram(capacity_bits: int) -> SRAMOperatingPoint:
    """SRAM operating point for the given capacity (32-bit accesses)."""
    if capacity_bits <= 0:
        raise MemoryModelError(
            f"SRAM capacity must be positive, got {capacity_bits}"
        )
    ratio = capacity_bits / _SRAM_ANCHOR_CAPACITY
    e_scale = ratio ** _SRAM_ENERGY_EXPONENT
    t_scale = ratio ** _SRAM_LATENCY_EXPONENT
    return SRAMOperatingPoint(
        capacity_bits=capacity_bits,
        read_energy=_SRAM_ANCHOR["read_energy"] * e_scale,
        read_latency=_SRAM_ANCHOR["read_latency"] * t_scale,
        write_energy=_SRAM_ANCHOR["write_energy"] * e_scale,
        write_latency=_SRAM_ANCHOR["write_latency"] * t_scale,
        leakage_power=_SRAM_LEAKAGE_PER_MB * (capacity_bits / MB),
    )
