"""Table 2: dataset inventory (paper sizes vs synthetic stand-ins)."""

from conftest import run_and_report

from repro.experiments import table2


def test_table2_datasets(benchmark):
    result = run_and_report(benchmark, table2.run)
    assert len(result.rows) == 5
