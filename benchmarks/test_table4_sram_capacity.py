"""Table 4: energy efficiency across SRAM sizes x sharing x gating."""

from conftest import run_and_report

from repro.experiments import table4


def test_table4_sram_capacity(benchmark):
    result = run_and_report(benchmark, table4.run)
    spots = table4.sweet_spots(result)
    # Section 7.2.3's sweet spots: 4 MB without sharing, 2 MB with.
    assert spots["w/o PG, w/o sharing"] == 4
    assert spots["w/ PG, w/ sharing"] == 2
