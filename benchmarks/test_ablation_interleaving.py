"""Ablation: sub-bank vs bank interleaving of the edge memory."""

from conftest import run_and_report

from repro.experiments import ablations


def test_ablation_interleaving(benchmark):
    result = run_and_report(benchmark, ablations.run_interleaving)
    # Sub-bank interleaving (gateable) beats bank interleaving everywhere.
    assert all(row[3] > 1.0 for row in result.rows)
