"""The paper's headline claims, side by side with this reproduction."""

from conftest import run_and_report

from repro.experiments import headline


def test_headline(benchmark):
    result = run_and_report(benchmark, headline.run)
    assert len(result.rows) == 14
