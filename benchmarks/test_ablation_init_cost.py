"""Ablation: one-shot initialisation write vs execution (Section 3.1)."""

from conftest import run_and_report

from repro.experiments import ablations


def test_ablation_init_cost(benchmark):
    result = run_and_report(benchmark, ablations.run_init_cost)
    # "Not an obvious delay": the one-shot write stays well below one run.
    assert all(row[3] < 0.2 for row in result.rows)
