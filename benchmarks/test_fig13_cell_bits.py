"""Fig. 13: energy efficiency with 1/2/3-bit ReRAM cells."""

from conftest import run_and_report

from repro.experiments import fig13


def test_fig13_cell_bits(benchmark):
    result = run_and_report(benchmark, fig13.run)
    for row in result.rows:
        slc, mlc2, mlc3 = row[1], row[2], row[3]
        # SLC outperforms MLC (parallel-sensing energy overhead).
        assert slc > mlc2 > mlc3
