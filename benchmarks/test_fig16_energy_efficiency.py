"""Fig. 16: energy efficiency across every machine configuration."""

from conftest import run_and_report

from repro.experiments import fig16


def test_fig16_energy_efficiency(benchmark):
    result = run_and_report(benchmark, fig16.run)
    ratios = fig16.opt_ratios(result)
    print("acc+HyVE-opt improvement over each baseline "
          "(paper: SD 2.00x, ReRAM 4.54x, DRAM 5.90x, CPU 145.71x):")
    for name, value in ratios.items():
        print(f"  vs {name:14s}: {value:7.2f}x")
    assert ratios["acc+SRAM+DRAM"] > 1.5
    assert ratios["acc+DRAM"] > 4.0
    assert ratios["CPU+DRAM"] > 80.0
