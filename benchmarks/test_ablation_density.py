"""Ablation: chip-density sweep (4/8/16 Gb)."""

from conftest import run_and_report

from repro.experiments import ablations


def test_ablation_density(benchmark):
    result = run_and_report(benchmark, ablations.run_density)
    for row in result.rows:
        series = row[1:]
        # Efficiency declines gently with density but stays within 15%.
        assert series[0] >= series[-1] > 0.8 * series[0]
