"""Fig. 15: energy-efficiency improvement from bank-level power gating."""

from conftest import run_and_report

from repro.experiments import fig15
from repro.experiments.common import geomean


def test_fig15_power_gating(benchmark):
    result = run_and_report(benchmark, fig15.run)
    ratios = [r for row in result.rows for r in row[1:6]]
    overall = geomean(ratios)
    # Paper: 1.53x on average.
    assert 1.2 < overall < 2.0
