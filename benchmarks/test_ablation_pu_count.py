"""Ablation: processing-unit count sweep (super-block size)."""

from conftest import run_and_report

from repro.experiments import ablations


def test_ablation_pu_count(benchmark):
    result = run_and_report(benchmark, ablations.run_pu_count)
    for row in result.rows:
        series = row[1:]
        # More sharing PUs beat a single PU on every dataset.
        assert max(series) > series[0]
