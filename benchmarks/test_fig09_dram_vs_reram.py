"""Fig. 9: normalized DRAM/ReRAM delay, energy and EDP per access mix."""

from conftest import run_and_report

from repro.experiments import fig09
from repro.model.edge_storage import read_pattern_conclusions


def test_fig09_dram_vs_reram(benchmark):
    run_and_report(benchmark, fig09.run)
    conclusions = read_pattern_conclusions()
    assert all(conclusions.values()), conclusions
