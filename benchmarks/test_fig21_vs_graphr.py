"""Fig. 21: overall GraphR vs HyVE (delay, energy, EDP)."""

from conftest import run_and_report

from repro.experiments import fig21


def test_fig21_vs_graphr(benchmark):
    result = run_and_report(benchmark, fig21.run)
    averages = fig21.averages(result)
    print(
        "GraphR/HyVE geomeans (paper: delay 5.12x, energy 2.83x, "
        f"EDP 17.63x): delay {averages['delay']:.2f}x, "
        f"energy {averages['energy']:.2f}x, EDP {averages['edp']:.2f}x"
    )
    assert averages["delay"] > 2.5
    assert averages["energy"] > 1.5
    assert averages["edp"] > 7.0
