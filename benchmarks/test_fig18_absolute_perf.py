"""Fig. 18: execution time SD/HyVE (HyVE's small performance cost)."""

from conftest import run_and_report

from repro.experiments import fig18


def test_fig18_absolute_perf(benchmark):
    result = run_and_report(benchmark, fig18.run)
    for row in result.rows:
        assert all(0.7 < r <= 1.0 for r in row[1:6])
