"""Fig. 12: normalized preprocessing speed vs number of blocks."""

from conftest import run_and_report

from repro.experiments import fig12


def test_fig12_preprocessing_blocks(benchmark):
    result = run_and_report(benchmark, fig12.run)
    for row in result.rows:
        speeds = row[2:]
        # Flat through 32x32 blocks, dramatic drop past 64x64.
        assert speeds[4] > 0.85   # 32x32
        assert speeds[-1] < 0.4   # 256x256
