"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table/figure of the paper, times it with
pytest-benchmark, saves the formatted table under ``results/`` and
prints it (run pytest with ``-s`` to see the tables inline).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentResult


def run_and_report(benchmark, runner, *args, **kwargs) -> ExperimentResult:
    """Execute one experiment driver under the benchmark clock.

    Uses a single measured round: the drivers are deterministic
    simulations, so repeated timing adds nothing but wall-clock.
    """
    result = benchmark.pedantic(
        runner, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    path = result.save()
    print()
    print(result.format())
    print(f"[saved to {path}]")
    return result
