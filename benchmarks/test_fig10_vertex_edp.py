"""Fig. 10: DRAM/ReRAM EDP as global vertex memory, HyVE vs GraphR."""

from conftest import run_and_report

from repro.experiments import fig10


def test_fig10_vertex_edp(benchmark):
    result = run_and_report(benchmark, fig10.run)
    graphr = [r for r in result.rows if r[0] == "GraphR"]
    # GraphR's read-dominated traffic always prefers ReRAM.
    assert all(row[3] > 1.0 for row in graphr)
