"""Ablation: edge-centric vs vertex-centric execution (Section 2.1)."""

from conftest import run_and_report

from repro.experiments import ablations


def test_ablation_execution_model(benchmark):
    result = run_and_report(benchmark, ablations.run_execution_model)
    pr_rows = [row for row in result.rows if row[0] == "PR"]
    # For full-sweep algorithms vertex-centric only adds random-access
    # cost to the edge memory — the case HyVE's sequential stream wins.
    assert all(row[3] > 1.0 for row in pr_rows)
