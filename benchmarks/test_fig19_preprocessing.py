"""Fig. 19: preprocessing time GraphR/HyVE."""

from conftest import run_and_report

from repro.experiments import fig19


def test_fig19_preprocessing(benchmark):
    result = run_and_report(benchmark, fig19.run)
    values = result.column("GraphR/HyVE")
    mean = sum(values) / len(values)
    # Paper: 6.73x average.
    assert 4.0 < mean < 10.0
