"""Table 1: average edges per non-empty 8x8 block."""

from conftest import run_and_report

from repro.experiments import table1


def test_table1_navg(benchmark):
    result = run_and_report(benchmark, table1.run)
    for _, measured, paper in result.rows:
        assert abs(measured - paper) / paper < 0.05
