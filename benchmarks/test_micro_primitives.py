"""Micro-benchmarks of the library's core primitives.

Unlike the per-figure drivers (timed once), these use pytest-benchmark's
statistical timing to track the performance of the hot paths a
downstream user exercises: partitioning, algorithm sweeps, schedule
folding and dynamic updates.
"""

import pytest

from repro.algorithms import PageRank, run_vectorized
from repro.arch.config import Workload
from repro.arch.machine import AcceleratorMachine
from repro.dynamic import DynamicGraphStore, apply_requests, generate_requests
from repro.graph import IntervalBlockPartition, load, rmat


@pytest.fixture(scope="module")
def graph():
    return rmat(20_000, 200_000, seed=91, name="micro")


def test_partition_build(benchmark, graph):
    partition = benchmark(IntervalBlockPartition.build, graph, 32)
    assert partition.block_counts.sum() == graph.num_edges


def test_pagerank_sweep(benchmark, graph):
    run = benchmark(run_vectorized, PageRank(iterations=3), graph)
    assert run.iterations == 3


def test_machine_fold(benchmark):
    # Folding counts into a report (the per-configuration cost of a
    # design-space sweep); the algorithm run itself is cached.
    workload = Workload.from_dataset("LJ")
    machine = AcceleratorMachine()
    machine.run(PageRank(), workload)  # warm the run cache

    def fold():
        return machine.run(PageRank(), workload).report

    report = benchmark(fold)
    assert report.total_energy > 0


def test_dynamic_updates(benchmark, graph):
    requests = generate_requests(graph, 5_000, seed=0)

    def replay():
        store = DynamicGraphStore(graph, num_intervals=32)
        return apply_requests(store, requests)

    changed = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert changed > 0


def test_rmat_generation(benchmark):
    g = benchmark(rmat, 10_000, 80_000, 0.6, 0.13, 0.13, 7)
    assert g.num_edges == 80_000
