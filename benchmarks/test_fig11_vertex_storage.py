"""Fig. 11: GraphR/HyVE whole-vertex-storage comparison."""

from conftest import run_and_report

from repro.experiments import fig11


def test_fig11_vertex_storage(benchmark):
    result = run_and_report(benchmark, fig11.run)
    # GraphR reads several times more vertices than HyVE.
    assert all(row[1] > 2.0 for row in result.rows)
    # With DRAM global memory, HyVE wins energy and EDP everywhere.
    assert all(row[4] > 1.0 and row[5] > 1.0 for row in result.rows)
