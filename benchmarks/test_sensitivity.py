"""Sensitivity of the headline ratio to the calibrated constants."""

from conftest import run_and_report

from repro.experiments import sensitivity


def test_sensitivity(benchmark):
    result = run_and_report(benchmark, sensitivity.run)
    for row in result.rows:
        # The conclusion survives every +/-30% perturbation.
        assert all(ratio > 1.5 for ratio in row[1:])
