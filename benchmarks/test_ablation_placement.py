"""Ablation: hash-based vs natural vertex placement (Section 4.3)."""

from conftest import run_and_report

from repro.experiments import ablations


def test_ablation_placement(benchmark):
    result = run_and_report(benchmark, ablations.run_placement)
    for row in result.rows:
        hash_imb, natural_imb = row[1], row[2]
        hash_eff, natural_eff = row[3], row[4]
        assert hash_imb < natural_imb       # balancing works
        assert hash_eff >= natural_eff      # and it pays off
