"""Fig. 17: energy-consumption breakdown."""

from conftest import run_and_report

from repro.experiments import fig17


def test_fig17_breakdown(benchmark):
    result = run_and_report(benchmark, fig17.run)
    reductions = fig17.memory_reduction()
    print(
        "memory-energy reduction vs SD (paper: HyVE 57.57%, opt 86.17%): "
        f"HyVE {reductions['HyVE']:.1f}%, opt {reductions['opt']:.1f}%"
    )
    assert reductions["opt"] > reductions["HyVE"] > 20.0
