"""Ablation: BPG idle-timeout sweep."""

from conftest import run_and_report

from repro.experiments import ablations


def test_ablation_bpg_timeout(benchmark):
    result = run_and_report(benchmark, ablations.run_bpg_timeout)
    for row in result.rows:
        series = row[1:]
        # Very long timeouts keep banks powered: efficiency declines.
        assert series[0] >= series[-1]
