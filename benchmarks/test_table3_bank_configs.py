"""Table 3: ReRAM bank power under different configurations."""

from conftest import run_and_report

from repro.experiments import table3


def test_table3_bank_configs(benchmark):
    result = run_and_report(benchmark, table3.run)
    powers = result.column("Power/bit (mW/bit)")
    assert min(powers) == powers[3]  # energy-optimised 512-bit
