"""Fig. 20: dynamic update throughput, HyVE vs GraphR."""

from conftest import run_and_report

from repro.experiments import fig20


def test_fig20_dynamic_graphs(benchmark):
    result = run_and_report(benchmark, fig20.run)
    for row in result.rows:
        measured_ratio, modeled_ratio = row[3], row[4]
        assert measured_ratio > 1.0     # HyVE faster even in Python
        assert 7.0 < modeled_ratio < 10.0  # paper: 8.04x
