"""Fig. 14: energy-efficiency improvement from data sharing."""

from conftest import run_and_report

from repro.experiments import fig14


def test_fig14_data_sharing(benchmark):
    result = run_and_report(benchmark, fig14.run)
    means = {row[0]: row[6] for row in result.rows}
    assert all(v > 1.0 for v in means.values())
    # PR benefits most (widest vertex record), as in the paper.
    assert means["PR"] == max(means.values())
