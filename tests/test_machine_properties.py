"""Property and monotonicity tests on the machine model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import BFS, PageRank
from repro.arch.config import HyVEConfig, Workload
from repro.arch.machine import AcceleratorMachine
from repro.graph import Graph, rmat
from repro.memory.dram import DRAMConfig
from repro.memory.powergate import PowerGatingPolicy
from repro.memory.reram import ReRAMConfig
from repro.units import GBIT, MB


GRAPH = rmat(2048, 16000, seed=81, name="props")
WORKLOAD = Workload(GRAPH, reported_vertices=2_048_000,
                    reported_edges=16_000_000)


def run(config: HyVEConfig):
    return AcceleratorMachine(config).run(PageRank(), WORKLOAD).report


class TestMonotonicity:
    def test_denser_chips_cost_more_energy_per_access(self):
        small = run(HyVEConfig(
            label="4g",
            reram=ReRAMConfig(density_bits=4 * GBIT),
            dram=DRAMConfig(density_bits=4 * GBIT),
        ))
        large = run(HyVEConfig(
            label="16g",
            reram=ReRAMConfig(density_bits=16 * GBIT),
            dram=DRAMConfig(density_bits=16 * GBIT),
        ))
        assert large.total_energy > small.total_energy

    def test_more_sram_more_leakage_fewer_loads(self):
        small = AcceleratorMachine(HyVEConfig(label="s", sram_bits=2 * MB))
        large = AcceleratorMachine(HyVEConfig(label="l", sram_bits=16 * MB))
        small_counts = small.run_counts(PageRank(), WORKLOAD)
        large_counts = large.run_counts(PageRank(), WORKLOAD)
        assert large_counts.offchip_load_bits <= small_counts.offchip_load_bits
        from repro.arch.report import ONCHIP_VERTEX_BG

        assert run(HyVEConfig(label="l", sram_bits=16 * MB)).energy[
            ONCHIP_VERTEX_BG
        ] > run(HyVEConfig(label="s", sram_bits=2 * MB)).energy[
            ONCHIP_VERTEX_BG
        ]

    def test_gating_timeout_monotone_in_background(self):
        from repro.arch.report import EDGE_MEMORY_BG
        from repro.units import US

        energies = []
        for timeout in (0.1, 10.0, 1000.0):
            report = run(HyVEConfig(
                label=f"t{timeout}",
                power_gating=PowerGatingPolicy(idle_timeout=timeout * US),
            ))
            energies.append(report.energy[EDGE_MEMORY_BG])
        assert energies[0] <= energies[1] <= energies[2]


class TestScaleInvariance:
    @given(st.integers(min_value=2, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_mteps_per_watt_stable_under_scaling(self, factor):
        # Scaling a workload linearly must not change efficiency much
        # (it only shifts chip counts, which are step functions).
        base = AcceleratorMachine().run(PageRank(), WORKLOAD).report
        scaled = AcceleratorMachine().run(
            PageRank(),
            Workload(
                GRAPH,
                reported_vertices=GRAPH.num_vertices * factor,
                reported_edges=GRAPH.num_edges * factor,
            ),
        ).report
        # Within 4x across three orders of magnitude of scale.
        ratio = scaled.mteps_per_watt / base.mteps_per_watt
        assert 0.25 < ratio < 4.0


class TestEdgeCases:
    def test_single_edge_graph(self):
        g = Graph.from_edges(2, [(0, 1)])
        report = AcceleratorMachine().run(BFS(0), g).report
        assert report.total_energy > 0
        assert report.time > 0

    def test_edgeless_graph(self):
        g = Graph.empty(16)
        report = AcceleratorMachine().run(PageRank(), g).report
        assert report.edges_traversed == 0
        assert report.total_energy > 0  # background + interval traffic

    def test_self_loop_only(self):
        g = Graph.from_edges(1, [(0, 0)])
        report = AcceleratorMachine().run(PageRank(), g).report
        assert report.edges_traversed == 10  # 10 PR iterations x 1 edge

    def test_one_pu_machine(self):
        report = AcceleratorMachine(
            HyVEConfig(label="n1", num_pus=1)
        ).run(PageRank(), GRAPH).report
        assert report.total_energy > 0
