"""Edge-case tests across subsystems (failure injection and odd inputs)."""

import numpy as np
import pytest

from repro.algorithms import PageRank, SpMV, run_vectorized
from repro.arch.config import HyVEConfig, Workload
from repro.arch.machine import AcceleratorMachine
from repro.errors import ConfigError, GraphError
from repro.graph import Graph, rmat
from repro.graph.partition import IntervalBlockPartition


class TestDegenerateGraphs:
    def test_single_vertex_no_edges(self):
        g = Graph.empty(1)
        run = run_vectorized(PageRank(), g)
        assert run.values.tolist() == [1.0]

    def test_all_self_loops(self):
        g = Graph.from_edges(3, [(0, 0), (1, 1), (2, 2)])
        run = run_vectorized(PageRank(iterations=20), g)
        np.testing.assert_allclose(run.values.sum(), 1.0)

    def test_parallel_edges_weighted_spmv(self):
        g = Graph.from_edges(2, [(0, 1), (0, 1)], weights=[2.0, 3.0])
        run = run_vectorized(SpMV(), g)
        assert run.values[1] == pytest.approx(5.0)

    def test_partition_single_vertex(self):
        p = IntervalBlockPartition.build(Graph.from_edges(1, [(0, 0)]), 1)
        assert p.block_edge_count(0, 0) == 1

    def test_maximally_partitioned(self, tiny_graph):
        # One vertex per interval.
        p = IntervalBlockPartition.build(tiny_graph, 8)
        assert p.max_interval_size() == 1
        assert p.block_counts.sum() == tiny_graph.num_edges


class TestConfigAbuse:
    def test_num_intervals_must_divide(self):
        with pytest.raises(ConfigError):
            HyVEConfig(num_intervals=10, num_pus=8)

    def test_num_intervals_override_respected(self, small_rmat):
        machine = AcceleratorMachine(
            HyVEConfig(label="p24", num_intervals=24)
        )
        counts = machine.run_counts(PageRank(), small_rmat)
        assert counts.num_intervals == 24

    def test_workload_with_only_edges_reported(self, small_rmat):
        wl = Workload(small_rmat, reported_edges=small_rmat.num_edges * 10)
        assert wl.edge_scale == pytest.approx(10.0)
        assert wl.vertex_scale == 1.0
        report = AcceleratorMachine().run(PageRank(), wl).report
        assert report.edges_traversed == pytest.approx(
            10 * 10 * small_rmat.num_edges
        )


class TestGraphAbuse:
    def test_weights_on_empty_edge_list(self):
        g = Graph.from_edges(3, [], weights=None)
        assert not g.is_weighted

    def test_two_dimensional_arrays_rejected(self):
        with pytest.raises(GraphError):
            Graph(4, np.zeros((2, 2)), np.zeros((2, 2)))

    def test_float_ids_truncate_consistently(self):
        # Float arrays are coerced to int64 on construction.
        g = Graph(4, np.array([1.0, 2.0]), np.array([2.0, 3.0]))
        assert g.src.dtype == np.int64
        assert g.has_edge(1, 2)

    def test_relabel_empty_graph(self):
        g = Graph.empty(0)
        out = g.relabel(np.empty(0, dtype=np.int64))
        assert out.num_vertices == 0
