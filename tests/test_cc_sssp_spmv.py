"""Tests for connected components, SSSP and SpMV."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms import (
    ConnectedComponents,
    SSSP,
    SpMV,
    UNREACHABLE,
    run_vectorized,
)
from repro.errors import GraphError
from repro.graph import Graph, cycle, path, random_weights, rmat


class TestConnectedComponents:
    def test_matches_networkx_weakly_connected(self, small_rmat):
        run = run_vectorized(ConnectedComponents(), small_rmat)
        components = nx.weakly_connected_components(
            small_rmat.to_networkx()
        )
        for component in components:
            labels = {int(run.values[v]) for v in component}
            assert len(labels) == 1

    def test_label_is_component_minimum(self):
        g = Graph.from_edges(6, [(1, 2), (2, 1), (4, 5)])
        run = run_vectorized(ConnectedComponents(), g)
        assert run.values[1] == run.values[2] == 1
        assert run.values[4] == run.values[5] == 4
        assert run.values[0] == 0
        assert run.values[3] == 3

    def test_symmetrisation_doubles_streamed_edges(self, small_rmat):
        run = run_vectorized(ConnectedComponents(), small_rmat)
        assert run.edges_per_iteration == 2 * small_rmat.num_edges

    def test_directed_mode(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        run = run_vectorized(ConnectedComponents(symmetrize=False), g)
        # Min label propagates along direction only.
        assert run.values.tolist() == [0, 0, 0]

    def test_isolated_vertices_own_components(self):
        g = Graph.empty(5)
        run = run_vectorized(ConnectedComponents(), g)
        assert run.values.tolist() == [0, 1, 2, 3, 4]

    def test_single_cycle_single_component(self):
        run = run_vectorized(ConnectedComponents(), cycle(7))
        assert (run.values == 0).all()


class TestSSSP:
    def test_matches_dijkstra(self, small_rmat):
        g = random_weights(small_rmat.deduplicated(), 1.0, 5.0, seed=2)
        run = run_vectorized(SSSP(0), g)
        ref = nx.single_source_dijkstra_path_length(g.to_networkx(), 0)
        for v in range(g.num_vertices):
            expected = ref.get(v, UNREACHABLE)
            assert run.values[v] == pytest.approx(expected)

    def test_unit_weights_match_bfs_distances(self):
        run = run_vectorized(SSSP(0), path(5))
        assert run.values.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_weighted_edge_stream_is_96_bits(self):
        assert SSSP().edge_bits == 96

    def test_rejects_negative_weights(self):
        g = Graph.from_edges(2, [(0, 1)], weights=[-1.0])
        with pytest.raises(GraphError):
            run_vectorized(SSSP(0), g)

    def test_rejects_source_out_of_range(self):
        with pytest.raises(GraphError):
            run_vectorized(SSSP(9), path(3))

    def test_unreachable_is_infinite(self):
        g = Graph.from_edges(3, [(0, 1)], weights=[2.0])
        run = run_vectorized(SSSP(0), g)
        assert run.values[2] == UNREACHABLE

    def test_initial_active_is_one(self, small_rmat):
        assert SSSP().initial_active(small_rmat) == 1


class TestSpMV:
    def test_matches_scipy(self, weighted_graph):
        run = run_vectorized(SpMV(), weighted_graph)
        x = np.ones(weighted_graph.num_vertices)
        expected = weighted_graph.to_csr().T @ x
        np.testing.assert_allclose(run.values, expected)

    def test_custom_input_vector(self, weighted_graph, rng):
        x = rng.normal(size=weighted_graph.num_vertices)
        run = run_vectorized(SpMV(x), weighted_graph)
        expected = weighted_graph.to_csr().T @ x
        np.testing.assert_allclose(run.values, expected)

    def test_single_iteration(self, weighted_graph):
        run = run_vectorized(SpMV(), weighted_graph)
        assert run.iterations == 1

    def test_unweighted_defaults_to_unit_weights(self, small_rmat):
        run = run_vectorized(SpMV(), small_rmat)
        expected = small_rmat.in_degrees().astype(float)
        np.testing.assert_allclose(run.values, expected)

    def test_rejects_wrong_vector_shape(self, small_rmat):
        with pytest.raises(ValueError):
            run_vectorized(SpMV(np.ones(3)), small_rmat)
